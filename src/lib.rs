//! # warpweave
//!
//! A cycle-level SIMT GPU simulator reproducing *"Simultaneous Branch and
//! Warp Interweaving for Sustained GPU Performance"* (Brunie, Collange,
//! Diamos — ISCA 2012), built entirely from scratch in Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`isa`] — the SASS-like instruction set, assembler and CFG analyses.
//! * [`mem`] — coalescer, L1 cache and DRAM models.
//! * [`core`] — the SM pipeline with the Baseline / Warp64 / SBI / SWI /
//!   SBI+SWI front-ends (the paper's contribution).
//! * [`workloads`] — the 21 benchmark kernels of the paper's evaluation.
//! * [`hwcost`] — storage and area models (tables 3 and 4).
//! * [`mod@bench`] — the experiment harness regenerating every figure.
//! * [`serve`] — the distributed sweep fabric: the `sweep_serve` daemon,
//!   its client, and the content-addressed cell cache.
//!
//! # Examples
//! ```
//! use warpweave::core::{Launch, Sm, SmConfig};
//! use warpweave::isa::{KernelBuilder, r, SpecialReg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut k = KernelBuilder::new("hello");
//! k.mov(r(0), SpecialReg::Tid);
//! k.exit();
//! let mut sm = Sm::new(SmConfig::sbi_swi(), Launch::new(k.build()?, 4, 256))?;
//! let stats = sm.run(100_000)?;
//! assert!(stats.thread_instructions >= 2048);
//! # Ok(())
//! # }
//! ```

pub use warpweave_bench as bench;
pub use warpweave_core as core;
pub use warpweave_hwcost as hwcost;
pub use warpweave_isa as isa;
pub use warpweave_mem as mem;
pub use warpweave_serve as serve;
pub use warpweave_workloads as workloads;

// Convenience re-exports of the most common entry points.
pub use warpweave_core::{
    LaneShuffle, Launch, Machine, MachineStats, Sm, SmConfig, Stats, SweepRunner,
};
pub use warpweave_workloads::{all_workloads, by_name, run_prepared, run_prepared_multi_sm, Scale};
