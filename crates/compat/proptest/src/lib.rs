//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! Supports the `proptest!` macro over named strategies (`any::<T>()`,
//! integer ranges, tuples, `collection::vec`), `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`. Cases are driven
//! from a deterministic per-test RNG; failures panic immediately (no
//! shrinking), printing the case number so a failure can be replayed by
//! reading the generated inputs under a debugger.

/// Test-runner configuration, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Number of cases each property runs (mirrors `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases to execute per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from the test's name, so every property gets an
        /// independent but reproducible stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % width) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, usize);

    impl Strategy for core::ops::Range<u64> {
        type Value = u64;

        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty strategy range");
            let width = self.end.wrapping_sub(self.start);
            self.start.wrapping_add(rng.next_u64() % width)
        }
    }

    macro_rules! impl_signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add((rng.next_u64() % width) as $t)
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Full-domain strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` and friends, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Any;

    /// A full-domain strategy for `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let run = || $body;
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed",
                        case + 1,
                        config.cases,
                        stringify!($name)
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and tuples/vecs compose.
        #[test]
        fn shim_machinery_works(
            x in 0u32..100,
            pair in (0u8..4, 1u64..u64::MAX),
            v in crate::collection::vec(0usize..7, 1..9),
        ) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
            prop_assert!(!v.is_empty() && v.len() < 9, "len {}", v.len());
            prop_assert_eq!(v.iter().filter(|&&e| e >= 7).count(), 0);
        }

        /// `any` covers the full domain deterministically.
        #[test]
        fn any_is_deterministic(a in any::<u64>()) {
            prop_assert_ne!(a, a.wrapping_add(1));
        }
    }

    #[test]
    fn per_test_streams_differ() {
        let mut a = crate::test_runner::TestRng::deterministic("a");
        let mut b = crate::test_runner::TestRng::deterministic("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
