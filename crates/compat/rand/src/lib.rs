//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what the workspace uses: [`rngs::SmallRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is xoshiro256++ with SplitMix64 seed expansion —
//! deterministic per seed, but not bit-compatible with crates.io rand.

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for real rand; here `[u8; 32]`).
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same scheme
    /// real rand uses) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard 64-bit seed expander.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform sampling from a range type, mirroring `rand::distributions`
/// internals far enough for `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, usize);

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty gen_range range");
        let width = self.end - self.start;
        self.start.wrapping_add(rng.next_u64() % width)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range range");
                let width = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open integer ranges).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Small fast generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the same family real rand 0.8 uses for `SmallRng`
    /// on 64-bit targets (exact stream differs; see crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(same < 20, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-9i32..9);
            assert!((-9..9).contains(&v));
            let u = r.gen_range(3u8..10);
            assert!((3..10).contains(&u));
            let w = r.gen_range(1u64..u64::MAX);
            assert!(w >= 1);
        }
    }

    #[test]
    fn from_seed_and_bool() {
        let mut r = SmallRng::from_seed([0; 32]);
        let heads: usize = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads));
    }
}
