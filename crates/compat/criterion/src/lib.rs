//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Runs each benchmark for a configured number of samples and prints
//! mean / min wall-clock per iteration. No statistical analysis, HTML
//! reports or CLI filtering — just enough to keep `cargo bench` useful
//! offline with unmodified criterion-style benchmark sources.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 20;

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, like criterion renders it.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The per-benchmark measurement driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running one warm-up call then `samples` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        self.times.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.times.push(start.elapsed());
        }
    }
}

fn report(name: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().expect("non-empty");
    println!(
        "{name:<50} time: [mean {} min {}] ({} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        times.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.times);
        self
    }

    /// Benchmarks `f` under `id` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            times: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b.times);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored offline).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: DEFAULT_SAMPLES,
            times: Vec::new(),
        };
        f(&mut b);
        report(name, &b.times);
        self
    }

    /// Prints the final summary (no-op offline).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("f", "p"), &5u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        c.final_summary();
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
