//! Offline stand-in for the `rayon` crate (1.x API subset).
//!
//! Provides the data-parallel surface the workspace uses — slice/`Vec`
//! parallel iterators with `map`/`collect`/`for_each`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] for bounding worker
//! counts. Work is distributed over scoped `std::thread` workers pulling
//! items off a shared atomic cursor; results are always collected in input
//! order, so any deterministic per-item computation yields deterministic
//! aggregate output regardless of worker count — the property the
//! multi-SM engine's tests rely on.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel calls will use in this context.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error building a thread pool (mirrors `rayon::ThreadPoolBuildError`).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a bounded [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (all available cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `n` workers (0 means "all available", like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in this implementation; the `Result` mirrors rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        })
    }
}

/// A bounded scope for parallel execution. Unlike real rayon there are no
/// persistent workers; the pool only bounds how many scoped threads each
/// parallel call inside [`ThreadPool::install`] may spawn.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker bound.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread bound installed for any parallel
    /// iterator calls it makes.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = f();
        INSTALLED_THREADS.with(|c| c.set(prev));
        out
    }
}

/// Runs `f(i)` for every `i in 0..len` across the current thread budget,
/// collecting results in input order.
fn par_run<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let workers = current_num_threads().min(len.max(1));
    if workers <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    return;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("worker filled slot")
        })
        .collect()
}

/// The parallel-iterator traits and adaptors the workspace uses.
pub mod iter {
    use super::par_run;

    /// A minimal parallel iterator: an indexed source plus a mapping stage.
    pub trait ParallelIterator: Sized + Send {
        /// The item type produced.
        type Item: Send;

        /// Number of items.
        fn pi_len(&self) -> usize;

        /// Produces item `i`. Must be callable concurrently.
        fn pi_get(&self, i: usize) -> Self::Item;

        /// Maps each item through `f` in parallel.
        fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
            Map { base: self, f }
        }

        /// Collects the mapped items, preserving input order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C
        where
            Self: Sync,
        {
            par_run(self.pi_len(), |i| self.pi_get(i))
                .into_iter()
                .collect()
        }

        /// Runs `f` on every item in parallel.
        fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F)
        where
            Self: Sync,
        {
            par_run(self.pi_len(), |i| f(self.pi_get(i)));
        }
    }

    /// `map` adaptor.
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    impl<I, F, R> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator + Sync,
        F: Fn(I::Item) -> R + Sync + Send,
        R: Send,
    {
        type Item = R;

        fn pi_len(&self) -> usize {
            self.base.pi_len()
        }

        fn pi_get(&self, i: usize) -> R {
            (self.f)(self.base.pi_get(i))
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct SliceIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
        type Item = &'a T;

        fn pi_len(&self) -> usize {
            self.slice.len()
        }

        fn pi_get(&self, i: usize) -> &'a T {
            &self.slice[i]
        }
    }

    /// Owning parallel iterator over a `Vec` (items cloned out by index —
    /// sufficient for the coarse job descriptors the workspace fans out).
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send + Sync + Clone> ParallelIterator for VecIter<T> {
        type Item = T;

        fn pi_len(&self) -> usize {
            self.items.len()
        }

        fn pi_get(&self, i: usize) -> T {
            self.items[i].clone()
        }
    }

    /// Conversion into an owning parallel iterator (`into_par_iter`).
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts self.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;

        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = RangeIter;

        fn into_par_iter(self) -> RangeIter {
            RangeIter { range: self }
        }
    }

    /// Parallel iterator over `Range<usize>`.
    pub struct RangeIter {
        range: std::ops::Range<usize>,
    }

    impl ParallelIterator for RangeIter {
        type Item = usize;

        fn pi_len(&self) -> usize {
            self.range.len()
        }

        fn pi_get(&self, i: usize) -> usize {
            self.range.start + i
        }
    }

    /// Conversion into a borrowing parallel iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrows self.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }

    impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceIter<'a, T>;

        fn par_iter(&'a self) -> SliceIter<'a, T> {
            SliceIter { slice: self }
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn install_bounds_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = super::current_num_threads();
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 2);
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let v: Vec<u32> = (0..257).collect();
        let reference: Vec<u32> = v.par_iter().map(|&x| x.wrapping_mul(2654435761)).collect();
        for n in [1, 2, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let out: Vec<u32> =
                pool.install(|| v.par_iter().map(|&x| x.wrapping_mul(2654435761)).collect());
            assert_eq!(out, reference, "{n} threads");
        }
    }

    #[test]
    fn for_each_and_ranges() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0usize..100).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
