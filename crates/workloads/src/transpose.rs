//! Transpose (CUDA SDK): tiled matrix transpose through shared memory —
//! pure data movement, fully regular, memory-bandwidth bound.

use warpweave_core::Launch;
use warpweave_isa::{r, KernelBuilder, Operand, Program, SpecialReg};

use crate::runner::{Prepared, Scale};
use crate::util::{region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Transpose;

const TILE: u32 = 16;
const P_IN: u8 = 0;
const P_OUT: u8 = 1;

/// One 256-thread block transposes one 16×16 tile of a `w × h` matrix
/// (`w` columns, `h` rows; both powers of two).
fn program(w: u32, h: u32) -> Program {
    assert!(w.is_power_of_two() && h.is_power_of_two());
    let nbx = w / TILE;
    let mut k = KernelBuilder::new("transpose");
    k.mov(r(0), SpecialReg::CtaId);
    k.shr(r(1), r(0), nbx.trailing_zeros() as i32); // by
    k.and_(r(2), r(0), (nbx - 1) as i32); // bx
    k.mov(r(3), SpecialReg::Tid);
    k.and_(r(4), r(3), (TILE - 1) as i32); // tx
    k.shr(r(5), r(3), 4i32); // ty
                             // in[(by·16+ty)·w + bx·16+tx]
    k.imad(r(6), r(1), TILE as i32, r(5));
    k.imul(r(6), r(6), w as i32);
    k.imad(r(7), r(2), TILE as i32, r(4));
    k.iadd(r(6), r(6), r(7));
    k.shl(r(6), r(6), 2i32);
    k.iadd(r(6), Operand::Param(P_IN), r(6));
    k.ld(r(8), r(6), 0);
    // shared[ty][tx]
    k.shl(r(9), r(3), 2i32);
    k.st_shared(r(9), 0, r(8));
    k.bar();
    // shared[tx][ty]
    k.imad(r(10), r(4), TILE as i32, r(5));
    k.shl(r(10), r(10), 2i32);
    k.ld_shared(r(11), r(10), 0);
    // out[(bx·16+ty)·h + by·16+tx]
    k.imad(r(12), r(2), TILE as i32, r(5));
    k.imul(r(12), r(12), h as i32);
    k.imad(r(13), r(1), TILE as i32, r(4));
    k.iadd(r(12), r(12), r(13));
    k.shl(r(12), r(12), 2i32);
    k.iadd(r(12), Operand::Param(P_OUT), r(12));
    k.st(r(12), 0, r(11));
    k.exit();
    k.build().expect("transpose assembles")
}

impl Workload for Transpose {
    fn name(&self) -> &'static str {
        "Transpose"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (w, h): (u32, u32) = match scale {
            Scale::Test => (64, 32),
            Scale::Bench => (256, 128),
        };
        let mut rng = Lcg(0x7a05);
        let input: Vec<u32> = (0..w * h).map(|_| rng.next()).collect();
        let (pin, pout) = (region(0), region(1));
        let blocks = (w / TILE) * (h / TILE);
        let launch = Launch::new(program(w, h), blocks, 256).with_params(vec![pin, pout]);
        let expected: Vec<u32> = (0..w * h)
            .map(|i| {
                let (x, y) = (i % h, i / h); // out is w columns × ... transposed
                input[(x * w + y) as usize]
            })
            .collect();
        Prepared {
            launches: vec![launch],
            inputs: vec![(pin, input)],
            verify: Box::new(move |mem| {
                let out = mem.read_words(pout, (w * h) as usize);
                for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("out[{i}] = {got:#x}, expected {want:#x}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Transpose.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_warp64() {
        run_prepared(&SmConfig::warp64(), Transpose.prepare(Scale::Test), true).unwrap();
    }
}
