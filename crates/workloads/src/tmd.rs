//! TMD (Fortin, Gouicem, Graillat — PDP'12): the Table Maker's Dilemma
//! search, the paper's showcase of *unstructured control flow* (§5.1).
//!
//! Each thread classifies one argument of `2^x` and then runs a web of
//! data-dependent refinement stages. A stage `k` is taken iff bit `k` of
//! the result's mantissa is set; inside a stage, an overflow test can jump
//! *into the middle of the next stage* — a goto-style edge that gives one
//! reconvergence point several divergence points. Stack-based (PDOM)
//! reconvergence must defer merging to each stage's far post-dominator and
//! re-executes shared tail blocks once per incoming path, while
//! thread-frontier reconvergence merges opportunistically at equal PCs —
//! this is why "TMD2 shows vastly improved performance compared to
//! stack-based execution".
//!
//! Two variants, as in the paper:
//!
//! * [`Tmd2`] lays blocks out in thread-frontier (program) order.
//! * [`Tmd1`] lays the *same CFG* out in reverse — every reconvergence
//!   point sits below its divergence points ("improper code layout", the
//!   one kernel the authors found violating frontier order), which starves
//!   laggard splits under min-PC scheduling and erases the frontier
//!   advantage.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_gtid, region};
use crate::{Category, Workload};

/// Frontier-ordered variant (see the [module docs](self)).
pub struct Tmd2;
/// Mis-laid-out variant (see the [module docs](self)).
pub struct Tmd1;

/// Refinement stages.
const STAGES: usize = 8;
const STEP: f32 = 1.0 / 4096.0;
/// Overflow threshold for the unstructured skip edge.
const THRESH: f32 = 1.5;
const P_OUT: u8 = 0;

/// Per-stage constants (kept in (0,1) so `c` stays bounded).
fn wa(k: usize) -> f32 {
    0.1 + 0.07 * k as f32
}

fn wb(k: usize) -> f32 {
    0.05 + 0.09 * k as f32
}

/// Emits one block of the stage web. Blocks end in explicit branches so the
/// two variants can lay them out in any order with identical instruction
/// mixes. Register map: r2 = mantissa bits `m`, r5 = working value `c`.
fn emit_block(k: &mut KernelBuilder, block: &str, stage: usize) {
    match block {
        // t_k: take stage k iff bit k of m is set.
        "t" => {
            k.shr(r(6), r(2), stage as i32);
            k.and_(r(6), r(6), 1i32);
            k.isetp(p(0), CmpOp::Eq, r(6), 0i32);
            let next = if stage + 1 == STAGES {
                "done".to_string()
            } else {
                format!("t{}", stage + 1)
            };
            k.bra_if(p(0), next);
            k.bra(format!("a{stage}"));
        }
        // a_k: stage work, then the unstructured overflow edge into the
        // middle of stage k+1.
        "a" => {
            k.ffma(r(5), r(5), 0.75f32, wa(stage));
            k.fmul(r(7), r(5), r(5));
            k.fadd(r(5), r(5), wa(stage) * 0.5);
            k.fsub(r(7), r(7), r(5));
            if stage + 1 < STAGES {
                k.fsetp(p(1), CmpOp::Gt, r(5), THRESH);
                k.bra_if(p(1), format!("m{}", stage + 1));
            }
            k.bra(format!("m{stage}"));
        }
        // m_k: shared tail — reached from a_k *and* from a_{k-1}'s
        // overflow edge.
        "m" => {
            k.ffma(r(5), r(5), 0.5f32, wb(stage));
            k.fadd(r(5), r(5), wb(stage));
            k.fmul(r(5), r(5), 0.9375f32);
            let next = if stage + 1 == STAGES {
                "done".to_string()
            } else {
                format!("t{}", stage + 1)
            };
            k.bra(next);
        }
        _ => unreachable!("unknown block"),
    }
}

fn emit_entry(k: &mut KernelBuilder) {
    emit_gtid(k, r(0));
    // x = gtid·STEP ; y = 2^x ; m = mantissa bits ; c = y
    k.i2f(r(3), r(0));
    k.fmul(r(3), r(3), STEP);
    k.ex2(r(4), r(3));
    k.and_(r(2), r(4), 0xffffi32);
    k.mov(r(5), r(4));
}

fn emit_done(k: &mut KernelBuilder) {
    k.shl(r(8), r(0), 2i32);
    k.iadd(r(8), Operand::Param(P_OUT), r(8));
    k.st(r(8), 0, r(5));
    k.exit();
}

fn program(frontier_ordered: bool) -> Program {
    let mut k = KernelBuilder::new(if frontier_ordered { "tmd2" } else { "tmd1" });
    emit_entry(&mut k);
    if frontier_ordered {
        // Natural order: t0 a0 m0 t1 … done.
        for stage in 0..STAGES {
            for block in ["t", "a", "m"] {
                k.label(format!("{block}{stage}"));
                emit_block(&mut k, block, stage);
            }
        }
        k.label("done");
        emit_done(&mut k);
    } else {
        // Reversed order: done first, stages descending — every
        // reconvergence point lies below its divergence points.
        k.bra("t0");
        k.label("done");
        emit_done(&mut k);
        for stage in (0..STAGES).rev() {
            for block in ["m", "a", "t"] {
                k.label(format!("{block}{stage}"));
                emit_block(&mut k, block, stage);
            }
        }
    }
    k.build().expect("tmd assembles")
}

/// Host mirror: a little state machine over the same blocks, with identical
/// f32 operation order → bit-exact results.
fn host_tmd(gtid: u32) -> f32 {
    let x = gtid as f32 * STEP;
    let y = x.exp2();
    let m = y.to_bits() & 0xffff;
    let mut c = y;
    let mut stage = 0usize;
    #[derive(Clone, Copy, PartialEq)]
    enum Block {
        T,
        A,
        M,
    }
    let mut block = Block::T;
    while stage < STAGES {
        match block {
            Block::T => {
                if (m >> stage) & 1 == 0 {
                    stage += 1;
                    block = Block::T;
                } else {
                    block = Block::A;
                }
            }
            Block::A => {
                c = c.mul_add(0.75, wa(stage));
                let mut t7 = c * c;
                c += wa(stage) * 0.5;
                t7 -= c;
                let _ = t7;
                if stage + 1 < STAGES && c > THRESH {
                    stage += 1; // unstructured: skip t_{stage+1}
                }
                block = Block::M;
            }
            Block::M => {
                c = c.mul_add(0.5, wb(stage));
                c += wb(stage);
                c *= 0.9375;
                stage += 1;
                block = Block::T;
            }
        }
    }
    c
}

fn prepare(frontier_ordered: bool, scale: Scale) -> Prepared {
    let threads: u32 = match scale {
        Scale::Test => 1024,
        Scale::Bench => 16384,
    };
    let expected: Vec<f32> = (0..threads).map(host_tmd).collect();
    let pout = region(0);
    let launch = Launch::new(program(frontier_ordered), threads / 256, 256).with_params(vec![pout]);
    Prepared {
        launches: vec![launch],
        inputs: vec![],
        verify: Box::new(move |mem| {
            let out = mem.read_f32s(pout, threads as usize);
            for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                if got != want {
                    return Err(format!("arg {i}: {got} expected {want}"));
                }
            }
            Ok(())
        }),
    }
}

impl Workload for Tmd2 {
    fn name(&self) -> &'static str {
        "TMD2"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        prepare(true, scale)
    }
}

impl Workload for Tmd1 {
    fn name(&self) -> &'static str {
        "TMD1"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        prepare(false, scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn layouts_differ_in_frontier_order() {
        assert!(program(true).is_frontier_ordered());
        assert!(!program(false).is_frontier_ordered());
    }

    #[test]
    fn stage_participation_is_data_dependent() {
        // Mantissa bits split threads roughly evenly per stage.
        let taken: usize = (0..256u32)
            .filter(|&t| (host_tmd(t).to_bits()) != host_tmd(0).to_bits())
            .count();
        assert!(taken > 64, "results should vary across threads: {taken}");
    }

    #[test]
    fn tmd2_verifies_on_baseline_and_sbi() {
        run_prepared(&SmConfig::baseline(), Tmd2.prepare(Scale::Test), true).unwrap();
        run_prepared(&SmConfig::sbi(), Tmd2.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn tmd1_verifies_on_baseline_and_sbi() {
        run_prepared(&SmConfig::baseline(), Tmd1.prepare(Scale::Test), true).unwrap();
        run_prepared(&SmConfig::sbi(), Tmd1.prepare(Scale::Test), true).unwrap();
    }
}
