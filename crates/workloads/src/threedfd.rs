//! 3DFD (CUDA SDK): 3-D finite-difference stencil — one thread per (x, y)
//! column sweeping z; uniform loop, boundary branch per plane; regular.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct ThreeDfd;

const P_IN: u8 = 0;
const P_OUT: u8 = 1;

/// 7-point stencil over an `nx × ny × nz` volume; `nx` a power of two.
fn program(nx: u32, ny: u32, nz: u32) -> Program {
    let plane4 = (nx * ny * 4) as i32;
    let mut k = KernelBuilder::new("threedfd");
    emit_gtid(&mut k, r(0));
    k.and_(r(1), r(0), (nx - 1) as i32); // x
    k.shr(r(2), r(0), nx.trailing_zeros() as i32); // y
                                                   // interior(x, y) via the sign trick
    k.iadd(r(3), r(1), -1i32);
    k.isub(r(4), (nx - 2) as i32, r(1));
    k.or_(r(3), r(3), r(4));
    k.iadd(r(4), r(2), -1i32);
    k.or_(r(3), r(3), r(4));
    k.isub(r(4), (ny - 2) as i32, r(2));
    k.or_(r(3), r(3), r(4));
    k.isetp(p(0), CmpOp::Ge, r(3), 0i32);
    // Column addresses at z = 1.
    k.shl(r(5), r(0), 2i32);
    k.iadd(r(6), Operand::Param(P_IN), r(5));
    k.iadd(r(6), r(6), plane4);
    k.iadd(r(7), Operand::Param(P_OUT), r(5));
    k.iadd(r(7), r(7), plane4);
    // Copy the z = 0 and z = nz−1 planes (all threads).
    k.ld(r(8), r(6), -plane4);
    k.st(r(7), -plane4, r(8));
    k.ld(r(8), r(6), ((nz - 2) * nx * ny * 4) as i32);
    k.st(r(7), ((nz - 2) * nx * ny * 4) as i32, r(8));
    // Sweep z = 1 .. nz−2.
    k.mov(r(9), nz as i32 - 2);
    k.label("zloop");
    k.ld(r(10), r(6), 0); // centre
    k.bra_ifn(p(0), "border");
    k.ld(r(11), r(6), -4);
    k.ld(r(12), r(6), 4);
    k.fadd(r(11), r(11), r(12));
    k.ld(r(12), r(6), -((nx * 4) as i32));
    k.ld(r(13), r(6), (nx * 4) as i32);
    k.fadd(r(12), r(12), r(13));
    k.ld(r(13), r(6), -plane4);
    k.ld(r(14), r(6), plane4);
    k.fadd(r(13), r(13), r(14));
    k.fadd(r(11), r(11), r(12));
    k.fadd(r(11), r(11), r(13));
    k.fmul(r(15), r(10), 0.25f32);
    k.ffma(r(15), r(11), 0.125f32, r(15));
    k.bra("store");
    k.label("border");
    k.mov(r(15), r(10));
    k.label("store");
    k.st(r(7), 0, r(15));
    k.iadd(r(6), r(6), plane4);
    k.iadd(r(7), r(7), plane4);
    k.iadd(r(9), r(9), -1i32);
    k.isetp(p(1), CmpOp::Gt, r(9), 0i32);
    k.bra_if(p(1), "zloop");
    k.exit();
    k.build().expect("threedfd assembles")
}

fn host_stencil(input: &[f32], nx: usize, ny: usize, nz: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; input.len()];
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                let border =
                    x == 0 || x == nx - 1 || y == 0 || y == ny - 1 || z == 0 || z == nz - 1;
                out[i] = if border {
                    input[i]
                } else {
                    let sx = input[i - 1] + input[i + 1];
                    let sy = input[i - nx] + input[i + nx];
                    let sz = input[i - nx * ny] + input[i + nx * ny];
                    let s = sx + sy + sz;
                    s.mul_add(0.125, input[i] * 0.25)
                };
            }
        }
    }
    out
}

impl Workload for ThreeDfd {
    fn name(&self) -> &'static str {
        "3DFD"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (nx, ny, nz): (u32, u32, u32) = match scale {
            Scale::Test => (32, 16, 8),
            Scale::Bench => (64, 32, 32),
        };
        let mut rng = Lcg(0x3dfd);
        let input: Vec<f32> = (0..nx * ny * nz).map(|_| rng.below(64) as f32).collect();
        let expected = host_stencil(&input, nx as usize, ny as usize, nz as usize);
        let (pin, pout) = (region(0), region(1));
        let launch =
            Launch::new(program(nx, ny, nz), nx * ny / 256, 256).with_params(vec![pin, pout]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pin, input.iter().map(|v| v.to_bits()).collect())],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pout, (nx * ny * nz) as usize);
                for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("cell {i}: {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_constant_volume_is_stationary() {
        // With c0 + 6·c1 = 0.25 + 0.75 = 1, a constant field is unchanged.
        let v = vec![8.0f32; 16 * 16 * 4];
        assert_eq!(host_stencil(&v, 16, 16, 4), v);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), ThreeDfd.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_warp64() {
        run_prepared(&SmConfig::warp64(), ThreeDfd.prepare(Scale::Test), true).unwrap();
    }
}
