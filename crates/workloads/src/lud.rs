//! LUD (Rodinia): batched in-place LU decomposition of 16×16 tiles in
//! shared memory — the active thread set shrinks triangularly with the
//! elimination step, a strongly tid-correlated imbalance pattern.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};

use crate::runner::{Prepared, Scale};
use crate::util::{assert_close, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Lud;

/// Matrix dimension per block.
const N: u32 = 16;
const P_A: u8 = 0;

fn program() -> Program {
    let mut k = KernelBuilder::new("lud");
    k.mov(r(0), SpecialReg::Tid);
    k.shr(r(1), r(0), 4i32); // i (row)
    k.and_(r(2), r(0), (N - 1) as i32); // j (col)
                                        // Load A[i][j] into shared[tid].
    k.mov(r(3), SpecialReg::CtaId);
    k.imad(r(4), r(3), (N * N) as i32, r(0));
    k.shl(r(4), r(4), 2i32);
    k.iadd(r(4), Operand::Param(P_A), r(4));
    k.ld(r(5), r(4), 0);
    k.shl(r(6), r(0), 2i32);
    k.st_shared(r(6), 0, r(5));
    k.bar();
    for kk in 0..(N - 1) as i32 {
        let div_done = format!("div{kk}");
        let upd_done = format!("upd{kk}");
        // L column: threads with i > kk && j == kk divide by the pivot
        // (nested divergent branches keep the uniform prologue minimal).
        k.isetp(p(0), CmpOp::Gt, r(1), kk);
        k.bra_ifn(p(0), div_done.clone());
        k.isetp(p(1), CmpOp::Eq, r(2), kk);
        k.bra_ifn(p(1), div_done.clone());
        k.ld_shared(r(9), r(6), 0); // A[i][kk]
                                    // pivot A[kk][kk] at (kk·16+kk)·4
        k.mov(r(10), (kk * 16 + kk) * 4);
        k.ld_shared(r(11), r(10), 0);
        k.rcp(r(11), r(11));
        k.fmul(r(9), r(9), r(11));
        k.st_shared(r(6), 0, r(9));
        k.label(div_done);
        k.bar();
        // Submatrix update: threads with i > kk && j > kk.
        k.bra_ifn(p(0), upd_done.clone());
        k.isetp(p(2), CmpOp::Gt, r(2), kk);
        k.bra_ifn(p(2), upd_done.clone());
        // l = A[i][kk], u = A[kk][j]
        k.imad(r(12), r(1), (N * 4) as i32, kk * 4);
        k.ld_shared(r(13), r(12), 0);
        k.imad(r(12), r(2), 4i32, kk * 16 * 4);
        k.ld_shared(r(14), r(12), 0);
        k.ld_shared(r(15), r(6), 0);
        k.fmul(r(13), r(13), r(14));
        k.fsub(r(15), r(15), r(13));
        k.st_shared(r(6), 0, r(15));
        k.label(upd_done);
        k.bar();
    }
    // Store the packed LU back.
    k.ld_shared(r(16), r(6), 0);
    k.st(r(4), 0, r(16));
    k.exit();
    k.build().expect("lud assembles")
}

/// Host mirror: in-place Doolittle with the kernel's operation order.
fn host_lud(a: &mut [f32]) {
    let n = N as usize;
    for kk in 0..n - 1 {
        let pivot = a[kk * n + kk];
        let rp = 1.0 / pivot;
        for i in kk + 1..n {
            a[i * n + kk] *= rp;
        }
        for i in kk + 1..n {
            for j in kk + 1..n {
                let l = a[i * n + kk];
                let u = a[kk * n + j];
                a[i * n + j] -= l * u;
            }
        }
    }
}

impl Workload for Lud {
    fn name(&self) -> &'static str {
        "LUD"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let blocks: u32 = match scale {
            Scale::Test => 8,
            Scale::Bench => 64,
        };
        let n = N as usize;
        let mut rng = Lcg(0x10d);
        let mut a: Vec<f32> = (0..blocks as usize * n * n)
            .map(|_| rng.unit_f32() - 0.5)
            .collect();
        // Diagonal dominance keeps the factorisation stable.
        for b in 0..blocks as usize {
            for i in 0..n {
                a[b * n * n + i * n + i] += 8.0;
            }
        }
        let mut expected = a.clone();
        for b in 0..blocks as usize {
            host_lud(&mut expected[b * n * n..(b + 1) * n * n]);
        }
        let pa = region(0);
        let launch = Launch::new(program(), blocks, 256).with_params(vec![pa]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pa, a.iter().map(|v| v.to_bits()).collect())],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pa, expected.len());
                assert_close(&out, &expected, 1e-3)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_lud_reconstructs() {
        // L·U must reproduce the original matrix.
        let n = N as usize;
        let mut rng = Lcg(3);
        let mut a: Vec<f32> = (0..n * n).map(|_| rng.unit_f32() - 0.5).collect();
        for i in 0..n {
            a[i * n + i] += 8.0;
        }
        let orig = a.clone();
        host_lud(&mut a);
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0f32;
                for t in 0..n {
                    let l = match t.cmp(&i) {
                        std::cmp::Ordering::Less => a[i * n + t],
                        std::cmp::Ordering::Equal => 1.0,
                        std::cmp::Ordering::Greater => 0.0,
                    };
                    let u = if t <= j { a[t * n + j] } else { 0.0 };
                    sum += l * u;
                }
                assert!(
                    (sum - orig[i * n + j]).abs() < 1e-3,
                    "A[{i}][{j}]: {sum} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Lud.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi() {
        run_prepared(&SmConfig::sbi(), Lud.prepare(Scale::Test), true).unwrap();
    }
}
