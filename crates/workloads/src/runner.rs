//! Executes prepared workloads on a configured SM (or a parallel multi-SM
//! machine) and verifies results.

use warpweave_core::{Launch, Machine, MachineStats, Sm, SmConfig, Stats};
use warpweave_mem::Memory;

/// Problem size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small inputs for unit/integration tests (sub-second in debug builds).
    Test,
    /// Benchmark inputs used by the figure harnesses.
    Bench,
}

/// Result-verification callback: inspects final global memory.
pub type Verifier = Box<dyn Fn(&Memory) -> Result<(), String> + Send + Sync>;

/// A fully-prepared workload run: kernels to launch in sequence, initial
/// memory contents and a verifier.
pub struct Prepared {
    /// Kernels launched back-to-back on the same memory (most workloads
    /// have one; BFS has one per frontier level, etc.).
    pub launches: Vec<Launch>,
    /// `(byte address, words)` pairs preloaded into global memory.
    pub inputs: Vec<(u32, Vec<u32>)>,
    /// Checks the final memory against the host reference.
    pub verify: Verifier,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("launches", &self.launches.len())
            .field("inputs", &self.inputs.len())
            .finish()
    }
}

/// Failures while running a workload.
#[derive(Debug)]
pub enum RunError {
    /// The simulator failed (deadlock or cycle budget).
    Sim(warpweave_core::SimError),
    /// Setup failed (invalid configuration or program).
    Setup(String),
    /// The result did not match the host reference.
    Verify(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::Setup(e) => write!(f, "setup failed: {e}"),
            RunError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Maximum cycles per launch before declaring failure.
pub const MAX_CYCLES_PER_LAUNCH: u64 = 200_000_000;

/// Runs a prepared workload under `cfg`; verifies when `verify` is set.
///
/// # Errors
/// See [`RunError`].
pub fn run_prepared(cfg: &SmConfig, prepared: Prepared, verify: bool) -> Result<Stats, RunError> {
    let mut mem = Memory::new();
    for (addr, words) in &prepared.inputs {
        mem.write_words(*addr, words);
    }
    let mut total = Stats::default();
    let n = prepared.launches.len();
    for (i, launch) in prepared.launches.into_iter().enumerate() {
        let mut sm = Sm::new(cfg.clone(), launch).map_err(RunError::Setup)?;
        sm.set_memory(mem);
        let stats = sm
            .run(MAX_CYCLES_PER_LAUNCH)
            .map_err(|e| RunError::Sim(e.with_launch(i, n)))?
            .clone();
        total.accumulate(&stats);
        mem = sm.into_memory();
    }
    if verify {
        (prepared.verify)(&mem).map_err(RunError::Verify)?;
    }
    Ok(total)
}

/// Runs a prepared workload on a parallel machine of `num_sms` SMs,
/// verifying the merged memory when `verify` is set. Results are
/// bit-identical for any host thread count; `num_sms = 1` reproduces
/// [`run_prepared`] exactly.
///
/// # Errors
/// See [`RunError`].
pub fn run_prepared_multi_sm(
    cfg: &SmConfig,
    num_sms: usize,
    prepared: Prepared,
    verify: bool,
) -> Result<MachineStats, RunError> {
    let mut mem = Memory::new();
    for (addr, words) in &prepared.inputs {
        mem.write_words(*addr, words);
    }
    let mut total = MachineStats::default();
    let n = prepared.launches.len();
    for (i, launch) in prepared.launches.into_iter().enumerate() {
        let mut machine = Machine::new(cfg.clone(), num_sms, launch).map_err(RunError::Setup)?;
        machine.set_memory(mem);
        let stats = machine
            .run(MAX_CYCLES_PER_LAUNCH)
            .map_err(|e| RunError::Sim(e.with_launch(i, n)))?
            .clone();
        total.accumulate(&stats);
        mem = machine.into_memory();
    }
    if verify {
        (prepared.verify)(&mem).map_err(RunError::Verify)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_isa::{r, KernelBuilder, Operand, SpecialReg};

    fn store_tid_program() -> warpweave_isa::Program {
        let mut k = KernelBuilder::new("store_tid");
        k.mov(r(0), SpecialReg::CtaId);
        k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
        k.shl(r(1), r(0), 2i32);
        k.iadd(r(1), Operand::Param(0), r(1));
        k.st(r(1), 0, r(0));
        k.exit();
        k.build().unwrap()
    }

    #[test]
    fn runs_and_verifies() {
        let base = crate::util::region(0);
        let prepared = Prepared {
            launches: vec![Launch::new(store_tid_program(), 2, 256).with_params(vec![base])],
            inputs: vec![],
            verify: Box::new(move |mem| {
                for i in 0..512u32 {
                    let v = mem.read_u32(base + 4 * i);
                    if v != i {
                        return Err(format!("slot {i} holds {v}"));
                    }
                }
                Ok(())
            }),
        };
        let stats = run_prepared(&SmConfig::baseline(), prepared, true).unwrap();
        assert!(stats.thread_instructions > 0);
    }

    #[test]
    fn verification_failure_reported() {
        let prepared = Prepared {
            launches: vec![
                Launch::new(store_tid_program(), 1, 256).with_params(vec![crate::util::region(0)])
            ],
            inputs: vec![],
            verify: Box::new(|_| Err("always fails".into())),
        };
        let err = run_prepared(&SmConfig::baseline(), prepared, true).unwrap_err();
        assert!(matches!(err, RunError::Verify(_)));
    }

    #[test]
    fn multi_sm_runner_verifies_and_matches_serial() {
        let base = crate::util::region(0);
        let make = || Prepared {
            launches: vec![Launch::new(store_tid_program(), 4, 256).with_params(vec![base])],
            inputs: vec![],
            verify: Box::new(move |mem| {
                for i in 0..1024u32 {
                    let v = mem.read_u32(base + 4 * i);
                    if v != i {
                        return Err(format!("slot {i} holds {v}"));
                    }
                }
                Ok(())
            }),
        };
        let serial = run_prepared(&SmConfig::baseline(), make(), true).unwrap();
        let single = run_prepared_multi_sm(&SmConfig::baseline(), 1, make(), true).unwrap();
        assert_eq!(
            single.total, serial,
            "1-SM machine must reproduce the serial runner"
        );
        let quad = run_prepared_multi_sm(&SmConfig::baseline(), 4, make(), true).unwrap();
        assert_eq!(quad.per_sm.len(), 4);
        assert!(
            quad.total.cycles <= serial.cycles,
            "sharding cannot lengthen the makespan"
        );
    }

    #[test]
    fn exhausted_budget_reports_kernel_and_launch() {
        use warpweave_core::SimError;
        // A 2-block launch cannot finish in 3 cycles; the error must name
        // the kernel and carry progress provenance, and the runner-style
        // `with_launch` attachment must render in the message.
        let launch =
            Launch::new(store_tid_program(), 2, 256).with_params(vec![crate::util::region(0)]);
        let mut sm = Sm::new(SmConfig::baseline(), launch).unwrap();
        let err = sm.run(3).unwrap_err().with_launch(1, 4);
        match &err {
            SimError::CyclesExhausted {
                budget,
                cycle,
                kernel,
                launch,
                ..
            } => {
                assert_eq!(*budget, 3);
                assert!(*cycle >= 3);
                assert_eq!(kernel, "store_tid");
                assert_eq!(*launch, Some((1, 4)));
            }
            other => panic!("expected CyclesExhausted, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("store_tid"), "{msg}");
        assert!(msg.contains("launch 2/4"), "{msg}");
    }

    #[test]
    fn multi_launch_carries_memory() {
        // Launch 1 stores tids; launch 2 increments them.
        let base = crate::util::region(0);
        let mut k = KernelBuilder::new("incr");
        k.mov(r(0), SpecialReg::CtaId);
        k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
        k.shl(r(1), r(0), 2i32);
        k.iadd(r(1), Operand::Param(0), r(1));
        k.ld(r(2), r(1), 0);
        k.iadd(r(2), r(2), 100i32);
        k.st(r(1), 0, r(2));
        k.exit();
        let incr = k.build().unwrap();
        let prepared = Prepared {
            launches: vec![
                Launch::new(store_tid_program(), 1, 256).with_params(vec![base]),
                Launch::new(incr, 1, 256).with_params(vec![base]),
            ],
            inputs: vec![],
            verify: Box::new(move |mem| {
                for i in 0..256u32 {
                    if mem.read_u32(base + 4 * i) != i + 100 {
                        return Err(format!("slot {i}"));
                    }
                }
                Ok(())
            }),
        };
        run_prepared(&SmConfig::sbi(), prepared, true).unwrap();
    }
}
