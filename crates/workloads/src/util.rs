//! Shared helpers for workload kernels: address-space layout, common
//! assembler idioms and a deterministic input generator.

use warpweave_isa::{r, KernelBuilder, Operand, Reg, SpecialReg};

/// Byte address of data region `i` (regions are 4 MiB apart — workloads
/// place each array in its own region so layouts can never overlap).
pub const fn region(i: u32) -> u32 {
    0x0040_0000 * (i + 1)
}

/// Emits `dst = ctaid * ntid + tid` (the global thread index).
pub fn emit_gtid(k: &mut KernelBuilder, dst: Reg) {
    k.mov(dst, SpecialReg::CtaId);
    k.imad(dst, dst, SpecialReg::NTid, SpecialReg::Tid);
}

/// Emits `dst = param[p] + (index << 2)` — the byte address of element
/// `index` of the array whose base is launch parameter `p`.
pub fn emit_elem_addr(k: &mut KernelBuilder, dst: Reg, p: u8, index: Reg) {
    k.shl(dst, index, 2i32);
    k.iadd(dst, Operand::Param(p), dst);
}

/// A tiny deterministic 32-bit LCG used both to generate inputs on the host
/// and (instruction-by-instruction) inside kernels, so results verify
/// exactly.
#[derive(Debug, Clone, Copy)]
pub struct Lcg(pub u32);

/// The LCG multiplier (Numerical Recipes).
pub const LCG_A: u32 = 1664525;
/// The LCG increment.
pub const LCG_C: u32 = 1013904223;

impl Lcg {
    /// Advances and returns the next state.
    #[allow(clippy::should_implement_trait)] // an RNG step, not an Iterator
    pub fn next(&mut self) -> u32 {
        self.0 = self.0.wrapping_mul(LCG_A).wrapping_add(LCG_C);
        self.0
    }

    /// Next value reduced to `0..bound`.
    pub fn below(&mut self, bound: u32) -> u32 {
        self.next() % bound.max(1)
    }

    /// Next value as an `f32` in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Emits one LCG step in-place on register `state`:
/// `state = state * LCG_A + LCG_C`.
pub fn emit_lcg_step(k: &mut KernelBuilder, state: Reg, tmp: Reg) {
    let _ = tmp;
    k.imad(state, state, LCG_A as i32, LCG_C as i32);
}

/// Compares two `f32` slices within a relative tolerance.
///
/// # Errors
/// Describes the first mismatching element.
pub fn assert_close(actual: &[f32], expected: &[f32], rel_tol: f32) -> Result<(), String> {
    if actual.len() != expected.len() {
        return Err(format!(
            "length mismatch: {} vs {}",
            actual.len(),
            expected.len()
        ));
    }
    for (i, (&a, &e)) in actual.iter().zip(expected).enumerate() {
        let scale = e.abs().max(1.0);
        if !(a - e).abs().le(&(rel_tol * scale)) {
            return Err(format!("element {i}: got {a}, expected {e}"));
        }
    }
    Ok(())
}

/// Shorthand register constructor re-exported for kernels.
pub use warpweave_isa::reg::p as pr;

/// Returns registers `r0..` as a convenience array.
pub fn regs<const N: usize>() -> [Reg; N] {
    std::array::from_fn(|i| r(i as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        for i in 0..16 {
            assert_eq!(region(i) % 128, 0);
            assert!(region(i + 1) - region(i) == 0x0040_0000);
        }
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg(42);
        let mut b = Lcg(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        assert!(Lcg(1).below(10) < 10);
        let u = Lcg(7).unit_f32();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn close_comparison() {
        assert!(assert_close(&[1.0, 2.0], &[1.0, 2.0 + 1e-6], 1e-4).is_ok());
        assert!(assert_close(&[1.0], &[1.1], 1e-4).is_err());
        assert!(assert_close(&[1.0], &[1.0, 2.0], 1e-4).is_err());
        // NaNs never pass.
        assert!(assert_close(&[f32::NAN], &[1.0], 1e-4).is_err());
    }
}
