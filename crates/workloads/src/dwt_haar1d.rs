//! DWTHaar1D (CUDA SDK): 1-D Haar wavelet decomposition in shared memory —
//! thread participation halves every level, producing tid-correlated
//! imbalance (but still regular per the paper's IPC split).

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};

use crate::runner::{Prepared, Scale};
use crate::util::{region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct DwtHaar1d;

/// Signal elements per block.
const CHUNK: u32 = 512;
const LEVELS: u32 = 9;
const P_IN: u8 = 0;
const P_OUT: u8 = 1;

fn program() -> Program {
    let mut k = KernelBuilder::new("dwt_haar1d");
    k.mov(r(0), SpecialReg::Tid);
    k.mov(r(1), SpecialReg::CtaId);
    // Global element index base = ctaid·512 + tid.
    k.imad(r(2), r(1), CHUNK as i32, r(0));
    k.shl(r(3), r(2), 2i32);
    k.iadd(r(4), Operand::Param(P_IN), r(3));
    k.ld(r(5), r(4), 0);
    k.ld(r(6), r(4), 256 * 4);
    k.shl(r(7), r(0), 2i32);
    k.st_shared(r(7), 0, r(5));
    k.st_shared(r(7), 256 * 4, r(6));
    k.bar();
    // Output base address for this block.
    k.iadd(r(8), Operand::Param(P_OUT), r(3));
    k.isub(r(8), r(8), r(7)); // block-start address
    for l in 0..LEVELS {
        let half = (CHUNK >> (l + 1)) as i32; // active threads this level
        let join1 = format!("jread{l}");
        let join2 = format!("jwrite{l}");
        k.isetp(p(0), CmpOp::Lt, r(0), half);
        // Read phase.
        k.bra_ifn(p(0), join1.clone());
        k.shl(r(9), r(0), 3i32); // 2·tid·4
        k.ld_shared(r(10), r(9), 0);
        k.ld_shared(r(11), r(9), 4);
        k.fadd(r(12), r(10), r(11));
        k.fmul(r(12), r(12), 0.5f32); // approx
        k.fsub(r(13), r(10), r(11));
        k.fmul(r(13), r(13), 0.5f32); // detail
        k.label(join1);
        k.bar();
        // Write phase: approx back to shared, detail to out[half + tid].
        k.bra_ifn(p(0), join2.clone());
        k.st_shared(r(7), 0, r(12));
        k.iadd(r(14), r(0), half);
        k.shl(r(14), r(14), 2i32);
        k.iadd(r(14), r(8), r(14));
        k.st(r(14), 0, r(13));
        k.label(join2);
        k.bar();
    }
    // Thread 0 stores the final approximation coefficient.
    k.isetp(p(1), CmpOp::Eq, r(0), 0i32);
    k.bra_ifn(p(1), "done");
    k.ld_shared(r(15), r(7), 0);
    k.st(r(8), 0, r(15));
    k.label("done");
    k.exit();
    k.build().expect("dwt_haar1d assembles")
}

/// Host reference: per-chunk Haar DWT with the standard coefficient layout
/// (final approximation at 0, level-`l` details at `[chunk>>l+1 ..)`).
fn host_dwt(input: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; input.len()];
    for (c, chunk) in input.chunks(CHUNK as usize).enumerate() {
        let base = c * CHUNK as usize;
        let mut cur = chunk.to_vec();
        for l in 0..LEVELS {
            let half = (CHUNK >> (l + 1)) as usize;
            let mut next = vec![0.0f32; half];
            for t in 0..half {
                let (a, b) = (cur[2 * t], cur[2 * t + 1]);
                next[t] = (a + b) * 0.5;
                out[base + half + t] = (a - b) * 0.5;
            }
            cur = next;
        }
        out[base] = cur[0];
    }
    out
}

impl Workload for DwtHaar1d {
    fn name(&self) -> &'static str {
        "DWTHaar1D"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let blocks: u32 = match scale {
            Scale::Test => 4,
            Scale::Bench => 48,
        };
        let n = blocks * CHUNK;
        let mut rng = Lcg(0xd3a7);
        // Even integers: every Haar average/difference stays exact in f32.
        let input: Vec<f32> = (0..n).map(|_| (rng.below(512) * 2) as f32).collect();
        let expected = host_dwt(&input);
        let (pin, pout) = (region(0), region(1));
        let launch = Launch::new(program(), blocks, 256).with_params(vec![pin, pout]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pin, input.iter().map(|v| v.to_bits()).collect())],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pout, n as usize);
                for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("coef {i}: {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_dwt_constant_signal() {
        let sig = vec![8.0f32; CHUNK as usize];
        let out = host_dwt(&sig);
        assert_eq!(out[0], 8.0);
        assert!(out[1..].iter().all(|&d| d == 0.0));
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), DwtHaar1d.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi_swi() {
        run_prepared(&SmConfig::sbi_swi(), DwtHaar1d.prepare(Scale::Test), true).unwrap();
    }
}
