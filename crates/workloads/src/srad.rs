//! SRAD (Rodinia): speckle-reducing anisotropic diffusion — two stencil
//! kernels per iteration; the diffusion-coefficient clamp is a
//! data-dependent branch, making the workload irregular.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{assert_close, emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Srad;

const Q0_SQ: f32 = 0.25; // homogeneity parameter q0²
const LAMBDA: f32 = 0.125;
const P_J: u8 = 0;
const P_C: u8 = 1;
const P_OUT: u8 = 2;

/// Emits `dst = J[clamped neighbour] − c` where the neighbour index is the
/// current cell shifted by `(dx, dy)` with edge clamping (no divergence).
#[allow(clippy::too_many_arguments)]
fn emit_diff(
    k: &mut KernelBuilder,
    dst: warpweave_isa::Reg,
    x: warpweave_isa::Reg,
    y: warpweave_isa::Reg,
    centre: warpweave_isa::Reg,
    dx: i32,
    dy: i32,
    w: u32,
) {
    // nx = clamp(x+dx, 0, w-1); ny = clamp(y+dy, 0, h-1) — h clamp handled
    // by caller passing pre-clamped y range (we clamp both here).
    k.iadd(r(20), x, dx);
    k.imax(r(20), r(20), 0i32);
    k.imin(r(20), r(20), (w - 1) as i32);
    k.iadd(r(21), y, dy);
    k.imax(r(21), r(21), 0i32);
    // caller clamps ny upper bound via h-1 constant placed in r(25)
    k.imin(r(21), r(21), r(25));
    k.imad(r(22), r(21), w as i32, r(20));
    k.shl(r(22), r(22), 2i32);
    k.iadd(r(22), Operand::Param(P_J), r(22));
    k.ld(dst, r(22), 0);
    k.fsub(dst, dst, centre);
}

/// Kernel 1: diffusion coefficient c(x,y) with data-dependent clamping.
fn program_coeff(w: u32, h: u32) -> Program {
    let mut k = KernelBuilder::new("srad_coeff");
    emit_gtid(&mut k, r(0));
    k.and_(r(1), r(0), (w - 1) as i32); // x
    k.shr(r(2), r(0), w.trailing_zeros() as i32); // y
    k.mov(r(25), (h - 1) as i32);
    k.shl(r(3), r(0), 2i32);
    k.iadd(r(4), Operand::Param(P_J), r(3));
    k.ld(r(5), r(4), 0); // centre
    emit_diff(&mut k, r(6), r(1), r(2), r(5), 0, -1, w); // dN
    emit_diff(&mut k, r(7), r(1), r(2), r(5), 0, 1, w); // dS
    emit_diff(&mut k, r(8), r(1), r(2), r(5), -1, 0, w); // dW
    emit_diff(&mut k, r(9), r(1), r(2), r(5), 1, 0, w); // dE
                                                        // G2 = (dN²+dS²+dW²+dE²) / c², L = (dN+dS+dW+dE) / c
    k.fmul(r(10), r(6), r(6));
    k.ffma(r(10), r(7), r(7), r(10));
    k.ffma(r(10), r(8), r(8), r(10));
    k.ffma(r(10), r(9), r(9), r(10));
    k.fmul(r(11), r(5), r(5));
    k.rcp(r(11), r(11));
    k.fmul(r(10), r(10), r(11)); // G2
    k.fadd(r(12), r(6), r(7));
    k.fadd(r(12), r(12), r(8));
    k.fadd(r(12), r(12), r(9));
    k.rcp(r(13), r(5));
    k.fmul(r(12), r(12), r(13)); // L
                                 // q² = (G2/2 − L²/16) / (1 + L/4)²
    k.fmul(r(14), r(12), r(12));
    k.fmul(r(14), r(14), 0.0625f32);
    k.fmul(r(15), r(10), 0.5f32);
    k.fsub(r(15), r(15), r(14));
    k.ffma(r(16), r(12), 0.25f32, 1.0f32);
    k.fmul(r(16), r(16), r(16));
    k.rcp(r(16), r(16));
    k.fmul(r(15), r(15), r(16)); // q²
                                 // c = 1 / (1 + (q² − q0²)/(q0²(1+q0²)))
    k.fsub(r(17), r(15), Q0_SQ);
    k.fmul(r(17), r(17), 1.0 / (Q0_SQ * (1.0 + Q0_SQ)));
    k.fadd(r(17), r(17), 1.0f32);
    k.rcp(r(17), r(17));
    // Data-dependent clamp — divergent branches.
    k.fsetp(p(0), CmpOp::Lt, r(17), 0.0f32);
    k.bra_ifn(p(0), "not_low");
    k.mov(r(17), 0.0f32);
    k.bra("clamped");
    k.label("not_low");
    k.fsetp(p(1), CmpOp::Gt, r(17), 1.0f32);
    k.bra_ifn(p(1), "clamped");
    k.mov(r(17), 1.0f32);
    k.label("clamped");
    k.iadd(r(18), Operand::Param(P_C), r(3));
    k.st(r(18), 0, r(17));
    k.exit();
    k.build().expect("srad_coeff assembles")
}

/// Kernel 2: J += λ/4 · (cC·(dN + dW) + cS·dS + cE·dE).
fn program_update(w: u32, h: u32) -> Program {
    let mut k = KernelBuilder::new("srad_update");
    emit_gtid(&mut k, r(0));
    k.and_(r(1), r(0), (w - 1) as i32);
    k.shr(r(2), r(0), w.trailing_zeros() as i32);
    k.mov(r(25), (h - 1) as i32);
    k.shl(r(3), r(0), 2i32);
    k.iadd(r(4), Operand::Param(P_J), r(3));
    k.ld(r(5), r(4), 0);
    emit_diff(&mut k, r(6), r(1), r(2), r(5), 0, -1, w); // dN
    emit_diff(&mut k, r(7), r(1), r(2), r(5), 0, 1, w); // dS
    emit_diff(&mut k, r(8), r(1), r(2), r(5), -1, 0, w); // dW
    emit_diff(&mut k, r(9), r(1), r(2), r(5), 1, 0, w); // dE
                                                        // cC, cS (south neighbour, clamped), cE (east neighbour, clamped)
    k.iadd(r(10), Operand::Param(P_C), r(3));
    k.ld(r(10), r(10), 0); // cC
    k.iadd(r(11), r(2), 1i32);
    k.imin(r(11), r(11), r(25));
    k.imad(r(11), r(11), w as i32, r(1));
    k.shl(r(11), r(11), 2i32);
    k.iadd(r(11), Operand::Param(P_C), r(11));
    k.ld(r(11), r(11), 0); // cS
    k.iadd(r(12), r(1), 1i32);
    k.imin(r(12), r(12), (w - 1) as i32);
    k.imad(r(12), r(2), w as i32, r(12));
    k.shl(r(12), r(12), 2i32);
    k.iadd(r(12), Operand::Param(P_C), r(12));
    k.ld(r(12), r(12), 0); // cE
                           // div = cC·(dN + dW) + cS·dS + cE·dE
    k.fadd(r(13), r(6), r(8));
    k.fmul(r(13), r(13), r(10));
    k.ffma(r(13), r(11), r(7), r(13));
    k.ffma(r(13), r(12), r(9), r(13));
    // J' = J + λ/4 · div
    k.ffma(r(14), r(13), LAMBDA * 0.25, r(5));
    k.iadd(r(15), Operand::Param(P_OUT), r(3));
    k.st(r(15), 0, r(14));
    k.exit();
    k.build().expect("srad_update assembles")
}

/// Host mirror of both kernels.
fn host_srad(j: &[f32], w: usize, h: usize) -> Vec<f32> {
    let clampi = |v: i32, hi: i32| v.clamp(0, hi) as usize;
    let diff = |j: &[f32], x: usize, y: usize, dx: i32, dy: i32| {
        let nx = clampi(x as i32 + dx, w as i32 - 1);
        let ny = clampi(y as i32 + dy, h as i32 - 1);
        j[ny * w + nx] - j[y * w + x]
    };
    let mut c = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let centre = j[y * w + x];
            let dn = diff(j, x, y, 0, -1);
            let ds = diff(j, x, y, 0, 1);
            let dw = diff(j, x, y, -1, 0);
            let de = diff(j, x, y, 1, 0);
            let g2 =
                de.mul_add(de, dw.mul_add(dw, ds.mul_add(ds, dn * dn))) * (1.0 / (centre * centre));
            let l = (((dn + ds) + dw) + de) * (1.0 / centre);
            let q2 = (g2 * 0.5 - (l * l) * 0.0625) * {
                let d = l.mul_add(0.25, 1.0);
                1.0 / (d * d)
            };
            let mut cc = 1.0 / ((q2 - Q0_SQ) * (1.0 / (Q0_SQ * (1.0 + Q0_SQ))) + 1.0);
            // Mirrors the kernel's two-branch clamp exactly (not f32::clamp,
            // whose NaN semantics differ).
            #[allow(clippy::manual_clamp)]
            if cc < 0.0 {
                cc = 0.0;
            } else if cc > 1.0 {
                cc = 1.0;
            }
            c[y * w + x] = cc;
        }
    }
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            let dn = diff(j, x, y, 0, -1);
            let ds = diff(j, x, y, 0, 1);
            let dw = diff(j, x, y, -1, 0);
            let de = diff(j, x, y, 1, 0);
            let cs = c[clampi(y as i32 + 1, h as i32 - 1) * w + x];
            let ce = c[y * w + clampi(x as i32 + 1, w as i32 - 1)];
            let div = ce.mul_add(de, cs.mul_add(ds, (dn + dw) * c[i]));
            out[i] = div.mul_add(LAMBDA * 0.25, j[i]);
        }
    }
    out
}

impl Workload for Srad {
    fn name(&self) -> &'static str {
        "SRAD"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (w, h): (u32, u32) = match scale {
            Scale::Test => (32, 32),
            Scale::Bench => (256, 128),
        };
        let mut rng = Lcg(0x54ad);
        let j: Vec<f32> = (0..w * h).map(|_| 1.0 + 4.0 * rng.unit_f32()).collect();
        let expected = host_srad(&j, w as usize, h as usize);
        let (pj, pc, pout) = (region(0), region(1), region(2));
        let blocks = w * h / 256;
        let launches = vec![
            Launch::new(program_coeff(w, h), blocks, 256).with_params(vec![pj, pc, pout]),
            Launch::new(program_update(w, h), blocks, 256).with_params(vec![pj, pc, pout]),
        ];
        Prepared {
            launches,
            inputs: vec![(pj, j.iter().map(|v| v.to_bits()).collect())],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pout, (w * h) as usize);
                assert_close(&out, &expected, 5e-3)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_uniform_image_is_stationary() {
        // Zero gradients → q² = 0 → c clamps; divergence term is 0 anyway.
        let j = vec![2.0f32; 16 * 16];
        let out = host_srad(&j, 16, 16);
        for (a, b) in out.iter().zip(&j) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Srad.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi_swi() {
        run_prepared(&SmConfig::sbi_swi(), Srad.prepare(Scale::Test), true).unwrap();
    }
}
