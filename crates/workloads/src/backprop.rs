//! Backprop (Rodinia): neural-network layer forward pass over a batch of
//! input vectors — per-neuron dot products with weight reuse across the
//! batch, plus an SFU sigmoid; regular, uniform trip counts, coalesced
//! weight accesses.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Backprop;

/// Input vectors processed per kernel (each weight is loaded once and used
/// `BATCH` times — the arithmetic intensity of a real batched layer).
const BATCH: usize = 8;
const P_IN: u8 = 0;
const P_W: u8 = 1;
const P_OUT: u8 = 2;
const LOG2E: f32 = std::f32::consts::LOG2_E;

/// `out[b][j] = sigmoid(Σᵢ in[b][i] · w[i·n_out + j])` — weights stored
/// input-major so consecutive threads read consecutive words.
fn program(n_in: u32, n_out: u32) -> Program {
    let mut k = KernelBuilder::new("backprop");
    emit_gtid(&mut k, r(0)); // j
    for b in 0..BATCH {
        k.mov(r(10 + b as u8), 0.0f32); // acc[b]
    }
    k.mov(r(2), Operand::Param(P_IN)); // &in[0][0]
    k.shl(r(3), r(0), 2i32);
    k.iadd(r(3), Operand::Param(P_W), r(3)); // &w[0][j]
    k.mov(r(4), n_in as i32);
    k.label("dot");
    k.ld(r(5), r(3), 0); // w[i][j]
    for b in 0..BATCH {
        k.ld(r(6), r(2), (b as u32 * n_in * 4) as i32); // in[b][i] (broadcast)
        k.ffma(r(10 + b as u8), r(6), r(5), r(10 + b as u8));
    }
    k.iadd(r(2), r(2), 4i32);
    k.iadd(r(3), r(3), (n_out * 4) as i32);
    k.iadd(r(4), r(4), -1i32);
    k.isetp(p(0), CmpOp::Gt, r(4), 0i32);
    k.bra_if(p(0), "dot");
    // sigmoid(acc) = 1 / (1 + 2^(−acc·log2 e)) ; out[b][j]
    k.shl(r(8), r(0), 2i32);
    k.iadd(r(8), Operand::Param(P_OUT), r(8));
    for b in 0..BATCH {
        k.fmul(r(7), r(10 + b as u8), -LOG2E);
        k.ex2(r(7), r(7));
        k.fadd(r(7), r(7), 1.0f32);
        k.rcp(r(7), r(7));
        k.st(r(8), (b as u32 * n_out * 4) as i32, r(7));
    }
    k.exit();
    k.build().expect("backprop assembles")
}

fn host_forward(input: &[f32], w: &[f32], n_in: usize, n_out: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; BATCH * n_out];
    for b in 0..BATCH {
        for j in 0..n_out {
            let mut acc = 0.0f32;
            for i in 0..n_in {
                acc = input[b * n_in + i].mul_add(w[i * n_out + j], acc);
            }
            out[b * n_out + j] = 1.0 / ((-acc * LOG2E).exp2() + 1.0);
        }
    }
    out
}

impl Workload for Backprop {
    fn name(&self) -> &'static str {
        "Backprop"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (n_in, n_out): (u32, u32) = match scale {
            Scale::Test => (32, 1024),
            Scale::Bench => (96, 4096),
        };
        let mut rng = Lcg(0xbac);
        let input: Vec<f32> = (0..BATCH as u32 * n_in)
            .map(|_| rng.unit_f32() - 0.5)
            .collect();
        let w: Vec<f32> = (0..n_in * n_out).map(|_| rng.unit_f32() - 0.5).collect();
        let expected = host_forward(&input, &w, n_in as usize, n_out as usize);
        let (pin, pw, pout) = (region(0), region(1), region(2));
        let launch =
            Launch::new(program(n_in, n_out), n_out / 256, 256).with_params(vec![pin, pw, pout]);
        Prepared {
            launches: vec![launch],
            inputs: vec![
                (pin, input.iter().map(|v| v.to_bits()).collect()),
                (pw, w.iter().map(|v| v.to_bits()).collect()),
            ],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pout, BATCH * n_out as usize);
                crate::util::assert_close(&out, &expected, 1e-3)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_sigmoid_range() {
        let n_in = 2;
        let n_out = 2;
        let input = vec![0.5f32; BATCH * n_in];
        let w = vec![0.25f32; n_in * n_out];
        for v in host_forward(&input, &w, n_in, n_out) {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Backprop.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_swi() {
        run_prepared(&SmConfig::swi(), Backprop.prepare(Scale::Test), true).unwrap();
    }
}
