#![allow(clippy::excessive_precision)] // Abramowitz–Stegun constants kept verbatim
//! BlackScholes (CUDA SDK): European option pricing, branch-free
//! straight-line floating point with heavy SFU use — the archetypal regular
//! workload.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Program, Reg};

use crate::runner::{Prepared, Scale};
use crate::util::{assert_close, emit_elem_addr, emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct BlackScholes;

const RISK_FREE: f32 = 0.02;
const VOLATILITY: f32 = 0.30;
const LN2: f32 = std::f32::consts::LN_2;
const LOG2E: f32 = std::f32::consts::LOG2_E;
const INV_SQRT_2PI: f32 = 0.398_942_3;

const P_S: u8 = 0;
const P_X: u8 = 1;
const P_T: u8 = 2;
const P_CALL: u8 = 3;
const P_PUT: u8 = 4;

/// Emits the cumulative normal distribution (Abramowitz–Stegun polynomial)
/// of `d` into `out`, clobbering `t0..t3` and predicate 0.
fn emit_cnd(k: &mut KernelBuilder, out: Reg, d: Reg, t0: Reg, t1: Reg, t2: Reg, t3: Reg) {
    // a = |d|
    k.fsub(t0, 0.0f32, d);
    k.fmax(t0, t0, d);
    // kk = 1 / (1 + 0.2316419 a)
    k.ffma(t1, t0, 0.231_641_9f32, 1.0f32);
    k.rcp(t1, t1);
    // poly = kk (a1 + kk (a2 + kk (a3 + kk (a4 + kk a5))))
    k.fmul(t2, t1, 1.330_274_5_f32);
    k.fadd(t2, t2, -1.821_255_9_f32);
    k.fmul(t2, t2, t1);
    k.fadd(t2, t2, 1.781_477_9_f32);
    k.fmul(t2, t2, t1);
    k.fadd(t2, t2, -0.356_563_78_f32);
    k.fmul(t2, t2, t1);
    k.fadd(t2, t2, 0.319_381_54_f32);
    k.fmul(t2, t2, t1);
    // nd = inv_sqrt_2pi · 2^(−a²/2 · log2 e)
    k.fmul(t3, t0, t0);
    k.fmul(t3, t3, -0.5 * LOG2E);
    k.ex2(t3, t3);
    k.fmul(t3, t3, INV_SQRT_2PI);
    // w = nd · poly ; cnd = d < 0 ? w : 1 − w
    k.fmul(t2, t3, t2);
    k.fsub(t3, 1.0f32, t2);
    k.fsetp(p(0), CmpOp::Lt, d, 0.0f32);
    k.sel(out, p(0), t2, t3);
}

/// Host mirror of [`emit_cnd`] — same f32 operation order.
fn cnd_host(d: f32) -> f32 {
    let a = (-d).max(d);
    let kk = 1.0 / a.mul_add(0.231_641_9, 1.0);
    let mut poly = kk * 1.330_274_5;
    poly += -1.821_255_9;
    poly *= kk;
    poly += 1.781_477_9;
    poly *= kk;
    poly += -0.356_563_78;
    poly *= kk;
    poly += 0.319_381_54;
    poly *= kk;
    let nd = (a * a * (-0.5 * LOG2E)).exp2() * INV_SQRT_2PI;
    let w = nd * poly;
    if d < 0.0 {
        w
    } else {
        1.0 - w
    }
}

fn program() -> Program {
    let mut k = KernelBuilder::new("black_scholes");
    emit_gtid(&mut k, r(0));
    emit_elem_addr(&mut k, r(1), P_S, r(0));
    k.ld(r(2), r(1), 0); // S
    emit_elem_addr(&mut k, r(1), P_X, r(0));
    k.ld(r(3), r(1), 0); // X
    emit_elem_addr(&mut k, r(1), P_T, r(0));
    k.ld(r(4), r(1), 0); // T
                         // d1 = (ln(S/X) + (R + V²/2) T) / (V √T)
    k.rcp(r(5), r(3));
    k.fmul(r(5), r(2), r(5));
    k.lg2(r(5), r(5));
    k.fmul(r(5), r(5), LN2);
    k.ffma(r(5), r(4), RISK_FREE + 0.5 * VOLATILITY * VOLATILITY, r(5));
    k.sqrt(r(6), r(4));
    k.fmul(r(6), r(6), VOLATILITY); // V √T
    k.rcp(r(7), r(6));
    k.fmul(r(7), r(5), r(7)); // d1
    k.fsub(r(8), r(7), r(6)); // d2
    emit_cnd(&mut k, r(9), r(7), r(10), r(11), r(12), r(13));
    emit_cnd(&mut k, r(14), r(8), r(10), r(11), r(12), r(13));
    // e = X · 2^(−R·T·log2 e)
    k.fmul(r(15), r(4), -RISK_FREE * LOG2E);
    k.ex2(r(15), r(15));
    k.fmul(r(15), r(3), r(15));
    // call = S·cnd1 − e·cnd2 ; put = call − S + e
    k.fmul(r(16), r(2), r(9));
    k.fmul(r(17), r(15), r(14));
    k.fsub(r(16), r(16), r(17));
    emit_elem_addr(&mut k, r(1), P_CALL, r(0));
    k.st(r(1), 0, r(16));
    k.fsub(r(17), r(16), r(2));
    k.fadd(r(17), r(17), r(15));
    emit_elem_addr(&mut k, r(1), P_PUT, r(0));
    k.st(r(1), 0, r(17));
    k.exit();
    k.build().expect("black_scholes assembles")
}

fn host_price(s: f32, x: f32, t: f32) -> (f32, f32) {
    let d1 = (s / x)
        .ln()
        .mul_add(1.0, t * (RISK_FREE + 0.5 * VOLATILITY * VOLATILITY))
        / (VOLATILITY * t.sqrt());
    let d2 = d1 - VOLATILITY * t.sqrt();
    let e = x * (-RISK_FREE * t).exp();
    let call = s * cnd_host(d1) - e * cnd_host(d2);
    let put = call - s + e;
    (call, put)
}

impl Workload for BlackScholes {
    fn name(&self) -> &'static str {
        "BlackScholes"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let n: u32 = match scale {
            Scale::Test => 1024,
            Scale::Bench => 16384,
        };
        let mut rng = Lcg(0x5e_edb5);
        let s: Vec<f32> = (0..n).map(|_| 5.0 + 25.0 * rng.unit_f32()).collect();
        let x: Vec<f32> = (0..n).map(|_| 5.0 + 25.0 * rng.unit_f32()).collect();
        let t: Vec<f32> = (0..n).map(|_| 0.25 + 5.0 * rng.unit_f32()).collect();
        let expected: Vec<(f32, f32)> = s
            .iter()
            .zip(&x)
            .zip(&t)
            .map(|((&s, &x), &t)| host_price(s, x, t))
            .collect();
        let (a_s, a_x, a_t, a_call, a_put) =
            (region(0), region(1), region(2), region(3), region(4));
        let launch =
            Launch::new(program(), n / 256, 256).with_params(vec![a_s, a_x, a_t, a_call, a_put]);
        Prepared {
            launches: vec![launch],
            inputs: vec![
                (a_s, s.iter().map(|v| v.to_bits()).collect()),
                (a_x, x.iter().map(|v| v.to_bits()).collect()),
                (a_t, t.iter().map(|v| v.to_bits()).collect()),
            ],
            verify: Box::new(move |mem| {
                let calls = mem.read_f32s(a_call, n as usize);
                let puts = mem.read_f32s(a_put, n as usize);
                let ec: Vec<f32> = expected.iter().map(|&(c, _)| c).collect();
                let ep: Vec<f32> = expected.iter().map(|&(_, p)| p).collect();
                assert_close(&calls, &ec, 2e-2).map_err(|e| format!("call: {e}"))?;
                assert_close(&puts, &ep, 2e-2).map_err(|e| format!("put: {e}"))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn cnd_host_sane() {
        assert!((cnd_host(0.0) - 0.5).abs() < 1e-3);
        assert!(cnd_host(4.0) > 0.999);
        assert!(cnd_host(-4.0) < 0.001);
    }

    #[test]
    fn verifies_on_baseline() {
        let w = BlackScholes;
        run_prepared(&SmConfig::baseline(), w.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi_swi() {
        let w = BlackScholes;
        run_prepared(&SmConfig::sbi_swi(), w.prepare(Scale::Test), true).unwrap();
    }
}
