//! MonteCarlo (CUDA SDK): per-thread pseudo-random sampling (π estimation
//! variant) — uniform loop trip counts, SFU square roots, predicated
//! accumulation; regular.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_elem_addr, emit_gtid, emit_lcg_step, region, LCG_A, LCG_C};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct MonteCarlo;

const P_OUT: u8 = 0;
const SEED_MIX: u32 = 0x9e37_79b9;
const INV_2_24: f32 = 1.0 / (1 << 24) as f32;

fn program(samples: u32) -> Program {
    let mut k = KernelBuilder::new("monte_carlo");
    emit_gtid(&mut k, r(0));
    // state = gtid · SEED_MIX + 1
    k.imad(r(1), r(0), SEED_MIX as i32, 1i32);
    k.mov(r(2), 0i32); // hits
    k.mov(r(3), samples as i32); // remaining
    k.label("loop");
    emit_lcg_step(&mut k, r(1), r(10));
    k.shr(r(4), r(1), 8i32);
    k.i2f(r(4), r(4));
    k.fmul(r(4), r(4), INV_2_24); // x ∈ [0,1)
    emit_lcg_step(&mut k, r(1), r(10));
    k.shr(r(5), r(1), 8i32);
    k.i2f(r(5), r(5));
    k.fmul(r(5), r(5), INV_2_24); // y
    k.fmul(r(6), r(4), r(4));
    k.ffma(r(6), r(5), r(5), r(6)); // x² + y²
    k.sqrt(r(6), r(6)); // SFU exercise
    k.fsetp(p(0), CmpOp::Le, r(6), 1.0f32);
    k.guard_t(p(0)).iadd(r(2), r(2), 1i32);
    k.iadd(r(3), r(3), -1i32);
    k.isetp(p(1), CmpOp::Gt, r(3), 0i32);
    k.bra_if(p(1), "loop");
    emit_elem_addr(&mut k, r(7), P_OUT, r(0));
    k.st(r(7), 0, r(2));
    k.exit();
    k.build().expect("monte_carlo assembles")
}

/// Host mirror: identical integer LCG and f32 arithmetic → exact counts.
fn host_hits(gtid: u32, samples: u32) -> u32 {
    let mut state = gtid.wrapping_mul(SEED_MIX).wrapping_add(1);
    let mut step = || {
        state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
        state
    };
    let mut hits = 0;
    for _ in 0..samples {
        let x = (step() >> 8) as f32 * INV_2_24;
        let y = (step() >> 8) as f32 * INV_2_24;
        let d = y.mul_add(y, x * x).sqrt();
        if d <= 1.0 {
            hits += 1;
        }
    }
    hits
}

impl Workload for MonteCarlo {
    fn name(&self) -> &'static str {
        "MonteCarlo"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (threads, samples): (u32, u32) = match scale {
            Scale::Test => (1024, 16),
            Scale::Bench => (4096, 96),
        };
        let pout = region(0);
        let launch = Launch::new(program(samples), threads / 256, 256).with_params(vec![pout]);
        Prepared {
            launches: vec![launch],
            inputs: vec![],
            verify: Box::new(move |mem| {
                let out = mem.read_words(pout, threads as usize);
                let mut total = 0u64;
                for (i, &got) in out.iter().enumerate() {
                    let want = host_hits(i as u32, samples);
                    if got != want {
                        return Err(format!("thread {i}: {got} hits, expected {want}"));
                    }
                    total += got as u64;
                }
                // Sanity: the estimate should approximate π/4.
                let ratio = total as f64 / (threads as u64 * samples as u64) as f64;
                if (ratio - std::f64::consts::FRAC_PI_4).abs() > 0.05 {
                    return Err(format!("hit ratio {ratio:.3} far from π/4"));
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_hits_estimates_pi() {
        let total: u64 = (0..256).map(|t| host_hits(t, 64) as u64).sum();
        let ratio = total as f64 / (256.0 * 64.0);
        assert!((ratio - std::f64::consts::FRAC_PI_4).abs() < 0.05);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), MonteCarlo.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi() {
        run_prepared(&SmConfig::sbi(), MonteCarlo.prepare(Scale::Test), true).unwrap();
    }
}
