//! # warpweave-workloads
//!
//! The 21 benchmark kernels evaluated in *"Simultaneous Branch and Warp
//! Interweaving for Sustained GPU Performance"* (ISCA 2012, §5.1),
//! re-implemented in the warpweave ISA.
//!
//! The paper runs CUDA binaries from Rodinia, the NVIDIA CUDA SDK and two
//! Table Maker's Dilemma implementations under the Barra simulator. Those
//! binaries cannot run here, so each kernel is re-implemented from its
//! algorithm with the same *control-flow and memory-divergence structure*
//! (data-dependent trip counts, tid-correlated imbalance, boundary
//! conditionals, barrier placement, unstructured control flow for TMD) —
//! the properties SBI/SWI actually respond to. Every kernel computes a real
//! result that is verified against a host reference.
//!
//! Workloads are split per the paper: *regular* applications average ≥ 30
//! IPC with 64-wide warps; the rest are *irregular* (fig. 7).
//!
//! # Examples
//! ```
//! use warpweave_core::SmConfig;
//! use warpweave_workloads::{by_name, run_prepared, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = by_name("Histogram").expect("registered workload");
//! let prepared = w.prepare(Scale::Test);
//! let stats = run_prepared(&SmConfig::sbi_swi(), prepared, true)?;
//! println!("{}: {:.1} IPC", w.name(), stats.ipc());
//! # Ok(())
//! # }
//! ```

pub mod runner;
pub mod util;

mod backprop;
mod bfs;
mod binomial_options;
mod black_scholes;
mod convolution_separable;
mod dwt_haar1d;
mod eigenvalues;
mod fast_walsh;
mod histogram;
mod hotspot;
mod lud;
mod mandelbrot;
mod matrix_mul;
mod monte_carlo;
mod needleman_wunsch;
mod sorting_networks;
mod srad;
mod threedfd;
mod tmd;
mod transpose;

pub use runner::{run_prepared, run_prepared_multi_sm, Prepared, RunError, Scale, Verifier};

/// Workload class per the paper's fig. 7 split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Average IPC ≥ 30 with 64-wide warps (fig. 7a).
    Regular,
    /// Divergent / imbalanced applications (fig. 7b).
    Irregular,
}

/// A benchmark kernel: builds its launches, inputs and verifier.
pub trait Workload: Send + Sync {
    /// The paper's label for this benchmark.
    fn name(&self) -> &'static str;
    /// Regular or irregular (fig. 7 split).
    fn category(&self) -> Category;
    /// Builds the launch sequence, initial memory and verifier at `scale`.
    fn prepare(&self, scale: Scale) -> Prepared;
}

/// The regular applications of fig. 7a, in presentation order.
pub fn regular() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(threedfd::ThreeDfd),
        Box::new(backprop::Backprop),
        Box::new(binomial_options::BinomialOptions),
        Box::new(black_scholes::BlackScholes),
        Box::new(dwt_haar1d::DwtHaar1d),
        Box::new(fast_walsh::FastWalshTransform),
        Box::new(hotspot::Hotspot),
        Box::new(matrix_mul::MatrixMul),
        Box::new(monte_carlo::MonteCarlo),
        Box::new(transpose::Transpose),
    ]
}

/// The irregular applications of fig. 7b, in presentation order.
pub fn irregular() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(bfs::Bfs),
        Box::new(convolution_separable::ConvolutionSeparable),
        Box::new(eigenvalues::Eigenvalues),
        Box::new(histogram::Histogram),
        Box::new(lud::Lud),
        Box::new(mandelbrot::Mandelbrot),
        Box::new(needleman_wunsch::NeedlemanWunsch),
        Box::new(sorting_networks::SortingNetworks),
        Box::new(srad::Srad),
        Box::new(tmd::Tmd1),
        Box::new(tmd::Tmd2),
    ]
}

/// Every workload (regular then irregular).
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    let mut v = regular();
    v.extend(irregular());
    v
}

/// Looks a workload up by its paper label.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(regular().len(), 10);
        assert_eq!(irregular().len(), 11);
        assert_eq!(all_workloads().len(), 21);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let all = all_workloads();
        for w in &all {
            assert!(by_name(w.name()).is_some(), "{} not resolvable", w.name());
        }
        let mut names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21, "duplicate workload names");
    }

    #[test]
    fn categories_match_registry() {
        for w in regular() {
            assert_eq!(w.category(), Category::Regular, "{}", w.name());
        }
        for w in irregular() {
            assert_eq!(w.category(), Category::Irregular, "{}", w.name());
        }
    }
}
