//! BinomialOptions (CUDA SDK): binomial-lattice option pricing by backward
//! induction — triangular but *uniform across threads* loop nest, hence
//! regular; strided per-thread scratch keeps accesses coalesced.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_elem_addr, emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct BinomialOptions;

/// Lattice steps.
const STEPS: u32 = 16;
const U: f32 = 1.1;
const D: f32 = 1.0 / 1.1;
const PU: f32 = 0.55;
const PD: f32 = 0.45;
const DF: f32 = 0.995;

const P_S: u8 = 0;
const P_X: u8 = 1;
const P_OUT: u8 = 2;

fn program() -> Program {
    // Lattice row stride in shared memory: v[i] for thread t lives at
    // (i·256 + t)·4 — conflict-free banking, as in the SDK kernel.
    let stride4 = 256 * 4;
    let mut k = KernelBuilder::new("binomial");
    emit_gtid(&mut k, r(0));
    emit_elem_addr(&mut k, r(1), P_S, r(0));
    k.ld(r(2), r(1), 0); // S
    emit_elem_addr(&mut k, r(1), P_X, r(0));
    k.ld(r(3), r(1), 0); // X
                         // w = S · dⁿ
    k.mov(r(4), r(2));
    for _ in 0..STEPS {
        k.fmul(r(4), r(4), D);
    }
    // Leaf values v[i] = max(w − X, 0), w ·= u/d (lattice in shared).
    k.mov(r(5), warpweave_isa::SpecialReg::Tid);
    k.shl(r(5), r(5), 2i32); // &v[0][tid]
    k.mov(r(6), STEPS as i32 + 1); // leaves remaining
    k.label("leaves");
    k.fsub(r(7), r(4), r(3));
    k.fmax(r(7), r(7), 0.0f32);
    k.st_shared(r(5), 0, r(7));
    k.iadd(r(5), r(5), stride4);
    k.fmul(r(4), r(4), U / D);
    k.iadd(r(6), r(6), -1i32);
    k.isetp(p(0), CmpOp::Gt, r(6), 0i32);
    k.bra_if(p(0), "leaves");
    // Backward induction: for j = STEPS..1: for i in 0..j:
    //   v[i] = df·(pu·v[i+1] + pd·v[i])
    k.mov(r(8), STEPS as i32); // j
    k.label("outer");
    k.mov(r(5), warpweave_isa::SpecialReg::Tid);
    k.shl(r(5), r(5), 2i32);
    k.mov(r(9), r(8)); // i count
    k.label("inner");
    k.ld_shared(r(10), r(5), 0); // v[i]
    k.ld_shared(r(11), r(5), stride4); // v[i+1]
    k.fmul(r(12), r(11), PU);
    k.ffma(r(12), r(10), PD, r(12));
    k.fmul(r(12), r(12), DF);
    k.st_shared(r(5), 0, r(12));
    k.iadd(r(5), r(5), stride4);
    k.iadd(r(9), r(9), -1i32);
    k.isetp(p(1), CmpOp::Gt, r(9), 0i32);
    k.bra_if(p(1), "inner");
    k.iadd(r(8), r(8), -1i32);
    k.isetp(p(2), CmpOp::Gt, r(8), 0i32);
    k.bra_if(p(2), "outer");
    // Result = v[0].
    k.mov(r(5), warpweave_isa::SpecialReg::Tid);
    k.shl(r(5), r(5), 2i32);
    k.ld_shared(r(13), r(5), 0);
    emit_elem_addr(&mut k, r(14), P_OUT, r(0));
    k.st(r(14), 0, r(13));
    k.exit();
    k.build().expect("binomial assembles")
}

fn host_price(s: f32, x: f32) -> f32 {
    let mut w = s;
    for _ in 0..STEPS {
        w *= D;
    }
    let mut v: Vec<f32> = (0..=STEPS)
        .map(|_| {
            let leaf = (w - x).max(0.0);
            w *= U / D;
            leaf
        })
        .collect();
    for j in (1..=STEPS as usize).rev() {
        for i in 0..j {
            v[i] = (v[i + 1] * PU + v[i] * PD) * DF;
        }
    }
    v[0]
}

impl Workload for BinomialOptions {
    fn name(&self) -> &'static str {
        "BinomialOptions"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let n: u32 = match scale {
            Scale::Test => 1024,
            Scale::Bench => 4096,
        };
        let mut rng = Lcg(0xb10);
        let s: Vec<f32> = (0..n).map(|_| 10.0 + 20.0 * rng.unit_f32()).collect();
        let x: Vec<f32> = (0..n).map(|_| 10.0 + 20.0 * rng.unit_f32()).collect();
        let expected: Vec<f32> = s.iter().zip(&x).map(|(&s, &x)| host_price(s, x)).collect();
        let (ps, px, pout) = (region(0), region(1), region(2));
        let launch = Launch::new(program(), n / 256, 256).with_params(vec![ps, px, pout]);
        Prepared {
            launches: vec![launch],
            inputs: vec![
                (ps, s.iter().map(|v| v.to_bits()).collect()),
                (px, x.iter().map(|v| v.to_bits()).collect()),
            ],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pout, n as usize);
                crate::util::assert_close(&out, &expected, 1e-3)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_price_bounds() {
        // Deep in-the-money ≈ S − X discounted; worthless when X huge.
        assert!(host_price(100.0, 1.0) > 50.0);
        assert_eq!(host_price(1.0, 1000.0), 0.0);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(
            &SmConfig::baseline(),
            BinomialOptions.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }

    #[test]
    fn verifies_on_sbi() {
        run_prepared(&SmConfig::sbi(), BinomialOptions.prepare(Scale::Test), true).unwrap();
    }
}
