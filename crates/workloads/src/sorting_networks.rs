//! SortingNetworks (CUDA SDK): bitonic sort of 512 keys per block in shared
//! memory — compare-exchange direction depends on thread-ID bits and data,
//! giving patterned branch divergence across 45 barrier-separated passes.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};

use crate::runner::{Prepared, Scale};
use crate::util::{region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct SortingNetworks;

/// Keys per block (256 threads × 2).
const CHUNK: u32 = 512;
const P_DATA: u8 = 0;

fn program() -> Program {
    let mut k = KernelBuilder::new("bitonic_sort");
    k.mov(r(0), SpecialReg::Tid);
    k.mov(r(1), SpecialReg::CtaId);
    k.imad(r(2), r(1), CHUNK as i32, r(0));
    k.shl(r(3), r(2), 2i32);
    k.iadd(r(3), Operand::Param(P_DATA), r(3));
    k.ld(r(4), r(3), 0);
    k.ld(r(5), r(3), 256 * 4);
    k.shl(r(6), r(0), 2i32);
    k.st_shared(r(6), 0, r(4));
    k.st_shared(r(6), 256 * 4, r(5));
    k.bar();
    let mut pass = 0;
    let mut size = 2u32;
    while size <= CHUNK {
        let mut stride = size / 2;
        while stride >= 1 {
            let skip = format!("skip{pass}");
            // pos = 2·tid − (tid & (stride−1))
            k.shl(r(7), r(0), 1i32);
            k.and_(r(8), r(0), (stride - 1) as i32);
            k.isub(r(7), r(7), r(8));
            k.shl(r(7), r(7), 2i32);
            k.ld_shared(r(9), r(7), 0);
            k.ld_shared(r(10), r(7), (stride * 4) as i32);
            // ascending = (tid & size/2) == 0 → asc ∈ {0,1}
            k.and_(r(11), r(0), (size / 2) as i32);
            k.isetp(p(0), CmpOp::Eq, r(11), 0i32);
            k.sel(r(11), p(0), 1i32, 0i32);
            // gt = a > b
            k.isetp(p(1), CmpOp::Gt, r(9), r(10));
            k.sel(r(12), p(1), 1i32, 0i32);
            // swap iff gt == ascending (out of order for this direction)
            k.isetp(p(2), CmpOp::Eq, r(12), r(11));
            k.bra_ifn(p(2), skip.clone());
            k.st_shared(r(7), 0, r(10));
            k.st_shared(r(7), (stride * 4) as i32, r(9));
            k.label(skip);
            k.bar();
            stride /= 2;
            pass += 1;
        }
        size *= 2;
    }
    k.ld_shared(r(4), r(6), 0);
    k.ld_shared(r(5), r(6), 256 * 4);
    k.st(r(3), 0, r(4));
    k.st(r(3), 256 * 4, r(5));
    k.exit();
    k.build().expect("bitonic assembles")
}

impl Workload for SortingNetworks {
    fn name(&self) -> &'static str {
        "SortingNetworks"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let blocks: u32 = match scale {
            Scale::Test => 4,
            Scale::Bench => 32,
        };
        let n = blocks * CHUNK;
        let mut rng = Lcg(0x5047);
        // Keys below 2³⁰ keep signed comparisons equivalent to unsigned.
        let data: Vec<u32> = (0..n).map(|_| rng.below(1 << 30)).collect();
        let mut expected = data.clone();
        for chunk in expected.chunks_mut(CHUNK as usize) {
            chunk.sort_unstable();
        }
        let pdata = region(0);
        let launch = Launch::new(program(), blocks, 256).with_params(vec![pdata]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pdata, data)],
            verify: Box::new(move |mem| {
                let out = mem.read_words(pdata, n as usize);
                for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("key {i}: {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn verifies_on_baseline() {
        run_prepared(
            &SmConfig::baseline(),
            SortingNetworks.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }

    #[test]
    fn verifies_on_sbi_swi() {
        run_prepared(
            &SmConfig::sbi_swi(),
            SortingNetworks.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }
}
