//! MatrixMul (CUDA SDK): tiled shared-memory matrix multiply — regular
//! control flow, barrier-synchronised tiles, fully coalesced loads.

use warpweave_core::Launch;
use warpweave_isa::{r, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct MatrixMul;

const TILE: u32 = 16;
const P_A: u8 = 0;
const P_B: u8 = 1;
const P_C: u8 = 2;

/// Builds the kernel for square `n × n` matrices (n a power of two ≥ 16).
/// One 256-thread block computes one 16×16 tile of C.
fn program(n: u32) -> Program {
    assert!(n.is_power_of_two() && n >= TILE);
    let log_nbx = (n / TILE).trailing_zeros() as i32;
    let mut k = KernelBuilder::new("matrix_mul");
    // Tile coordinates from the 1-D block index.
    k.mov(r(0), warpweave_isa::SpecialReg::CtaId);
    k.shr(r(1), r(0), log_nbx); // by
    k.and_(r(2), r(0), ((n / TILE) - 1) as i32); // bx
    k.mov(r(3), warpweave_isa::SpecialReg::Tid);
    k.and_(r(4), r(3), (TILE - 1) as i32); // tx
    k.shr(r(5), r(3), 4i32); // ty
                             // row = by·16 + ty, col = bx·16 + tx
    k.imad(r(6), r(1), TILE as i32, r(5));
    k.imad(r(7), r(2), TILE as i32, r(4));
    // A-row base: pA + (row·n + tx)·4 ; per-tile offset kt·64 bytes.
    k.imul(r(8), r(6), n as i32);
    k.iadd(r(8), r(8), r(4));
    k.shl(r(8), r(8), 2i32);
    k.iadd(r(8), Operand::Param(P_A), r(8));
    // B base: pB + (ty·n + col)·4 ; per-tile offset kt·16·n·4 bytes.
    k.imul(r(9), r(5), n as i32);
    k.iadd(r(9), r(9), r(7));
    k.shl(r(9), r(9), 2i32);
    k.iadd(r(9), Operand::Param(P_B), r(9));
    // Shared addresses: sA at tid·4, sB at 1024 + tid·4.
    k.shl(r(10), r(3), 2i32);
    // Inner-product shared bases: sA row = ty·64, sB col = 1024 + tx·4.
    k.shl(r(11), r(5), 6i32);
    k.shl(r(12), r(4), 2i32);
    k.mov(r(13), 0i32); // acc
    for kt in 0..(n / TILE) {
        k.ld(r(14), r(8), (kt * TILE * 4) as i32);
        k.ld(r(15), r(9), (kt * TILE * n * 4) as i32);
        k.st_shared(r(10), 0, r(14));
        k.st_shared(r(10), 1024, r(15));
        k.bar();
        for i in 0..TILE {
            k.ld_shared(r(16), r(11), (i * 4) as i32);
            k.ld_shared(r(17), r(12), (1024 + i * TILE * 4) as i32);
            k.imad(r(13), r(16), r(17), r(13));
        }
        k.bar();
    }
    // C[row][col]
    k.imul(r(18), r(6), n as i32);
    k.iadd(r(18), r(18), r(7));
    k.shl(r(18), r(18), 2i32);
    k.iadd(r(18), Operand::Param(P_C), r(18));
    k.st(r(18), 0, r(13));
    k.exit();
    k.build().expect("matrix_mul assembles")
}

fn host_matmul(a: &[u32], b: &[u32], n: usize) -> Vec<u32> {
    let mut c = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u32;
            for kk in 0..n {
                acc = acc.wrapping_add(a[i * n + kk].wrapping_mul(b[kk * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
    c
}

impl Workload for MatrixMul {
    fn name(&self) -> &'static str {
        "MatrixMul"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let n: u32 = match scale {
            Scale::Test => 32,
            Scale::Bench => 128,
        };
        let mut rng = Lcg(0x3a7_1234);
        let a: Vec<u32> = (0..n * n).map(|_| rng.below(16)).collect();
        let b: Vec<u32> = (0..n * n).map(|_| rng.below(16)).collect();
        let expected = host_matmul(&a, &b, n as usize);
        let (pa, pb, pc) = (region(0), region(1), region(2));
        let blocks = (n / TILE) * (n / TILE);
        let launch = Launch::new(program(n), blocks, 256).with_params(vec![pa, pb, pc]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pa, a), (pb, b)],
            verify: Box::new(move |mem| {
                let c = mem.read_words(pc, (n * n) as usize);
                for (i, (&got, &want)) in c.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("C[{i}] = {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_matmul_identity() {
        // 16×16 identity times arbitrary equals itself.
        let n = 16;
        let mut eye = vec![0u32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1;
        }
        let mut rng = Lcg(5);
        let m: Vec<u32> = (0..n * n).map(|_| rng.below(100)).collect();
        assert_eq!(host_matmul(&eye, &m, n), m);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), MatrixMul.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_swi() {
        run_prepared(&SmConfig::swi(), MatrixMul.prepare(Scale::Test), true).unwrap();
    }
}
