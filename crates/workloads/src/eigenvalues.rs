//! Eigenvalues (CUDA SDK): bisection with Sturm-sequence counts for
//! symmetric tridiagonal matrices — each thread hunts a different eigenvalue
//! index, so bisection paths and convergence rates diverge within warps.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{assert_close, emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Eigenvalues;

/// Matrix dimension (eigenvalues per matrix).
const N: u32 = 32;
/// Bisection iteration cap.
const MAX_ITER: u32 = 40;
const EPS: f32 = 2e-4;

const P_D: u8 = 0; // diagonals, strided per matrix
const P_E2: u8 = 1; // squared off-diagonals
const P_OUT: u8 = 2;
const P_LO: u8 = 3; // Gershgorin lower bound (f32 bits)
const P_HI: u8 = 4;

fn program() -> Program {
    let mut k = KernelBuilder::new("eigenvalues");
    emit_gtid(&mut k, r(0));
    k.and_(r(1), r(0), (N - 1) as i32); // eigenvalue index kk
    k.shr(r(2), r(0), N.trailing_zeros() as i32); // matrix index
                                                  // Array bases for this matrix.
    k.imul(r(3), r(2), (N * 4) as i32);
    k.iadd(r(4), Operand::Param(P_D), r(3));
    k.iadd(r(5), Operand::Param(P_E2), r(3));
    k.mov(r(6), Operand::Param(P_LO)); // lo
    k.mov(r(7), Operand::Param(P_HI)); // hi
    k.mov(r(8), MAX_ITER as i32);
    k.label("bisect");
    // mid = 0.5 (lo + hi); stop when hi − lo ≤ eps·max(|mid|, 0.01) —
    // a *relative* tolerance, so eigenvalues of different magnitude
    // converge after different iteration counts (intra-warp divergence).
    k.fadd(r(9), r(6), r(7));
    k.fmul(r(9), r(9), 0.5f32);
    k.fsub(r(10), r(7), r(6));
    k.fsub(r(22), 0.0f32, r(9));
    k.fmax(r(22), r(22), r(9)); // |mid|
    k.fmax(r(22), r(22), 0.01f32);
    k.fmul(r(22), r(22), EPS);
    k.fsetp(p(0), CmpOp::Le, r(10), r(22));
    k.bra_if(p(0), "done");
    // Sturm count at mid: q = d[0] − mid; then q = d[i] − mid − e2[i]/q.
    k.mov(r(11), 0i32); // count
    k.ld(r(12), r(4), 0);
    k.fsub(r(12), r(12), r(9)); // q
    k.fsetp(p(1), CmpOp::Lt, r(12), 0.0f32);
    k.guard_t(p(1)).iadd(r(11), r(11), 1i32);
    k.mov(r(13), 1i32); // i
    k.mov(r(14), r(4));
    k.mov(r(15), r(5));
    k.label("sturm");
    k.iadd(r(14), r(14), 4i32);
    k.iadd(r(15), r(15), 4i32);
    // Guard against tiny pivots (data-dependent branch).
    k.fsub(r(16), 0.0f32, r(12));
    k.fmax(r(16), r(16), r(12)); // |q|
    k.fsetp(p(2), CmpOp::Ge, r(16), 1e-10f32);
    k.bra_if(p(2), "safe");
    k.mov(r(12), 1e-10f32);
    k.label("safe");
    k.ld(r(17), r(14), 0); // d[i]
    k.ld(r(18), r(15), 0); // e2[i]
    k.rcp(r(19), r(12));
    k.fmul(r(19), r(18), r(19));
    k.fsub(r(12), r(17), r(9));
    k.fsub(r(12), r(12), r(19));
    k.fsetp(p(3), CmpOp::Lt, r(12), 0.0f32);
    k.guard_t(p(3)).iadd(r(11), r(11), 1i32);
    // Early exit: the count only grows, so once it exceeds kk the
    // bisection decision is already pinned (data-dependent trip count).
    k.isetp(p(7), CmpOp::Gt, r(11), r(1));
    k.bra_if(p(7), "sturm_done");
    k.iadd(r(13), r(13), 1i32);
    k.isetp(p(4), CmpOp::Lt, r(13), N as i32);
    k.bra_if(p(4), "sturm");
    k.label("sturm_done");
    // count > kk → eigenvalue below mid: hi = mid, else lo = mid.
    k.isetp(p(5), CmpOp::Gt, r(11), r(1));
    k.sel(r(20), p(5), r(9), r(7));
    k.mov(r(7), r(20)); // hi
    k.sel(r(20), p(5), r(6), r(9));
    k.mov(r(6), r(20)); // lo
    k.iadd(r(8), r(8), -1i32);
    k.isetp(p(6), CmpOp::Gt, r(8), 0i32);
    k.bra_if(p(6), "bisect");
    k.label("done");
    k.shl(r(21), r(0), 2i32);
    k.iadd(r(21), Operand::Param(P_OUT), r(21));
    k.st(r(21), 0, r(9));
    k.exit();
    k.build().expect("eigenvalues assembles")
}

/// Host mirror of the kernel's bisection (same f32 operations).
fn host_eigen(d: &[f32], e2: &[f32], kk: usize, mut lo: f32, mut hi: f32) -> f32 {
    let mut mid;
    for _ in 0..MAX_ITER {
        mid = 0.5 * (lo + hi);
        let tol = EPS * (-mid).max(mid).max(0.01);
        if hi - lo <= tol {
            return mid;
        }
        let mut count = 0usize;
        let mut q = d[0] - mid;
        if q < 0.0 {
            count += 1;
        }
        for i in 1..d.len() {
            if count > kk {
                break;
            }
            let aq = (-q).max(q);
            if aq < 1e-10 {
                q = 1e-10;
            }
            q = (d[i] - mid) - e2[i] * (1.0 / q);
            if q < 0.0 {
                count += 1;
            }
        }
        if count > kk {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

impl Workload for Eigenvalues {
    fn name(&self) -> &'static str {
        "Eigenvalues"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let matrices: u32 = match scale {
            Scale::Test => 32,
            Scale::Bench => 96,
        };
        let threads = matrices * N;
        let mut rng = Lcg(0xe16);
        let d: Vec<f32> = (0..threads).map(|_| 4.0 * rng.unit_f32() - 2.0).collect();
        let mut e2: Vec<f32> = (0..threads).map(|_| rng.unit_f32() + 0.01).collect();
        for m in 0..matrices {
            e2[(m * N) as usize] = 0.0; // e[0] unused
        }
        // Global Gershgorin bounds across all matrices.
        let lo = -8.0f32;
        let hi = 8.0f32;
        let expected: Vec<f32> = (0..threads)
            .map(|t| {
                let m = (t / N) as usize;
                let kk = (t % N) as usize;
                let base = m * N as usize;
                host_eigen(
                    &d[base..base + N as usize],
                    &e2[base..base + N as usize],
                    kk,
                    lo,
                    hi,
                )
            })
            .collect();
        let (pd, pe2, pout) = (region(0), region(1), region(2));
        let launch = Launch::new(program(), threads / 256, 256).with_params(vec![
            pd,
            pe2,
            pout,
            lo.to_bits(),
            hi.to_bits(),
        ]);
        Prepared {
            launches: vec![launch],
            inputs: vec![
                (pd, d.iter().map(|v| v.to_bits()).collect()),
                (pe2, e2.iter().map(|v| v.to_bits()).collect()),
            ],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pout, threads as usize);
                assert_close(&out, &expected, 5e-3)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_eigen_diagonal_matrix() {
        // A diagonal matrix's eigenvalues are its (sorted) diagonal.
        let d = vec![-1.0f32, 0.5, 2.0, 3.0];
        let e2 = vec![0.0f32; 4];
        for (kk, want) in [-1.0f32, 0.5, 2.0, 3.0].iter().enumerate() {
            let got = host_eigen(&d, &e2, kk, -8.0, 8.0);
            assert!((got - want).abs() < 1e-3, "k={kk}: {got} vs {want}");
        }
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(
            &SmConfig::baseline(),
            Eigenvalues.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }

    #[test]
    fn verifies_on_sbi_swi() {
        run_prepared(&SmConfig::sbi_swi(), Eigenvalues.prepare(Scale::Test), true).unwrap();
    }
}
