//! Mandelbrot (CUDA SDK): per-pixel escape-time iteration — strongly
//! data-dependent trip counts, with a block barrier between the pixels each
//! thread processes. The paper observes exactly this barrier "prevents
//! warp-splits from running ahead across iterations" (§5.1), flattening the
//! differences between architectures.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_gtid, region};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Mandelbrot;

const X0: f32 = -2.2;
const Y0: f32 = -1.5;
const SPAN_X: f32 = 3.0;
const SPAN_Y: f32 = 3.0;
const P_OUT: u8 = 0;
const P_TOTAL: u8 = 1;

fn program(w: u32, max_iter: u32, pixels_per_thread: u32) -> Program {
    let mut k = KernelBuilder::new("mandelbrot");
    emit_gtid(&mut k, r(0));
    k.mov(r(1), r(0)); // pixel index
    k.mov(r(2), pixels_per_thread as i32);
    k.label("pixels");
    // c = (X0 + x·dx, Y0 + y·dy)
    k.and_(r(3), r(1), (w - 1) as i32);
    k.shr(r(4), r(1), w.trailing_zeros() as i32);
    k.i2f(r(3), r(3));
    k.i2f(r(4), r(4));
    k.ffma(r(3), r(3), SPAN_X / w as f32, X0); // cre
    k.ffma(r(4), r(4), SPAN_Y / w as f32, Y0); // cim
    k.mov(r(5), 0.0f32); // zr
    k.mov(r(6), 0.0f32); // zi
    k.mov(r(7), 0i32); // iter
    k.label("iter");
    k.fmul(r(8), r(5), r(5)); // zr²
    k.fmul(r(9), r(6), r(6)); // zi²
    k.fadd(r(10), r(8), r(9));
    k.fsetp(p(0), CmpOp::Gt, r(10), 4.0f32);
    k.bra_if(p(0), "escaped");
    k.fsub(r(8), r(8), r(9));
    k.fadd(r(8), r(8), r(3)); // zr' = zr²−zi²+cre
    k.fmul(r(9), r(5), r(6));
    k.fmul(r(9), r(9), 2.0f32);
    k.fadd(r(6), r(9), r(4)); // zi' = 2·zr·zi+cim
    k.mov(r(5), r(8));
    k.iadd(r(7), r(7), 1i32);
    k.isetp(p(1), CmpOp::Lt, r(7), max_iter as i32);
    k.bra_if(p(1), "iter");
    k.label("escaped");
    // out[pixel] = iter
    k.shl(r(11), r(1), 2i32);
    k.iadd(r(11), Operand::Param(P_OUT), r(11));
    k.st(r(11), 0, r(7));
    // Next pixel (grid stride); barrier between pixels, as in the SDK's
    // per-frame loop.
    k.iadd(r(1), r(1), Operand::Param(P_TOTAL));
    k.bar();
    k.iadd(r(2), r(2), -1i32);
    k.isetp(p(2), CmpOp::Gt, r(2), 0i32);
    k.bra_if(p(2), "pixels");
    k.exit();
    k.build().expect("mandelbrot assembles")
}

/// Host mirror: identical f32 operation order → exact iteration counts.
fn host_iters(pix: u32, w: u32, max_iter: u32) -> u32 {
    let x = (pix & (w - 1)) as f32;
    let y = (pix >> w.trailing_zeros()) as f32;
    let cre = x.mul_add(SPAN_X / w as f32, X0);
    let cim = y.mul_add(SPAN_Y / w as f32, Y0);
    let (mut zr, mut zi) = (0.0f32, 0.0f32);
    let mut iter = 0;
    loop {
        let zr2 = zr * zr;
        let zi2 = zi * zi;
        if zr2 + zi2 > 4.0 {
            return iter;
        }
        let nzr = (zr2 - zi2) + cre;
        zi = (zr * zi) * 2.0 + cim;
        zr = nzr;
        iter += 1;
        if iter >= max_iter {
            return iter;
        }
    }
}

impl Workload for Mandelbrot {
    fn name(&self) -> &'static str {
        "Mandelbrot"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (w, h, max_iter, ppt): (u32, u32, u32, u32) = match scale {
            Scale::Test => (64, 32, 32, 2),
            Scale::Bench => (128, 64, 64, 2),
        };
        let total_pixels = w * h;
        let threads = total_pixels / ppt;
        let pout = region(0);
        let launch = Launch::new(program(w, max_iter, ppt), threads / 256, 256)
            .with_params(vec![pout, threads]);
        Prepared {
            launches: vec![launch],
            inputs: vec![],
            verify: Box::new(move |mem| {
                let out = mem.read_words(pout, total_pixels as usize);
                for (pix, &got) in out.iter().enumerate() {
                    let want = host_iters(pix as u32, w, max_iter);
                    if got != want {
                        return Err(format!("pixel {pix}: {got} iters, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_iters_disc_membership() {
        // The centre of the set never escapes; far outside escapes fast.
        let w = 64;
        // pixel at complex (X0, Y0) corner escapes almost immediately
        assert!(host_iters(0, w, 64) < 3);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Mandelbrot.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi() {
        run_prepared(&SmConfig::sbi(), Mandelbrot.prepare(Scale::Test), true).unwrap();
    }
}
