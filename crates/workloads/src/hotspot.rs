//! Hotspot (Rodinia): 2-D thermal stencil with boundary handling — mostly
//! regular; only the border warps diverge.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Hotspot;

const P_T: u8 = 0;
const P_POWER: u8 = 1;
const P_OUT: u8 = 2;

/// One thread per cell of a `w × h` grid (w a power of two).
fn program(w: u32, h: u32) -> Program {
    let mut k = KernelBuilder::new("hotspot");
    emit_gtid(&mut k, r(0));
    k.and_(r(1), r(0), (w - 1) as i32); // x
    k.shr(r(2), r(0), w.trailing_zeros() as i32); // y
                                                  // interior iff (x-1)|(w-2-x)|(y-1)|(h-2-y) ≥ 0 (signed).
    k.iadd(r(3), r(1), -1i32);
    k.isub(r(4), (w - 2) as i32, r(1));
    k.or_(r(3), r(3), r(4));
    k.iadd(r(4), r(2), -1i32);
    k.or_(r(3), r(3), r(4));
    k.isub(r(4), (h - 2) as i32, r(2));
    k.or_(r(3), r(3), r(4));
    k.isetp(p(0), CmpOp::Ge, r(3), 0i32);
    // Cell addresses.
    k.shl(r(5), r(0), 2i32);
    k.iadd(r(6), Operand::Param(P_T), r(5));
    k.ld(r(7), r(6), 0); // t (center)
    k.iadd(r(8), Operand::Param(P_OUT), r(5));
    k.bra_ifn(p(0), "border");
    // Interior: t + 0.25·((n+s)+(e+w') − 4t) + 0.125·p
    k.ld(r(9), r(6), -((w * 4) as i32)); // north
    k.ld(r(10), r(6), (w * 4) as i32); // south
    k.ld(r(11), r(6), -4); // west
    k.ld(r(12), r(6), 4); // east
    k.iadd(r(13), Operand::Param(P_POWER), r(5));
    k.ld(r(13), r(13), 0);
    k.fadd(r(9), r(9), r(10));
    k.fadd(r(11), r(11), r(12));
    k.fadd(r(9), r(9), r(11));
    k.fmul(r(10), r(7), 4.0f32);
    k.fsub(r(9), r(9), r(10));
    k.ffma(r(9), r(9), 0.25f32, r(7));
    k.ffma(r(9), r(13), 0.125f32, r(9));
    k.st(r(8), 0, r(9));
    k.exit();
    k.label("border");
    k.st(r(8), 0, r(7)); // boundary keeps its temperature
    k.exit();
    k.build().expect("hotspot assembles")
}

fn host_step(t: &[f32], pw: &[f32], w: usize, h: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let i = y * w + x;
            if x == 0 || x == w - 1 || y == 0 || y == h - 1 {
                out[i] = t[i];
            } else {
                let ns = t[i - w] + t[i + w];
                let ew = t[i - 1] + t[i + 1];
                let sum = ns + ew - t[i] * 4.0;
                out[i] = pw[i].mul_add(0.125, sum.mul_add(0.25, t[i]));
            }
        }
    }
    out
}

impl Workload for Hotspot {
    fn name(&self) -> &'static str {
        "Hotspot"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (w, h, steps): (u32, u32, usize) = match scale {
            Scale::Test => (32, 32, 2),
            Scale::Bench => (64, 64, 6),
        };
        let mut rng = Lcg(0x407);
        // Small integers keep every f32 op exact (coefficients are dyadic).
        let t: Vec<f32> = (0..w * h).map(|_| rng.below(64) as f32).collect();
        let pw: Vec<f32> = (0..w * h).map(|_| rng.below(16) as f32).collect();
        let mut expected = t.clone();
        for _ in 0..steps {
            expected = host_step(&expected, &pw, w as usize, h as usize);
        }
        let (pt, ppow, pout) = (region(0), region(1), region(2));
        // Ping-pong between the two buffers, one launch per time step.
        let launches = (0..steps)
            .map(|s| {
                let (src, dst) = if s % 2 == 0 { (pt, pout) } else { (pout, pt) };
                Launch::new(program(w, h), w * h / 256, 256).with_params(vec![src, ppow, dst])
            })
            .collect::<Vec<_>>();
        let final_buf = if steps % 2 == 1 { pout } else { pt };
        Prepared {
            launches,
            inputs: vec![
                (pt, t.iter().map(|v| v.to_bits()).collect()),
                (ppow, pw.iter().map(|v| v.to_bits()).collect()),
            ],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(final_buf, (w * h) as usize);
                for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("cell {i}: {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_uniform_field_is_stationary() {
        let t = vec![5.0f32; 16 * 16];
        let pw = vec![0.0f32; 16 * 16];
        assert_eq!(host_step(&t, &pw, 16, 16), t);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Hotspot.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi() {
        run_prepared(&SmConfig::sbi(), Hotspot.prepare(Scale::Test), true).unwrap();
    }
}
