//! ConvolutionSeparable (CUDA SDK): separable 2-D convolution as a row pass
//! followed by a column pass — interior threads run uniformly but image-edge
//! warps diverge on every boundary tap, which together with 64-wide warps
//! pushes it into the paper's irregular set.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct ConvolutionSeparable;

/// Kernel radius (17 taps).
const RADIUS: i32 = 8;
const P_IN: u8 = 0;
const P_OUT: u8 = 1;

/// Dyadic tap weights: exact in f32 for small-integer images.
fn weight(t: i32) -> f32 {
    1.0 / (1u32 << (t.unsigned_abs() + 1)) as f32
}

/// `dir = 0`: row pass (taps along x); `dir = 1`: column pass (along y).
fn program(w: u32, h: u32, dir: u32) -> Program {
    let name = if dir == 0 { "conv_rows" } else { "conv_cols" };
    let mut k = KernelBuilder::new(name);
    emit_gtid(&mut k, r(0));
    k.and_(r(1), r(0), (w - 1) as i32); // x
    k.shr(r(2), r(0), w.trailing_zeros() as i32); // y
    k.shl(r(3), r(0), 2i32);
    k.iadd(r(4), Operand::Param(P_IN), r(3)); // &in[pixel]
    k.mov(r(5), 0.0f32); // acc
    let (coord, limit, stride) = if dir == 0 {
        (r(1), w as i32, 4i32)
    } else {
        (r(2), h as i32, (w * 4) as i32)
    };
    for t in -RADIUS..=RADIUS {
        let skip = format!("skip{}", t + RADIUS);
        // ct = coord + t ; in range iff ct | (limit-1-ct) ≥ 0
        k.iadd(r(6), coord, t);
        k.isub(r(7), limit - 1, r(6));
        k.or_(r(7), r(7), r(6));
        k.isetp(p(0), CmpOp::Lt, r(7), 0i32);
        k.bra_if(p(0), skip.clone());
        k.ld(r(8), r(4), t * stride);
        k.ffma(r(5), r(8), weight(t), r(5));
        k.label(skip);
    }
    k.iadd(r(9), Operand::Param(P_OUT), r(3));
    k.st(r(9), 0, r(5));
    k.exit();
    k.build().expect("convolution assembles")
}

fn host_pass(input: &[f32], w: usize, h: usize, dir: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for t in -RADIUS..=RADIUS {
                let (cx, cy) = if dir == 0 {
                    (x as i32 + t, y as i32)
                } else {
                    (x as i32, y as i32 + t)
                };
                if cx >= 0 && (cx as usize) < w && cy >= 0 && (cy as usize) < h {
                    acc = input[cy as usize * w + cx as usize].mul_add(weight(t), acc);
                }
            }
            out[y * w + x] = acc;
        }
    }
    out
}

impl Workload for ConvolutionSeparable {
    fn name(&self) -> &'static str {
        "ConvolutionSeparable"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (w, h): (u32, u32) = match scale {
            Scale::Test => (32, 32),
            Scale::Bench => (32, 256),
        };
        let mut rng = Lcg(0xc0a7);
        let input: Vec<f32> = (0..w * h).map(|_| rng.below(256) as f32).collect();
        let rows = host_pass(&input, w as usize, h as usize, 0);
        let expected = host_pass(&rows, w as usize, h as usize, 1);
        let (pin, pmid) = (region(0), region(1));
        let blocks = w * h / 256;
        let launches = vec![
            Launch::new(program(w, h, 0), blocks, 256).with_params(vec![pin, pmid]),
            Launch::new(program(w, h, 1), blocks, 256).with_params(vec![pmid, pin]),
        ];
        Prepared {
            launches,
            inputs: vec![(pin, input.iter().map(|v| v.to_bits()).collect())],
            verify: Box::new(move |mem| {
                let out = mem.read_f32s(pin, (w * h) as usize);
                for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("pixel {i}: {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn weights_are_symmetric() {
        for t in 1..=RADIUS {
            assert_eq!(weight(t), weight(-t));
        }
        assert_eq!(weight(0), 0.5);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(
            &SmConfig::baseline(),
            ConvolutionSeparable.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }

    #[test]
    fn verifies_on_sbi() {
        run_prepared(
            &SmConfig::sbi(),
            ConvolutionSeparable.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }
}
