//! BFS (Rodinia): level-synchronous breadth-first search over a CSR graph —
//! one kernel launch per frontier level; variable node degrees produce the
//! classic data-dependent loop imbalance and branch divergence.

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program};

use crate::runner::{Prepared, Scale};
use crate::util::{emit_elem_addr, emit_gtid, region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Bfs;

const INF: u32 = u32::MAX;
const P_ROWS: u8 = 0;
const P_COLS: u8 = 1;
const P_DIST: u8 = 2;
const P_LEVEL: u8 = 3;

fn program() -> Program {
    let mut k = KernelBuilder::new("bfs_level");
    emit_gtid(&mut k, r(0)); // node v
    emit_elem_addr(&mut k, r(1), P_DIST, r(0));
    k.ld(r(2), r(1), 0); // dist[v]
    k.isetp(p(0), CmpOp::Eq, r(2), Operand::Param(P_LEVEL));
    k.bra_ifn(p(0), "done");
    emit_elem_addr(&mut k, r(3), P_ROWS, r(0));
    k.ld(r(4), r(3), 0); // start
    k.ld(r(5), r(3), 4); // end
    k.isetp(p(1), CmpOp::Ge, r(4), r(5));
    k.bra_if(p(1), "done");
    // next level value = level + 1
    k.iadd(r(6), Operand::Param(P_LEVEL), 1i32);
    k.label("edges");
    emit_elem_addr(&mut k, r(7), P_COLS, r(4));
    k.ld(r(8), r(7), 0); // neighbour w
    emit_elem_addr(&mut k, r(9), P_DIST, r(8));
    k.ld(r(10), r(9), 0); // dist[w]
    k.isetp(p(2), CmpOp::Eq, r(10), Operand::Imm(INF));
    k.guard_t(p(2)).st(r(9), 0, r(6));
    k.iadd(r(4), r(4), 1i32);
    k.isetp(p(3), CmpOp::Lt, r(4), r(5));
    k.bra_if(p(3), "edges");
    k.label("done");
    k.exit();
    k.build().expect("bfs assembles")
}

/// Random CSR graph: `n` nodes, degree `1 + lcg % max_deg`.
fn build_graph(n: u32, max_deg: u32, seed: u32) -> (Vec<u32>, Vec<u32>) {
    let mut rng = Lcg(seed);
    let mut rows = Vec::with_capacity(n as usize + 1);
    let mut cols = Vec::new();
    rows.push(0u32);
    for _ in 0..n {
        let deg = 1 + rng.below(max_deg);
        for _ in 0..deg {
            cols.push(rng.below(n));
        }
        rows.push(cols.len() as u32);
    }
    (rows, cols)
}

fn host_bfs(rows: &[u32], cols: &[u32], n: u32) -> Vec<u32> {
    let mut dist = vec![INF; n as usize];
    dist[0] = 0;
    let mut frontier = vec![0u32];
    let mut level = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for e in rows[v as usize]..rows[v as usize + 1] {
                let w = cols[e as usize] as usize;
                if dist[w] == INF {
                    dist[w] = level + 1;
                    next.push(w as u32);
                }
            }
        }
        frontier = next;
        level += 1;
    }
    dist
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (n, max_deg): (u32, u32) = match scale {
            Scale::Test => (1024, 8),
            Scale::Bench => (8192, 16),
        };
        let (rows, cols) = build_graph(n, max_deg, 0xbf5);
        let expected = host_bfs(&rows, &cols, n);
        let levels = expected
            .iter()
            .filter(|&&d| d != INF)
            .copied()
            .max()
            .unwrap_or(0);
        let (prow, pcol, pdist) = (region(0), region(1), region(2));
        let mut dist0 = vec![INF; n as usize];
        dist0[0] = 0;
        let launches = (0..levels)
            .map(|level| {
                Launch::new(program(), n / 256, 256).with_params(vec![prow, pcol, pdist, level])
            })
            .collect();
        Prepared {
            launches,
            inputs: vec![(prow, rows), (pcol, cols), (pdist, dist0)],
            verify: Box::new(move |mem| {
                let dist = mem.read_words(pdist, n as usize);
                for (i, (&got, &want)) in dist.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("dist[{i}] = {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_bfs_on_path_graph() {
        // 0 → 1 → 2 → 3
        let rows = vec![0, 1, 2, 3, 3];
        let cols = vec![1, 2, 3];
        assert_eq!(host_bfs(&rows, &cols, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Bfs.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_sbi_swi() {
        run_prepared(&SmConfig::sbi_swi(), Bfs.prepare(Scale::Test), true).unwrap();
    }
}
