//! Needleman-Wunsch (Rodinia): global sequence alignment by anti-diagonal
//! wavefront — the number of active threads ramps 1‥L‥1 across diagonals, a
//! tid-correlated imbalance the paper's lane shuffling exploits (XorRev wins
//! +7.7 % here, fig. 8b).

use warpweave_core::Launch;
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};

use crate::runner::{Prepared, Scale};
use crate::util::{region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct NeedlemanWunsch;

/// Sequence length (DP matrix is (L+1)²).
const L: u32 = 48;
const GAP: i32 = -2;
const MATCH: i32 = 3;
const MISMATCH: i32 = -1;

const P_SEQA: u8 = 0; // per-block sequences, strided
const P_SEQB: u8 = 1;
const P_OUT: u8 = 2; // per-block final score

/// Shared layout: DP at 0, (L+1)² words.
const DP: i32 = 0;

fn dp_addr(i: i32, j: i32) -> i32 {
    DP + (i * (L as i32 + 1) + j) * 4
}

fn program() -> Program {
    let mut k = KernelBuilder::new("needleman_wunsch");
    k.mov(r(0), SpecialReg::Tid);
    k.mov(r(1), SpecialReg::CtaId);
    // Initialise border rows/cols: dp[0][t] = dp[t][0] = GAP·t for t ≤ L.
    k.isetp(p(0), CmpOp::Gt, r(0), L as i32);
    k.bra_if(p(0), "init_done");
    k.imul(r(2), r(0), GAP);
    k.imul(r(3), r(0), (L as i32 + 1) * 4);
    k.st_shared(r(3), DP, r(2)); // dp[t][0]
    k.shl(r(3), r(0), 2i32);
    k.st_shared(r(3), DP, r(2)); // dp[0][t]
    k.label("init_done");
    k.bar();
    // Sequence bases for this block (bytes-as-words, strided by L).
    k.imul(r(4), r(1), (L * 4) as i32);
    k.iadd(r(5), Operand::Param(P_SEQA), r(4));
    k.iadd(r(6), Operand::Param(P_SEQB), r(4));
    // Anti-diagonals d = i + j, d = 2 ..= 2L (unrolled: bounds are consts).
    for d in 2..=(2 * L as i32) {
        let skip = format!("diag{d}");
        let i_min = 1.max(d - L as i32);
        let i_max = (L as i32).min(d - 1);
        let cells = i_max - i_min + 1;
        k.isetp(p(1), CmpOp::Ge, r(0), cells);
        k.bra_if(p(1), skip.clone());
        // i = i_min + tid, j = d − i
        k.iadd(r(7), r(0), i_min);
        k.isub(r(8), d, r(7));
        // a = seqA[i−1], b = seqB[j−1]
        k.shl(r(9), r(7), 2i32);
        k.iadd(r(9), r(5), r(9));
        k.ld(r(10), r(9), -4);
        k.shl(r(9), r(8), 2i32);
        k.iadd(r(9), r(6), r(9));
        k.ld(r(11), r(9), -4);
        // sub = (a == b) ? MATCH : MISMATCH
        k.isetp(p(2), CmpOp::Eq, r(10), r(11));
        k.sel(r(12), p(2), MATCH, MISMATCH);
        // dp addresses: base = (i·(L+1) + j)·4
        k.imul(r(13), r(7), (L as i32 + 1) * 4);
        k.shl(r(14), r(8), 2i32);
        k.iadd(r(13), r(13), r(14));
        // diag, up, left
        k.ld_shared(r(15), r(13), DP - ((L as i32 + 1) * 4) - 4);
        k.iadd(r(15), r(15), r(12));
        k.ld_shared(r(16), r(13), DP - ((L as i32 + 1) * 4));
        k.iadd(r(16), r(16), GAP);
        k.ld_shared(r(17), r(13), DP - 4);
        k.iadd(r(17), r(17), GAP);
        k.imax(r(15), r(15), r(16));
        k.imax(r(15), r(15), r(17));
        k.st_shared(r(13), DP, r(15));
        k.label(skip);
        k.bar();
    }
    // Thread 0 stores the final score dp[L][L].
    k.isetp(p(3), CmpOp::Ne, r(0), 0i32);
    k.bra_if(p(3), "done");
    k.mov(r(18), dp_addr(L as i32, L as i32));
    k.ld_shared(r(19), r(18), 0);
    k.shl(r(20), r(1), 2i32);
    k.iadd(r(20), Operand::Param(P_OUT), r(20));
    k.st(r(20), 0, r(19));
    k.label("done");
    k.exit();
    k.build().expect("needleman_wunsch assembles")
}

#[allow(clippy::needless_range_loop)] // DP borders indexed symmetrically
fn host_nw(a: &[u32], b: &[u32]) -> i32 {
    let n = L as usize;
    let mut dp = vec![vec![0i32; n + 1]; n + 1];
    for t in 0..=n {
        dp[0][t] = GAP * t as i32;
        dp[t][0] = GAP * t as i32;
    }
    for i in 1..=n {
        for j in 1..=n {
            let sub = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            dp[i][j] = (dp[i - 1][j - 1] + sub)
                .max(dp[i - 1][j] + GAP)
                .max(dp[i][j - 1] + GAP);
        }
    }
    dp[n][n]
}

impl Workload for NeedlemanWunsch {
    fn name(&self) -> &'static str {
        "Needleman-Wunsch"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let blocks: u32 = match scale {
            Scale::Test => 8,
            Scale::Bench => 48,
        };
        let mut rng = Lcg(0x95);
        let seq_a: Vec<u32> = (0..blocks * L).map(|_| rng.below(4)).collect();
        let seq_b: Vec<u32> = (0..blocks * L).map(|_| rng.below(4)).collect();
        let expected: Vec<i32> = (0..blocks as usize)
            .map(|b| {
                host_nw(
                    &seq_a[b * L as usize..(b + 1) * L as usize],
                    &seq_b[b * L as usize..(b + 1) * L as usize],
                )
            })
            .collect();
        let (pa, pb, pout) = (region(0), region(1), region(2));
        let launch = Launch::new(program(), blocks, 64).with_params(vec![pa, pb, pout]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pa, seq_a), (pb, seq_b)],
            verify: Box::new(move |mem| {
                for (b, &want) in expected.iter().enumerate() {
                    let got = mem.read_i32(pout + 4 * b as u32);
                    if got != want {
                        return Err(format!("block {b}: score {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_nw_identical_sequences() {
        let s: Vec<u32> = (0..L).map(|i| i % 4).collect();
        assert_eq!(host_nw(&s, &s), MATCH * L as i32);
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(
            &SmConfig::baseline(),
            NeedlemanWunsch.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }

    #[test]
    fn verifies_on_swi() {
        run_prepared(&SmConfig::swi(), NeedlemanWunsch.prepare(Scale::Test), true).unwrap();
    }
}
