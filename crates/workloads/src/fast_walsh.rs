//! FastWalshTransform (CUDA SDK): in-shared-memory Walsh–Hadamard butterfly
//! — uniform full-warp participation in every stage, barriers between
//! stages; regular.

use warpweave_core::Launch;
use warpweave_isa::{r, KernelBuilder, Operand, Program, SpecialReg};

use crate::runner::{Prepared, Scale};
use crate::util::{region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct FastWalshTransform;

/// Elements per block (256 threads × 2).
const CHUNK: u32 = 512;
const P_DATA: u8 = 0;

fn program() -> Program {
    let mut k = KernelBuilder::new("fast_walsh");
    k.mov(r(0), SpecialReg::Tid);
    // Global base of this block's chunk: ctaid·512 + tid (element index).
    k.mov(r(1), SpecialReg::CtaId);
    k.imad(r(2), r(1), CHUNK as i32, r(0));
    k.shl(r(3), r(2), 2i32);
    k.iadd(r(3), Operand::Param(P_DATA), r(3));
    // Load two elements (tid and tid+256) into shared.
    k.ld(r(4), r(3), 0);
    k.ld(r(5), r(3), 256 * 4);
    k.shl(r(6), r(0), 2i32);
    k.st_shared(r(6), 0, r(4));
    k.st_shared(r(6), 256 * 4, r(5));
    k.bar();
    // 9 butterfly stages over 512 elements; each thread owns one pair.
    for lh in 0..9 {
        let h: i32 = 1 << lh;
        // idx = ((tid >> lh) << (lh+1)) + (tid & (h-1))
        k.shr(r(7), r(0), lh);
        k.shl(r(7), r(7), lh + 1);
        k.and_(r(8), r(0), h - 1);
        k.iadd(r(7), r(7), r(8));
        k.shl(r(7), r(7), 2i32);
        k.ld_shared(r(9), r(7), 0);
        k.ld_shared(r(10), r(7), h * 4);
        k.iadd(r(11), r(9), r(10));
        k.isub(r(12), r(9), r(10));
        k.st_shared(r(7), 0, r(11));
        k.st_shared(r(7), h * 4, r(12));
        k.bar();
    }
    // Store back.
    k.ld_shared(r(4), r(6), 0);
    k.ld_shared(r(5), r(6), 256 * 4);
    k.st(r(3), 0, r(4));
    k.st(r(3), 256 * 4, r(5));
    k.exit();
    k.build().expect("fast_walsh assembles")
}

/// Host reference: in-place WHT per 512-element chunk (wrapping i32).
fn host_fwht(data: &mut [u32]) {
    for chunk in data.chunks_mut(CHUNK as usize) {
        for lh in 0..9 {
            let h = 1usize << lh;
            for t in 0..chunk.len() / 2 {
                let idx = ((t >> lh) << (lh + 1)) + (t & (h - 1));
                let a = chunk[idx];
                let b = chunk[idx + h];
                chunk[idx] = a.wrapping_add(b);
                chunk[idx + h] = a.wrapping_sub(b);
            }
        }
    }
}

impl Workload for FastWalshTransform {
    fn name(&self) -> &'static str {
        "FastWalshTransform"
    }

    fn category(&self) -> Category {
        Category::Regular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let blocks: u32 = match scale {
            Scale::Test => 4,
            Scale::Bench => 48,
        };
        let n = blocks * CHUNK;
        let mut rng = Lcg(0xfa57);
        let input: Vec<u32> = (0..n).map(|_| rng.below(1 << 16)).collect();
        let mut expected = input.clone();
        host_fwht(&mut expected);
        let pdata = region(0);
        let launch = Launch::new(program(), blocks, 256).with_params(vec![pdata]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pdata, input)],
            verify: Box::new(move |mem| {
                let out = mem.read_words(pdata, n as usize);
                for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("out[{i}] = {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn host_fwht_involution_scaled() {
        // WHT applied twice = 512 × identity.
        let mut rng = Lcg(9);
        let orig: Vec<u32> = (0..512).map(|_| rng.below(1000)).collect();
        let mut d = orig.clone();
        host_fwht(&mut d);
        host_fwht(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            assert_eq!(*a, b.wrapping_mul(512));
        }
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(
            &SmConfig::baseline(),
            FastWalshTransform.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }

    #[test]
    fn verifies_on_sbi_swi() {
        run_prepared(
            &SmConfig::sbi_swi(),
            FastWalshTransform.prepare(Scale::Test),
            true,
        )
        .unwrap();
    }
}
