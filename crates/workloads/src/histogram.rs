//! Histogram (CUDA SDK): 256-bin histogram with per-block shared
//! sub-histograms — data-dependent atomic conflicts make it irregular.

use warpweave_core::Launch;
use warpweave_isa::{r, KernelBuilder, Operand, Program, SpecialReg};

use crate::runner::{Prepared, Scale};
use crate::util::{region, Lcg};
use crate::{Category, Workload};

/// See the [module docs](self).
pub struct Histogram;

const BINS: u32 = 256;
const P_DATA: u8 = 0;
const P_HIST: u8 = 1;
const P_TOTAL: u8 = 2; // total thread count (grid stride)

/// Skewed bin function (products concentrate near zero, creating hot bins):
/// `bin = ((x & 0xff) * ((x >> 8) & 0xff)) >> 8`.
fn bin_of(x: u32) -> u32 {
    ((x & 0xff) * ((x >> 8) & 0xff)) >> 8
}

fn program(elems_per_thread: u32) -> Program {
    let mut k = KernelBuilder::new("histogram");
    k.mov(r(0), SpecialReg::Tid);
    k.mov(r(1), SpecialReg::CtaId);
    k.imad(r(2), r(1), SpecialReg::NTid, r(0)); // gtid
                                                // Zero this block's shared sub-histogram (256 bins, 256 threads).
    k.shl(r(3), r(0), 2i32);
    k.st_shared(r(3), 0, 0i32);
    k.bar();
    // Grid-stride loop over elements.
    k.mov(r(4), elems_per_thread as i32);
    k.shl(r(5), r(2), 2i32);
    k.iadd(r(5), Operand::Param(P_DATA), r(5)); // &data[gtid]
    k.shl(r(6), Operand::Param(P_TOTAL), 2i32); // byte stride
    k.label("loop");
    k.ld(r(7), r(5), 0);
    // bin = ((x & 0xff) · ((x >> 8) & 0xff)) >> 8
    k.and_(r(8), r(7), 0xffi32);
    k.shr(r(9), r(7), 8i32);
    k.and_(r(9), r(9), 0xffi32);
    k.imul(r(8), r(8), r(9));
    k.shr(r(8), r(8), 8i32);
    k.shl(r(8), r(8), 2i32);
    k.atom_add_shared(r(8), 0, 1i32);
    k.iadd(r(5), r(5), r(6));
    k.iadd(r(4), r(4), -1i32);
    k.isetp(warpweave_isa::p(0), warpweave_isa::CmpOp::Gt, r(4), 0i32);
    k.bra_if(warpweave_isa::p(0), "loop");
    k.bar();
    // Merge: thread t adds shared bin t into the global histogram.
    k.ld_shared(r(10), r(3), 0);
    k.iadd(r(11), Operand::Param(P_HIST), r(3));
    k.atom_add(r(11), 0, r(10));
    k.exit();
    k.build().expect("histogram assembles")
}

impl Workload for Histogram {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn category(&self) -> Category {
        Category::Irregular
    }

    fn prepare(&self, scale: Scale) -> Prepared {
        let (blocks, ept): (u32, u32) = match scale {
            Scale::Test => (4, 8),
            Scale::Bench => (32, 24),
        };
        let total_threads = blocks * 256;
        let n = total_threads * ept;
        let mut rng = Lcg(0x415);
        let data: Vec<u32> = (0..n).map(|_| rng.next()).collect();
        let mut expected = vec![0u32; BINS as usize];
        for &x in &data {
            expected[bin_of(x) as usize] += 1;
        }
        let (pdata, phist) = (region(0), region(1));
        let launch =
            Launch::new(program(ept), blocks, 256).with_params(vec![pdata, phist, total_threads]);
        Prepared {
            launches: vec![launch],
            inputs: vec![(pdata, data)],
            verify: Box::new(move |mem| {
                let hist = mem.read_words(phist, BINS as usize);
                let total: u64 = hist.iter().map(|&h| h as u64).sum();
                if total != n as u64 {
                    return Err(format!("histogram sums to {total}, expected {n}"));
                }
                for (b, (&got, &want)) in hist.iter().zip(&expected).enumerate() {
                    if got != want {
                        return Err(format!("bin {b}: {got}, expected {want}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_prepared;
    use warpweave_core::SmConfig;

    #[test]
    fn bin_function_is_skewed() {
        let mut rng = Lcg(1);
        let mut counts = [0u32; 256];
        for _ in 0..10_000 {
            counts[bin_of(rng.next()) as usize] += 1;
        }
        // Low bins should be much hotter than high bins.
        let low: u32 = counts[..32].iter().sum();
        let high: u32 = counts[224..].iter().sum();
        assert!(low > 4 * high, "low {low} vs high {high}");
    }

    #[test]
    fn verifies_on_baseline() {
        run_prepared(&SmConfig::baseline(), Histogram.prepare(Scale::Test), true).unwrap();
    }

    #[test]
    fn verifies_on_swi() {
        run_prepared(&SmConfig::swi(), Histogram.prepare(Scale::Test), true).unwrap();
    }
}
