//! Property-based verification of the shared channel's determinism
//! contract: the grant schedule of one epoch is a pure function of the
//! *set* of requests — any permutation of the batch (i.e. any SM polling
//! order the machine might use) produces bit-identical grants — and the
//! single-SM schedule reproduces the private [`Dram`] model exactly.

use proptest::prelude::*;

use warpweave_mem::{Dram, DramConfig, MemGrant, MemRequest, SharedDramChannel};

const NUM_SMS: u32 = 6;

/// Builds a well-formed request batch from raw samples: per-SM sequence
/// numbers are assigned in list order (monotonic per SM, as a real SM's
/// transaction counter guarantees).
fn batch(raw: &[(u64, u32, bool)]) -> Vec<MemRequest> {
    let mut next_seq = [0u64; NUM_SMS as usize];
    raw.iter()
        .map(|&(issue_cycle, sm, is_write)| {
            let sm_id = sm % NUM_SMS;
            let seq = next_seq[sm_id as usize];
            next_seq[sm_id as usize] += 1;
            MemRequest {
                issue_cycle,
                sm_id,
                seq,
                is_write,
            }
        })
        .collect()
}

fn arbitrate(epoch: u64, requests: Vec<MemRequest>) -> Vec<MemGrant> {
    SharedDramChannel::new(DramConfig::paper()).arbitrate_epoch(epoch, NUM_SMS, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grants_invariant_under_polling_order(
        raw in proptest::collection::vec((0u64..512, 0u32..NUM_SMS, any::<bool>()), 1..48),
        epoch in 0u64..16,
        rot in 1usize..17,
    ) {
        let reqs = batch(&raw);
        let reference = arbitrate(epoch, reqs.clone());

        // Permutation 1: rotation (models a different SM polling start).
        let mut rotated = reqs.clone();
        let k = rot % rotated.len().max(1);
        rotated.rotate_left(k);
        prop_assert_eq!(&arbitrate(epoch, rotated), &reference);

        // Permutation 2: full reversal (worst-case poll inversion).
        let mut reversed = reqs.clone();
        reversed.reverse();
        prop_assert_eq!(&arbitrate(epoch, reversed), &reference);

        // Permutation 3: interleave halves (odd/even SM-major gather).
        let mid = reqs.len() / 2;
        let mut interleaved: Vec<MemRequest> = Vec::with_capacity(reqs.len());
        for i in 0..mid {
            interleaved.push(reqs[mid + i]);
            interleaved.push(reqs[i]);
        }
        if reqs.len() % 2 == 1 {
            interleaved.push(reqs[reqs.len() - 1]);
        }
        prop_assert_eq!(&arbitrate(epoch, interleaved), &reference);
    }

    #[test]
    fn grant_schedule_is_physical(
        raw in proptest::collection::vec((0u64..512, 0u32..NUM_SMS, any::<bool>()), 1..48),
        epoch in 0u64..16,
    ) {
        let cfg = DramConfig::paper();
        let grants = arbitrate(epoch, batch(&raw));
        prop_assert_eq!(grants.len(), raw.len());
        // Completion never beats the fixed latency, and the channel
        // serialises: ready cycles are non-decreasing in grant order.
        let mut last_ready = 0u64;
        for g in &grants {
            prop_assert!(g.ready_cycle >= cfg.latency);
            prop_assert!(g.ready_cycle >= last_ready);
            last_ready = g.ready_cycle;
        }
    }

    #[test]
    fn single_sm_schedule_matches_private_dram(
        raw in proptest::collection::vec((0u64..64, 0u32..1, any::<bool>()), 1..32),
    ) {
        // One SM's requests sorted by issue order through the shared
        // channel == the same stream through the inline Dram model.
        let cfg = DramConfig::paper();
        let reqs = batch(&raw);
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|r| (r.issue_cycle, r.seq));
        let mut dram = Dram::new(cfg);
        let expected: Vec<u64> = sorted
            .iter()
            .map(|r| if r.is_write { dram.write(r.issue_cycle) } else { dram.read(r.issue_cycle) })
            .collect();
        let grants = arbitrate(3, sorted);
        let got: Vec<u64> = grants.iter().map(|g| g.ready_cycle).collect();
        prop_assert_eq!(got, expected);
    }
}
