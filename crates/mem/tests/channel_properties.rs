//! Property-based verification of the shared channel's determinism
//! contract: the grant schedule of one epoch is a pure function of the
//! *set* of requests — any permutation of the batch (i.e. any SM polling
//! order the machine might use) produces bit-identical grants — and the
//! single-SM schedule reproduces the private [`Dram`] model exactly.

use proptest::prelude::*;

use warpweave_mem::{ChannelStats, Dram, DramConfig, MemGrant, MemRequest, SharedDramChannel};

const NUM_SMS: u32 = 6;

/// Builds a well-formed request batch from raw samples: per-SM sequence
/// numbers are assigned in list order (monotonic per SM, as a real SM's
/// transaction counter guarantees).
fn batch(raw: &[(u64, u32, bool)]) -> Vec<MemRequest> {
    let mut next_seq = [0u64; NUM_SMS as usize];
    raw.iter()
        .map(|&(issue_cycle, sm, is_write)| {
            let sm_id = sm % NUM_SMS;
            let seq = next_seq[sm_id as usize];
            next_seq[sm_id as usize] += 1;
            MemRequest {
                issue_cycle,
                sm_id,
                seq,
                addr: (seq as u32) * 128,
                is_write,
            }
        })
        .collect()
}

fn arbitrate(epoch: u64, requests: Vec<MemRequest>) -> Vec<MemGrant> {
    SharedDramChannel::new(DramConfig::paper()).arbitrate_epoch(epoch, NUM_SMS, requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grants_invariant_under_polling_order(
        raw in proptest::collection::vec((0u64..512, 0u32..NUM_SMS, any::<bool>()), 1..48),
        epoch in 0u64..16,
        rot in 1usize..17,
    ) {
        let reqs = batch(&raw);
        let reference = arbitrate(epoch, reqs.clone());

        // Permutation 1: rotation (models a different SM polling start).
        let mut rotated = reqs.clone();
        let k = rot % rotated.len().max(1);
        rotated.rotate_left(k);
        prop_assert_eq!(&arbitrate(epoch, rotated), &reference);

        // Permutation 2: full reversal (worst-case poll inversion).
        let mut reversed = reqs.clone();
        reversed.reverse();
        prop_assert_eq!(&arbitrate(epoch, reversed), &reference);

        // Permutation 3: interleave halves (odd/even SM-major gather).
        let mid = reqs.len() / 2;
        let mut interleaved: Vec<MemRequest> = Vec::with_capacity(reqs.len());
        for i in 0..mid {
            interleaved.push(reqs[mid + i]);
            interleaved.push(reqs[i]);
        }
        if reqs.len() % 2 == 1 {
            interleaved.push(reqs[reqs.len() - 1]);
        }
        prop_assert_eq!(&arbitrate(epoch, interleaved), &reference);
    }

    #[test]
    fn grant_schedule_is_physical(
        raw in proptest::collection::vec((0u64..512, 0u32..NUM_SMS, any::<bool>()), 1..48),
        epoch in 0u64..16,
    ) {
        let cfg = DramConfig::paper();
        let grants = arbitrate(epoch, batch(&raw));
        prop_assert_eq!(grants.len(), raw.len());
        // Completion never beats the fixed latency, and the channel
        // serialises: ready cycles are non-decreasing in grant order.
        let mut last_ready = 0u64;
        for g in &grants {
            prop_assert!(g.ready_cycle >= cfg.latency);
            prop_assert!(g.ready_cycle >= last_ready);
            last_ready = g.ready_cycle;
        }
    }

    #[test]
    fn single_sm_schedule_matches_private_dram(
        raw in proptest::collection::vec((0u64..64, 0u32..1, any::<bool>()), 1..32),
    ) {
        // One SM's requests sorted by issue order through the shared
        // channel == the same stream through the inline Dram model.
        let cfg = DramConfig::paper();
        let reqs = batch(&raw);
        let mut sorted = reqs.clone();
        sorted.sort_by_key(|r| (r.issue_cycle, r.seq));
        let mut dram = Dram::new(cfg);
        let expected: Vec<u64> = sorted
            .iter()
            .map(|r| if r.is_write { dram.write(r.issue_cycle) } else { dram.read(r.issue_cycle) })
            .collect();
        let grants = arbitrate(3, sorted);
        let got: Vec<u64> = grants.iter().map(|g| g.ready_cycle).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn peeking_never_changes_grant_results(
        raw_a in proptest::collection::vec((0u64..256, 0u32..NUM_SMS, any::<bool>()), 1..24),
        raw_b in proptest::collection::vec((300u64..600, 0u32..NUM_SMS, any::<bool>()), 1..24),
        peeks in proptest::collection::vec(0u64..2048, 1..16),
    ) {
        // Two channels fed identical epochs; one is peeked (repeatedly, at
        // arbitrary cycles, even out of order) between the epochs. The
        // peek must be a pure read: later grants stay bit-identical and
        // repeated peeks agree with themselves.
        let all = batch(&raw_a.iter().chain(&raw_b).copied().collect::<Vec<_>>());
        let (a, b) = all.split_at(raw_a.len());
        let mut peeked = SharedDramChannel::new(DramConfig::paper());
        let mut silent = SharedDramChannel::new(DramConfig::paper());
        let first_p = peeked.arbitrate_epoch(0, NUM_SMS, a.to_vec());
        let first_s = silent.arbitrate_epoch(0, NUM_SMS, a.to_vec());
        prop_assert_eq!(&first_p, &first_s);
        for &now in &peeks {
            let once = peeked.next_completion_at_or_after(now);
            prop_assert_eq!(once, peeked.next_completion_at_or_after(now));
            prop_assert_eq!(peeked.outstanding_transfers(), silent.outstanding_transfers());
        }
        let second_p = peeked.arbitrate_epoch(1, NUM_SMS, b.to_vec());
        let second_s = silent.arbitrate_epoch(1, NUM_SMS, b.to_vec());
        prop_assert_eq!(second_p, second_s);
        prop_assert_eq!(peeked.stats(), silent.stats());
    }

    #[test]
    fn every_participant_eventually_holds_top_priority(
        raw_ids in proptest::collection::vec(0u32..24, 1..8),
        num_sms in 24u32..32,
    ) {
        // Over one full rotation of epochs, every SM of an arbitrary —
        // possibly non-contiguous — participant set must be granted first
        // at least once (the starvation-freedom the position-based rank
        // restores; `sm % n` collapsed distinct ids onto one rank).
        let ids: Vec<u32> = raw_ids.into_iter()
            .collect::<std::collections::BTreeSet<u32>>().into_iter().collect();
        let mut been_first: std::collections::BTreeSet<u32> = Default::default();
        for epoch in 0..num_sms as u64 {
            let reqs: Vec<MemRequest> = ids.iter().map(|&sm_id| MemRequest {
                issue_cycle: 0, sm_id, seq: 0, addr: 0, is_write: false,
            }).collect();
            let grants = SharedDramChannel::new(DramConfig::paper())
                .arbitrate_epoch(epoch, num_sms, reqs);
            been_first.insert(grants[0].sm_id);
        }
        prop_assert_eq!(been_first.len(), ids.len(),
            "some SM never held top priority: {:?}", been_first);
    }

    #[test]
    fn utilization_stays_in_unit_interval(
        raw in proptest::collection::vec((0u64..512, 0u32..NUM_SMS, any::<bool>()), 1..48),
        epoch in 0u64..16,
        slack in 0u64..10_000,
    ) {
        let cfg = DramConfig::paper();
        let mut ch = SharedDramChannel::new(cfg);
        let grants = ch.arbitrate_epoch(epoch, NUM_SMS, batch(&raw));
        // The channel is busy until the last transfer drains: its start
        // (ready − latency) plus the transfer occupancy, rounded up.
        let occupancy = (cfg.transfer_bytes as f64 / cfg.bytes_per_cycle).ceil() as u64 + 1;
        let makespan = grants.iter().map(|g| g.ready_cycle).max().unwrap()
            - cfg.latency + occupancy;
        let util = ch.stats().utilization(makespan + slack, cfg.bytes_per_cycle);
        prop_assert!((0.0..=1.0).contains(&util), "utilization {util} at horizon");
        // Degenerate horizons clamp to 0 rather than dividing by zero.
        prop_assert_eq!(ch.stats().utilization(0, cfg.bytes_per_cycle), 0.0);
        prop_assert_eq!(ch.stats().utilization(makespan, 0.0), 0.0);
    }

    #[test]
    fn channel_stats_accumulate_is_associative_and_commutative(
        raw in proptest::collection::vec(0u64..1_000_000, 27..28),
    ) {
        // 27 draws = 3 ChannelStats × 9 canonical fields.
        let width = ChannelStats::default().to_fields().len();
        let stats: Vec<ChannelStats> = raw.chunks(width).take(3).map(|f| {
            let named: Vec<(&str, u64)> = ChannelStats::default()
                .to_fields().iter().zip(f).map(|(&(n, _), &v)| (n, v)).collect();
            ChannelStats::from_fields(&named).unwrap()
        }).collect();
        let (a, b, c) = (stats[0], stats[1], stats[2]);
        let fold = |x: ChannelStats, y: &ChannelStats| { let mut x = x; x.accumulate(y); x };
        // Commutative: a+b == b+a.
        prop_assert_eq!(fold(a, &b), fold(b, &a));
        // Associative: (a+b)+c == a+(b+c).
        prop_assert_eq!(fold(fold(a, &b), &c), fold(a, &fold(b, &c)));
    }
}
