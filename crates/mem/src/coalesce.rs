//! Memory-access coalescing into 128-byte blocks.
//!
//! The LSU "can coalesce together multiple parallel accesses that fall within
//! the same 128-byte cache block. Memory instructions that encounter
//! conflicts are replayed with an updated activity mask reflecting the
//! transactions that remain to be issued" (paper §2). [`coalesce`] computes
//! that transaction list.

/// Size of a coalescing window / cache block in bytes.
pub const BLOCK_BYTES: u32 = 128;

/// One memory transaction: a 128-byte-aligned block plus the set of lanes it
/// serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Block-aligned base address.
    pub block_addr: u32,
    /// Indices (into the request slice) of the accesses this block serves.
    pub lanes: Vec<usize>,
}

/// Groups per-lane word accesses into 128-byte block transactions, in order
/// of first appearance (the replay order the hardware would follow).
///
/// Each input entry is `(lane, byte address)`; inactive lanes are simply not
/// passed in.
///
/// # Examples
/// ```
/// use warpweave_mem::coalesce;
/// // Four lanes touching two blocks -> two transactions.
/// let txs = coalesce(&[(0, 0), (1, 4), (2, 128), (3, 132)]);
/// assert_eq!(txs.len(), 2);
/// assert_eq!(txs[0].block_addr, 0);
/// assert_eq!(txs[1].block_addr, 128);
/// ```
pub fn coalesce(accesses: &[(usize, u32)]) -> Vec<Transaction> {
    let mut txs: Vec<Transaction> = Vec::new();
    for &(lane, addr) in accesses {
        let block = addr & !(BLOCK_BYTES - 1);
        match txs.iter_mut().find(|t| t.block_addr == block) {
            Some(t) => t.lanes.push(lane),
            None => txs.push(Transaction {
                block_addr: block,
                lanes: vec![lane],
            }),
        }
    }
    txs
}

/// Schedules atomic accesses into replay rounds: within one round each
/// distinct word is served at most once (conflicting lanes are deferred to
/// later rounds, as hardware replays them), and each round's survivors are
/// block-coalesced like ordinary accesses.
///
/// Returns the flattened transaction list across all rounds; its length is
/// the LSU occupancy in cycles.
pub fn atomic_transactions(accesses: &[(usize, u32)]) -> Vec<Transaction> {
    let mut remaining: Vec<(usize, u32)> = accesses.to_vec();
    let mut out = Vec::new();
    while !remaining.is_empty() {
        let mut this_round: Vec<(usize, u32)> = Vec::new();
        let mut deferred: Vec<(usize, u32)> = Vec::new();
        let mut served: Vec<u32> = Vec::new();
        for &(lane, addr) in &remaining {
            if served.contains(&addr) {
                deferred.push((lane, addr));
            } else {
                served.push(addr);
                this_round.push((lane, addr));
            }
        }
        out.extend(coalesce(&this_round));
        remaining = deferred;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_single_block() {
        let acc: Vec<(usize, u32)> = (0..32).map(|i| (i, i as u32 * 4)).collect();
        let txs = coalesce(&acc);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].lanes.len(), 32);
    }

    #[test]
    fn fully_divergent_strided() {
        // Stride of 128: every lane its own block.
        let acc: Vec<(usize, u32)> = (0..32).map(|i| (i, i as u32 * 128)).collect();
        let txs = coalesce(&acc);
        assert_eq!(txs.len(), 32);
    }

    #[test]
    fn replay_order_is_first_appearance() {
        let txs = coalesce(&[(0, 256), (1, 0), (2, 300)]);
        assert_eq!(txs[0].block_addr, 256);
        assert_eq!(txs[1].block_addr, 0);
        assert_eq!(txs[0].lanes, vec![0, 2]);
    }

    #[test]
    fn empty_request() {
        assert!(coalesce(&[]).is_empty());
        assert!(atomic_transactions(&[]).is_empty());
    }

    #[test]
    fn atomic_conflict_free_matches_coalesce() {
        let acc: Vec<(usize, u32)> = (0..8).map(|i| (i, i as u32 * 4)).collect();
        assert_eq!(atomic_transactions(&acc).len(), coalesce(&acc).len());
    }

    #[test]
    fn atomic_full_conflict_serialises() {
        // 8 lanes hammering one counter: 8 rounds of 1 transaction.
        let acc: Vec<(usize, u32)> = (0..8).map(|i| (i, 64)).collect();
        assert_eq!(atomic_transactions(&acc).len(), 8);
    }

    #[test]
    fn atomic_mixed_conflicts() {
        // Two addresses × two lanes each, same block: 2 rounds × 1 tx.
        let txs = atomic_transactions(&[(0, 8), (1, 8), (2, 12), (3, 12)]);
        assert_eq!(txs.len(), 2);
        // Two addresses in different blocks, 2 lanes each: 2 rounds × 2 tx.
        let txs = atomic_transactions(&[(0, 0), (1, 0), (2, 256), (3, 256)]);
        assert_eq!(txs.len(), 4);
    }
}
