//! Memory-access coalescing into 128-byte blocks.
//!
//! The LSU "can coalesce together multiple parallel accesses that fall within
//! the same 128-byte cache block. Memory instructions that encounter
//! conflicts are replayed with an updated activity mask reflecting the
//! transactions that remain to be issued" (paper §2). [`coalesce`] computes
//! that transaction list.

/// Size of a coalescing window / cache block in bytes.
pub const BLOCK_BYTES: u32 = 128;

/// One memory transaction: a 128-byte-aligned block plus the set of lanes it
/// serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Block-aligned base address.
    pub block_addr: u32,
    /// Indices (into the request slice) of the accesses this block serves.
    pub lanes: Vec<usize>,
}

/// A reusable transaction arena for the coalescer.
///
/// The per-issue `coalesce`/`atomic_transactions` calls used to allocate a
/// fresh `Vec<Transaction>` — and one `Vec<usize>` of lanes *per
/// transaction* — on every memory instruction. A [`TxScratch`] held by
/// the pipeline keeps those allocations alive across issue events:
/// [`coalesce_into`] / [`atomic_transactions_into`] rewrite the logical
/// prefix `txs()[..len]` in place, clearing (not dropping) each
/// transaction's lane list so its capacity is reused.
#[derive(Debug, Default)]
pub struct TxScratch {
    txs: Vec<Transaction>,
    len: usize,
    /// Round buffers for the atomic replay schedule.
    pending: Vec<(usize, u32)>,
    deferred: Vec<(usize, u32)>,
    served: Vec<u32>,
}

impl TxScratch {
    /// An empty arena (all capacity is grown on first use).
    pub fn new() -> TxScratch {
        TxScratch::default()
    }

    /// The transactions of the most recent `*_into` call.
    pub fn txs(&self) -> &[Transaction] {
        &self.txs[..self.len]
    }

    /// Number of transactions produced by the most recent `*_into` call.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the most recent `*_into` call produced no transactions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends `lane` to the transaction for `block`, merging only with
    /// transactions at index `round_start..` (atomic replay rounds must
    /// not coalesce across rounds).
    fn push_lane(&mut self, round_start: usize, block: u32, lane: usize) {
        if let Some(t) = self.txs[round_start..self.len]
            .iter_mut()
            .find(|t| t.block_addr == block)
        {
            t.lanes.push(lane);
            return;
        }
        if self.len < self.txs.len() {
            let t = &mut self.txs[self.len];
            t.block_addr = block;
            t.lanes.clear();
            t.lanes.push(lane);
        } else {
            self.txs.push(Transaction {
                block_addr: block,
                lanes: vec![lane],
            });
        }
        self.len += 1;
    }
}

/// [`coalesce`] into a reusable [`TxScratch`] — no per-call allocation
/// once the arena has warmed up.
pub fn coalesce_into(accesses: &[(usize, u32)], out: &mut TxScratch) {
    out.clear();
    for &(lane, addr) in accesses {
        out.push_lane(0, addr & !(BLOCK_BYTES - 1), lane);
    }
}

/// [`atomic_transactions`] into a reusable [`TxScratch`] — no per-call
/// allocation once the arena has warmed up.
pub fn atomic_transactions_into(accesses: &[(usize, u32)], out: &mut TxScratch) {
    out.clear();
    let mut pending = std::mem::take(&mut out.pending);
    let mut deferred = std::mem::take(&mut out.deferred);
    let mut served = std::mem::take(&mut out.served);
    pending.clear();
    pending.extend_from_slice(accesses);
    while !pending.is_empty() {
        deferred.clear();
        served.clear();
        let round_start = out.len;
        for &(lane, addr) in &pending {
            if served.contains(&addr) {
                deferred.push((lane, addr));
            } else {
                served.push(addr);
                out.push_lane(round_start, addr & !(BLOCK_BYTES - 1), lane);
            }
        }
        std::mem::swap(&mut pending, &mut deferred);
    }
    out.pending = pending;
    out.deferred = deferred;
    out.served = served;
}

/// Groups per-lane word accesses into 128-byte block transactions, in order
/// of first appearance (the replay order the hardware would follow).
///
/// Each input entry is `(lane, byte address)`; inactive lanes are simply not
/// passed in. Allocates a fresh list per call — hot paths hold a
/// [`TxScratch`] and use [`coalesce_into`] instead.
///
/// # Examples
/// ```
/// use warpweave_mem::coalesce;
/// // Four lanes touching two blocks -> two transactions.
/// let txs = coalesce(&[(0, 0), (1, 4), (2, 128), (3, 132)]);
/// assert_eq!(txs.len(), 2);
/// assert_eq!(txs[0].block_addr, 0);
/// assert_eq!(txs[1].block_addr, 128);
/// ```
pub fn coalesce(accesses: &[(usize, u32)]) -> Vec<Transaction> {
    let mut scratch = TxScratch::new();
    coalesce_into(accesses, &mut scratch);
    scratch.txs().to_vec()
}

/// Schedules atomic accesses into replay rounds: within one round each
/// distinct word is served at most once (conflicting lanes are deferred to
/// later rounds, as hardware replays them), and each round's survivors are
/// block-coalesced like ordinary accesses.
///
/// Returns the flattened transaction list across all rounds; its length is
/// the LSU occupancy in cycles. Allocates per call — hot paths use
/// [`atomic_transactions_into`].
pub fn atomic_transactions(accesses: &[(usize, u32)]) -> Vec<Transaction> {
    let mut scratch = TxScratch::new();
    atomic_transactions_into(accesses, &mut scratch);
    scratch.txs().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_single_block() {
        let acc: Vec<(usize, u32)> = (0..32).map(|i| (i, i as u32 * 4)).collect();
        let txs = coalesce(&acc);
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].lanes.len(), 32);
    }

    #[test]
    fn fully_divergent_strided() {
        // Stride of 128: every lane its own block.
        let acc: Vec<(usize, u32)> = (0..32).map(|i| (i, i as u32 * 128)).collect();
        let txs = coalesce(&acc);
        assert_eq!(txs.len(), 32);
    }

    #[test]
    fn replay_order_is_first_appearance() {
        let txs = coalesce(&[(0, 256), (1, 0), (2, 300)]);
        assert_eq!(txs[0].block_addr, 256);
        assert_eq!(txs[1].block_addr, 0);
        assert_eq!(txs[0].lanes, vec![0, 2]);
    }

    #[test]
    fn empty_request() {
        assert!(coalesce(&[]).is_empty());
        assert!(atomic_transactions(&[]).is_empty());
    }

    #[test]
    fn atomic_conflict_free_matches_coalesce() {
        let acc: Vec<(usize, u32)> = (0..8).map(|i| (i, i as u32 * 4)).collect();
        assert_eq!(atomic_transactions(&acc).len(), coalesce(&acc).len());
    }

    #[test]
    fn atomic_full_conflict_serialises() {
        // 8 lanes hammering one counter: 8 rounds of 1 transaction.
        let acc: Vec<(usize, u32)> = (0..8).map(|i| (i, 64)).collect();
        assert_eq!(atomic_transactions(&acc).len(), 8);
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_allocation() {
        // One arena driven through mixed patterns must reproduce the
        // allocating API exactly, including stale-capacity reuse between
        // calls and the no-cross-round-merge rule for atomics.
        let patterns: Vec<Vec<(usize, u32)>> = vec![
            (0..32).map(|i| (i, i as u32 * 4)).collect(),
            (0..32).map(|i| (i, i as u32 * 128)).collect(),
            vec![(0, 256), (1, 0), (2, 300)],
            vec![],
            (0..8).map(|i| (i, 64)).collect(),
            vec![(0, 8), (1, 8), (2, 12), (3, 12)],
        ];
        let mut scratch = TxScratch::new();
        for acc in &patterns {
            coalesce_into(acc, &mut scratch);
            assert_eq!(scratch.txs(), coalesce(acc).as_slice());
            atomic_transactions_into(acc, &mut scratch);
            assert_eq!(scratch.txs(), atomic_transactions(acc).as_slice());
            assert_eq!(scratch.len(), scratch.txs().len());
        }
    }

    #[test]
    fn atomic_rounds_do_not_merge_blocks_across_rounds() {
        // 2 lanes on one word: 2 rounds, and although both rounds touch
        // block 0 they must stay separate transactions.
        let mut scratch = TxScratch::new();
        atomic_transactions_into(&[(0, 64), (1, 64)], &mut scratch);
        assert_eq!(scratch.len(), 2);
        assert_eq!(scratch.txs()[0].block_addr, 0);
        assert_eq!(scratch.txs()[1].block_addr, 0);
    }

    #[test]
    fn atomic_mixed_conflicts() {
        // Two addresses × two lanes each, same block: 2 rounds × 1 tx.
        let txs = atomic_transactions(&[(0, 8), (1, 8), (2, 12), (3, 12)]);
        assert_eq!(txs.len(), 2);
        // Two addresses in different blocks, 2 lanes each: 2 rounds × 2 tx.
        let txs = atomic_transactions(&[(0, 0), (1, 0), (2, 256), (3, 256)]);
        assert_eq!(txs.len(), 4);
    }
}
