//! The machine-shared DRAM channel with deterministic epoch arbitration.
//!
//! A [`SharedDramChannel`] replaces per-SM [`crate::Dram`] instances with
//! one bandwidth pool: every SM's off-chip transactions pass through a
//! single serialising channel, so whole-GPU IPC saturates at the configured
//! bandwidth the way the paper's multi-SM platform does, instead of scaling
//! each SM's private 10 GB/s.
//!
//! # Arbitration
//!
//! Transactions are granted in **epochs** (fixed windows of core cycles).
//! Within one epoch the channel serves requests in the total order
//! `(issue_cycle, epoch-rotated SM priority, per-SM sequence number)`:
//! earlier requests first; ties at the same cycle go to the SM whose id is
//! closest (mod `num_sms`) to the epoch's priority holder, which rotates
//! every epoch so no SM is structurally starved; the per-SM sequence number
//! makes the order total. Because the order is total, the grant schedule is
//! a pure function of the *set* of requests — independent of the order SMs
//! were polled in, of host thread count and of scheduling jitter. This is
//! the channel-level half of the machine's determinism contract
//! (`crates/core/tests/shared_channel.rs` pins the other half).
//!
//! # Timing
//!
//! A granted request starts at `max(channel_free, issue_cycle)`, occupies
//! the channel for `transfer_bytes / bytes_per_cycle` cycles and completes
//! a fixed `latency` after its start — the same arithmetic as the private
//! [`crate::Dram`] model, so a single-SM machine on the shared channel
//! reproduces the inline-latency timings exactly.

use crate::dram::DramConfig;
use crate::event::MemEventQueue;

/// One off-chip transaction awaiting a grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Cycle the requesting SM's LSU put the transaction on the wire.
    pub issue_cycle: u64,
    /// Requesting SM.
    pub sm_id: u32,
    /// Per-SM monotonic transaction number (total-order tie-break).
    pub seq: u64,
    /// Block-aligned byte address of the transfer — routes the request to
    /// an interleaved channel and indexes the shared L2.
    pub addr: u32,
    /// Write-through store / atomic (true) or load fill (false).
    pub is_write: bool,
}

/// The channel's answer to one [`MemRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemGrant {
    /// SM the grant belongs to.
    pub sm_id: u32,
    /// The request's per-SM sequence number.
    pub seq: u64,
    /// Cycle the transferred data is available (start + latency).
    pub ready_cycle: u64,
    /// Cycles the request waited behind earlier transfers (start − issue).
    pub queue_delay: u64,
    /// Copied from the request: write traffic never blocks a warp.
    pub is_write: bool,
}

/// Traffic and contention counters of one channel.
///
/// All fields are integers so aggregate [`ChannelStats`] stay `Eq`-comparable
/// in the determinism tests; derived ratios ([`ChannelStats::utilization`],
/// [`ChannelStats::avg_queue_delay`]) are computed on demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Load (fill) transfers granted.
    pub read_transfers: u64,
    /// Write-through transfers granted.
    pub write_transfers: u64,
    /// Total bytes moved.
    pub bytes_transferred: u64,
    /// Requests that found the channel busy (queue_delay > 0).
    pub queued_requests: u64,
    /// Total cycles requests spent queued behind earlier transfers.
    pub queue_delay_cycles: u64,
    /// Worst single-request queue delay.
    pub max_queue_delay: u64,
    /// Load fills intercepted by the shared L2 (never reached a channel).
    pub l2_hits: u64,
    /// Load fills that missed the shared L2 and went off-chip.
    pub l2_misses: u64,
    /// CIAO-style interference counter: L2 evictions where the victim
    /// line was last filled by a *different* SM than the evictor.
    pub l2_cross_sm_evictions: u64,
}

impl ChannelStats {
    /// Total transfers granted.
    pub fn total_transfers(&self) -> u64 {
        self.read_transfers + self.write_transfers
    }

    /// Fraction of the theoretical byte budget (`bytes_per_cycle × cycles`)
    /// actually moved — 1.0 means the channel is saturated.
    pub fn utilization(&self, cycles: u64, bytes_per_cycle: f64) -> f64 {
        if cycles == 0 || bytes_per_cycle <= 0.0 {
            0.0
        } else {
            self.bytes_transferred as f64 / (bytes_per_cycle * cycles as f64)
        }
    }

    /// Mean queue delay per granted request, in cycles.
    pub fn avg_queue_delay(&self) -> f64 {
        let n = self.total_transfers();
        if n == 0 {
            0.0
        } else {
            self.queue_delay_cycles as f64 / n as f64
        }
    }

    /// The canonical `(field name, value)` enumeration of every counter, in
    /// a fixed order — what the checkpoint codec in `warpweave-core`
    /// serializes. The exhaustive destructuring makes adding a field here a
    /// compile error until the codec (and its format version) follow.
    pub fn to_fields(&self) -> Vec<(&'static str, u64)> {
        let ChannelStats {
            read_transfers,
            write_transfers,
            bytes_transferred,
            queued_requests,
            queue_delay_cycles,
            max_queue_delay,
            l2_hits,
            l2_misses,
            l2_cross_sm_evictions,
        } = *self;
        vec![
            ("read_transfers", read_transfers),
            ("write_transfers", write_transfers),
            ("bytes_transferred", bytes_transferred),
            ("queued_requests", queued_requests),
            ("queue_delay_cycles", queue_delay_cycles),
            ("max_queue_delay", max_queue_delay),
            ("l2_hits", l2_hits),
            ("l2_misses", l2_misses),
            ("l2_cross_sm_evictions", l2_cross_sm_evictions),
        ]
    }

    /// Rebuilds a [`ChannelStats`] from a [`ChannelStats::to_fields`] list.
    /// Strict: fields must appear in exactly the canonical order, with no
    /// extras and no omissions.
    ///
    /// # Errors
    /// A description of the first mismatch (wrong count or wrong name).
    pub fn from_fields(fields: &[(&str, u64)]) -> Result<ChannelStats, String> {
        let mut stats = ChannelStats::default();
        let expected = stats.to_fields();
        if fields.len() != expected.len() {
            return Err(format!(
                "expected {} channel fields, got {}",
                expected.len(),
                fields.len()
            ));
        }
        for (&(name, value), &(want, _)) in fields.iter().zip(&expected) {
            if name != want {
                return Err(format!("expected channel field `{want}`, found `{name}`"));
            }
            match name {
                "read_transfers" => stats.read_transfers = value,
                "write_transfers" => stats.write_transfers = value,
                "bytes_transferred" => stats.bytes_transferred = value,
                "queued_requests" => stats.queued_requests = value,
                "queue_delay_cycles" => stats.queue_delay_cycles = value,
                "max_queue_delay" => stats.max_queue_delay = value,
                "l2_hits" => stats.l2_hits = value,
                "l2_misses" => stats.l2_misses = value,
                "l2_cross_sm_evictions" => stats.l2_cross_sm_evictions = value,
                other => return Err(format!("unknown channel field `{other}`")),
            }
        }
        Ok(stats)
    }

    /// Folds another channel's counters into this one (sums counters, takes
    /// the maximum of high-water marks) — used when launches accumulate.
    pub fn accumulate(&mut self, other: &ChannelStats) {
        self.read_transfers += other.read_transfers;
        self.write_transfers += other.write_transfers;
        self.bytes_transferred += other.bytes_transferred;
        self.queued_requests += other.queued_requests;
        self.queue_delay_cycles += other.queue_delay_cycles;
        self.max_queue_delay = self.max_queue_delay.max(other.max_queue_delay);
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l2_cross_sm_evictions += other.l2_cross_sm_evictions;
    }
}

/// Sorts `requests` into the deterministic epoch grant order
/// `(issue_cycle, rotated SM priority, sm_id, seq)`.
///
/// Priority ranks SMs by **position in the sorted participating-SM set**,
/// anchored at the epoch's priority holder `epoch % num_sms` (the first
/// participant whose id is ≥ the holder, wrapping). Ranking by position
/// rather than by `sm_id % num_sms` keeps the rotation fair when the
/// participant set is non-contiguous — e.g. when channels shard requests
/// by address — instead of collapsing several SMs onto one rank; for
/// contiguous ids `0..num_sms` the order is identical to the historical
/// id-based rotation. The order depends only on the *set* of requests
/// (plus `epoch` and `num_sms`), which is what makes every consumer —
/// channel arbitration, the shared-L2 probe pass — deterministic under
/// any polling order.
pub fn sort_epoch_order(epoch: u64, num_sms: u32, requests: &mut [MemRequest]) {
    let n = num_sms.max(1);
    let holder = (epoch % n as u64) as u32;
    let mut sms: Vec<u32> = requests.iter().map(|r| r.sm_id).collect();
    sms.sort_unstable();
    sms.dedup();
    if sms.is_empty() {
        return;
    }
    let m = sms.len() as u32;
    let holder_pos = sms.partition_point(|&id| id < holder) as u32 % m;
    let rank = |sm: u32| {
        let pos = sms.partition_point(|&id| id < sm) as u32;
        (pos + m - holder_pos) % m
    };
    requests.sort_unstable_by_key(|r| (r.issue_cycle, rank(r.sm_id), r.sm_id, r.seq));
}

/// A single DRAM channel shared by every SM of a machine.
///
/// # Examples
/// ```
/// use warpweave_mem::{DramConfig, MemRequest, SharedDramChannel};
///
/// let mut ch = SharedDramChannel::new(DramConfig::paper());
/// let reqs = vec![
///     MemRequest { issue_cycle: 0, sm_id: 1, seq: 0, addr: 0x80, is_write: false },
///     MemRequest { issue_cycle: 0, sm_id: 0, seq: 0, addr: 0x00, is_write: false },
/// ];
/// let grants = ch.arbitrate_epoch(0, 2, reqs);
/// // Epoch 0 gives SM 0 priority: it goes first, SM 1 queues behind it.
/// assert_eq!(grants[0].sm_id, 0);
/// assert_eq!(grants[0].ready_cycle, 330);
/// assert_eq!(grants[1].queue_delay, 12); // 128 B / 10 B-per-cycle
/// ```
#[derive(Debug, Clone)]
pub struct SharedDramChannel {
    cfg: DramConfig,
    /// Fractional cycle at which the channel next becomes free.
    free: f64,
    stats: ChannelStats,
    /// Completions granted but not yet in the past — the machine queries
    /// this to fast-forward idle epochs to the next memory event.
    inflight: MemEventQueue<()>,
}

impl SharedDramChannel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        SharedDramChannel {
            cfg,
            free: 0.0,
            stats: ChannelStats::default(),
            inflight: MemEventQueue::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated traffic/contention statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Grants one request immediately (single-SM / private-channel mode):
    /// identical arithmetic to [`crate::Dram::read`] / [`crate::Dram::write`].
    pub fn grant(&mut self, req: &MemRequest) -> MemGrant {
        // Issue cycles are non-decreasing across epochs, so completions
        // before this request's issue can never be queried again — drain
        // them to keep the in-flight heap bounded by true outstanding work.
        while self
            .inflight
            .pop_ready(req.issue_cycle.saturating_sub(1))
            .is_some()
        {}
        let start = self.free.max(req.issue_cycle as f64);
        self.free = start + self.cfg.transfer_bytes as f64 / self.cfg.bytes_per_cycle;
        let start_cycle = start as u64;
        let ready_cycle = start_cycle + self.cfg.latency;
        let queue_delay = start_cycle - req.issue_cycle;
        if req.is_write {
            self.stats.write_transfers += 1;
        } else {
            self.stats.read_transfers += 1;
        }
        self.stats.bytes_transferred += self.cfg.transfer_bytes as u64;
        if queue_delay > 0 {
            self.stats.queued_requests += 1;
        }
        self.stats.queue_delay_cycles += queue_delay;
        self.stats.max_queue_delay = self.stats.max_queue_delay.max(queue_delay);
        self.inflight.push(ready_cycle, req.sm_id, req.seq, ());
        MemGrant {
            sm_id: req.sm_id,
            seq: req.seq,
            ready_cycle,
            queue_delay,
            is_write: req.is_write,
        }
    }

    /// Grants every request of one epoch in the deterministic total order
    /// `(issue_cycle, rotated SM priority, seq)`; see the module docs. The
    /// result is invariant under any permutation of `requests` — the
    /// polling-order property `crates/mem/tests/channel_properties.rs`
    /// pins — and is returned in grant order.
    pub fn arbitrate_epoch(
        &mut self,
        epoch: u64,
        num_sms: u32,
        mut requests: Vec<MemRequest>,
    ) -> Vec<MemGrant> {
        sort_epoch_order(epoch, num_sms, &mut requests);
        requests.iter().map(|r| self.grant(r)).collect()
    }

    /// The earliest granted completion at or after `now` — lets a driver
    /// fast-forward idle stretches to the next memory event. A pure peek:
    /// repeated calls return the same answer and never change subsequent
    /// grant results (past completions are pruned lazily on every
    /// [`SharedDramChannel::grant`], or explicitly via
    /// [`SharedDramChannel::retire_completions_before`]).
    pub fn next_completion_at_or_after(&self, now: u64) -> Option<u64> {
        self.inflight.next_ready_at_or_after(now)
    }

    /// Discards granted completions strictly before `now` so
    /// [`SharedDramChannel::outstanding_transfers`] stays a tight bound on
    /// work still in flight. Callers with a monotonic clock (the machine's
    /// epoch loop) invoke this deliberately; the peek above never does.
    pub fn retire_completions_before(&mut self, now: u64) {
        while self.inflight.pop_ready(now.saturating_sub(1)).is_some() {}
    }

    /// Number of granted completions not yet pruned as past — a cheap
    /// upper bound on outstanding transfers. The machine's epoch-livelock
    /// watchdog reports it so a hang can be told apart from a long DRAM
    /// queue (this non-zero means traffic is still in flight and the
    /// stall counter must not advance).
    pub fn outstanding_transfers(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_field_codec_round_trips() {
        let stats = ChannelStats {
            read_transfers: 1,
            write_transfers: 2,
            bytes_transferred: 3,
            queued_requests: 4,
            queue_delay_cycles: 5,
            max_queue_delay: 6,
            l2_hits: 7,
            l2_misses: 8,
            l2_cross_sm_evictions: 9,
        };
        assert_eq!(
            ChannelStats::from_fields(&stats.to_fields()).unwrap(),
            stats
        );
        let mut bad = stats.to_fields();
        bad.swap(0, 1);
        assert!(ChannelStats::from_fields(&bad).is_err());
        assert!(ChannelStats::from_fields(&bad[..2]).is_err());
    }

    fn read(issue_cycle: u64, sm_id: u32, seq: u64) -> MemRequest {
        MemRequest {
            issue_cycle,
            sm_id,
            seq,
            addr: 0,
            is_write: false,
        }
    }

    #[test]
    fn matches_private_dram_arithmetic() {
        // The shared channel serving one SM must reproduce Dram exactly.
        let mut shared = SharedDramChannel::new(DramConfig::paper());
        let mut private = crate::Dram::new(DramConfig::paper());
        for (i, issue) in [0u64, 0, 0, 100, 10_000].into_iter().enumerate() {
            let grant = shared.grant(&read(issue, 0, i as u64));
            assert_eq!(grant.ready_cycle, private.read(issue), "request {i}");
        }
    }

    #[test]
    fn epoch_priority_rotates() {
        let cfg = DramConfig::paper();
        // Epoch 0: SM 0 first; epoch 1: SM 1 first.
        let mut ch = SharedDramChannel::new(cfg);
        let g0 = ch.arbitrate_epoch(0, 2, vec![read(0, 1, 0), read(0, 0, 0)]);
        assert_eq!((g0[0].sm_id, g0[1].sm_id), (0, 1));
        let mut ch = SharedDramChannel::new(cfg);
        let g1 = ch.arbitrate_epoch(1, 2, vec![read(0, 1, 0), read(0, 0, 0)]);
        assert_eq!((g1[0].sm_id, g1[1].sm_id), (1, 0));
    }

    #[test]
    fn earlier_issue_beats_priority() {
        let mut ch = SharedDramChannel::new(DramConfig::paper());
        let g = ch.arbitrate_epoch(0, 2, vec![read(5, 0, 0), read(3, 1, 0)]);
        assert_eq!(g[0].sm_id, 1, "issue cycle dominates SM priority");
    }

    #[test]
    fn contention_stats_accumulate() {
        let mut ch = SharedDramChannel::new(DramConfig::paper());
        let grants = ch.arbitrate_epoch(0, 4, (0..4).map(|s| read(0, s, 0)).collect());
        let st = ch.stats();
        assert_eq!(st.read_transfers, 4);
        assert_eq!(st.bytes_transferred, 4 * 128);
        assert_eq!(st.queued_requests, 3, "all but the first wait");
        assert_eq!(st.max_queue_delay, grants[3].queue_delay);
        assert!(st.utilization(52, 10.0) > 0.98, "back-to-back saturates");
        assert!(st.avg_queue_delay() > 0.0);
    }

    #[test]
    fn next_completion_tracks_inflight() {
        let mut ch = SharedDramChannel::new(DramConfig::paper());
        assert_eq!(ch.next_completion_at_or_after(0), None);
        ch.grant(&read(0, 0, 0));
        ch.grant(&read(0, 0, 1));
        assert_eq!(ch.next_completion_at_or_after(0), Some(330));
        assert_eq!(ch.next_completion_at_or_after(331), Some(342));
        assert_eq!(ch.next_completion_at_or_after(400), None);
    }

    #[test]
    fn peek_is_non_destructive() {
        let mut ch = SharedDramChannel::new(DramConfig::paper());
        ch.grant(&read(0, 0, 0));
        ch.grant(&read(0, 0, 1));
        assert_eq!(ch.outstanding_transfers(), 2);
        // Peeking past the first completion must not discard it.
        assert_eq!(ch.next_completion_at_or_after(331), Some(342));
        assert_eq!(ch.outstanding_transfers(), 2);
        assert_eq!(ch.next_completion_at_or_after(0), Some(330));
        // Retiring is the explicit, separate operation.
        ch.retire_completions_before(331);
        assert_eq!(ch.outstanding_transfers(), 1);
        assert_eq!(ch.next_completion_at_or_after(0), Some(342));
    }

    #[test]
    fn rotation_ranks_by_position_for_non_contiguous_ids() {
        // Participants {1, 5}: the historical `sm % n` rank with n = 2
        // mapped both to odd ranks (1 % 2 == 5 % 2), collapsing the
        // rotation. Position ranking keeps them distinct and rotates.
        let cfg = DramConfig::paper();
        let mut ch = SharedDramChannel::new(cfg);
        let g0 = ch.arbitrate_epoch(0, 8, vec![read(0, 5, 0), read(0, 1, 0)]);
        assert_eq!((g0[0].sm_id, g0[1].sm_id), (1, 5), "holder 0 → SM 1 first");
        let mut ch = SharedDramChannel::new(cfg);
        let g1 = ch.arbitrate_epoch(3, 8, vec![read(0, 5, 0), read(0, 1, 0)]);
        assert_eq!((g1[0].sm_id, g1[1].sm_id), (5, 1), "holder 3 → SM 5 first");
    }
}
