//! Flat, sparse, word-granular backing store for global and shared memory.

use std::collections::HashMap;

const PAGE_WORDS: usize = 1024; // 4 KiB pages
const PAGE_SHIFT: u32 = 12;

/// A sparse 32-bit byte-addressed memory storing aligned 32-bit words.
///
/// Unwritten locations read as zero. Addresses must be 4-byte aligned —
/// the warpweave LSU only issues word accesses, like the 32-bit loads the
/// benchmarked kernels use.
///
/// # Examples
/// ```
/// use warpweave_mem::Memory;
/// let mut m = Memory::new();
/// m.write_u32(0x100, 42);
/// assert_eq!(m.read_u32(0x100), 42);
/// assert_eq!(m.read_u32(0x104), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u32; PAGE_WORDS]>>,
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    fn split(addr: u32) -> (u32, usize) {
        assert!(addr.is_multiple_of(4), "unaligned access at 0x{addr:x}");
        (addr >> PAGE_SHIFT, ((addr & 0xfff) >> 2) as usize)
    }

    /// Reads the aligned 32-bit word at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let (page, word) = Self::split(addr);
        self.pages.get(&page).map_or(0, |p| p[word])
    }

    /// Writes the aligned 32-bit word at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let (page, word) = Self::split(addr);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[word] = value;
    }

    /// Reads an `f32` (bit-cast) at `addr`.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` (bit-cast) at `addr`.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads an `i32` at `addr`.
    pub fn read_i32(&self, addr: u32) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Writes an `i32` at `addr`.
    pub fn write_i32(&mut self, addr: u32, value: i32) {
        self.write_u32(addr, value as u32);
    }

    /// Bulk-writes consecutive words starting at `addr`.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, w);
        }
    }

    /// Bulk-writes consecutive `f32` values starting at `addr`.
    pub fn write_f32s(&mut self, addr: u32, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u32, v);
        }
    }

    /// Bulk-reads `n` consecutive words starting at `addr`.
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }

    /// Bulk-reads `n` consecutive `f32` values starting at `addr`.
    pub fn read_f32s(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u32)).collect()
    }

    /// Number of resident 4 KiB pages (for capacity diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u32(0xffff_fffc), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let mut m = Memory::new();
        for i in 0..2048u32 {
            m.write_u32(i * 4, i ^ 0xdead);
        }
        for i in 0..2048u32 {
            assert_eq!(m.read_u32(i * 4), i ^ 0xdead);
        }
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f32_bitcast_roundtrip() {
        let mut m = Memory::new();
        m.write_f32(8, -1.5);
        assert_eq!(m.read_f32(8), -1.5);
        m.write_f32(12, f32::INFINITY);
        assert!(m.read_f32(12).is_infinite());
    }

    #[test]
    #[should_panic]
    fn unaligned_read_panics() {
        Memory::new().read_u32(2);
    }

    #[test]
    fn bulk_helpers() {
        let mut m = Memory::new();
        m.write_words(100, &[1, 2, 3]);
        assert_eq!(m.read_words(100, 3), vec![1, 2, 3]);
        m.write_f32s(200, &[1.0, 2.0]);
        assert_eq!(m.read_f32s(200, 2), vec![1.0, 2.0]);
    }
}
