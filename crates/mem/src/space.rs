//! Flat, sparse, word-granular backing store for global and shared memory.

const PAGE_WORDS: usize = 1024; // 4 KiB pages
/// Second-level tables cover `DIR_SPAN` pages (4 MiB of address space)
/// each; the root directory has one slot per possible table.
const DIR_SPAN: usize = 1024;
const DIR_SLOTS: usize = 1024;

type Page = Box<[u32; PAGE_WORDS]>;

/// A sparse 32-bit byte-addressed memory storing aligned 32-bit words.
///
/// Unwritten locations read as zero. Addresses must be 4-byte aligned —
/// the warpweave LSU only issues word accesses, like the 32-bit loads the
/// benchmarked kernels use.
///
/// Storage is a two-level page table (root directory → 4 MiB directory →
/// 4 KiB page), so the hot word accesses are two pointer chases and an
/// index — no hashing on the simulator's LSU path. Unpopulated levels
/// cost nothing until first written.
///
/// # Examples
/// ```
/// use warpweave_mem::Memory;
/// let mut m = Memory::new();
/// m.write_u32(0x100, 42);
/// assert_eq!(m.read_u32(0x100), 42);
/// assert_eq!(m.read_u32(0x104), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    dirs: Vec<Option<Box<[Option<Page>; DIR_SPAN]>>>,
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Splits an aligned byte address into (directory, page, word) indices.
    fn split(addr: u32) -> (usize, usize, usize) {
        assert!(addr.is_multiple_of(4), "unaligned access at 0x{addr:x}");
        let w = (addr >> 2) as usize;
        (w >> 20, (w >> 10) & (DIR_SPAN - 1), w & (PAGE_WORDS - 1))
    }

    /// Reads the aligned 32-bit word at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let (di, pi, wi) = Self::split(addr);
        match self.dirs.get(di) {
            Some(Some(dir)) => dir[pi].as_ref().map_or(0, |p| p[wi]),
            _ => 0,
        }
    }

    /// Writes the aligned 32-bit word at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let (di, pi, wi) = Self::split(addr);
        if self.dirs.is_empty() {
            self.dirs.resize(DIR_SLOTS, None);
        }
        let dir = self.dirs[di].get_or_insert_with(|| Box::new([const { None }; DIR_SPAN]));
        dir[pi].get_or_insert_with(|| Box::new([0; PAGE_WORDS]))[wi] = value;
    }

    /// Read-only view of the resident 4 KiB page containing `addr`
    /// (`None` when unwritten — reads as zero). Hot loops pair this with
    /// [`Memory::page_word`] to amortise the table walk across
    /// consecutive accesses to one page.
    pub fn page(&self, addr: u32) -> Option<&[u32]> {
        let w = (addr >> 2) as usize;
        match self.dirs.get(w >> 20) {
            Some(Some(dir)) => dir[(w >> 10) & (DIR_SPAN - 1)].as_deref().map(|p| &p[..]),
            _ => None,
        }
    }

    /// Word index of (aligned) `addr` within its 4 KiB page.
    pub fn page_word(addr: u32) -> usize {
        ((addr >> 2) as usize) & (PAGE_WORDS - 1)
    }

    /// Reads an `f32` (bit-cast) at `addr`.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` (bit-cast) at `addr`.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads an `i32` at `addr`.
    pub fn read_i32(&self, addr: u32) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Writes an `i32` at `addr`.
    pub fn write_i32(&mut self, addr: u32, value: i32) {
        self.write_u32(addr, value as u32);
    }

    /// Bulk-writes consecutive words starting at `addr`.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, w);
        }
    }

    /// Bulk-writes consecutive `f32` values starting at `addr`.
    pub fn write_f32s(&mut self, addr: u32, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u32, v);
        }
    }

    /// Bulk-reads `n` consecutive words starting at `addr`.
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }

    /// Bulk-reads `n` consecutive `f32` values starting at `addr`.
    pub fn read_f32s(&self, addr: u32, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u32)).collect()
    }

    /// Number of resident 4 KiB pages (for capacity diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.dirs
            .iter()
            .flatten()
            .map(|d| d.iter().flatten().count())
            .sum()
    }
}

/// Dense word-granular backing store for one block's *shared* memory.
///
/// Shared spaces are architecturally tiny (tens of KB), so a flat,
/// lazily-grown `Vec<u32>` beats the paged [`Memory`]: a load is one
/// bounds-checked index with no table walk, and the whole space stays in
/// a few cache lines. Unwritten locations read as zero; addresses must be
/// 4-byte aligned, like [`Memory`].
///
/// # Examples
/// ```
/// use warpweave_mem::SharedMem;
/// let mut m = SharedMem::new();
/// m.write_u32(0x40, 7);
/// assert_eq!(m.read_u32(0x40), 7);
/// assert_eq!(m.read_u32(0x44), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedMem {
    words: Vec<u32>,
}

impl SharedMem {
    /// An empty (all-zero) shared space.
    pub fn new() -> Self {
        SharedMem::default()
    }

    /// Word index of (aligned) `addr`.
    fn idx(addr: u32) -> usize {
        assert!(addr.is_multiple_of(4), "unaligned access at 0x{addr:x}");
        (addr >> 2) as usize
    }

    /// Reads the aligned 32-bit word at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.words.get(Self::idx(addr)).copied().unwrap_or(0)
    }

    /// Writes the aligned 32-bit word at `addr`, growing the store to
    /// cover it.
    ///
    /// # Panics
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let i = Self::idx(addr);
        if i >= self.words.len() {
            // Grow in 1 KiB steps so unit-stride fills don't re-resize
            // per word.
            self.words.resize((i + 1).next_multiple_of(256), 0);
        }
        self.words[i] = value;
    }

    /// The resident words as one flat slice (word `i` is byte address
    /// `4 * i`; reads beyond the end are zero). The load fast path
    /// indexes this directly instead of calling [`SharedMem::read_u32`]
    /// per lane.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Zero-fills the space in place, keeping its allocation — the
    /// block-relaunch reset.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_roundtrip_and_zero_default() {
        let mut m = SharedMem::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u32(0xfffc), 0);
        m.write_u32(0x100, 42);
        assert_eq!(m.read_u32(0x100), 42);
        assert_eq!(m.read_u32(0x104), 0);
        assert_eq!(m.words()[0x40], 42);
        m.clear();
        assert_eq!(m.read_u32(0x100), 0);
    }

    #[test]
    #[should_panic]
    fn shared_unaligned_panics() {
        SharedMem::new().read_u32(6);
    }

    #[test]
    fn zero_initialised() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u32(0xffff_fffc), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let mut m = Memory::new();
        for i in 0..2048u32 {
            m.write_u32(i * 4, i ^ 0xdead);
        }
        for i in 0..2048u32 {
            assert_eq!(m.read_u32(i * 4), i ^ 0xdead);
        }
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn f32_bitcast_roundtrip() {
        let mut m = Memory::new();
        m.write_f32(8, -1.5);
        assert_eq!(m.read_f32(8), -1.5);
        m.write_f32(12, f32::INFINITY);
        assert!(m.read_f32(12).is_infinite());
    }

    #[test]
    #[should_panic]
    fn unaligned_read_panics() {
        Memory::new().read_u32(2);
    }

    #[test]
    fn bulk_helpers() {
        let mut m = Memory::new();
        m.write_words(100, &[1, 2, 3]);
        assert_eq!(m.read_words(100, 3), vec![1, 2, 3]);
        m.write_f32s(200, &[1.0, 2.0]);
        assert_eq!(m.read_f32s(200, 2), vec![1.0, 2.0]);
    }
}
