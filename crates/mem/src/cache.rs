//! Set-associative L1 data cache (tag-only model).
//!
//! Matches table 2 of the paper: 48 KiB, 6-way, 128-byte blocks, 3-cycle
//! hits. Data itself lives in [`crate::Memory`]; the cache tracks tags and
//! LRU state to classify accesses. Loads allocate on miss; stores are
//! write-through and do not allocate (Fermi-style global store behaviour)
//! but update a present line's recency.

use crate::coalesce::BLOCK_BYTES;

/// L1 geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's L1: 48 K, 6-way, 128 B lines, 3 cycles (table 2).
    pub fn paper_l1() -> Self {
        CacheConfig {
            capacity_bytes: 48 * 1024,
            ways: 6,
            line_bytes: BLOCK_BYTES,
            hit_latency: 3,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u32 {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }

    /// Checks the geometry is realisable: non-zero dimensions, capacity an
    /// exact multiple of `ways × line_bytes` (integer division would
    /// otherwise silently truncate capacity — or round it to **zero** sets,
    /// making set indexing divide by zero), and a power-of-two set count.
    ///
    /// # Errors
    /// A description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.line_bytes == 0 || self.capacity_bytes == 0 {
            return Err(format!(
                "cache geometry has a zero dimension: {} B, {} ways, {} B lines",
                self.capacity_bytes, self.ways, self.line_bytes
            ));
        }
        let way_bytes = self
            .ways
            .checked_mul(self.line_bytes)
            .ok_or_else(|| format!("cache ways × line_bytes overflows: {self:?}"))?;
        if !self.capacity_bytes.is_multiple_of(way_bytes) {
            return Err(format!(
                "cache capacity {} B is not a multiple of ways × line_bytes = {} B",
                self.capacity_bytes, way_bytes
            ));
        }
        let sets = self.capacity_bytes / way_bytes;
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!(
                "cache set count {sets} (capacity {} / {} B per way-slice) \
                 must be a non-zero power of two",
                self.capacity_bytes, way_bytes
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Line present.
    Hit,
    /// Line absent; for loads a fill was allocated.
    Miss,
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load accesses that hit.
    pub load_hits: u64,
    /// Load accesses that missed.
    pub load_misses: u64,
    /// Store accesses (write-through; hit/miss does not change traffic).
    pub stores: u64,
}

impl CacheStats {
    /// Load hit rate in `[0, 1]`; 1.0 when no loads were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.load_hits + self.load_misses;
        if total == 0 {
            1.0
        } else {
            self.load_hits as f64 / total as f64
        }
    }
}

/// A set-associative, true-LRU, tag-only L1 cache model.
///
/// # Examples
/// ```
/// use warpweave_mem::{Cache, CacheConfig, AccessKind};
/// let mut c = Cache::new(CacheConfig::paper_l1());
/// assert_eq!(c.access_load(0), AccessKind::Miss);
/// assert_eq!(c.access_load(0), AccessKind::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets or ways).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.num_sets() > 0, "degenerate cache");
        Cache {
            cfg,
            lines: vec![Line::default(); (cfg.num_sets() * cfg.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_range(&self, addr: u32) -> (usize, u32) {
        let block = addr / self.cfg.line_bytes;
        let set = block % self.cfg.num_sets();
        let tag = block / self.cfg.num_sets();
        ((set * self.cfg.ways) as usize, tag)
    }

    fn probe(&mut self, addr: u32) -> Option<usize> {
        let (base, tag) = self.set_range(addr);
        (base..base + self.cfg.ways as usize)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// Performs a load access to the block containing `addr`: allocates on
    /// miss (LRU victim) and returns the access classification.
    pub fn access_load(&mut self, addr: u32) -> AccessKind {
        self.tick += 1;
        if let Some(i) = self.probe(addr) {
            self.lines[i].lru = self.tick;
            self.stats.load_hits += 1;
            return AccessKind::Hit;
        }
        self.stats.load_misses += 1;
        let (base, tag) = self.set_range(addr);
        let victim = (base..base + self.cfg.ways as usize)
            .min_by_key(|&i| {
                if self.lines[i].valid {
                    self.lines[i].lru
                } else {
                    0
                }
            })
            .expect("non-empty set");
        self.lines[victim] = Line {
            tag,
            valid: true,
            lru: self.tick,
        };
        AccessKind::Miss
    }

    /// Performs a store access: write-through, no allocate; refreshes LRU on
    /// hit.
    pub fn access_store(&mut self, addr: u32) -> AccessKind {
        self.tick += 1;
        self.stats.stores += 1;
        match self.probe(addr) {
            Some(i) => {
                self.lines[i].lru = self.tick;
                AccessKind::Hit
            }
            None => AccessKind::Miss,
        }
    }

    /// Invalidates all lines (keeps statistics).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 128 B = 512 B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 128,
            hit_latency: 3,
        })
    }

    #[test]
    fn paper_geometry() {
        let c = CacheConfig::paper_l1();
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.hit_latency, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_geometry() {
        let ok = CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 128,
            hit_latency: 3,
        };
        assert!(ok.validate().is_ok());
        // Zero sets: capacity smaller than one way-slice.
        let tiny = CacheConfig {
            capacity_bytes: 128,
            ..ok
        };
        assert!(tiny.validate().unwrap_err().contains("multiple"));
        // Truncating division: 640 / 256 = 2 sets but 128 B silently lost.
        let trunc = CacheConfig {
            capacity_bytes: 640,
            ..ok
        };
        assert!(trunc.validate().unwrap_err().contains("multiple"));
        // Non-power-of-two set count (3 sets).
        let npot = CacheConfig {
            capacity_bytes: 768,
            ..ok
        };
        assert!(npot.validate().unwrap_err().contains("power of two"));
        // Zero dimensions.
        for bad in [
            CacheConfig { ways: 0, ..ok },
            CacheConfig {
                line_bytes: 0,
                ..ok
            },
            CacheConfig {
                capacity_bytes: 0,
                ..ok
            },
        ] {
            assert!(bad.validate().unwrap_err().contains("zero dimension"));
        }
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert_eq!(c.access_load(0), AccessKind::Miss);
        assert_eq!(c.access_load(64), AccessKind::Hit); // same 128B line
        assert_eq!(c.stats().load_hits, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds blocks where (addr/128) % 2 == 0: 0, 256, 512…
        c.access_load(0); // A
        c.access_load(256); // B — set full
        c.access_load(0); // touch A (B becomes LRU)
        c.access_load(512); // C evicts B
        assert_eq!(c.access_load(0), AccessKind::Hit);
        assert_eq!(c.access_load(256), AccessKind::Miss);
    }

    #[test]
    fn store_does_not_allocate() {
        let mut c = tiny();
        assert_eq!(c.access_store(0), AccessKind::Miss);
        assert_eq!(c.access_load(0), AccessKind::Miss); // still absent
        assert_eq!(c.access_store(0), AccessKind::Hit); // now filled by load
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access_load(0);
        c.flush();
        assert_eq!(c.access_load(0), AccessKind::Miss);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access_load(0); // set 0
        c.access_load(128); // set 1
        assert_eq!(c.access_load(0), AccessKind::Hit);
        assert_eq!(c.access_load(128), AccessKind::Hit);
    }
}
