//! A deterministic min-heap of timed memory events.
//!
//! Every queue in the event-driven memory system — in-flight DRAM
//! completions inside [`crate::SharedDramChannel`], the SM pipeline's
//! pending-writeback queue — keys its events on the total order
//! `(ready_cycle, sm_id, seq)`. Because the key is total (the `seq`
//! component is unique per `sm_id`), pop order is a pure function of the
//! *set* of queued events, never of insertion order, host threading or
//! hash-map iteration — the property the machine's bit-identical-across-
//! thread-counts contract is built on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One timed event: a payload that becomes relevant at `ready_cycle`.
///
/// Ordering is `(ready_cycle, sm_id, seq)` ascending; the payload does not
/// participate in the order.
#[derive(Debug, Clone, Copy)]
pub struct MemEvent<T> {
    /// Cycle at which the event fires.
    pub ready_cycle: u64,
    /// Originating SM (tie-break between SMs at the same cycle).
    pub sm_id: u32,
    /// Per-SM monotonic sequence number (final, unique tie-break).
    pub seq: u64,
    /// The event's payload (ignored by the ordering).
    pub payload: T,
}

impl<T> MemEvent<T> {
    fn key(&self) -> (u64, u32, u64) {
        (self.ready_cycle, self.sm_id, self.seq)
    }
}

impl<T> PartialEq for MemEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<T> Eq for MemEvent<T> {}

impl<T> PartialOrd for MemEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for MemEvent<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A deterministic binary min-heap of [`MemEvent`]s.
///
/// # Examples
/// ```
/// use warpweave_mem::MemEventQueue;
///
/// let mut q = MemEventQueue::new();
/// q.push(340, 1, 7, "late");
/// q.push(330, 0, 3, "early");
/// assert_eq!(q.next_ready_cycle(), Some(330));
/// assert_eq!(q.pop_ready(330).map(|e| e.payload), Some("early"));
/// assert_eq!(q.pop_ready(330), None); // 340 not ready yet
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemEventQueue<T> {
    heap: BinaryHeap<Reverse<MemEvent<T>>>,
}

impl<T> MemEventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MemEventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Enqueues an event firing at `ready_cycle`.
    pub fn push(&mut self, ready_cycle: u64, sm_id: u32, seq: u64, payload: T) {
        self.heap.push(Reverse(MemEvent {
            ready_cycle,
            sm_id,
            seq,
            payload,
        }));
    }

    /// The earliest queued fire cycle, if any.
    pub fn next_ready_cycle(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.ready_cycle)
    }

    /// The earliest queued fire cycle at or after `now`, if any — a pure
    /// read: the queue is not modified. Events before `now` are skipped,
    /// not removed (O(len) scan; the queue is bounded by outstanding work).
    pub fn next_ready_at_or_after(&self, now: u64) -> Option<u64> {
        self.heap
            .iter()
            .map(|Reverse(e)| e.ready_cycle)
            .filter(|&c| c >= now)
            .min()
    }

    /// Pops the minimum event if it fires at or before `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<MemEvent<T>> {
        if self.next_ready_cycle()? <= now {
            self.heap.pop().map(|Reverse(e)| e)
        } else {
            None
        }
    }

    /// Pops the minimum event unconditionally.
    pub fn pop(&mut self) -> Option<MemEvent<T>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order_regardless_of_insertion() {
        let keys = [(500u64, 2u32, 0u64), (330, 0, 4), (330, 0, 1), (330, 1, 0)];
        // Two insertion orders, same pop order.
        let mut a = MemEventQueue::new();
        for &(c, s, q) in &keys {
            a.push(c, s, q, ());
        }
        let mut b = MemEventQueue::new();
        for &(c, s, q) in keys.iter().rev() {
            b.push(c, s, q, ());
        }
        let drain = |mut q: MemEventQueue<()>| {
            let mut out = Vec::new();
            while let Some(e) = q.pop() {
                out.push((e.ready_cycle, e.sm_id, e.seq));
            }
            out
        };
        let order = drain(a);
        assert_eq!(order, drain(b));
        assert_eq!(
            order,
            vec![(330, 0, 1), (330, 0, 4), (330, 1, 0), (500, 2, 0)]
        );
    }

    #[test]
    fn pop_ready_respects_now() {
        let mut q = MemEventQueue::new();
        q.push(100, 0, 0, 'a');
        q.push(200, 0, 1, 'b');
        assert!(q.pop_ready(99).is_none());
        assert_eq!(q.pop_ready(100).map(|e| e.payload), Some('a'));
        assert_eq!(q.next_ready_cycle(), Some(200));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
