//! Machine-shared L2 cache between the per-SM L1s and the DRAM channels.
//!
//! A [`SharedL2`] is a tag-only, true-LRU, set-associative cache probed by
//! the machine's epoch loop *before* channel arbitration: L1 misses that
//! hit in L2 are granted locally (issue + hit latency, no queueing) and
//! never reach a channel; misses allocate and fall through. Stores stay
//! write-through/no-allocate end to end — they refresh a present line's
//! recency but always consume channel bandwidth, mirroring the L1 policy.
//!
//! Every line remembers which SM last filled it, so evictions where the
//! evictor and the victim's filler differ are counted as **cross-SM
//! evictions** — the CIAO-style interference statistic that separates
//! capacity pressure an SM inflicts on itself from pressure inflicted by
//! its neighbours.
//!
//! Determinism: the machine probes the L2 in the epoch's deterministic
//! grant order ([`crate::channel::sort_epoch_order`]), so LRU state — and
//! therefore every hit/miss classification — is a pure function of the
//! request set, independent of host threading.

use crate::cache::{AccessKind, CacheConfig};

/// Hit/miss/interference counters of the shared L2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Load fills served by the L2 (no channel traffic).
    pub hits: u64,
    /// Load fills that missed and went off-chip.
    pub misses: u64,
    /// Evictions where the victim line was filled by a different SM.
    pub cross_sm_evictions: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct L2Line {
    tag: u32,
    owner_sm: u32,
    valid: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// A machine-shared, set-associative, true-LRU tag-only L2 model.
///
/// # Examples
/// ```
/// use warpweave_mem::{AccessKind, CacheConfig, SharedL2};
///
/// let mut l2 = SharedL2::new(CacheConfig::paper_l1());
/// assert_eq!(l2.access_load(0x80, 0), AccessKind::Miss); // SM 0 fills
/// assert_eq!(l2.access_load(0x80, 1), AccessKind::Hit);  // SM 1 reuses
/// assert_eq!(l2.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SharedL2 {
    cfg: CacheConfig,
    lines: Vec<L2Line>,
    tick: u64,
    stats: L2Stats,
}

impl SharedL2 {
    /// Creates an empty L2 with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero sets or ways) — machine
    /// construction validates via [`CacheConfig::validate`] first.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0 && cfg.num_sets() > 0, "degenerate L2");
        SharedL2 {
            cfg,
            lines: vec![L2Line::default(); (cfg.num_sets() * cfg.ways) as usize],
            tick: 0,
            stats: L2Stats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> L2Stats {
        self.stats
    }

    fn set_range(&self, addr: u32) -> (usize, u32) {
        let block = addr / self.cfg.line_bytes;
        let set = block % self.cfg.num_sets();
        let tag = block / self.cfg.num_sets();
        ((set * self.cfg.ways) as usize, tag)
    }

    fn probe(&self, addr: u32) -> Option<usize> {
        let (base, tag) = self.set_range(addr);
        (base..base + self.cfg.ways as usize)
            .find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    /// A load fill from SM `sm_id`: allocates on miss (LRU victim,
    /// recording interference when the victim belonged to another SM).
    pub fn access_load(&mut self, addr: u32, sm_id: u32) -> AccessKind {
        self.tick += 1;
        if let Some(i) = self.probe(addr) {
            self.lines[i].lru = self.tick;
            self.stats.hits += 1;
            return AccessKind::Hit;
        }
        self.stats.misses += 1;
        let (base, tag) = self.set_range(addr);
        let victim = (base..base + self.cfg.ways as usize)
            .min_by_key(|&i| {
                if self.lines[i].valid {
                    self.lines[i].lru
                } else {
                    0
                }
            })
            .expect("non-empty set");
        if self.lines[victim].valid && self.lines[victim].owner_sm != sm_id {
            self.stats.cross_sm_evictions += 1;
        }
        self.lines[victim] = L2Line {
            tag,
            owner_sm: sm_id,
            valid: true,
            lru: self.tick,
        };
        AccessKind::Miss
    }

    /// A write-through store: no allocation, refreshes recency on hit.
    /// Channel traffic is unaffected either way.
    pub fn access_store(&mut self, addr: u32) {
        self.tick += 1;
        if let Some(i) = self.probe(addr) {
            self.lines[i].lru = self.tick;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SharedL2 {
        // 2 sets × 2 ways × 128 B = 512 B.
        SharedL2::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 128,
            hit_latency: 10,
        })
    }

    #[test]
    fn cross_sm_reuse_hits() {
        let mut l2 = tiny();
        assert_eq!(l2.access_load(0, 0), AccessKind::Miss);
        assert_eq!(l2.access_load(0, 1), AccessKind::Hit);
        assert_eq!(
            l2.stats(),
            L2Stats {
                hits: 1,
                misses: 1,
                cross_sm_evictions: 0
            }
        );
    }

    #[test]
    fn cross_sm_eviction_counted() {
        let mut l2 = tiny();
        // Set 0 holds blocks 0, 256, 512… Fill both ways as SM 0, then
        // SM 1 evicts the LRU way: one interference event.
        l2.access_load(0, 0);
        l2.access_load(256, 0);
        l2.access_load(512, 1);
        assert_eq!(l2.stats().cross_sm_evictions, 1);
        // SM 1 evicting its own line is not interference.
        l2.access_load(768, 1); // evicts 256 (SM 0): interference again
        l2.access_load(1024, 1); // evicts 512 (SM 1's own): not counted
        assert_eq!(l2.stats().cross_sm_evictions, 2);
    }

    #[test]
    fn stores_do_not_allocate_but_refresh() {
        let mut l2 = tiny();
        l2.access_store(0);
        assert_eq!(
            l2.access_load(0, 0),
            AccessKind::Miss,
            "store must not allocate"
        );
        l2.access_load(256, 0);
        l2.access_store(0); // refresh block 0: block 256 is now LRU
        l2.access_load(512, 0);
        assert_eq!(l2.access_load(0, 0), AccessKind::Hit);
        assert_eq!(l2.access_load(256, 0), AccessKind::Miss);
    }
}
