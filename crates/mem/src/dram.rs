//! Throughput-limited, constant-latency off-chip memory model.
//!
//! Follows the methodology of Gebhart et al. adopted by the paper (table 2):
//! a single SM sees 10 GB/s of bandwidth at 330 ns latency (= 330 cycles at
//! the 1 GHz core clock). The channel serialises 128-byte transfers at
//! `line_bytes / bytes_per_cycle` cycles each; a request's completion time is
//! its (possibly queued) start time plus the fixed latency.

/// DRAM bandwidth/latency parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Sustained bandwidth in bytes per core cycle (10 GB/s @ 1 GHz = 10),
    /// **per channel**.
    pub bytes_per_cycle: f64,
    /// Fixed access latency in cycles (330 ns @ 1 GHz = 330).
    pub latency: u64,
    /// Transfer granularity in bytes (one L1 block).
    pub transfer_bytes: u32,
    /// Independent address-interleaved channels in shared-DRAM mode; each
    /// contributes `bytes_per_cycle` of bandwidth. The private per-SM model
    /// ignores this (each SM already owns a full channel).
    pub num_channels: u32,
    /// Interleave granularity in bytes: a block at address `a` is served by
    /// channel `(a / interleave_bytes) % num_channels`. Must be a power of
    /// two no smaller than `transfer_bytes` so one transfer never straddles
    /// channels.
    pub interleave_bytes: u32,
}

impl DramConfig {
    /// The paper's memory system: 10 GB/s (1 SM), 330 ns (table 2), one
    /// channel interleaved at the transfer granularity.
    pub fn paper() -> Self {
        DramConfig {
            bytes_per_cycle: 10.0,
            latency: 330,
            transfer_bytes: 128,
            num_channels: 1,
            interleave_bytes: 128,
        }
    }

    /// Same timing, `n` address-interleaved channels.
    pub fn with_channels(mut self, n: u32) -> Self {
        self.num_channels = n;
        self
    }

    /// The channel a block-aligned address maps to.
    pub fn channel_of(&self, addr: u32) -> u32 {
        let n = self.num_channels.max(1);
        (addr / self.interleave_bytes.max(1)) % n
    }

    /// Checks the multi-channel knobs are coherent.
    ///
    /// # Errors
    /// A description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_channels == 0 {
            return Err("dram num_channels must be ≥ 1".into());
        }
        if !self.interleave_bytes.is_power_of_two() {
            return Err(format!(
                "dram interleave_bytes {} must be a power of two",
                self.interleave_bytes
            ));
        }
        if self.interleave_bytes < self.transfer_bytes {
            return Err(format!(
                "dram interleave_bytes {} is below the {} B transfer \
                 granularity: one transfer would straddle channels",
                self.interleave_bytes, self.transfer_bytes
            ));
        }
        Ok(())
    }
}

/// Traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// 128-byte read transfers (L1 fills).
    pub read_transfers: u64,
    /// 128-byte write transfers (write-through stores).
    pub write_transfers: u64,
}

impl DramStats {
    /// Total bytes moved.
    pub fn total_bytes(&self, transfer_bytes: u32) -> u64 {
        (self.read_transfers + self.write_transfers) * transfer_bytes as u64
    }
}

/// The DRAM channel: tracks when the shared channel frees up and stamps each
/// request with its completion cycle.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Fractional cycle at which the channel next becomes free.
    channel_free: f64,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            cfg,
            channel_free: 0.0,
            stats: DramStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn schedule(&mut self, now: u64) -> u64 {
        let start = self.channel_free.max(now as f64);
        self.channel_free = start + self.cfg.transfer_bytes as f64 / self.cfg.bytes_per_cycle;
        (start as u64) + self.cfg.latency
    }

    /// Issues a read (fill) at cycle `now`; returns the completion cycle.
    pub fn read(&mut self, now: u64) -> u64 {
        self.stats.read_transfers += 1;
        self.schedule(now)
    }

    /// Issues a write-through at cycle `now`; returns the completion cycle
    /// (stores don't block the pipeline but still consume bandwidth).
    pub fn write(&mut self, now: u64) -> u64 {
        self.stats.write_transfers += 1;
        self.schedule(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_request_sees_pure_latency() {
        let mut d = Dram::new(DramConfig::paper());
        assert_eq!(d.read(100), 430);
    }

    #[test]
    fn back_to_back_requests_serialise_at_bandwidth() {
        let mut d = Dram::new(DramConfig::paper());
        let t0 = d.read(0);
        let t1 = d.read(0);
        let t2 = d.read(0);
        // 128 B / 10 B/cy = 12.8 cycles of channel occupancy each.
        assert_eq!(t0, 330);
        assert_eq!(t1, 330 + 12);
        assert_eq!(t2, 330 + 25);
    }

    #[test]
    fn channel_drains_over_time() {
        let mut d = Dram::new(DramConfig::paper());
        d.read(0);
        // A request far in the future is unqueued again.
        assert_eq!(d.read(10_000), 10_330);
    }

    #[test]
    fn writes_count_traffic() {
        let mut d = Dram::new(DramConfig::paper());
        d.write(0);
        d.read(0);
        assert_eq!(d.stats().write_transfers, 1);
        assert_eq!(d.stats().read_transfers, 1);
        assert_eq!(d.stats().total_bytes(128), 256);
    }
}
