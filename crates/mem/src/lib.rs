//! # warpweave-mem
//!
//! The memory hierarchy for the warpweave SIMT simulator: a sparse flat
//! [`Memory`] backing store, the 128-byte [`coalesce()`]r with atomic replay
//! scheduling, a set-associative tag-only L1 [`Cache`], a
//! throughput/latency-limited private [`Dram`] channel, and the
//! event-driven shared-bandwidth subsystem — a deterministic
//! [`MemEventQueue`] and the [`SharedDramChannel`] that arbitrates one
//! bandwidth pool across all SMs of a machine per epoch.
//!
//! Parameters default to the paper's table 2: 48 K 6-way 128 B L1 at 3
//! cycles; 10 GB/s, 330 ns memory for one SM.
//!
//! Two off-chip models coexist:
//!
//! * [`Dram`] — the original inline model: one private channel per SM,
//!   completion time computed at the moment of the request.
//! * [`SharedDramChannel`] — the machine-level model: SMs enqueue
//!   [`MemRequest`]s and receive [`MemGrant`]s from a deterministic
//!   per-epoch arbitration ordered by `(issue_cycle, rotating SM priority,
//!   sequence number)`; see [`channel`] for the contract.
//!
//! # Examples
//! ```
//! use warpweave_mem::{Cache, CacheConfig, Dram, DramConfig, Memory, coalesce};
//!
//! let mut mem = Memory::new();
//! mem.write_u32(0x40, 7);
//!
//! let mut l1 = Cache::new(CacheConfig::paper_l1());
//! let mut dram = Dram::new(DramConfig::paper());
//!
//! // A warp reads 4 consecutive words: one coalesced transaction.
//! let txs = coalesce(&[(0, 0x40), (1, 0x44), (2, 0x48), (3, 0x4c)]);
//! assert_eq!(txs.len(), 1);
//! let done_at = match l1.access_load(txs[0].block_addr) {
//!     warpweave_mem::AccessKind::Hit => 3,
//!     warpweave_mem::AccessKind::Miss => dram.read(0),
//! };
//! assert_eq!(done_at, 330); // cold miss
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod channel;
pub mod coalesce;
pub mod dram;
pub mod event;
pub mod l2;
pub mod mshr;
pub mod space;

pub use cache::{AccessKind, Cache, CacheConfig, CacheStats};
pub use channel::{sort_epoch_order, ChannelStats, MemGrant, MemRequest, SharedDramChannel};
pub use coalesce::{
    atomic_transactions, atomic_transactions_into, coalesce, coalesce_into, Transaction, TxScratch,
    BLOCK_BYTES,
};
pub use dram::{Dram, DramConfig, DramStats};
pub use event::{MemEvent, MemEventQueue};
pub use l2::{L2Stats, SharedL2};
pub use mshr::{MshrFile, MshrLookup};
pub use space::{Memory, SharedMem};
