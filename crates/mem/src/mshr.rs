//! Per-SM miss-status holding registers (MSHRs).
//!
//! An [`MshrFile`] tracks the L1 misses an SM currently has in flight, keyed
//! by 128-byte block address. A second miss to a block already being fetched
//! **merges**: no new DRAM transaction is issued, the merging warp instead
//! blocks on the owner transaction's sequence number and wakes on the same
//! grant. Without merging, replay trains (set-conflict thrashing that
//! re-misses a line whose fill is still outstanding) multiply off-chip
//! traffic by the replay count; with merging each block in flight costs
//! exactly one transfer.
//!
//! The file is bounded: when every register is occupied a new miss
//! **bypasses** (issues its own transaction as if the file were absent), so
//! a small file degrades gracefully to the unmerged model. A capacity of 0
//! disables the file entirely — the configuration default, which keeps
//! every historical schedule bit-identical.
//!
//! Determinism: the file is private to one SM and consulted in LSU
//! transaction order, which the single LSU port already serialises — no
//! cross-SM state, no host-threading sensitivity.

/// Outcome of consulting the MSHR file for one L1 load miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrLookup {
    /// New register allocated: the caller must issue the DRAM transaction
    /// (it becomes the register's owner).
    Allocated,
    /// Merged into an in-flight miss: wait on `owner_seq`'s grant instead
    /// of issuing a transaction.
    MergedPending {
        /// Sequence number of the owning transaction.
        owner_seq: u64,
    },
    /// Merged into a miss whose grant already arrived but whose data lands
    /// in the future: stall until `ready_cycle`, no transaction, no wait.
    MergedReady {
        /// Cycle the owning transaction's data is available.
        ready_cycle: u64,
    },
    /// File full (or disabled): issue the transaction unmerged.
    Bypassed,
}

#[derive(Debug, Clone, Copy)]
struct MshrEntry {
    block_addr: u32,
    owner_seq: u64,
    /// Completion cycle once the owner's grant has been delivered.
    ready: Option<u64>,
}

/// A bounded, per-SM miss-status holding register file.
///
/// # Examples
/// ```
/// use warpweave_mem::{MshrFile, MshrLookup};
///
/// let mut mshr = MshrFile::new(4);
/// assert_eq!(mshr.lookup(0x80, 0, 7), MshrLookup::Allocated);
/// // Same block, fill still outstanding: merge onto seq 7.
/// assert_eq!(mshr.lookup(0x80, 5, 8), MshrLookup::MergedPending { owner_seq: 7 });
/// mshr.on_grant(7, 330);
/// assert_eq!(mshr.lookup(0x80, 10, 9), MshrLookup::MergedReady { ready_cycle: 330 });
/// // After the data lands the register is recycled: a re-miss re-allocates.
/// assert_eq!(mshr.lookup(0x80, 400, 10), MshrLookup::Allocated);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<MshrEntry>,
}

impl MshrFile {
    /// Creates a file with `capacity` registers (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// A disabled file: every lookup bypasses.
    pub fn disabled() -> Self {
        MshrFile::new(0)
    }

    /// Number of registers (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when the file participates in miss handling.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Registers currently occupied.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Consults the file for a load miss to `block_addr` at cycle `now`;
    /// `seq` is the sequence number the transaction will carry if it is
    /// issued. Registers whose data has landed (ready ≤ `now`) are
    /// recycled first.
    pub fn lookup(&mut self, block_addr: u32, now: u64, seq: u64) -> MshrLookup {
        if self.capacity == 0 {
            return MshrLookup::Bypassed;
        }
        self.entries.retain(|e| e.ready.is_none_or(|rc| rc > now));
        if let Some(e) = self.entries.iter().find(|e| e.block_addr == block_addr) {
            return match e.ready {
                None => MshrLookup::MergedPending {
                    owner_seq: e.owner_seq,
                },
                Some(rc) => MshrLookup::MergedReady { ready_cycle: rc },
            };
        }
        if self.entries.len() < self.capacity {
            self.entries.push(MshrEntry {
                block_addr,
                owner_seq: seq,
                ready: None,
            });
            MshrLookup::Allocated
        } else {
            MshrLookup::Bypassed
        }
    }

    /// Records the grant for owning transaction `seq`: the register stays
    /// live (serving `MergedReady` merges) until `ready_cycle` passes.
    pub fn on_grant(&mut self, seq: u64, ready_cycle: u64) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.owner_seq == seq && e.ready.is_none())
        {
            e.ready = Some(ready_cycle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_file_always_bypasses() {
        let mut mshr = MshrFile::disabled();
        assert!(!mshr.is_enabled());
        assert_eq!(mshr.lookup(0, 0, 0), MshrLookup::Bypassed);
        assert_eq!(mshr.occupancy(), 0);
    }

    #[test]
    fn merges_same_block_until_data_lands() {
        let mut mshr = MshrFile::new(2);
        assert_eq!(mshr.lookup(0x100, 0, 1), MshrLookup::Allocated);
        assert_eq!(
            mshr.lookup(0x100, 2, 2),
            MshrLookup::MergedPending { owner_seq: 1 }
        );
        // A different block allocates its own register.
        assert_eq!(mshr.lookup(0x200, 2, 2), MshrLookup::Allocated);
        mshr.on_grant(1, 330);
        assert_eq!(
            mshr.lookup(0x100, 100, 3),
            MshrLookup::MergedReady { ready_cycle: 330 }
        );
        // Past the completion the register recycles.
        assert_eq!(mshr.lookup(0x100, 331, 4), MshrLookup::Allocated);
    }

    #[test]
    fn full_file_bypasses_and_recycles() {
        let mut mshr = MshrFile::new(1);
        assert_eq!(mshr.lookup(0x000, 0, 1), MshrLookup::Allocated);
        assert_eq!(mshr.lookup(0x080, 0, 2), MshrLookup::Bypassed);
        mshr.on_grant(1, 50);
        // Register frees once its completion is in the past.
        assert_eq!(mshr.lookup(0x080, 51, 3), MshrLookup::Allocated);
    }

    #[test]
    fn grant_for_unknown_seq_is_ignored() {
        let mut mshr = MshrFile::new(1);
        mshr.lookup(0x000, 0, 1);
        mshr.on_grant(99, 10);
        assert_eq!(
            mshr.lookup(0x000, 20, 2),
            MshrLookup::MergedPending { owner_seq: 1 }
        );
    }
}
