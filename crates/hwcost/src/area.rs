//! Area model — reproduces **table 4** ("Area of each component") and the
//! §5.2 overhead summary.
//!
//! The paper synthesised RTL with a production compiler and scaled results
//! to Fermi's 40 nm process; we cannot re-run that flow, so this module is
//! an *analytical* model anchored on the paper's published component areas:
//! each structure's area scales linearly in its storage bits (from
//! [`crate::storage`]) with a per-structure µm²/bit coefficient fitted at
//! one calibration point per structure *kind* (a sorted-heap HCT amortises
//! its sorter differently than the baseline warp pool, a CCT carries its
//! sideband sorter, etc.), plus the two fixed adders the paper prices
//! separately (register-file segmentation, associative-lookup scheduler).
//! The unit tests pin the model to table 4 within 5 %.

use crate::storage::{storage_inventory, Arch, HwParams};

/// Area of a Fermi SM (mm²), measured by the authors on a die photograph.
pub const SM_AREA_MM2: f64 = 15.6;

/// Register-file segmentation cost (×1000 µm², conservative bound derived
/// by the paper from Fung et al.'s banked-RF estimate, scaled to 40 nm).
pub const RF_SEGMENTATION_KUM2: f64 = 570.0;

/// Scheduler adder for the SWI associative mask lookup (×1000 µm²).
pub const SWI_SCHEDULER_KUM2: f64 = 27.4;

/// Calibration: µm² per bit per structure kind, fitted to the paper's
/// 40 nm synthesis results (table 4 areas ÷ table 3 bit counts).
#[derive(Debug, Clone, Copy)]
pub struct AreaCoefficients {
    /// Baseline/SWI scoreboard (CAM-style comparators per entry):
    /// 87 600 µm² / 2304 bits.
    pub scoreboard_cam: f64,
    /// SBI matrix scoreboard: 65 600 µm² / 3456 bits.
    pub scoreboard_matrix: f64,
    /// Baseline warp pool: 66 800 µm² / 3072 bits.
    pub warp_pool: f64,
    /// Sorted-heap HCT (incl. sorter): 88 800 µm² / 4824 bits (SBI point).
    pub hct_frontier: f64,
    /// Baseline reconvergence stack SRAM: 584 400 µm² / 36 864 bits.
    pub stack: f64,
    /// CCT incl. sideband sorter: 480 800 µm² / 13 312 bits.
    pub cct: f64,
    /// Instruction buffer (single-ported): 52 800 µm² / 3072 bits.
    pub insn_buffer: f64,
    /// Extra factor for dual-ported instruction buffers (SWI point:
    /// 33.4 / 26.4).
    pub dual_port_factor: f64,
}

impl Default for AreaCoefficients {
    fn default() -> Self {
        AreaCoefficients {
            scoreboard_cam: 87.6e3 / 2304.0,
            scoreboard_matrix: 65.6e3 / 3456.0,
            warp_pool: 66.8e3 / 3072.0,
            hct_frontier: 88.8e3 / 4824.0,
            stack: 584.4e3 / 36864.0,
            cct: 480.8e3 / 13312.0,
            insn_buffer: 52.8e3 / 3072.0,
            dual_port_factor: 33.4 / 26.4,
        }
    }
}

/// One row of table 4 (areas in ×1000 µm²; `None` = "–").
#[derive(Debug, Clone)]
pub struct AreaRow {
    /// Component label.
    pub component: &'static str,
    /// Per-architecture areas in table order (Baseline, SBI, SWI, SBI+SWI).
    pub kum2: [Option<f64>; 4],
}

fn bits_of(arch: Arch, p: &HwParams, component: &str) -> f64 {
    storage_inventory(arch, p)
        .into_iter()
        .find(|r| r.component == component)
        .map(|r| r.bits as f64)
        .unwrap_or(0.0)
}

/// Computes table 4: per-component area of each architecture.
pub fn area_table(p: &HwParams, c: &AreaCoefficients) -> Vec<AreaRow> {
    let sb = |arch: Arch| {
        let bits = bits_of(arch, p, "Scoreboard");
        match arch {
            Arch::Baseline | Arch::Swi => bits * c.scoreboard_cam,
            Arch::Sbi | Arch::SbiSwi => bits * c.scoreboard_matrix,
        }
    };
    let hct = |arch: Arch| {
        let bits = bits_of(arch, p, "Warp pool/HCT");
        match arch {
            Arch::Baseline => bits * c.warp_pool,
            _ => bits * c.hct_frontier,
        }
    };
    let cct = |arch: Arch| {
        let bits = bits_of(arch, p, "Stack/CCT");
        match arch {
            Arch::Baseline => bits * c.stack,
            _ => bits * c.cct,
        }
    };
    let ib = |arch: Arch| {
        let bits = bits_of(arch, p, "Insn. buffer");
        let dual = matches!(arch, Arch::Swi | Arch::SbiSwi);
        bits * c.insn_buffer * if dual { c.dual_port_factor } else { 1.0 }
    };
    let all = |f: &dyn Fn(Arch) -> f64| {
        [
            Some(f(Arch::Baseline) / 1e3),
            Some(f(Arch::Sbi) / 1e3),
            Some(f(Arch::Swi) / 1e3),
            Some(f(Arch::SbiSwi) / 1e3),
        ]
    };
    vec![
        AreaRow {
            component: "RF",
            kum2: [
                None,
                Some(RF_SEGMENTATION_KUM2),
                Some(RF_SEGMENTATION_KUM2),
                Some(RF_SEGMENTATION_KUM2),
            ],
        },
        AreaRow {
            component: "Scoreboard",
            kum2: all(&sb),
        },
        AreaRow {
            component: "Scheduler",
            kum2: [
                None,
                None,
                Some(SWI_SCHEDULER_KUM2),
                Some(SWI_SCHEDULER_KUM2),
            ],
        },
        AreaRow {
            component: "HCT",
            kum2: all(&hct),
        },
        AreaRow {
            component: "CCT",
            kum2: all(&cct),
        },
        AreaRow {
            component: "Insn. Buffer",
            kum2: all(&ib),
        },
    ]
}

/// Column totals of table 4 (×1000 µm²), in table order.
pub fn totals(p: &HwParams, c: &AreaCoefficients) -> [f64; 4] {
    let mut t = [0.0; 4];
    for row in area_table(p, c) {
        for (i, v) in row.kum2.iter().enumerate() {
            t[i] += v.unwrap_or(0.0);
        }
    }
    t
}

/// Area overhead of each technique over the baseline front-end
/// (×1000 µm² and as a percentage of the 15.6 mm² SM).
pub fn overheads(p: &HwParams, c: &AreaCoefficients) -> Vec<(Arch, f64, f64)> {
    let t = totals(p, c);
    [Arch::Sbi, Arch::Swi, Arch::SbiSwi]
        .into_iter()
        .enumerate()
        .map(|(i, arch)| {
            let kum2 = t[i + 1] - t[0];
            (arch, kum2, kum2 * 1e3 / (SM_AREA_MM2 * 1e6) * 100.0)
        })
        .collect()
}

/// Renders table 4 plus the overhead summary.
pub fn format_table4(p: &HwParams, c: &AreaCoefficients) -> String {
    let mut out = String::new();
    out.push_str("Table 4 — area of each component (x1000 um^2)\n");
    out.push_str(&format!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}\n",
        "Component", "Baseline", "SBI", "SWI", "SBI+SWI"
    ));
    for row in area_table(p, c) {
        out.push_str(&format!("{:<14}", row.component));
        for v in row.kum2 {
            match v {
                Some(v) => out.push_str(&format!("{v:>10.1}")),
                None => out.push_str(&format!("{:>10}", "-")),
            }
        }
        out.push('\n');
    }
    let t = totals(p, c);
    out.push_str(&format!(
        "{:<14}{:>10.1}{:>10.1}{:>10.1}{:>10.1}\n",
        "Total", t[0], t[1], t[2], t[3]
    ));
    out.push_str(&format!(
        "{:<14}{:>10}{:>10.1}{:>10.1}{:>10.1}\n",
        "Overhead",
        "-",
        t[1] - t[0],
        t[2] - t[0],
        t[3] - t[0]
    ));
    out.push_str("\nOverhead vs 15.6 mm^2 SM:\n");
    for (arch, kum2, pct) in overheads(p, c) {
        out.push_str(&format!(
            "  {:<8} +{:.1}e3 um^2  = {:.1}% of the SM\n",
            arch.name(),
            kum2,
            pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    /// The calibrated model reproduces every cell of table 4 within 5 %.
    #[test]
    fn matches_paper_table4_components() {
        let rows = area_table(&HwParams::default(), &AreaCoefficients::default());
        let paper: &[(&str, [Option<f64>; 4])] = &[
            ("RF", [None, Some(570.0), Some(570.0), Some(570.0)]),
            (
                "Scoreboard",
                [Some(87.6), Some(65.6), Some(87.6), Some(131.2)],
            ),
            ("Scheduler", [None, None, Some(27.4), Some(27.4)]),
            ("HCT", [Some(66.8), Some(88.8), Some(43.8), Some(88.8)]),
            ("CCT", [Some(584.4), Some(480.8), Some(480.8), Some(480.8)]),
            (
                "Insn. Buffer",
                [Some(52.8), Some(52.8), Some(33.4), Some(67.4)],
            ),
        ];
        for (name, expect) in paper {
            let row = rows
                .iter()
                .find(|r| r.component == *name)
                .unwrap_or_else(|| panic!("missing row {name}"));
            for (i, (got, want)) in row.kum2.iter().zip(expect).enumerate() {
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some(w)) => {
                        assert!(close(*g, *w, 0.05), "{name}[{i}]: {g:.1} vs paper {w:.1}");
                    }
                    _ => panic!("{name}[{i}]: presence mismatch"),
                }
            }
        }
    }

    /// Totals and overheads match table 4 (791.6 / 1258 / 1243 / 1365.6 and
    /// 3.0 % / 2.9 % / 3.7 % of the SM).
    #[test]
    fn matches_paper_totals_and_overheads() {
        let p = HwParams::default();
        let c = AreaCoefficients::default();
        let t = totals(&p, &c);
        for (got, want) in t.iter().zip([791.6, 1258.0, 1243.0, 1365.6]) {
            assert!(close(*got, want, 0.01), "total {got:.1} vs paper {want}");
        }
        let o = overheads(&p, &c);
        let pcts: Vec<f64> = o.iter().map(|&(_, _, pct)| pct).collect();
        for (got, want) in pcts.iter().zip([3.0, 2.9, 3.7]) {
            assert!(
                (got - want).abs() < 0.15,
                "overhead {got:.2}% vs paper {want}%"
            );
        }
    }

    #[test]
    fn table_renders() {
        let s = format_table4(&HwParams::default(), &AreaCoefficients::default());
        assert!(s.contains("Total"));
        assert!(s.contains("% of the SM"));
    }
}
