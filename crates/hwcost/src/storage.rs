//! Storage inventory per architecture — reproduces **table 3** ("Summary of
//! the hardware requirements for each proposed technique").
//!
//! The paper provisions structures for Fermi's full 48-warp capacity: two
//! schedulers × 24 warps of 32 threads for the baseline, or 24 warps of 64
//! threads for SBI/SWI. Every geometry below is derived from first
//! principles (PC width, mask width, entry counts) and checked against the
//! paper's figures in the unit tests.

use std::fmt;

/// The four evaluated architectures, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Fermi-like baseline.
    Baseline,
    /// Simultaneous Branch Interweaving.
    Sbi,
    /// Simultaneous Warp Interweaving.
    Swi,
    /// Both combined.
    SbiSwi,
}

impl Arch {
    /// All architectures in table order.
    pub const ALL: [Arch; 4] = [Arch::Baseline, Arch::Sbi, Arch::Swi, Arch::SbiSwi];

    /// Table column label.
    pub fn name(self) -> &'static str {
        match self {
            Arch::Baseline => "Baseline",
            Arch::Sbi => "SBI",
            Arch::Swi => "SWI",
            Arch::SbiSwi => "SBI+SWI",
        }
    }
}

/// Structure sizing parameters (Fermi capacity, as assumed in §5.2).
#[derive(Debug, Clone, Copy)]
pub struct HwParams {
    /// Warps managed per scheduler (Fermi: 48 warps of 32 = 24 per pool; the
    /// 64-wide designs hold 24 warps total).
    pub warps: u32,
    /// Program-counter width in bits.
    pub pc_bits: u32,
    /// Scoreboard entries per warp (table 2: 6).
    pub scoreboard_entries: u32,
    /// Bits per baseline scoreboard entry (destination register ID + flags).
    pub scoreboard_entry_bits: u32,
    /// Reconvergence-stack blocks per warp × entries per block (baseline:
    /// 3 × 4 of 64 bits).
    pub stack_blocks_per_warp: u32,
    /// Entries per stack block.
    pub stack_entries_per_block: u32,
    /// CCT entries shared per scheduler pool (§5.2: 8 per warp ⇒ the paper
    /// sizes a 128-entry table).
    pub cct_entries: u32,
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams {
            warps: 24,
            pc_bits: 32,
            scoreboard_entries: 6,
            scoreboard_entry_bits: 8,
            stack_blocks_per_warp: 3,
            stack_entries_per_block: 4,
            cct_entries: 128,
        }
    }
}

/// One row of the storage inventory.
#[derive(Debug, Clone)]
pub struct StorageRow {
    /// Component name (table 3's row label).
    pub component: &'static str,
    /// Geometry description, e.g. `2× 24× 48-bit`.
    pub geometry: String,
    /// Total bits.
    pub bits: u64,
    /// Qualitative note (ports, organisation).
    pub note: &'static str,
}

impl fmt::Display for StorageRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>20} {:>9} bits  {}",
            self.component, self.geometry, self.bits, self.note
        )
    }
}

/// Computes the storage inventory of one architecture (table 3's column).
pub fn storage_inventory(arch: Arch, p: &HwParams) -> Vec<StorageRow> {
    let w = p.warps as u64;
    let pc = p.pc_bits as u64;
    let mut rows = Vec::new();

    // Scoreboard.
    let sb_base = p.scoreboard_entries as u64 * p.scoreboard_entry_bits as u64; // 48 bits
    let dep_matrix_bits = 9; // 3×3 boolean dependency matrix (fig. 6)
    let sb_sbi = p.scoreboard_entries as u64
        * (2 * (p.scoreboard_entry_bits as u64 - 1) + dep_matrix_bits + 1); // 2 dests + D + valid = 24
    match arch {
        Arch::Baseline => rows.push(StorageRow {
            component: "Scoreboard",
            geometry: format!("2x {w}x {sb_base}-bit"),
            bits: 2 * w * sb_base,
            note: "per-warp destination registers",
        }),
        Arch::Sbi => rows.push(StorageRow {
            component: "Scoreboard",
            geometry: format!("{w}x {}-bit", sb_sbi),
            bits: w * sb_sbi,
            note: "dual destinations + 3x3 dependency matrices",
        }),
        Arch::Swi => rows.push(StorageRow {
            component: "Scoreboard",
            geometry: format!("2x {w}x {sb_base}-bit"),
            bits: 2 * w * sb_base,
            note: "baseline scheme, banked per set",
        }),
        Arch::SbiSwi => rows.push(StorageRow {
            component: "Scoreboard",
            geometry: format!("{w}x {}-bit", 2 * sb_sbi),
            bits: w * 2 * sb_sbi,
            note: "SBI scheme, two issue slots",
        }),
    }

    // Warp pool / Hot Context Table.
    // Baseline context: PC + 32-thread mask = 64 bits. SBI hot context:
    // 2 × (PC + 64-bit mask + valid) + CCT head pointer = 201 bits.
    let ctx64 = pc + 64 + 1; // 97
    let cct_ptr = 7;
    match arch {
        Arch::Baseline => rows.push(StorageRow {
            component: "Warp pool/HCT",
            geometry: format!("2x {w}x {}-bit", pc + 32),
            bits: 2 * w * (pc + 32),
            note: "top-of-stack context per warp",
        }),
        Arch::Sbi => rows.push(StorageRow {
            component: "Warp pool/HCT",
            geometry: format!("{w}x {}-bit", 2 * ctx64 + cct_ptr),
            bits: w * (2 * ctx64 + cct_ptr),
            note: "two hot contexts + CCT pointer",
        }),
        Arch::Swi => rows.push(StorageRow {
            component: "Warp pool/HCT",
            geometry: format!("{w}x {}-bit", ctx64 + cct_ptr),
            bits: w * (ctx64 + cct_ptr),
            note: "one hot context + CCT pointer",
        }),
        Arch::SbiSwi => rows.push(StorageRow {
            component: "Warp pool/HCT",
            geometry: format!("{w}x {}-bit, banked", 2 * ctx64 + cct_ptr),
            bits: w * (2 * ctx64 + cct_ptr),
            note: "as SBI, banked for set-associative lookup",
        }),
    }

    // Divergence stack (baseline) / Cold Context Table (others).
    let stack_blocks = 2 * w * p.stack_blocks_per_warp as u64; // 48 warps x 3
    let block_bits = p.stack_entries_per_block as u64 * 64;
    let cct_entry = pc + 64 + 1 + cct_ptr; // CPC + mask + valid + next = 104
    match arch {
        Arch::Baseline => rows.push(StorageRow {
            component: "Stack/CCT",
            geometry: format!("{stack_blocks}x {block_bits}-bit"),
            bits: stack_blocks * block_bits,
            note: "3 blocks of 4 64-bit entries per warp",
        }),
        _ => rows.push(StorageRow {
            component: "Stack/CCT",
            geometry: format!("{}x {cct_entry}-bit", p.cct_entries),
            bits: p.cct_entries as u64 * cct_entry,
            note: "linked-list cold contexts, sideband-sorted",
        }),
    }

    // Instruction buffer: one 64-bit decoded entry per schedulable stream.
    let (ib_entries, ib_note) = match arch {
        Arch::Baseline => (2 * w, "one entry per 32-wide warp"),
        Arch::Sbi => (2 * w, "two entries per 64-wide warp"),
        Arch::Swi => (w, "one entry per warp, dual-ported"),
        Arch::SbiSwi => (2 * w, "two entries per warp, dual-ported"),
    };
    rows.push(StorageRow {
        component: "Insn. buffer",
        geometry: format!("{ib_entries}x 64-bit"),
        bits: ib_entries * 64,
        note: ib_note,
    });

    rows
}

/// Total storage bits for one architecture.
pub fn total_bits(arch: Arch, p: &HwParams) -> u64 {
    storage_inventory(arch, p).iter().map(|r| r.bits).sum()
}

/// Renders the full table 3.
pub fn format_table3(p: &HwParams) -> String {
    let mut out = String::new();
    out.push_str("Table 3 — hardware requirements per technique\n");
    for arch in Arch::ALL {
        out.push_str(&format!("\n[{}]\n", arch.name()));
        for row in storage_inventory(arch, p) {
            out.push_str(&format!("  {row}\n"));
        }
        out.push_str(&format!(
            "  {:<14} {:>30} bits\n",
            "Total",
            total_bits(arch, p)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(arch: Arch, component: &str) -> String {
        storage_inventory(arch, &HwParams::default())
            .into_iter()
            .find(|r| r.component == component)
            .expect("component present")
            .geometry
    }

    /// Every geometry string of table 3, verbatim.
    #[test]
    fn matches_paper_table3() {
        assert_eq!(geometry(Arch::Baseline, "Scoreboard"), "2x 24x 48-bit");
        assert_eq!(geometry(Arch::Sbi, "Scoreboard"), "24x 144-bit");
        assert_eq!(geometry(Arch::Swi, "Scoreboard"), "2x 24x 48-bit");
        assert_eq!(geometry(Arch::SbiSwi, "Scoreboard"), "24x 288-bit");
        assert_eq!(geometry(Arch::Baseline, "Warp pool/HCT"), "2x 24x 64-bit");
        assert_eq!(geometry(Arch::Sbi, "Warp pool/HCT"), "24x 201-bit");
        assert_eq!(geometry(Arch::Swi, "Warp pool/HCT"), "24x 104-bit");
        assert_eq!(
            geometry(Arch::SbiSwi, "Warp pool/HCT"),
            "24x 201-bit, banked"
        );
        assert_eq!(geometry(Arch::Baseline, "Stack/CCT"), "144x 256-bit");
        assert_eq!(geometry(Arch::Sbi, "Stack/CCT"), "128x 104-bit");
        assert_eq!(geometry(Arch::Baseline, "Insn. buffer"), "48x 64-bit");
        assert_eq!(geometry(Arch::Swi, "Insn. buffer"), "24x 64-bit");
    }

    #[test]
    fn totals_are_consistent() {
        let p = HwParams::default();
        // SBI trades the big baseline stack for a leaner CCT.
        assert!(total_bits(Arch::Sbi, &p) < total_bits(Arch::Baseline, &p));
        // SBI+SWI needs the most scoreboard state.
        let sb = |a: Arch| {
            storage_inventory(a, &p)
                .into_iter()
                .find(|r| r.component == "Scoreboard")
                .expect("row")
                .bits
        };
        assert!(sb(Arch::SbiSwi) == 2 * sb(Arch::Sbi));
    }

    #[test]
    fn table_renders() {
        let s = format_table3(&HwParams::default());
        assert!(s.contains("SBI+SWI"));
        assert!(s.contains("24x 144-bit"));
    }
}
