//! # warpweave-hwcost
//!
//! Hardware-cost models reproducing the paper's §5.2: the per-technique
//! storage inventory (**table 3**) and the analytical area model calibrated
//! against the authors' 40 nm synthesis results (**table 4**, ≈3–4 % SM
//! overhead).
//!
//! # Examples
//! ```
//! use warpweave_hwcost::{storage, area};
//!
//! let p = storage::HwParams::default();
//! println!("{}", storage::format_table3(&p));
//! println!("{}", area::format_table4(&p, &area::AreaCoefficients::default()));
//! ```

pub mod area;
pub mod storage;

pub use area::{area_table, format_table4, overheads, totals, AreaCoefficients, SM_AREA_MM2};
pub use storage::{format_table3, storage_inventory, total_bits, Arch, HwParams, StorageRow};
