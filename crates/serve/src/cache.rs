//! The content-addressed result cache: identical cells are simulated
//! once, served many times.
//!
//! Every sweep cell is a pure function of `(config, workload, seed,
//! scale)`, so its result can be addressed by content: [`cell_digest`]
//! folds the canonical cell encoding through the shared FNV-1a digest
//! (the same hash the checkpoint uses for line checksums and grid ids),
//! and the cache maps that digest to the cell's **encoded checkpoint
//! line** — checksummed bytes that can be streamed to a client or
//! persisted verbatim.
//!
//! Two tiers:
//!
//! * **memory** — a bounded LRU map. `Pending` slots coordinate
//!   concurrent clients: the first requester claims the cell and
//!   simulates it, later requesters block until the line is ready (or
//!   the claim is abandoned, in which case one of them claims next).
//!   Failures are **never** cached — a failed claim is abandoned so
//!   every retry re-simulates with its own provenance.
//! * **disk** (optional) — one `<digest:016x>.cell` file per entry,
//!   written through on fulfilment and consulted on memory misses.
//!   Checksums are verified on the way back in, so a torn or tampered
//!   file is ignored rather than served. Disk entries survive eviction
//!   and server restarts; the directory is unbounded by design (it is
//!   the archive tier).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

use warpweave_core::checkpoint::{decode_cell, CHECKPOINT_VERSION};
use warpweave_core::digest::fnv1a;
use warpweave_workloads::Scale;

/// The content address of one sweep cell: the FNV-1a digest of its
/// canonical encoding — checkpoint format version, scale, seed, the
/// checkpoint cell key (`workload/config` or `machine/...`), and the
/// configuration label. Any change to what a cell *means* (a format
/// bump, a re-seeded config, a renamed policy) changes the address, so
/// stale entries can never be served for a new grid.
pub fn cell_digest(scale: Scale, seed: u64, cell_key: &str, config_label: &str) -> u64 {
    let text = format!(
        "cell-v{CHECKPOINT_VERSION};scale={scale:?};seed={seed:#018x};\
         cell={cell_key};config={config_label}"
    );
    fnv1a(text.as_bytes())
}

/// Cumulative cache counters (server lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered without simulating (memory, disk, or a wait on
    /// another client's in-flight cell).
    pub hits: u64,
    /// Lookups that had to claim the cell for simulation.
    pub misses: u64,
    /// Ready entries dropped from memory to respect the capacity bound.
    pub evictions: u64,
    /// The subset of `hits` that came back from the disk tier.
    pub disk_hits: u64,
    /// Ready entries currently held in memory.
    pub entries: usize,
}

/// One memory slot: a result line, or a promise that someone is
/// computing it.
enum Slot {
    /// Claimed by a requester that is simulating the cell right now.
    Pending,
    /// The encoded checkpoint line, with its LRU touch tick.
    Ready { line: String, tick: u64 },
}

struct Inner {
    slots: HashMap<u64, Slot>,
    tick: u64,
    stats: CacheStats,
}

/// The two-tier content-addressed cell cache. All methods take `&self`;
/// the cache is shared across connection handlers behind an `Arc`.
pub struct CellCache {
    inner: Mutex<Inner>,
    settled: Condvar,
    capacity: usize,
    disk: Option<PathBuf>,
}

/// What [`CellCache::acquire`] hands back.
pub enum Acquired<'a> {
    /// The cell's encoded line, served from the cache.
    Ready(String),
    /// This requester owns the cell: simulate it, then
    /// [`fulfill`](Claim::fulfill) (dropping the claim un-fulfilled
    /// abandons it, waking any waiters to try again).
    Claimed(Claim<'a>),
}

/// Ownership of one `Pending` slot (RAII: abandoned on drop).
pub struct Claim<'a> {
    cache: &'a CellCache,
    digest: u64,
    fulfilled: bool,
}

impl CellCache {
    /// A memory-only cache holding at most `capacity` ready entries.
    pub fn in_memory(capacity: usize) -> CellCache {
        CellCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
            settled: Condvar::new(),
            capacity: capacity.max(1),
            disk: None,
        }
    }

    /// A cache backed by `dir` (created if missing).
    ///
    /// # Errors
    /// Directory creation failures.
    pub fn with_disk(capacity: usize, dir: PathBuf) -> std::io::Result<CellCache> {
        std::fs::create_dir_all(&dir)?;
        let mut cache = CellCache::in_memory(capacity);
        cache.disk = Some(dir);
        Ok(cache)
    }

    /// Looks up `digest`, blocking while another requester holds its
    /// claim. Returns the cached line, or a [`Claim`] making this caller
    /// responsible for simulating the cell.
    pub fn acquire(&self, digest: u64) -> Acquired<'_> {
        enum State {
            Hit(String),
            Pending,
            Absent,
        }
        let mut inner = self.inner.lock().expect("cache lock");
        loop {
            let state = match inner.slots.get(&digest) {
                Some(Slot::Ready { line, .. }) => State::Hit(line.clone()),
                Some(Slot::Pending) => State::Pending,
                None => State::Absent,
            };
            match state {
                State::Hit(line) => {
                    inner.tick += 1;
                    let touched = inner.tick;
                    if let Some(Slot::Ready { tick, .. }) = inner.slots.get_mut(&digest) {
                        *tick = touched;
                    }
                    inner.stats.hits += 1;
                    return Acquired::Ready(line);
                }
                State::Pending => {
                    inner = self.settled.wait(inner).expect("cache lock");
                }
                State::Absent => {
                    if let Some(line) = self.read_disk(digest) {
                        inner.tick += 1;
                        let tick = inner.tick;
                        inner.slots.insert(
                            digest,
                            Slot::Ready {
                                line: line.clone(),
                                tick,
                            },
                        );
                        inner.stats.hits += 1;
                        inner.stats.disk_hits += 1;
                        Self::evict_over_capacity(&mut inner, self.capacity);
                        return Acquired::Ready(line);
                    }
                    inner.slots.insert(digest, Slot::Pending);
                    inner.stats.misses += 1;
                    return Acquired::Claimed(Claim {
                        cache: self,
                        digest,
                        fulfilled: false,
                    });
                }
            }
        }
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        let mut stats = inner.stats;
        stats.entries = inner
            .slots
            .values()
            .filter(|s| matches!(s, Slot::Ready { .. }))
            .count();
        stats
    }

    /// Drops least-recently-touched ready entries until the bound holds.
    /// Pending slots are never evicted — a claim must settle first.
    fn evict_over_capacity(inner: &mut Inner, capacity: usize) {
        loop {
            let ready = inner
                .slots
                .iter()
                .filter_map(|(d, s)| match s {
                    Slot::Ready { tick, .. } => Some((*d, *tick)),
                    Slot::Pending => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= capacity {
                return;
            }
            let (coldest, _) = ready
                .into_iter()
                .min_by_key(|&(_, tick)| tick)
                .expect("non-empty over-capacity set");
            inner.slots.remove(&coldest);
            inner.stats.evictions += 1;
        }
    }

    /// Reads (and checksum-verifies) one disk entry; `None` on any
    /// defect — a damaged archive file must never be served.
    fn read_disk(&self, digest: u64) -> Option<String> {
        let dir = self.disk.as_ref()?;
        let text = std::fs::read_to_string(dir.join(format!("{digest:016x}.cell"))).ok()?;
        let line = text.trim_end_matches('\n');
        decode_cell(line).ok()?;
        Some(line.to_string())
    }

    /// Writes one disk entry via temp-file + rename, so a concurrent
    /// writer or a crash never leaves a torn visible file. Best-effort:
    /// the memory tier already holds the line, so disk I/O failures are
    /// reported but not fatal.
    fn write_disk(&self, digest: u64, line: &str) {
        let Some(dir) = self.disk.as_ref() else {
            return;
        };
        let tmp = dir.join(format!("{digest:016x}.tmp"));
        let dst = dir.join(format!("{digest:016x}.cell"));
        let result =
            std::fs::write(&tmp, format!("{line}\n")).and_then(|()| std::fs::rename(&tmp, &dst));
        if let Err(e) = result {
            eprintln!("cell cache: persist {}: {e}", dst.display());
        }
    }

    fn settle(&self, digest: u64, line: Option<String>) {
        let mut inner = self.inner.lock().expect("cache lock");
        match line {
            Some(line) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.slots.insert(digest, Slot::Ready { line, tick });
                Self::evict_over_capacity(&mut inner, self.capacity);
            }
            None => {
                inner.slots.remove(&digest);
            }
        }
        drop(inner);
        self.settled.notify_all();
    }
}

impl Claim<'_> {
    /// Publishes the cell's encoded line: waiters wake with a hit, and
    /// the disk tier (if any) gets a write-through copy.
    pub fn fulfill(mut self, line: String) {
        self.fulfilled = true;
        self.cache.write_disk(self.digest, &line);
        self.cache.settle(self.digest, Some(line));
    }
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            // Abandon: the simulation failed (or panicked — this runs
            // during unwind too). Waiters re-contend; the next one
            // claims and re-simulates with its own provenance.
            self.cache.settle(self.digest, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_core::checkpoint::{encode_cell, CellRecord};
    use warpweave_core::Stats;

    fn line(key: &str, cycles: u64) -> String {
        let stats = Stats {
            cycles,
            ..Stats::default()
        };
        encode_cell(key, &CellRecord::new(stats))
    }

    #[test]
    fn digest_separates_every_dimension() {
        let base = cell_digest(Scale::Test, 1, "a/b", "b");
        assert_ne!(base, cell_digest(Scale::Bench, 1, "a/b", "b"), "scale");
        assert_ne!(base, cell_digest(Scale::Test, 2, "a/b", "b"), "seed");
        assert_ne!(base, cell_digest(Scale::Test, 1, "a/c", "c"), "cell");
        assert_eq!(base, cell_digest(Scale::Test, 1, "a/b", "b"), "stable");
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let cache = CellCache::in_memory(8);
        let d = cell_digest(Scale::Test, 1, "w/c", "c");
        match cache.acquire(d) {
            Acquired::Claimed(claim) => claim.fulfill(line("w/c", 100)),
            Acquired::Ready(_) => panic!("first acquire must miss"),
        }
        match cache.acquire(d) {
            Acquired::Ready(l) => assert_eq!(l, line("w/c", 100)),
            Acquired::Claimed(_) => panic!("second acquire must hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn abandoned_claim_lets_the_next_requester_claim() {
        let cache = CellCache::in_memory(8);
        let d = cell_digest(Scale::Test, 1, "w/c", "c");
        match cache.acquire(d) {
            Acquired::Claimed(claim) => drop(claim), // simulated failure
            Acquired::Ready(_) => panic!("must miss"),
        }
        assert!(matches!(cache.acquire(d), Acquired::Claimed(_)));
        assert_eq!(cache.stats().misses, 2, "failures are never cached");
    }

    #[test]
    fn waiters_block_until_the_claim_settles() {
        use std::sync::Arc;
        let cache = Arc::new(CellCache::in_memory(8));
        let d = cell_digest(Scale::Test, 7, "w/c", "c");
        let Acquired::Claimed(claim) = cache.acquire(d) else {
            panic!("must miss");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.acquire(d) {
                Acquired::Ready(l) => l,
                Acquired::Claimed(_) => panic!("waiter must see the fulfilled line"),
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        claim.fulfill(line("w/c", 5));
        assert_eq!(waiter.join().unwrap(), line("w/c", 5));
    }

    #[test]
    fn lru_evicts_the_coldest_ready_entry() {
        let cache = CellCache::in_memory(2);
        let digests: Vec<u64> = (0..3)
            .map(|i| cell_digest(Scale::Test, i, "w/c", "c"))
            .collect();
        for (i, &d) in digests.iter().enumerate() {
            let Acquired::Claimed(claim) = cache.acquire(d) else {
                panic!("must miss");
            };
            claim.fulfill(line("w/c", i as u64));
            // Touch the first entry so it stays warm.
            if i > 0 {
                assert!(matches!(cache.acquire(digests[0]), Acquired::Ready(_)));
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // digest[1] was the coldest; it must be the one gone.
        assert!(matches!(cache.acquire(digests[1]), Acquired::Claimed(_)));
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("ww-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d = cell_digest(Scale::Test, 3, "w/c", "c");
        {
            let cache = CellCache::with_disk(4, dir.clone()).unwrap();
            let Acquired::Claimed(claim) = cache.acquire(d) else {
                panic!("must miss");
            };
            claim.fulfill(line("w/c", 42));
        }
        // A brand-new cache instance (fresh memory tier) finds it on disk.
        let cache = CellCache::with_disk(4, dir.clone()).unwrap();
        match cache.acquire(d) {
            Acquired::Ready(l) => assert_eq!(l, line("w/c", 42)),
            Acquired::Claimed(_) => panic!("disk tier must hit"),
        }
        assert_eq!(cache.stats().disk_hits, 1);
        // Corrupt the file: the checksum check must turn it into a miss.
        std::fs::write(
            dir.join(format!("{d:016x}.cell")),
            "cell|w/c|s:cycles=9|#bad",
        )
        .unwrap();
        let cache = CellCache::with_disk(4, dir).unwrap();
        assert!(matches!(cache.acquire(d), Acquired::Claimed(_)));
    }
}
