//! The sweep service's wire protocol: line-delimited text over TCP.
//!
//! Every message is one `\n`-terminated line of printable ASCII — the
//! same framing discipline as the checkpoint file, and deliberately so:
//! per-cell results travel as the **exact**
//! [`encode_cell`](warpweave_core::checkpoint::encode_cell) line the
//! checkpoint would persist, FNV checksum trailer included, so a client
//! can verify end-to-end integrity (and feed the lines straight into a
//! merge) without a second codec.
//!
//! ## Requests (client → server, one line each)
//!
//! ```text
//! run scale=<test|bench> [frontends=A,B,...] [workloads=X,Y,...] [probes=<all|none>]
//! stats
//! shutdown
//! ```
//!
//! Omitted `frontends` means the fig. 7 set; omitted `workloads` means
//! the scale's default sweep rows; omitted `probes` means `all`.
//!
//! ## Responses (server → client, in order)
//!
//! ```text
//! hello|warpweave-serve-v1|grid=<id:016x>
//! cell|<key>|s:<fields>[|c:<fields>]|#<checksum:016x>      (one per healthy cell)
//! fail|<workload>/<config>|seed=<hex>|attempts=<n>|<reason> (one per quarantined cell)
//! stats|hits=<n>|misses=<n>|evictions=<n>|simulated=<n>
//! done|cells=<n>|failed=<n>
//! ```
//!
//! or, for a request the server cannot parse or resolve:
//!
//! ```text
//! error|<one-line reason>
//! ```
//!
//! **Determinism clause**: for a given request, every line between
//! `hello` and `stats` (exclusive) is a pure function of the request —
//! cells stream in canonical request order (workload-major matrix cells,
//! then probes), and each line's bytes are the deterministic checkpoint
//! encoding. Two clients issuing the same request concurrently therefore
//! receive byte-identical transcripts, whether cells came from the
//! cache, from the other client's in-flight simulation, or were computed
//! fresh. Only the `stats` line may differ between them (it reports who
//! paid for the simulation).

use warpweave_bench::CellFailure;

/// The protocol identifier carried by the `hello` line. Bumped when the
/// request grammar or response sequence changes incompatibly.
pub const PROTOCOL_ID: &str = "warpweave-serve-v1";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run (or serve from cache) a sweep grid.
    Run(RunRequest),
    /// Report the server's cumulative cache statistics.
    Stats,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// The grid a `run` request names. Empty lists mean "the server's
/// default" (fig. 7 front-ends; the scale's default workload rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRequest {
    /// Bench scale (`--full` grid) when true, test scale otherwise.
    pub full: bool,
    /// Front-end policy names, resolved through the policy registry.
    pub frontends: Vec<String>,
    /// Workload names, resolved through the workload registry.
    pub workloads: Vec<String>,
    /// Whether the machine probes ride along after the matrix cells.
    pub probes: bool,
}

impl RunRequest {
    /// The default request: the quick sweep grid with probes — exactly
    /// what a flag-less `bench_sweep` run simulates.
    pub fn quick() -> RunRequest {
        RunRequest {
            full: false,
            frontends: Vec::new(),
            workloads: Vec::new(),
            probes: true,
        }
    }
}

/// Splits a comma-separated name list, rejecting empty entries.
fn parse_names(value: &str, what: &str) -> Result<Vec<String>, String> {
    value
        .split(',')
        .map(|n| {
            let n = n.trim();
            if n.is_empty() {
                Err(format!("empty {what} name"))
            } else {
                Ok(n.to_string())
            }
        })
        .collect()
}

/// Parses one request line.
///
/// # Errors
/// A one-line description of the first grammar defect.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line == "stats" {
        return Ok(Request::Stats);
    }
    if line == "shutdown" {
        return Ok(Request::Shutdown);
    }
    let Some(rest) = line.strip_prefix("run") else {
        return Err(format!(
            "unknown request `{line}` (expected run/stats/shutdown)"
        ));
    };
    let mut req = RunRequest::quick();
    let mut saw_scale = false;
    for field in rest.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| format!("field `{field}` has no `=`"))?;
        match key {
            "scale" => {
                req.full = match value {
                    "bench" => true,
                    "test" => false,
                    _ => return Err(format!("scale `{value}` is neither test nor bench")),
                };
                saw_scale = true;
            }
            "frontends" => req.frontends = parse_names(value, "front-end")?,
            "workloads" => req.workloads = parse_names(value, "workload")?,
            "probes" => {
                req.probes = match value {
                    "all" => true,
                    "none" => false,
                    _ => return Err(format!("probes `{value}` is neither all nor none")),
                };
            }
            _ => return Err(format!("unknown field `{key}`")),
        }
    }
    if !saw_scale {
        return Err("run request carries no scale= field".into());
    }
    Ok(Request::Run(req))
}

/// Renders a request to its wire line (the inverse of [`parse_request`]).
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Stats => "stats".into(),
        Request::Shutdown => "shutdown".into(),
        Request::Run(run) => {
            let mut line = format!("run scale={}", if run.full { "bench" } else { "test" });
            if !run.frontends.is_empty() {
                line.push_str(&format!(" frontends={}", run.frontends.join(",")));
            }
            if !run.workloads.is_empty() {
                line.push_str(&format!(" workloads={}", run.workloads.join(",")));
            }
            line.push_str(if run.probes {
                " probes=all"
            } else {
                " probes=none"
            });
            line
        }
    }
}

/// The `hello` line opening every response to a `run` request.
pub fn hello_line(grid_id: u64) -> String {
    format!("hello|{PROTOCOL_ID}|grid={grid_id:016x}")
}

/// Extracts the grid id from a `hello` line.
///
/// # Errors
/// Protocol-id mismatches (a server speaking a different version) and
/// malformed lines.
pub fn parse_hello(line: &str) -> Result<u64, String> {
    let rest = line
        .strip_prefix("hello|")
        .ok_or_else(|| format!("expected hello line, got `{line}`"))?;
    let (id, grid) = rest
        .split_once('|')
        .ok_or_else(|| format!("hello line `{line}` has no grid field"))?;
    if id != PROTOCOL_ID {
        return Err(format!(
            "server speaks `{id}`, this client speaks `{PROTOCOL_ID}`"
        ));
    }
    let grid = grid
        .strip_prefix("grid=")
        .ok_or_else(|| format!("hello line `{line}` has no grid= field"))?;
    u64::from_str_radix(grid, 16).map_err(|_| format!("bad grid id `{grid}`"))
}

/// The `fail` line for one quarantined cell — PR 6's [`CellFailure`]
/// provenance (cell, seed, attempts, final reason) on the wire.
pub fn fail_line(f: &CellFailure) -> String {
    format!(
        "fail|{}/{}|seed={:#x}|attempts={}|{}",
        f.workload, f.config, f.seed, f.attempts, f.reason
    )
}

/// The per-request `stats` line: how this request was served.
/// `hits` counts cells answered from the cache (memory, disk, or another
/// client's just-finished simulation); `simulated` counts cells this
/// request paid to simulate; `evictions` is the server-lifetime total.
pub fn stats_line(hits: u64, misses: u64, evictions: u64, simulated: u64) -> String {
    format!("stats|hits={hits}|misses={misses}|evictions={evictions}|simulated={simulated}")
}

/// The `done` line terminating a response.
pub fn done_line(cells: usize, failed: usize) -> String {
    format!("done|cells={cells}|failed={failed}")
}

/// The `error` line for an unparseable or unresolvable request.
pub fn error_line(reason: &str) -> String {
    // The reason must stay one line to keep the protocol parseable.
    format!("error|{}", reason.replace(['\n', '\r'], " "))
}

/// One classified server response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseLine {
    /// `hello|...` — carries the grid id.
    Hello(u64),
    /// `cell|...` — one healthy cell in checkpoint encoding (raw line).
    Cell(String),
    /// `fail|...` — one quarantined cell (raw line).
    Fail(String),
    /// `stats|...` — the request's cache accounting (raw line).
    Stats(String),
    /// `done|cells=N|failed=K`.
    Done {
        /// Healthy cells streamed.
        cells: usize,
        /// Quarantined cells streamed.
        failed: usize,
    },
    /// `error|...` — the request was refused (reason).
    Error(String),
}

/// Classifies one server line.
///
/// # Errors
/// Lines outside the protocol grammar.
pub fn classify_line(line: &str) -> Result<ResponseLine, String> {
    if line.starts_with("hello|") {
        return Ok(ResponseLine::Hello(parse_hello(line)?));
    }
    if line.starts_with("cell|") {
        return Ok(ResponseLine::Cell(line.to_string()));
    }
    if line.starts_with("fail|") {
        return Ok(ResponseLine::Fail(line.to_string()));
    }
    if line.starts_with("stats|") {
        return Ok(ResponseLine::Stats(line.to_string()));
    }
    if let Some(rest) = line.strip_prefix("done|") {
        let mut cells = None;
        let mut failed = None;
        for field in rest.split('|') {
            match field.split_once('=') {
                Some(("cells", v)) => cells = v.parse().ok(),
                Some(("failed", v)) => failed = v.parse().ok(),
                _ => return Err(format!("bad done field `{field}`")),
            }
        }
        match (cells, failed) {
            (Some(cells), Some(failed)) => return Ok(ResponseLine::Done { cells, failed }),
            _ => return Err(format!("done line `{line}` misses cells=/failed=")),
        }
    }
    if let Some(reason) = line.strip_prefix("error|") {
        return Ok(ResponseLine::Error(reason.to_string()));
    }
    Err(format!("unclassifiable server line `{line}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Stats,
            Request::Shutdown,
            Request::Run(RunRequest::quick()),
            Request::Run(RunRequest {
                full: true,
                frontends: vec!["Baseline".into(), "SBI+SWI".into()],
                workloads: vec!["MatrixMul".into()],
                probes: false,
            }),
        ];
        for req in cases {
            assert_eq!(parse_request(&render_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn bad_requests_are_rejected() {
        for bad in [
            "walk scale=test",
            "run",
            "run scale=huge",
            "run scale=test probes=some",
            "run scale=test frontends=",
            "run scale=test bogus=1",
        ] {
            assert!(parse_request(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn hello_round_trips_and_rejects_other_versions() {
        assert_eq!(parse_hello(&hello_line(0xdead_beef)).unwrap(), 0xdead_beef);
        assert!(parse_hello("hello|warpweave-serve-v0|grid=0").is_err());
        assert!(parse_hello("cell|x").is_err());
    }

    #[test]
    fn classify_covers_the_response_grammar() {
        assert_eq!(
            classify_line("done|cells=12|failed=1").unwrap(),
            ResponseLine::Done {
                cells: 12,
                failed: 1
            }
        );
        assert!(matches!(
            classify_line("cell|a/b|s:x=1|#00").unwrap(),
            ResponseLine::Cell(_)
        ));
        assert!(matches!(
            classify_line("error|no such workload").unwrap(),
            ResponseLine::Error(_)
        ));
        assert!(classify_line("gibberish").is_err());
    }

    #[test]
    fn error_lines_stay_single_line() {
        assert_eq!(error_line("a\nb\rc"), "error|a b c");
    }
}
