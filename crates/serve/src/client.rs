//! The sweep service client: issue a request, collect and verify the
//! response, and optionally render it to the standard sweep JSON.
//!
//! The client re-verifies every `cell|` line's FNV checksum on receipt
//! (the wire format *is* the checkpoint codec), so a flipped bit
//! anywhere between the server's simulation and this process is caught
//! here, not in a downstream diff.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use warpweave_core::checkpoint::{decode_cell, SweepCheckpoint};

use crate::protocol::{classify_line, render_request, Request, ResponseLine, RunRequest};

/// One request's parsed stats line (`stats|hits=..|...`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Cells served from the cache.
    pub hits: u64,
    /// Cells the cache could not serve.
    pub misses: u64,
    /// Server-lifetime evictions at response time.
    pub evictions: u64,
    /// Cells this request paid to simulate.
    pub simulated: u64,
}

/// Parses a `stats|` line into [`RequestStats`] (unknown fields are
/// ignored so the server can grow the line compatibly).
fn parse_stats(line: &str) -> RequestStats {
    let mut stats = RequestStats::default();
    for field in line.trim_start_matches("stats|").split('|') {
        if let Some((key, value)) = field.split_once('=') {
            let Ok(value) = value.parse() else { continue };
            match key {
                "hits" => stats.hits = value,
                "misses" => stats.misses = value,
                "evictions" => stats.evictions = value,
                "simulated" => stats.simulated = value,
                _ => {}
            }
        }
    }
    stats
}

/// A complete, verified response to a `run` request.
#[derive(Debug, Clone)]
pub struct SweepResponse {
    /// The grid identity the server computed for the request.
    pub grid_id: u64,
    /// Every `cell|` line, verbatim and checksum-verified, in canonical
    /// order — the deterministic transcript two concurrent clients can
    /// byte-compare.
    pub cell_lines: Vec<String>,
    /// Every `fail|` line, verbatim.
    pub fail_lines: Vec<String>,
    /// The request's cache accounting.
    pub stats: RequestStats,
}

impl SweepResponse {
    /// The deterministic transcript: cell and fail lines in stream
    /// order, one per line, newline-terminated. Excludes `hello` (copies
    /// of it differ only if servers differ) and `stats` (explicitly
    /// outside the byte-identity contract).
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for line in self.cell_lines.iter().chain(&self.fail_lines) {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Loads the response's cells into an in-memory checkpoint store
    /// bound to the response's grid id — ready for
    /// `matrix_from_store`/`probes_from_store` or a `--merge`.
    ///
    /// # Errors
    /// Codec defects (cannot happen for lines that passed receipt
    /// verification) and duplicate-cell conflicts.
    pub fn into_store(&self) -> Result<SweepCheckpoint, String> {
        let mut store = SweepCheckpoint::in_memory(self.grid_id);
        for line in &self.cell_lines {
            let (key, record) = decode_cell(line)?;
            store.record(&key, record).map_err(|e| e.to_string())?;
        }
        Ok(store)
    }
}

/// Issues `req` against `addr` and collects the full response.
///
/// # Errors
/// Connection and I/O failures, protocol violations, `error|` responses,
/// and any cell line whose checksum does not verify.
pub fn request_run(addr: &str, req: &RunRequest) -> Result<SweepResponse, String> {
    let lines = exchange(addr, &Request::Run(req.clone()))?;
    let mut iter = lines.into_iter();
    let grid_id = match iter.next() {
        Some(ResponseLine::Hello(id)) => id,
        Some(ResponseLine::Error(reason)) => return Err(format!("server refused: {reason}")),
        other => return Err(format!("expected hello, got {other:?}")),
    };
    let mut response = SweepResponse {
        grid_id,
        cell_lines: Vec::new(),
        fail_lines: Vec::new(),
        stats: RequestStats::default(),
    };
    let mut done = None;
    for line in iter {
        match line {
            ResponseLine::Cell(raw) => {
                decode_cell(&raw).map_err(|e| format!("cell line failed verification: {e}"))?;
                response.cell_lines.push(raw);
            }
            ResponseLine::Fail(raw) => response.fail_lines.push(raw),
            ResponseLine::Stats(raw) => response.stats = parse_stats(&raw),
            ResponseLine::Done { cells, failed } => done = Some((cells, failed)),
            ResponseLine::Error(reason) => return Err(format!("server refused: {reason}")),
            ResponseLine::Hello(_) => return Err("unexpected second hello".into()),
        }
    }
    let Some((cells, failed)) = done else {
        return Err("connection closed before done line (server died mid-response?)".into());
    };
    if cells != response.cell_lines.len() || failed != response.fail_lines.len() {
        return Err(format!(
            "done line claims {cells} cells + {failed} failures, stream carried {} + {}",
            response.cell_lines.len(),
            response.fail_lines.len()
        ));
    }
    Ok(response)
}

/// Renders a full-grid response to the standard `BENCH_sweep.json`
/// payload — byte-identical to a local `bench_sweep` run of the same
/// grid, because both render from the same per-cell records.
///
/// # Errors
/// Responses that do not cover the full grid (subset requests, probe-less
/// requests, or responses with failures).
pub fn render_response_json(req: &RunRequest, response: &SweepResponse) -> Result<String, String> {
    if !response.fail_lines.is_empty() {
        return Err(format!(
            "{} cell(s) failed; a sweep payload renders only from a fully healthy grid",
            response.fail_lines.len()
        ));
    }
    if !req.workloads.is_empty() || !req.probes {
        return Err("the sweep payload needs the default workload rows and probes=all".into());
    }
    let configs: Vec<_> = if req.frontends.is_empty() {
        warpweave_bench::grid::figure7_configs()
    } else {
        req.frontends
            .iter()
            .map(|n| warpweave_bench::grid::frontend_config(n))
            .collect::<Result<_, _>>()?
    };
    let workloads = warpweave_bench::grid::sweep_workloads(req.full);
    let store = response.into_store()?;
    let matrix = warpweave_bench::matrix_from_store(&configs, &workloads, &store)
        .map_err(|missing| format!("response misses {} cell(s): {missing:?}", missing.len()))?;
    let probes = warpweave_bench::probes_from_store(&store)
        .map_err(|missing| format!("response misses {} probe(s): {missing:?}", missing.len()))?;
    let scale_label = if req.full { "bench" } else { "test" };
    Ok(warpweave_bench::render_sweep_json(
        scale_label,
        &matrix,
        &probes,
    ))
}

/// Queries the server's cumulative cache statistics (the raw line).
///
/// # Errors
/// Connection/protocol failures.
pub fn request_stats(addr: &str) -> Result<String, String> {
    for line in exchange(addr, &Request::Stats)? {
        if let ResponseLine::Stats(raw) = line {
            return Ok(raw);
        }
    }
    Err("server sent no stats line".into())
}

/// Asks the server to shut down.
///
/// # Errors
/// Connection/protocol failures.
pub fn request_shutdown(addr: &str) -> Result<(), String> {
    exchange(addr, &Request::Shutdown).map(|_| ())
}

/// One request/response exchange: connect, send, read to `done` or EOF.
fn exchange(addr: &str, req: &Request) -> Result<Vec<ResponseLine>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    writeln!(writer, "{}", render_request(req)).map_err(|e| format!("send request: {e}"))?;
    writer.flush().map_err(|e| format!("send request: {e}"))?;
    // Half-close our sending side so the server's line reader sees EOF
    // after this single request.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut lines = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("read response: {e}"))?;
        let classified = classify_line(&line)?;
        let is_done = matches!(classified, ResponseLine::Done { .. });
        let is_error = matches!(classified, ResponseLine::Error(_));
        lines.push(classified);
        if is_done || is_error {
            break;
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_lines_parse_and_tolerate_new_fields() {
        let stats = parse_stats("stats|hits=17|misses=3|evictions=1|simulated=3|future=9");
        assert_eq!(
            stats,
            RequestStats {
                hits: 17,
                misses: 3,
                evictions: 1,
                simulated: 3
            }
        );
    }
}
