//! # warpweave-serve
//!
//! The distributed sweep fabric's service half: a long-running sweep
//! server ([`server`]) speaking a line-delimited text protocol
//! ([`protocol`]) over plain `std::net` TCP, a content-addressed result
//! cache ([`cache`]) deduplicating identical cells across clients and
//! requests, the cell queue ([`queue`]) that funnels misses through the
//! same fault-isolated runner the checkpointed sweep uses, and a client
//! library ([`client`]) with end-to-end checksum verification.
//!
//! The other half of the fabric — sharded `--jobs-from` runs and
//! checkpoint merging — lives in `warpweave-bench` (`shard` module),
//! because shards are ordinary checkpointed sweeps. The wire format here
//! deliberately **is** the checkpoint line codec: a cell travels as the
//! exact checksummed bytes the checkpoint would persist, so results can
//! flow server → client → checkpoint file → merge without re-encoding.
//!
//! Everything is std-only threaded networking: the build environment is
//! fully offline, so there is no async runtime — one thread per
//! connection, a shared worker pool for simulation, mutex-and-condvar
//! coordination in the cache.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{cell_digest, Acquired, CacheStats, CellCache, Claim};
pub use client::{
    render_response_json, request_run, request_shutdown, request_stats, RequestStats, SweepResponse,
};
pub use protocol::{parse_request, render_request, Request, RunRequest, PROTOCOL_ID};
pub use queue::{resolve, run_jobs, CellJob, Outcome, ResolvedGrid};
pub use server::{ServeConfig, Server};
