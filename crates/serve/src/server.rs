//! The long-running sweep server: accept loop, per-connection handlers,
//! and in-order response streaming.
//!
//! One OS thread per connection (the container is offline and std-only,
//! so no async runtime); the heavy lifting — cell simulation — fans out
//! through a shared [`SweepRunner`] worker pool, and the shared
//! [`CellCache`] deduplicates identical cells across connections.
//!
//! Responses stream **in canonical request order** even though cells
//! finish in completion order: a reorder buffer holds early finishers
//! until their turn. That is what makes the determinism clause hold — a
//! client reads cell lines as they become streamable, yet the transcript
//! is a pure function of the request.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use warpweave_core::SweepRunner;

use crate::cache::CellCache;
use crate::protocol::{done_line, error_line, hello_line, parse_request, stats_line, Request};
use crate::queue::{resolve, run_jobs, Outcome};

/// Server tuning knobs (all optional; defaults are sensible for CI).
pub struct ServeConfig {
    /// Worker-thread cap for the simulation pool (`None` = all cores).
    pub threads: Option<usize>,
    /// Retries per failing cell before quarantine.
    pub max_retries: u32,
    /// Memory-tier capacity of the cell cache, in entries.
    pub cache_entries: usize,
    /// Disk tier directory (`None` = memory-only).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: None,
            max_retries: 1,
            cache_entries: 1024,
            cache_dir: None,
        }
    }
}

/// A bound (but not yet serving) sweep server.
pub struct Server {
    listener: TcpListener,
    cache: Arc<CellCache>,
    runner: Arc<SweepRunner>,
    max_retries: u32,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port; read it back via
    /// [`local_addr`](Server::local_addr)).
    ///
    /// # Errors
    /// Bind failures and cache-directory creation failures.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let cache = match cfg.cache_dir {
            Some(dir) => CellCache::with_disk(cfg.cache_entries, dir)?,
            None => CellCache::in_memory(cfg.cache_entries),
        };
        let runner = match cfg.threads {
            Some(n) => SweepRunner::with_threads(n),
            None => SweepRunner::new(),
        };
        Ok(Server {
            listener,
            cache: Arc::new(cache),
            runner: Arc::new(runner),
            max_retries: cfg.max_retries,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    /// As [`TcpListener::local_addr`].
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request arrives. Connection handlers
    /// run on their own threads; a handler that panics kills only its
    /// connection.
    ///
    /// # Errors
    /// Accept-loop I/O failures (per-connection I/O errors are contained
    /// in the handler).
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    eprintln!("sweep_serve: accept: {e}");
                    continue;
                }
            };
            let cache = Arc::clone(&self.cache);
            let runner = Arc::clone(&self.runner);
            let stop = Arc::clone(&self.stop);
            let max_retries = self.max_retries;
            handlers.push(std::thread::spawn(move || {
                if let Err(e) = handle(stream, &cache, &runner, max_retries, &stop, addr) {
                    eprintln!("sweep_serve: connection: {e}");
                }
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Handles one connection: a sequence of request lines until EOF.
fn handle(
    stream: TcpStream,
    cache: &CellCache,
    runner: &SweepRunner,
    max_retries: u32,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(reason) => {
                writeln!(writer, "{}", error_line(&reason))?;
                writer.flush()?;
            }
            Ok(Request::Stats) => {
                let s = cache.stats();
                writeln!(
                    writer,
                    "stats|hits={}|misses={}|evictions={}|disk-hits={}|entries={}",
                    s.hits, s.misses, s.evictions, s.disk_hits, s.entries
                )?;
                writeln!(writer, "{}", done_line(0, 0))?;
                writer.flush()?;
            }
            Ok(Request::Shutdown) => {
                writeln!(writer, "{}", done_line(0, 0))?;
                writer.flush()?;
                stop.store(true, Ordering::SeqCst);
                // The accept loop is parked in accept(); poke it awake
                // so it observes the stop flag.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            Ok(Request::Run(req)) => {
                let grid = match resolve(&req) {
                    Ok(grid) => grid,
                    Err(reason) => {
                        writeln!(writer, "{}", error_line(&reason))?;
                        writer.flush()?;
                        continue;
                    }
                };
                writeln!(writer, "{}", hello_line(grid.grid_id))?;
                writer.flush()?;
                let (hits, simulated, failed) =
                    stream_in_order(&mut writer, runner, cache, max_retries, &grid)?;
                let evictions = cache.stats().evictions;
                // Request-scoped misses: every cell the cache could not
                // serve, whether it then simulated cleanly or failed.
                let misses = simulated + failed as u64;
                writeln!(writer, "{}", stats_line(hits, misses, evictions, simulated))?;
                writeln!(writer, "{}", done_line(grid.jobs.len() - failed, failed))?;
                writer.flush()?;
            }
        }
    }
    Ok(())
}

/// Runs the grid's jobs and streams their lines in canonical order as a
/// contiguous prefix becomes ready. Returns `(hits, simulated, failed)`
/// counts for the stats line.
fn stream_in_order(
    writer: &mut impl Write,
    runner: &SweepRunner,
    cache: &CellCache,
    max_retries: u32,
    grid: &crate::queue::ResolvedGrid,
) -> std::io::Result<(u64, u64, usize)> {
    let slots: Mutex<Vec<Option<Outcome>>> = Mutex::new(vec![None; grid.jobs.len()]);
    let ready = Condvar::new();
    let mut counts = (0u64, 0u64, 0usize);
    std::thread::scope(|scope| -> std::io::Result<()> {
        scope.spawn(|| {
            run_jobs(
                runner,
                cache,
                grid.scale,
                max_retries,
                &grid.jobs,
                |i, outcome| {
                    slots.lock().expect("slot lock")[i] = Some(outcome.clone());
                    ready.notify_all();
                },
            );
        });
        for i in 0..grid.jobs.len() {
            let outcome = {
                let mut slots = slots.lock().expect("slot lock");
                loop {
                    match slots[i].take() {
                        Some(outcome) => break outcome,
                        None => slots = ready.wait(slots).expect("slot lock"),
                    }
                }
            };
            match &outcome {
                Outcome::Hit(_) => counts.0 += 1,
                Outcome::Simulated(_) => counts.1 += 1,
                Outcome::Failed(_) => counts.2 += 1,
            }
            writeln!(writer, "{}", outcome.line())?;
            writer.flush()?;
        }
        Ok(())
    })?;
    Ok(counts)
}
