//! The server's cell queue: request → canonical job list → fault-isolated
//! parallel execution through the content-addressed cache.
//!
//! A `run` request resolves to the same canonical job order the sweep
//! harness uses — workload-major matrix cells, then machine probes — so
//! a served grid and a locally-run grid enumerate identical cells. Each
//! job then flows through [`run_jobs`]: a cache [`acquire`]
//! (serve-or-claim), and for claimed cells the **same contained cell
//! body the checkpointed sweep runs** ([`try_run_one_at`] /
//! [`run_probe`] under [`SweepRunner::run_isolated_reporting`]'s
//! catch-unwind + retry loop). A cell that exhausts its retries becomes
//! a [`CellFailure`] with full provenance, never a dead server — and is
//! never cached, so a later request re-attempts it fresh.
//!
//! [`acquire`]: crate::cache::CellCache::acquire

use warpweave_bench::grid::{frontend_config, machine_probes, sweep_workloads, MachineProbe};
use warpweave_bench::{cell_key, run_probe, try_run_one_at, CellFailure};
use warpweave_core::checkpoint::{encode_cell, CellRecord};
use warpweave_core::{SmConfig, SweepRunner};
use warpweave_workloads::{by_name, Scale};

use crate::cache::{cell_digest, Acquired, CellCache};
use crate::protocol::RunRequest;

/// One schedulable cell of a request, carrying everything needed to
/// simulate it and to address it in the cache.
pub struct CellJob {
    /// The checkpoint cell key (`workload/config` or `machine/...`).
    pub key: String,
    /// Workload label (provenance on failure).
    pub workload: String,
    /// Config label (provenance on failure).
    pub config: String,
    /// The config's RNG seed (part of the content address).
    pub seed: u64,
    kind: JobKind,
}

enum JobKind {
    // Boxed: an SmConfig is ~30x the probe variant, and jobs live in
    // per-request vectors.
    Matrix { cfg: Box<SmConfig> },
    Probe { index: usize },
}

/// The grid a request resolved to: its jobs in canonical order plus the
/// lists the grid id is computed from.
pub struct ResolvedGrid {
    /// Jobs in canonical order (matrix cells workload-major, probes last).
    pub jobs: Vec<CellJob>,
    /// The request's grid identity (binds the response to the grid).
    pub grid_id: u64,
    /// Problem scale of every job.
    pub scale: Scale,
}

/// Resolves a [`RunRequest`] against the policy and workload registries.
///
/// # Errors
/// Unknown front-end or workload names (one-line, for the `error|` wire
/// line).
pub fn resolve(req: &RunRequest) -> Result<ResolvedGrid, String> {
    let configs: Vec<SmConfig> = if req.frontends.is_empty() {
        warpweave_bench::grid::figure7_configs()
    } else {
        req.frontends
            .iter()
            .map(|n| frontend_config(n))
            .collect::<Result<_, _>>()?
    };
    let workloads = if req.workloads.is_empty() {
        sweep_workloads(req.full)
    } else {
        req.workloads
            .iter()
            .map(|n| by_name(n).ok_or_else(|| format!("unknown workload `{n}`")))
            .collect::<Result<Vec<_>, String>>()?
    };
    let scale = if req.full { Scale::Bench } else { Scale::Test };
    let mut jobs = Vec::new();
    for w in &workloads {
        for cfg in &configs {
            jobs.push(CellJob {
                key: cell_key(w.name(), &cfg.name),
                workload: w.name().to_string(),
                config: cfg.name.clone(),
                seed: cfg.seed,
                kind: JobKind::Matrix {
                    cfg: Box::new(cfg.clone()),
                },
            });
        }
    }
    if req.probes {
        for (index, probe) in machine_probes().into_iter().enumerate() {
            jobs.push(CellJob {
                key: probe.key(),
                workload: probe.workload.to_string(),
                config: probe.cfg.name.clone(),
                seed: probe.cfg.seed,
                kind: JobKind::Probe { index },
            });
        }
    }
    let grid_id = warpweave_bench::grid::grid_id(&configs, &workloads, scale);
    Ok(ResolvedGrid {
        jobs,
        grid_id,
        scale,
    })
}

/// How one job of a request settled.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Served from the cache (memory, disk, or another client's
    /// just-finished simulation) — the encoded checkpoint line.
    Hit(String),
    /// Simulated by this request — the encoded checkpoint line.
    Simulated(String),
    /// Quarantined after its retry budget, with provenance.
    Failed(CellFailure),
}

impl Outcome {
    /// The wire line this outcome streams as.
    pub fn line(&self) -> String {
        match self {
            Outcome::Hit(line) | Outcome::Simulated(line) => line.clone(),
            Outcome::Failed(f) => crate::protocol::fail_line(f),
        }
    }
}

/// Simulates (or cache-serves) one job body — the closure
/// `run_isolated_reporting` retries and catch-unwinds.
fn run_cell(job: &CellJob, scale: Scale, probes: &[MachineProbe]) -> Result<CellRecord, String> {
    match &job.kind {
        JobKind::Matrix { cfg } => {
            let workload = by_name(&job.workload)
                .ok_or_else(|| format!("unknown workload `{}`", job.workload))?;
            // Pure simulation (no verify), as in every timing sweep.
            let result = try_run_one_at(cfg, workload.as_ref(), scale, false)?;
            Ok(CellRecord::new(result.stats))
        }
        JobKind::Probe { index } => run_probe(&probes[*index], scale),
    }
}

/// Runs `jobs` through the cache and the fault-isolated parallel runner.
/// `on_done(index, outcome)` fires in **completion order** on worker
/// threads; the returned vector is in job order. A worker that finds a
/// cell `Pending` under another requester blocks (only that worker)
/// until the cell settles — its outcome is then a [`Outcome::Hit`],
/// since someone else paid for the simulation.
pub fn run_jobs(
    runner: &SweepRunner,
    cache: &CellCache,
    scale: Scale,
    max_retries: u32,
    jobs: &[CellJob],
    on_done: impl Fn(usize, &Outcome) + Sync + Send,
) -> Vec<Outcome> {
    let probes = machine_probes();
    let outcomes = runner.run_isolated_reporting(
        jobs,
        max_retries,
        |job| -> Result<Outcome, String> {
            let digest = cell_digest(scale, job.seed, &job.key, &job.config);
            match cache.acquire(digest) {
                Acquired::Ready(line) => Ok(Outcome::Hit(line)),
                Acquired::Claimed(claim) => {
                    // A failure (Err or panic) drops the claim, which
                    // abandons the slot — failures are never cached.
                    let record = run_cell(job, scale, &probes)?;
                    let line = encode_cell(&job.key, &record);
                    claim.fulfill(line.clone());
                    Ok(Outcome::Simulated(line))
                }
            }
        },
        |i, isolated| {
            let outcome = settle(&jobs[i], isolated);
            on_done(i, &outcome);
        },
    );
    outcomes
        .iter()
        .enumerate()
        .map(|(i, isolated)| settle(&jobs[i], isolated))
        .collect()
}

/// Converts one isolated outcome into the wire-facing [`Outcome`],
/// attaching the job's provenance to failures.
fn settle(job: &CellJob, isolated: &warpweave_core::IsolatedOutcome<Outcome>) -> Outcome {
    match &isolated.result {
        Ok(outcome) => outcome.clone(),
        Err(reason) => Outcome::Failed(CellFailure {
            workload: job.workload.clone(),
            config: job.config.clone(),
            seed: job.seed,
            attempts: isolated.attempts,
            reason: reason.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RunRequest;

    fn quick_pair() -> RunRequest {
        RunRequest {
            full: false,
            frontends: vec!["Baseline".into(), "SWI".into()],
            workloads: vec!["MatrixMul".into()],
            probes: false,
        }
    }

    #[test]
    fn resolve_orders_jobs_canonically() {
        let grid = resolve(&RunRequest::quick()).unwrap();
        // 2 quick workloads × 5 fig-7 configs, then the probes.
        let probes = machine_probes().len();
        assert_eq!(grid.jobs.len(), 10 + probes);
        assert_eq!(grid.jobs[0].key, "MatrixMul/Baseline");
        assert_eq!(grid.jobs[9].key, "SortingNetworks/Warp64");
        assert!(grid.jobs[10].key.starts_with("machine/"));
    }

    #[test]
    fn resolve_rejects_unknown_names() {
        let mut bad = RunRequest::quick();
        bad.frontends = vec!["NoSuchPolicy".into()];
        assert!(resolve(&bad).is_err());
        let mut bad = RunRequest::quick();
        bad.workloads = vec!["NoSuchWorkload".into()];
        assert!(resolve(&bad).is_err());
    }

    #[test]
    fn repeat_requests_are_served_entirely_from_cache() {
        let cache = CellCache::in_memory(64);
        let runner = SweepRunner::with_threads(2);
        let grid = resolve(&quick_pair()).unwrap();
        let first = run_jobs(&runner, &cache, grid.scale, 0, &grid.jobs, |_, _| {});
        assert!(first.iter().all(|o| matches!(o, Outcome::Simulated(_))));
        let second = run_jobs(&runner, &cache, grid.scale, 0, &grid.jobs, |_, _| {});
        assert!(second.iter().all(|o| matches!(o, Outcome::Hit(_))));
        // Byte-identical lines either way.
        let a: Vec<String> = first.iter().map(Outcome::line).collect();
        let b: Vec<String> = second.iter().map(Outcome::line).collect();
        assert_eq!(a, b);
    }
}
