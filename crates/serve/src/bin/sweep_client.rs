//! The sweep service client CLI.
//!
//! Usage:
//! `sweep_client --addr HOST:PORT [--full] [--frontend NAMES]
//!               [--workloads NAMES] [--no-probes] [--out PATH]
//!               [--json PATH] [--server-stats] [--shutdown]`
//!
//! * default — issue a `run` request for the quick sweep grid, print the
//!   per-request stats line to stderr, and exit 0 (healthy), 4 (the
//!   server quarantined cells), or 1 (refused/protocol failure).
//! * `--full` — request the bench-scale grid instead.
//! * `--frontend NAMES` / `--workloads NAMES` — restrict the grid
//!   (comma-separated registry names).
//! * `--no-probes` — matrix cells only.
//! * `--out PATH` — write the deterministic response transcript (cell
//!   and fail lines, checksum-verified) to `PATH`. Two clients issuing
//!   the same request get byte-identical transcripts — `cmp` them.
//! * `--json PATH` — render the response to the standard
//!   `BENCH_sweep.json` payload (full default grid + probes only),
//!   byte-identical to a local `bench_sweep` run.
//! * `--server-stats` — query the server's cumulative cache stats and
//!   print the raw line to stdout (no run request).
//! * `--shutdown` — stop the server (no run request).

use std::process::ExitCode;

use warpweave_bench::arg_value;
use warpweave_serve::{
    render_response_json, request_run, request_shutdown, request_stats, RunRequest,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(addr) = arg_value(&args, "--addr") else {
        eprintln!("sweep_client: --addr HOST:PORT is required");
        return ExitCode::from(2);
    };

    if args.iter().any(|a| a == "--shutdown") {
        return match request_shutdown(&addr) {
            Ok(()) => {
                eprintln!("server at {addr} asked to shut down");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("shutdown: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.iter().any(|a| a == "--server-stats") {
        return match request_stats(&addr) {
            Ok(line) => {
                println!("{line}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("stats: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let split = |names: String| {
        names
            .split(',')
            .map(|n| n.trim().to_string())
            .collect::<Vec<_>>()
    };
    let req = RunRequest {
        full: args.iter().any(|a| a == "--full"),
        frontends: arg_value(&args, "--frontend")
            .map(split)
            .unwrap_or_default(),
        workloads: arg_value(&args, "--workloads")
            .map(split)
            .unwrap_or_default(),
        probes: !args.iter().any(|a| a == "--no-probes"),
    };
    let response = match request_run(&addr, &req) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("run request: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "grid {:016x}: {} cell(s), {} failure(s); hits={} misses={} simulated={}",
        response.grid_id,
        response.cell_lines.len(),
        response.fail_lines.len(),
        response.stats.hits,
        response.stats.misses,
        response.stats.simulated
    );
    if let Some(path) = arg_value(&args, "--out") {
        if let Err(e) = std::fs::write(&path, response.transcript()) {
            eprintln!("write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote transcript: {path}");
    }
    if let Some(path) = arg_value(&args, "--json") {
        match render_response_json(&req, &response) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote sweep payload: {path}");
            }
            Err(e) => {
                eprintln!("--json: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !response.fail_lines.is_empty() {
        for line in &response.fail_lines {
            eprintln!("{line}");
        }
        return ExitCode::from(4);
    }
    ExitCode::SUCCESS
}
