//! The sweep service daemon.
//!
//! Usage:
//! `sweep_serve [--addr HOST:PORT] [--threads N] [--max-cell-retries N]
//!              [--cache-entries N] [--cache-dir PATH]`
//!
//! * `--addr` — bind address (default `127.0.0.1:0`; port 0 picks an
//!   ephemeral port). The resolved address is printed to **stdout** as
//!   `listening <host:port>` so scripts can capture it.
//! * `--threads N` — cap the simulation worker pool (default: all cores).
//! * `--max-cell-retries N` — retries per failing cell before it is
//!   reported as a `fail|` line (default 1).
//! * `--cache-entries N` — memory-tier capacity of the content-addressed
//!   cell cache (default 1024 entries).
//! * `--cache-dir PATH` — enable the on-disk cache tier (one
//!   checksummed `.cell` file per entry; survives restarts).
//!
//! The server runs until a client sends `shutdown` (see `sweep_client
//! --shutdown`). Wire protocol: `warpweave_serve::protocol`.

use std::process::ExitCode;

use warpweave_bench::arg_value;
use warpweave_serve::{ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let mut cfg = ServeConfig::default();
    if let Some(n) = arg_value(&args, "--threads") {
        match n.parse() {
            Ok(n) => cfg.threads = Some(n),
            Err(_) => {
                eprintln!("--threads takes a worker count, got `{n}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = arg_value(&args, "--max-cell-retries") {
        match n.parse() {
            Ok(n) => cfg.max_retries = n,
            Err(_) => {
                eprintln!("--max-cell-retries takes a retry count, got `{n}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = arg_value(&args, "--cache-entries") {
        match n.parse() {
            Ok(n) => cfg.cache_entries = n,
            Err(_) => {
                eprintln!("--cache-entries takes an entry count, got `{n}`");
                return ExitCode::from(2);
            }
        }
    }
    cfg.cache_dir = arg_value(&args, "--cache-dir").map(Into::into);

    let server = match Server::bind(&addr, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Scripts parse this line; keep it stable and flushed.
            println!("listening {addr}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("serve loop: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("sweep_serve: shutdown complete");
    ExitCode::SUCCESS
}
