//! End-to-end loopback tests of the sweep service: a real `Server` on an
//! ephemeral TCP port, real clients, real simulations.

use warpweave_bench::grid;
use warpweave_bench::{render_sweep_json, run_machine_probes, run_matrix_serial_at};
use warpweave_serve::{
    render_response_json, request_run, request_shutdown, request_stats, RunRequest, ServeConfig,
    Server,
};
use warpweave_workloads::Scale;

/// Starts a server on an ephemeral loopback port; returns its address
/// and the join handle of its serve loop.
fn start_server(cfg: ServeConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("resolved address").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, handle)
}

fn small_grid() -> RunRequest {
    RunRequest {
        full: false,
        frontends: vec!["Baseline".into(), "SWI".into()],
        workloads: vec!["MatrixMul".into(), "SortingNetworks".into()],
        probes: false,
    }
}

#[test]
fn concurrent_overlapping_clients_get_byte_identical_transcripts() {
    let (addr, server) = start_server(ServeConfig::default());
    let req = small_grid();
    // Two clients race the same grid: the cache's pending-claim
    // coordination must hand both the same bytes, with every cell
    // simulated at most once between them.
    let a = {
        let (addr, req) = (addr.clone(), req.clone());
        std::thread::spawn(move || request_run(&addr, &req).expect("client a"))
    };
    let b = {
        let (addr, req) = (addr.clone(), req.clone());
        std::thread::spawn(move || request_run(&addr, &req).expect("client b"))
    };
    let a = a.join().unwrap();
    let b = b.join().unwrap();
    assert_eq!(a.transcript(), b.transcript(), "byte-identical transcripts");
    assert_eq!(a.grid_id, b.grid_id);
    assert_eq!(a.cell_lines.len(), 4);
    assert!(a.fail_lines.is_empty() && b.fail_lines.is_empty());
    assert_eq!(
        a.stats.simulated + b.stats.simulated,
        4,
        "each cell simulated exactly once across both clients"
    );

    // A third, repeat request is answered entirely from the cache.
    let c = request_run(&addr, &req).expect("client c");
    assert_eq!(c.transcript(), a.transcript());
    assert_eq!(c.stats.simulated, 0, "zero re-simulated cells");
    assert_eq!(c.stats.hits, 4);

    request_shutdown(&addr).expect("shutdown");
    server.join().unwrap();
}

#[test]
fn served_full_grid_renders_the_exact_sweep_payload() {
    let (addr, server) = start_server(ServeConfig::default());
    let req = RunRequest::quick();
    let response = request_run(&addr, &req).expect("quick grid");

    // The service's payload must be byte-identical to a local run's.
    let served = render_response_json(&req, &response).expect("render from response");
    let configs = grid::figure7_configs();
    let workloads = grid::sweep_workloads(false);
    let matrix = run_matrix_serial_at(&configs, &workloads, Scale::Test, false);
    let probes = run_machine_probes(Scale::Test, None).expect("probes");
    let local = render_sweep_json("test", &matrix, &probes);
    assert_eq!(served, local, "served and local sweep payloads");

    request_shutdown(&addr).expect("shutdown");
    server.join().unwrap();
}

#[test]
fn unknown_names_are_refused_not_fatal() {
    let (addr, server) = start_server(ServeConfig::default());
    let mut bad = small_grid();
    bad.frontends = vec!["NoSuchPolicy".into()];
    let err = request_run(&addr, &bad).expect_err("must be refused");
    assert!(err.contains("server refused"), "{err}");
    // The server survives the refusal and still answers work.
    let ok = request_run(&addr, &small_grid()).expect("healthy request after refusal");
    assert_eq!(ok.cell_lines.len(), 4);
    request_shutdown(&addr).expect("shutdown");
    server.join().unwrap();
}

#[test]
fn server_stats_accumulate_across_requests() {
    let (addr, server) = start_server(ServeConfig {
        threads: Some(2),
        ..ServeConfig::default()
    });
    let req = small_grid();
    request_run(&addr, &req).expect("first");
    request_run(&addr, &req).expect("second");
    let line = request_stats(&addr).expect("stats line");
    assert!(line.starts_with("stats|"), "{line}");
    assert!(line.contains("misses=4"), "first request missed 4: {line}");
    assert!(line.contains("hits=4"), "second request hit 4: {line}");
    request_shutdown(&addr).expect("shutdown");
    server.join().unwrap();
}

#[test]
fn disk_cache_tier_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("ww-serve-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let req = small_grid();
    let first = {
        let (addr, server) = start_server(ServeConfig {
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let response = request_run(&addr, &req).expect("first server");
        request_shutdown(&addr).expect("shutdown");
        server.join().unwrap();
        response
    };
    assert_eq!(first.stats.simulated, 4);
    // A brand-new server process-equivalent (fresh memory tier, same
    // disk dir) serves the same grid without re-simulating anything.
    let (addr, server) = start_server(ServeConfig {
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let second = request_run(&addr, &req).expect("second server");
    assert_eq!(second.stats.simulated, 0, "served from the disk tier");
    assert_eq!(second.transcript(), first.transcript());
    request_shutdown(&addr).expect("shutdown");
    server.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
