//! Dependence tracking between in-flight instructions.
//!
//! Three schemes (see [`ScoreboardMode`]):
//!
//! * **WarpLevel** — the baseline's per-warp destination-register table
//!   (paper §2): any register-ID match is a dependency.
//! * **Exact** — an oracle that additionally stores each in-flight
//!   instruction's thread mask and only flags dependences between
//!   intersecting masks.
//! * **Matrix** — the paper's SBI scoreboard (§3.4, fig. 6): instead of
//!   masks, each entry keeps a 3×3 boolean *dependency matrix* `D(tₑ, t)`
//!   over the slots {I1 = primary split, I2 = secondary split, I3 = all
//!   inactive contexts}. On every scheduling event the matrices are composed
//!   with the event's transition matrix (a boolean matrix product), forming
//!   the transitive closure of the divergence/convergence graph. Register
//!   matches are ANDed with the matrix bit — conservative with respect to
//!   `Exact` but needing only 9 bits per entry irrespective of warp width
//!   ("the complexity … is not affected by the warp size").

use warpweave_isa::Instruction;

use crate::config::ScoreboardMode;
use crate::mask::Mask;

/// A 3×3 boolean matrix over the warp-split slots {I1, I2, I3}.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepMatrix(u16);

impl DepMatrix {
    /// The identity matrix.
    pub fn identity() -> DepMatrix {
        let mut m = DepMatrix(0);
        for i in 0..3 {
            m.set(i, i, true);
        }
        m
    }

    /// The all-ones matrix (fully conservative).
    pub fn ones() -> DepMatrix {
        DepMatrix(0x1ff)
    }

    /// Builds the transition matrix between two slot partitions:
    /// `T[i][j] = 1` iff `before[i]` and `after[j]` share a thread.
    #[allow(clippy::needless_range_loop)] // (i, j) indexing mirrors fig. 6
    pub fn transition(before: &[Mask; 3], after: &[Mask; 3]) -> DepMatrix {
        let mut m = DepMatrix(0);
        for i in 0..3 {
            for j in 0..3 {
                if before[i].intersects(after[j]) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Reads bit `(i, j)`.
    pub fn get(self, i: usize, j: usize) -> bool {
        (self.0 >> (i * 3 + j)) & 1 == 1
    }

    /// Writes bit `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        let bit = 1u16 << (i * 3 + j);
        if v {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }

    /// Boolean matrix product `self × rhs`.
    pub fn compose(self, rhs: DepMatrix) -> DepMatrix {
        let mut out = DepMatrix(0);
        for i in 0..3 {
            for j in 0..3 {
                let mut v = false;
                for k in 0..3 {
                    v |= self.get(i, k) && rhs.get(k, j);
                }
                out.set(i, j, v);
            }
        }
        out
    }
}

/// One in-flight instruction inside a scoreboard entry.
#[derive(Debug, Clone, Copy)]
struct SbInst {
    dst: Option<u8>,
    /// `dst` as a register bitmask (bit `r` set), 0 when no destination —
    /// the write footprint candidates are matched against with one AND.
    dst_bit: u64,
    /// `pdst` as a predicate bitmask, 0 when none.
    pdst_bit: u8,
    /// Thread mask at issue (Exact mode refinement).
    mask: Mask,
}

/// One scoreboard entry: the (up to two) instructions issued in one
/// scheduling cycle plus their dependency matrix.
#[derive(Debug, Clone)]
struct SbEntry {
    insts: [Option<SbInst>; 2],
    matrix: DepMatrix,
}

/// Identifies an in-flight instruction for retirement: `(entry, slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SbToken {
    entry: usize,
    slot: usize,
}

/// The per-warp scoreboard.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    mode: ScoreboardMode,
    entries: Vec<Option<SbEntry>>,
    /// Union of every in-flight `dst_bit` — the WarpLevel dependence test
    /// collapses to one AND against this. Kept current by
    /// [`Scoreboard::allocate`]/[`Scoreboard::retire`].
    agg_regs: u64,
    /// Union of every in-flight `pdst_bit`.
    agg_preds: u8,
    /// Count of occupied entries, kept current by
    /// [`Scoreboard::allocate`]/[`Scoreboard::retire`] so the per-cycle
    /// [`Scoreboard::has_free`] probe is one compare, not a slot scan.
    occupied: usize,
}

impl Scoreboard {
    /// A scoreboard with `entries` slots (table 2: 6 per warp).
    pub fn new(mode: ScoreboardMode, entries: usize) -> Self {
        Scoreboard {
            mode,
            entries: vec![None; entries],
            agg_regs: 0,
            agg_preds: 0,
            occupied: 0,
        }
    }

    /// Recomputes the aggregate write footprints from the live entries
    /// (≤ `entries × 2` instructions — allocate/retire rate, not
    /// ready-check rate).
    fn recompute_agg(&mut self) {
        let mut regs = 0u64;
        let mut preds = 0u8;
        for inst in self
            .entries
            .iter()
            .flatten()
            .flat_map(|e| e.insts.iter().flatten())
        {
            regs |= inst.dst_bit;
            preds |= inst.pdst_bit;
        }
        self.agg_regs = regs;
        self.agg_preds = preds;
    }

    /// True if an entry is free for the next issue.
    pub fn has_free(&self) -> bool {
        self.occupied < self.entries.len()
    }

    /// Number of occupied entries.
    pub fn in_flight(&self) -> usize {
        debug_assert_eq!(self.occupied, self.entries.iter().flatten().count());
        self.occupied
    }

    /// Destination registers of every in-flight instruction, in entry
    /// order — the registers dependants are blocked on. Feeds the
    /// deadlock watchdog's per-warp diagnosis.
    pub fn in_flight_dsts(&self) -> Vec<u8> {
        self.entries
            .iter()
            .flatten()
            .flat_map(|e| e.insts.iter().flatten())
            .filter_map(|i| i.dst)
            .collect()
    }

    /// Checks whether `cand` (about to issue into `cand_slot` with thread
    /// mask `cand_mask`) depends on any in-flight instruction. True means
    /// the candidate must stall.
    ///
    /// A dependency is a register/predicate ID match (RAW on sources, WAW on
    /// the destination) refined per the scoreboard mode.
    pub fn depends(&self, cand: &Instruction, cand_mask: Mask, cand_slot: usize) -> bool {
        self.depends_masks(
            cand.reg_footprint(),
            cand.pred_footprint(),
            cand_mask,
            cand_slot,
        )
    }

    /// [`Scoreboard::depends`] against a precomputed candidate footprint
    /// (`Instruction::reg_footprint`/`pred_footprint`) — the per-pc-cached
    /// form the issue path's ready checks run every cycle. A register or
    /// predicate match is one AND against each in-flight write bit.
    pub fn depends_masks(
        &self,
        cand_regs: u64,
        cand_preds: u8,
        cand_mask: Mask,
        cand_slot: usize,
    ) -> bool {
        debug_assert!(cand_slot < 3);
        // No in-flight write touches the candidate's footprint: done. In
        // WarpLevel mode any match is a dependency, so this is the whole
        // test.
        if self.agg_regs & cand_regs == 0 && self.agg_preds & cand_preds == 0 {
            return false;
        }
        if self.mode == ScoreboardMode::WarpLevel {
            return true;
        }
        for e in self.entries.iter().flatten() {
            for (slot, inst) in e.insts.iter().enumerate() {
                let Some(inst) = inst else { continue };
                if inst.dst_bit & cand_regs == 0 && inst.pdst_bit & cand_preds == 0 {
                    continue;
                }
                let refined = match self.mode {
                    ScoreboardMode::WarpLevel => true,
                    ScoreboardMode::Exact => inst.mask.intersects(cand_mask),
                    ScoreboardMode::Matrix => e.matrix.get(slot, cand_slot),
                };
                if refined {
                    return true;
                }
            }
        }
        false
    }

    /// Allocates an entry for this cycle's issue: `i1` and optionally `i2`
    /// (SBI co-issue), with their issue-time thread masks. Returns retirement
    /// tokens, or `None` if the scoreboard is full (structural stall — the
    /// caller must not issue).
    pub fn allocate(
        &mut self,
        i1: (&Instruction, Mask),
        i2: Option<(&Instruction, Mask)>,
    ) -> Option<(SbToken, Option<SbToken>)> {
        let idx = self.entries.iter().position(Option::is_none)?;
        let to_inst = |(ins, mask): (&Instruction, Mask)| SbInst {
            dst: ins.dst.map(|r| r.index() as u8),
            dst_bit: ins.dst.map_or(0, |r| 1 << r.index()),
            pdst_bit: ins.pdst.map_or(0, |p| 1 << p.index()),
            mask,
        };
        let e = SbEntry {
            insts: [Some(to_inst(i1)), i2.map(to_inst)],
            matrix: DepMatrix::identity(), // replaced by `on_event`
        };
        let t2 = i2.map(|_| SbToken {
            entry: idx,
            slot: 1,
        });
        self.entries[idx] = Some(e);
        self.occupied += 1;
        self.recompute_agg();
        Some((
            SbToken {
                entry: idx,
                slot: 0,
            },
            t2,
        ))
    }

    /// Folds this scheduling event's slot transition into every entry:
    /// pre-issue slot masks → post-issue slot masks. The entry just
    /// allocated for this event must be included (its matrix becomes exactly
    /// the transition matrix).
    ///
    /// Only meaningful in `Matrix` mode; a no-op otherwise.
    pub fn on_event(&mut self, before: &[Mask; 3], after: &[Mask; 3], new_entry: Option<SbToken>) {
        if self.mode != ScoreboardMode::Matrix {
            return;
        }
        let t = DepMatrix::transition(before, after);
        for (i, e) in self.entries.iter_mut().enumerate() {
            let Some(e) = e else { continue };
            if Some(i) == new_entry.map(|t| t.entry) {
                e.matrix = t;
            } else {
                e.matrix = e.matrix.compose(t);
            }
        }
    }

    /// Retires one in-flight instruction; frees the entry when both slots
    /// are clear.
    pub fn retire(&mut self, token: SbToken) {
        let e = self.entries[token.entry]
            .as_mut()
            .expect("retiring a freed entry");
        debug_assert!(e.insts[token.slot].is_some(), "double retire");
        e.insts[token.slot] = None;
        if e.insts.iter().all(Option::is_none) {
            self.entries[token.entry] = None;
            self.occupied -= 1;
        }
        self.recompute_agg();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_isa::{p, r, KernelBuilder};

    fn instr_iadd(dst: u8, a: u8, b: u8) -> Instruction {
        let mut k = KernelBuilder::new("t");
        k.iadd(r(dst), r(a), r(b));
        k.exit();
        k.build().unwrap().instructions()[0].clone()
    }

    fn instr_setp(pd: u8, a: u8) -> Instruction {
        let mut k = KernelBuilder::new("t");
        k.isetp(p(pd), warpweave_isa::CmpOp::Lt, r(a), 0i32);
        k.exit();
        k.build().unwrap().instructions()[0].clone()
    }

    #[test]
    fn identity_and_compose() {
        let id = DepMatrix::identity();
        assert_eq!(id.compose(id), id);
        let ones = DepMatrix::ones();
        assert_eq!(id.compose(ones), ones);
        assert_eq!(ones.compose(id), ones);
    }

    #[test]
    fn transition_matrix_from_masks() {
        let before = [
            Mask::from_bits(0b0011),
            Mask::from_bits(0b1100),
            Mask::EMPTY,
        ];
        // Slot 0 splits across new slots 0 and 1; old slot 1 spills to I3.
        let after = [
            Mask::from_bits(0b0001),
            Mask::from_bits(0b0010),
            Mask::from_bits(0b1100),
        ];
        let t = DepMatrix::transition(&before, &after);
        assert!(t.get(0, 0) && t.get(0, 1) && !t.get(0, 2));
        assert!(!t.get(1, 0) && !t.get(1, 1) && t.get(1, 2));
    }

    #[test]
    fn warp_level_flags_any_reg_match() {
        let mut sb = Scoreboard::new(ScoreboardMode::WarpLevel, 6);
        let producer = instr_iadd(5, 1, 2);
        sb.allocate((&producer, Mask::from_bits(0b0011)), None)
            .unwrap();
        let consumer = instr_iadd(6, 5, 2); // reads r5 (RAW)
        assert!(sb.depends(&consumer, Mask::from_bits(0b1100), 0));
        let unrelated = instr_iadd(7, 1, 2);
        assert!(!sb.depends(&unrelated, Mask::full(4), 0));
        let waw = instr_iadd(5, 1, 2);
        assert!(sb.depends(&waw, Mask::full(4), 0));
    }

    #[test]
    fn exact_mode_ignores_disjoint_masks() {
        let mut sb = Scoreboard::new(ScoreboardMode::Exact, 6);
        let producer = instr_iadd(5, 1, 2);
        sb.allocate((&producer, Mask::from_bits(0b0011)), None)
            .unwrap();
        let consumer = instr_iadd(6, 5, 2);
        assert!(!sb.depends(&consumer, Mask::from_bits(0b1100), 0));
        assert!(sb.depends(&consumer, Mask::from_bits(0b0110), 0));
    }

    #[test]
    fn predicate_dependences() {
        let mut sb = Scoreboard::new(ScoreboardMode::WarpLevel, 6);
        let producer = instr_setp(0, 1);
        sb.allocate((&producer, Mask::full(4)), None).unwrap();
        // A guarded instruction reading p0 depends on the setp.
        let mut k = KernelBuilder::new("t");
        k.guard_t(p(0)).iadd(r(9), r(1), r(2));
        k.exit();
        let guarded = k.build().unwrap().instructions()[0].clone();
        assert!(sb.depends(&guarded, Mask::full(4), 0));
        // An unguarded one does not.
        let free = instr_iadd(9, 1, 2);
        assert!(!sb.depends(&free, Mask::full(4), 0));
    }

    #[test]
    fn matrix_mode_coissue_independence() {
        // I1 writes r5 for threads {0,1}; I2 (same cycle, disjoint split)
        // also writes r5 — under Matrix mode the WAW between slots is ignored
        // because D[0][1] = 0 after the event (disjoint splits).
        let mut sb = Scoreboard::new(ScoreboardMode::Matrix, 6);
        let i1 = instr_iadd(5, 1, 2);
        let i2 = instr_iadd(5, 3, 4);
        let m1 = Mask::from_bits(0b0011);
        let m2 = Mask::from_bits(0b1100);
        let (t1, t2) = sb.allocate((&i1, m1), Some((&i2, m2))).unwrap();
        // Slots unchanged by the event: splits stay apart.
        let slots = [m1, m2, Mask::EMPTY];
        sb.on_event(&slots, &slots, Some(t1));
        let next_for_slot1 = instr_iadd(5, 5, 5);
        // Candidate in slot 1 depends on the slot-1 producer but not slot-0's.
        assert!(sb.depends(&next_for_slot1, m2, 1));
        sb.retire(t2.unwrap());
        assert!(!sb.depends(&next_for_slot1, m2, 1));
        sb.retire(t1);
        assert_eq!(sb.in_flight(), 0);
    }

    #[test]
    fn matrix_tracks_threads_jumping_between_splits() {
        // Producer issues in slot 0. Then the splits reconverge: slot-0 and
        // slot-1 threads merge into slot 0. A consumer in slot 0 must now
        // depend on the old slot-0 producer.
        let mut sb = Scoreboard::new(ScoreboardMode::Matrix, 6);
        let prod = instr_iadd(5, 1, 2);
        let m1 = Mask::from_bits(0b0011);
        let m2 = Mask::from_bits(0b1100);
        let (t1, _) = sb.allocate((&prod, m1), None).unwrap();
        sb.on_event(&[m1, m2, Mask::EMPTY], &[m1, m2, Mask::EMPTY], Some(t1));
        // Next event: merge (both old slots map into new slot 0).
        sb.on_event(
            &[m1, m2, Mask::EMPTY],
            &[m1 | m2, Mask::EMPTY, Mask::EMPTY],
            None,
        );
        let consumer = instr_iadd(6, 5, 2);
        assert!(sb.depends(&consumer, m1 | m2, 0));
        // And slot 1 (now empty) has no dependences.
        assert!(!sb.depends(&consumer, Mask::EMPTY, 1));
    }

    #[test]
    fn structural_full() {
        let mut sb = Scoreboard::new(ScoreboardMode::WarpLevel, 2);
        let i = instr_iadd(1, 2, 3);
        assert!(sb.allocate((&i, Mask::full(4)), None).is_some());
        assert!(sb.allocate((&i, Mask::full(4)), None).is_some());
        assert!(!sb.has_free());
        assert!(sb.allocate((&i, Mask::full(4)), None).is_none());
    }

    #[test]
    fn matrix_is_conservative_wrt_exact() {
        // Randomised check: for arbitrary split evolutions, if Exact flags a
        // dependency then Matrix must flag it too.
        let mut seed = 0x12345u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..200 {
            let full = Mask::full(8);
            let m1 = Mask::from_bits(rng() & 0xff);
            let m1 = if m1.is_empty() {
                Mask::from_bits(1)
            } else {
                m1
            };
            let m2 = full - m1;
            let mut exact = Scoreboard::new(ScoreboardMode::Exact, 6);
            let mut matrix = Scoreboard::new(ScoreboardMode::Matrix, 6);
            let prod = instr_iadd(5, 1, 2);
            exact.allocate((&prod, m1), None).unwrap();
            let (tk, _) = matrix.allocate((&prod, m1), None).unwrap();
            let before = [m1, m2, Mask::EMPTY];
            // Random re-partition of threads over slots.
            let a0 = Mask::from_bits(rng() & 0xff);
            let a1 = (full - a0) & Mask::from_bits(rng() & 0xff);
            let a2 = full - a0 - a1;
            let after = [a0, a1, a2];
            matrix.on_event(&before, &after, Some(tk));
            let consumer = instr_iadd(6, 5, 1);
            for (slot, m) in after.iter().enumerate().take(2) {
                if exact.depends(&consumer, *m, slot) {
                    assert!(
                        matrix.depends(&consumer, *m, slot),
                        "matrix missed a dependency flagged by exact"
                    );
                }
            }
        }
    }
}
