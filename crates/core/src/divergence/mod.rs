//! Divergence tracking: the baseline PDOM [`stack`] and the paper's
//! thread-frontier [`frontier`] heap (HCT + CCT).

pub mod frontier;
pub mod stack;

use warpweave_isa::Pc;

use crate::mask::Mask;

/// The control-flow outcome of executing one instruction for one warp-split,
/// fed back into the divergence structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// All threads of the split advance to `pc` (fallthrough or uniform
    /// branch).
    Advance(Pc),
    /// The split diverges: `first` and `second` are disjoint, non-empty and
    /// together cover the split's mask.
    Split {
        /// One side of the divergence (by convention the fallthrough path).
        first: (Pc, Mask),
        /// The other side (the taken path).
        second: (Pc, Mask),
    },
    /// The split advances to `pc` and waits at a block barrier.
    Barrier(Pc),
    /// All threads of the split terminate.
    Exit,
}

impl Transition {
    /// Builds the right transition from a branch outcome.
    ///
    /// `mask` is the executing split's mask, `taken` the sub-mask that takes
    /// the branch to `target`; the rest falls through to `fallthrough`.
    pub fn from_branch(mask: Mask, taken: Mask, target: Pc, fallthrough: Pc) -> Transition {
        debug_assert!(taken.is_subset(mask));
        if taken == mask {
            Transition::Advance(target)
        } else if taken.is_empty() {
            Transition::Advance(fallthrough)
        } else {
            Transition::Split {
                first: (fallthrough, mask - taken),
                second: (target, taken),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_classification() {
        let m = Mask::full(4);
        assert_eq!(
            Transition::from_branch(m, m, Pc(9), Pc(1)),
            Transition::Advance(Pc(9))
        );
        assert_eq!(
            Transition::from_branch(m, Mask::EMPTY, Pc(9), Pc(1)),
            Transition::Advance(Pc(1))
        );
        let t = Transition::from_branch(m, Mask::from_bits(0b0101), Pc(9), Pc(1));
        assert_eq!(
            t,
            Transition::Split {
                first: (Pc(1), Mask::from_bits(0b1010)),
                second: (Pc(9), Mask::from_bits(0b0101)),
            }
        );
    }
}
