//! Thread-frontier divergence tracking: the sorted heap of warp-split
//! contexts (paper §3.4, fig. 5).
//!
//! Contexts live in a two-entry Hot Context Table (HCT) holding the two
//! minimal-PC warp-splits (`CPC1 < CPC2`) and a per-warp Cold Context Table
//! (CCT) holding the rest. The HCT sorter sorts/compacts/merges up to three
//! contexts per cycle (at most one divergence per cycle is allowed); spills
//! go to the CCT through a *sideband sorter* that performs insertion sort at
//! one node per cycle — when it cannot keep up, the CCT degrades into a
//! stack (new entries pushed on top), exactly the fallback the paper
//! describes.

use std::collections::VecDeque;

use warpweave_isa::Pc;

use crate::divergence::Transition;
use crate::mask::Mask;

/// One warp-split context: `(CPC, m, v)` in the paper, plus a barrier flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctx {
    /// The split's common PC.
    pub pc: Pc,
    /// Threads belonging to the split.
    pub mask: Mask,
    /// True while the split waits at a block barrier.
    pub at_barrier: bool,
}

/// Bookkeeping returned by [`FrontierHeap::apply_pair`] so the pipeline can
/// model the sideband sorter's occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapUpdate {
    /// A context was spilled into the CCT.
    pub spilled: bool,
    /// Nodes the sideband sorter walked for a sorted insert (0 if degraded
    /// or no spill).
    pub cct_walk: usize,
    /// The spill used the degraded (stack-order) path.
    pub degraded: bool,
}

/// Occupancy statistics for hardware provisioning and §5.2 validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// High-water mark of live warp-splits (HCT + CCT).
    pub max_live_splits: usize,
    /// Contexts spilled to the CCT.
    pub spills: u64,
    /// Spills that used the degraded stack-order path.
    pub degraded_inserts: u64,
    /// Context merges (reconvergence events).
    pub merges: u64,
}

/// The per-warp sorted heap (HCT + CCT).
#[derive(Debug, Clone)]
pub struct FrontierHeap {
    hct: [Option<Ctx>; 2],
    cct: VecDeque<Ctx>,
    stats: HeapStats,
}

impl FrontierHeap {
    /// A fresh heap: all of `mask` at PC 0.
    pub fn new(mask: Mask) -> Self {
        FrontierHeap {
            hct: [
                Some(Ctx {
                    pc: Pc(0),
                    mask,
                    at_barrier: false,
                }),
                None,
            ],
            cct: VecDeque::new(),
            stats: HeapStats {
                max_live_splits: 1,
                ..HeapStats::default()
            },
        }
    }

    /// The primary warp-split (CPC1 = min PC), if any.
    pub fn primary(&self) -> Option<Ctx> {
        self.hct[0]
    }

    /// The secondary warp-split (CPC2 = second minimum), if any.
    pub fn secondary(&self) -> Option<Ctx> {
        self.hct[1]
    }

    /// True when every thread has exited.
    pub fn is_done(&self) -> bool {
        self.hct.iter().all(Option::is_none) && self.cct.is_empty()
    }

    /// Number of live warp-splits (HCT + CCT).
    pub fn live_splits(&self) -> usize {
        self.hct.iter().flatten().count() + self.cct.len()
    }

    /// Current CCT occupancy.
    pub fn cct_len(&self) -> usize {
        self.cct.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Releases every context from a barrier.
    pub fn release_barrier(&mut self) {
        for c in self.hct.iter_mut().flatten() {
            c.at_barrier = false;
        }
        for c in &mut self.cct {
            c.at_barrier = false;
        }
    }

    /// Union of the masks of all live splits (the warp's alive threads).
    pub fn alive_mask(&self) -> Mask {
        let mut m = Mask::EMPTY;
        for c in self.hct.iter().flatten() {
            m |= c.mask;
        }
        for c in &self.cct {
            m |= c.mask;
        }
        m
    }

    /// Applies the transitions of the primary (`t1`) and/or secondary (`t2`)
    /// split for this scheduling cycle, then re-sorts the HCT, spilling to /
    /// refilling from the CCT. `sideband_free` selects between a sorted CCT
    /// insert and the degraded stack-order insert.
    ///
    /// # Panics
    /// Panics (debug) if a transition is supplied for an empty slot or if
    /// both transitions diverge (the hardware allows one divergence per
    /// cycle; the scheduler must enforce it).
    pub fn apply_pair(
        &mut self,
        t1: Option<Transition>,
        t2: Option<Transition>,
        sideband_free: bool,
    ) -> HeapUpdate {
        debug_assert!(
            !(matches!(t1, Some(Transition::Split { .. }))
                && matches!(t2, Some(Transition::Split { .. }))),
            "at most one divergence per cycle"
        );
        let mut candidates: Vec<Ctx> = Vec::with_capacity(3);
        for (slot, t) in [(0usize, t1), (1usize, t2)] {
            match t {
                None => {
                    if let Some(c) = self.hct[slot] {
                        candidates.push(c);
                    }
                }
                Some(tr) => {
                    let c = self.hct[slot].expect("transition for empty HCT slot");
                    match tr {
                        Transition::Advance(pc) => candidates.push(Ctx { pc, ..c }),
                        Transition::Barrier(pc) => candidates.push(Ctx {
                            pc,
                            at_barrier: true,
                            ..c
                        }),
                        Transition::Exit => {}
                        Transition::Split { first, second } => {
                            candidates.push(Ctx {
                                pc: first.0,
                                mask: first.1,
                                at_barrier: false,
                            });
                            candidates.push(Ctx {
                                pc: second.0,
                                mask: second.1,
                                at_barrier: false,
                            });
                        }
                    }
                }
            }
        }
        self.hct = [None, None];
        let update = self.resort(candidates, sideband_free);
        self.stats.max_live_splits = self.stats.max_live_splits.max(self.live_splits());
        update
    }

    /// Sorts/compacts/merges `candidates` together with promotable CCT
    /// heads, fills the HCT with the two minimal contexts and spills the
    /// rest.
    fn resort(&mut self, mut candidates: Vec<Ctx>, sideband_free: bool) -> HeapUpdate {
        let mut update = HeapUpdate::default();
        // Promote the CCT head while it would beat the HCT's would-be
        // second entry (or while the HCT has room). The HCT sorter sees the
        // head's CPC each cycle, so this costs no extra hardware beyond the
        // comparators of fig. 5(b).
        while let Some(&head) = self.cct.front() {
            candidates.sort_by_key(|c| c.pc);
            let promote = candidates.len() < 2
                || head.pc < candidates[1].pc
                || candidates.iter().any(|c| c.pc == head.pc);
            if promote {
                self.cct.pop_front();
                candidates.push(head);
            } else {
                break;
            }
        }
        candidates.sort_by_key(|c| c.pc);
        // Merge adjacent equal-PC contexts (reconvergence).
        let mut merged: Vec<Ctx> = Vec::with_capacity(candidates.len());
        for c in candidates {
            match merged.last_mut() {
                Some(last) if last.pc == c.pc && last.at_barrier == c.at_barrier => {
                    debug_assert!(last.mask.is_disjoint(c.mask), "overlapping splits");
                    last.mask |= c.mask;
                    self.stats.merges += 1;
                }
                _ => merged.push(c),
            }
        }
        let mut it = merged.into_iter();
        self.hct[0] = it.next();
        self.hct[1] = it.next();
        // Spill the remainder through the sideband sorter.
        for c in it {
            update.spilled = true;
            self.stats.spills += 1;
            if sideband_free {
                let pos = self.cct.iter().position(|e| e.pc > c.pc);
                match pos {
                    Some(i) => {
                        update.cct_walk = update.cct_walk.max(i + 1);
                        self.cct.insert(i, c);
                    }
                    None => {
                        update.cct_walk = update.cct_walk.max(self.cct.len());
                        self.cct.push_back(c);
                    }
                }
            } else {
                // Degraded mode: the heap behaves like a stack.
                update.degraded = true;
                self.stats.degraded_inserts += 1;
                self.cct.push_front(c);
            }
        }
        update
    }

    /// Removes exited threads from every context (used when threads exit
    /// from a split that is being dismantled externally, e.g. kernel
    /// teardown in tests). Normal exits flow through
    /// [`Transition::Exit`].
    pub fn exit_mask(&mut self, m: Mask) {
        for c in self.hct.iter_mut().flatten() {
            c.mask = c.mask - m;
        }
        for c in &mut self.cct {
            c.mask = c.mask - m;
        }
        self.cct.retain(|c| !c.mask.is_empty());
        let live: Vec<Ctx> = self
            .hct
            .iter()
            .flatten()
            .copied()
            .filter(|c| !c.mask.is_empty())
            .collect();
        self.hct = [None, None];
        self.resort(live, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full4() -> Mask {
        Mask::full(4)
    }

    fn split(mask_first: u64, pc_first: u32, mask_second: u64, pc_second: u32) -> Transition {
        Transition::Split {
            first: (Pc(pc_first), Mask::from_bits(mask_first)),
            second: (Pc(pc_second), Mask::from_bits(mask_second)),
        }
    }

    #[test]
    fn fresh_heap() {
        let h = FrontierHeap::new(full4());
        assert_eq!(h.primary().unwrap().pc, Pc(0));
        assert!(h.secondary().is_none());
        assert_eq!(h.live_splits(), 1);
        assert!(!h.is_done());
    }

    #[test]
    fn divergence_orders_by_pc() {
        let mut h = FrontierHeap::new(full4());
        // Branch at 0: {2,3} fall through to 1, {0,1} jump to 5.
        h.apply_pair(Some(split(0b1100, 1, 0b0011, 5)), None, true);
        assert_eq!(h.primary().unwrap().pc, Pc(1));
        assert_eq!(h.primary().unwrap().mask, Mask::from_bits(0b1100));
        assert_eq!(h.secondary().unwrap().pc, Pc(5));
        assert_eq!(h.live_splits(), 2);
    }

    #[test]
    fn reconvergence_merges_equal_pcs() {
        let mut h = FrontierHeap::new(full4());
        h.apply_pair(Some(split(0b1100, 1, 0b0011, 5)), None, true);
        // Primary advances 1→5: equal PCs merge.
        h.apply_pair(Some(Transition::Advance(Pc(5))), None, true);
        assert_eq!(h.primary().unwrap().pc, Pc(5));
        assert_eq!(h.primary().unwrap().mask, full4());
        assert!(h.secondary().is_none());
        assert_eq!(h.stats().merges, 1);
    }

    #[test]
    fn both_slots_advance_simultaneously() {
        let mut h = FrontierHeap::new(full4());
        h.apply_pair(Some(split(0b1100, 1, 0b0011, 5)), None, true);
        // SBI issues both: primary 1→2, secondary 5→6.
        h.apply_pair(
            Some(Transition::Advance(Pc(2))),
            Some(Transition::Advance(Pc(6))),
            true,
        );
        assert_eq!(h.primary().unwrap().pc, Pc(2));
        assert_eq!(h.secondary().unwrap().pc, Pc(6));
    }

    #[test]
    fn third_split_spills_and_returns() {
        let mut h = FrontierHeap::new(full4());
        h.apply_pair(Some(split(0b1100, 1, 0b0011, 8)), None, true);
        // Primary diverges again: three live splits, max PC spills.
        h.apply_pair(Some(split(0b0100, 2, 0b1000, 9)), None, true);
        assert_eq!(h.live_splits(), 3);
        assert_eq!(h.cct_len(), 1);
        assert_eq!(h.primary().unwrap().pc, Pc(2));
        assert_eq!(h.secondary().unwrap().pc, Pc(8));
        assert_eq!(h.stats().spills, 1);
        // Primary exits → CCT head (9) promotes into the HCT.
        h.apply_pair(Some(Transition::Exit), None, true);
        assert_eq!(h.primary().unwrap().pc, Pc(8));
        assert_eq!(h.secondary().unwrap().pc, Pc(9));
        assert_eq!(h.cct_len(), 0);
    }

    #[test]
    fn cct_head_promotes_when_it_beats_hct() {
        let mut h = FrontierHeap::new(Mask::full(8));
        h.apply_pair(Some(split(0b1100, 4, 0b0011, 8)), None, true);
        h.apply_pair(Some(split(0b0100, 5, 0b1000, 12)), None, true);
        assert_eq!(h.cct_len(), 1); // ctx @12 spilled
                                    // Primary jumps to 20: now 12 < 20 must re-enter the HCT.
        h.apply_pair(Some(Transition::Advance(Pc(20))), None, true);
        assert_eq!(h.primary().unwrap().pc, Pc(8));
        assert_eq!(h.secondary().unwrap().pc, Pc(12));
        let pcs: Vec<u32> = h.cct.iter().map(|c| c.pc.0).collect();
        assert_eq!(pcs, vec![20]);
    }

    #[test]
    fn degraded_insert_goes_to_front() {
        let mut h = FrontierHeap::new(Mask::full(8));
        h.apply_pair(Some(split(0b1100, 4, 0b0011, 8)), None, true);
        let u = h.apply_pair(Some(split(0b0100, 5, 0b1000, 12)), None, false);
        assert!(u.spilled && u.degraded);
        let u = h.apply_pair(Some(split(0b0100, 6, 0b0000_0100_0000, 10)), None, false);
        assert!(u.degraded);
        // Stack order: most recent first (10 before 12).
        let pcs: Vec<u32> = h.cct.iter().map(|c| c.pc.0).collect();
        assert_eq!(pcs, vec![10, 12]);
        assert_eq!(h.stats().degraded_inserts, 2);
    }

    #[test]
    fn sorted_insert_keeps_cct_ordered() {
        let mut h = FrontierHeap::new(Mask::full(16));
        h.apply_pair(Some(split(0xfff0, 1, 0x000f, 30)), None, true);
        h.apply_pair(Some(split(0xff00, 2, 0x00f0, 20)), None, true);
        h.apply_pair(Some(split(0xf000, 3, 0x0f00, 25)), None, true);
        // HCT: 3, 20 — CCT: 25, 30 sorted.
        let pcs: Vec<u32> = h.cct.iter().map(|c| c.pc.0).collect();
        assert_eq!(pcs, vec![25, 30]);
    }

    #[test]
    fn exit_drains_heap() {
        let mut h = FrontierHeap::new(full4());
        h.apply_pair(Some(split(0b1100, 1, 0b0011, 5)), None, true);
        h.apply_pair(Some(Transition::Exit), None, true);
        assert_eq!(h.primary().unwrap().pc, Pc(5));
        assert!(h.secondary().is_none());
        h.apply_pair(Some(Transition::Exit), None, true);
        assert!(h.is_done());
    }

    #[test]
    fn barrier_flags_set_and_release() {
        let mut h = FrontierHeap::new(full4());
        h.apply_pair(Some(Transition::Barrier(Pc(3))), None, true);
        assert!(h.primary().unwrap().at_barrier);
        h.release_barrier();
        assert!(!h.primary().unwrap().at_barrier);
    }

    #[test]
    fn barrier_and_nonbarrier_do_not_merge() {
        let mut h = FrontierHeap::new(full4());
        h.apply_pair(Some(split(0b1100, 3, 0b0011, 4)), None, true);
        // Primary hits a barrier at 3 → advances to 4 flagged; secondary
        // sits at 4 unflagged: they must not merge.
        h.apply_pair(Some(Transition::Barrier(Pc(4))), None, true);
        assert_eq!(h.live_splits(), 2);
    }

    #[test]
    fn alive_mask_partition_invariant() {
        let mut h = FrontierHeap::new(Mask::full(8));
        h.apply_pair(Some(split(0b1111_0000, 2, 0b0000_1111, 9)), None, true);
        h.apply_pair(Some(split(0b1100_0000, 3, 0b0011_0000, 7)), None, true);
        assert_eq!(h.alive_mask(), Mask::full(8));
    }
}
