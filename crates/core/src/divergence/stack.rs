//! The baseline PDOM reconvergence stack (paper §2).
//!
//! "Like Fermi, it handles branch divergence using a hardware stack. …
//! The context associated with future branches (PC and mask) are stored in a
//! hardware stack. Entries are popped from the stack as control flow
//! reconverges."
//!
//! The scheme used here is the classic three-entry discipline: on a
//! divergent branch the current entry is replaced by a *continuation* at the
//! reconvergence PC holding the union mask, plus one entry per divergent
//! path. A path entry pops when its PC reaches its reconvergence PC, melting
//! back into the continuation below it.

use warpweave_isa::Pc;

use crate::divergence::Transition;
use crate::mask::Mask;

/// One stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Next PC for this context.
    pub pc: Pc,
    /// Threads owned by this context.
    pub mask: Mask,
    /// PC at which this context pops (`None`: runs to thread exit).
    pub reconv: Option<Pc>,
}

/// A per-warp PDOM reconvergence stack.
///
/// Only the top entry executes. [`PdomStack::apply`] feeds back the executed
/// instruction's [`Transition`].
#[derive(Debug, Clone)]
pub struct PdomStack {
    stack: Vec<StackEntry>,
    waiting_barrier: bool,
    max_depth: usize,
}

impl PdomStack {
    /// A fresh stack: all of `mask` at PC 0.
    pub fn new(mask: Mask) -> Self {
        PdomStack {
            stack: vec![StackEntry {
                pc: Pc(0),
                mask,
                reconv: None,
            }],
            waiting_barrier: false,
            max_depth: 1,
        }
    }

    /// The executing context (top of stack), if any threads remain.
    pub fn current(&self) -> Option<(Pc, Mask)> {
        self.stack.last().map(|e| (e.pc, e.mask))
    }

    /// True when every thread has exited.
    pub fn is_done(&self) -> bool {
        self.stack.is_empty()
    }

    /// True while the warp waits at a block barrier.
    pub fn at_barrier(&self) -> bool {
        self.waiting_barrier
    }

    /// Releases the warp from a barrier.
    pub fn release_barrier(&mut self) {
        self.waiting_barrier = false;
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// High-water mark of the stack depth (hardware provisioning metric,
    /// cf. table 3's 12 entries per warp).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Pops entries whose PC reached their reconvergence point (their
    /// threads are covered by a continuation below) and empty entries.
    fn settle(&mut self) {
        while let Some(top) = self.stack.last() {
            if top.mask.is_empty() || top.reconv == Some(top.pc) {
                self.stack.pop();
            } else {
                break;
            }
        }
    }

    /// Applies the outcome of the top context executing one instruction.
    ///
    /// `branch_reconv` is the executed branch's reconvergence annotation
    /// (`Instruction::reconv`); it is only read for `Transition::Split`.
    ///
    /// # Panics
    /// Panics (debug) if called on an empty stack.
    pub fn apply(&mut self, t: Transition, branch_reconv: Option<Pc>) {
        debug_assert!(!self.stack.is_empty(), "apply on exhausted stack");
        match t {
            Transition::Advance(pc) => {
                self.stack.last_mut().expect("non-empty").pc = pc;
            }
            Transition::Barrier(pc) => {
                self.stack.last_mut().expect("non-empty").pc = pc;
                self.waiting_barrier = true;
            }
            Transition::Exit => {
                let m = self.stack.last().expect("non-empty").mask;
                self.exit_mask(m);
            }
            Transition::Split { first, second } => {
                let top = self.stack.pop().expect("non-empty");
                let r = branch_reconv;
                // Continuation: the union mask waiting at the reconvergence
                // point. Skipped when it coincides with the popped entry's
                // own reconvergence (the entry below already covers it) —
                // this is what keeps divergent loops at O(nesting) depth.
                if let Some(rp) = r {
                    if top.reconv != Some(rp) {
                        self.stack.push(StackEntry {
                            pc: rp,
                            mask: top.mask,
                            reconv: top.reconv,
                        });
                    }
                }
                // Paths: taken below, fallthrough on top (fallthrough
                // executes first, as in fig. 2 where the `if` side runs
                // before the `else` side). A path starting at the
                // reconvergence point needs no entry.
                for (pc, mask) in [second, first] {
                    debug_assert!(!mask.is_empty());
                    if Some(pc) != r {
                        self.stack.push(StackEntry {
                            pc,
                            mask,
                            reconv: r,
                        });
                    }
                }
            }
        }
        self.max_depth = self.max_depth.max(self.stack.len());
        self.settle();
    }

    /// Removes exited threads from every entry (threads that `EXIT` inside a
    /// divergent path must also disappear from the continuations below).
    pub fn exit_mask(&mut self, m: Mask) {
        for e in &mut self.stack {
            e.mask = e.mask - m;
        }
        self.stack.retain(|e| !e.mask.is_empty());
        self.settle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full4() -> Mask {
        Mask::full(4)
    }

    #[test]
    fn straight_line_advance() {
        let mut s = PdomStack::new(full4());
        s.apply(Transition::Advance(Pc(1)), None);
        assert_eq!(s.current(), Some((Pc(1), full4())));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn if_else_reconverges() {
        // Branch at 0 (reconv 4): taken {0,1}→3, fallthrough {2,3}→1.
        let mut s = PdomStack::new(full4());
        let taken = Mask::from_bits(0b0011);
        s.apply(
            Transition::from_branch(full4(), taken, Pc(3), Pc(1)),
            Some(Pc(4)),
        );
        // Fallthrough path on top.
        assert_eq!(s.current(), Some((Pc(1), Mask::from_bits(0b1100))));
        assert_eq!(s.depth(), 3);
        // Fallthrough runs 1 → 2 → 4 (reconv) → pops.
        s.apply(Transition::Advance(Pc(2)), None);
        s.apply(Transition::Advance(Pc(4)), None);
        assert_eq!(s.current(), Some((Pc(3), taken)));
        // Taken runs 3 → 4 → pops → continuation with the full mask.
        s.apply(Transition::Advance(Pc(4)), None);
        assert_eq!(s.current(), Some((Pc(4), full4())));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn divergent_loop_depth_stays_bounded() {
        // Loop body at 1..3, back-branch at 2 (reconv 3 = loop exit).
        let mut s = PdomStack::new(full4());
        s.apply(Transition::Advance(Pc(1)), None);
        let mut alive = full4();
        // Threads 0..3 leave the loop one per iteration.
        for i in 0..3 {
            s.apply(Transition::Advance(Pc(2)), None); // body
            let staying = alive.without(i);
            s.apply(
                Transition::from_branch(alive, staying, Pc(1), Pc(3)),
                Some(Pc(3)),
            );
            alive = staying;
            assert!(
                s.depth() <= 3,
                "depth {} grew unboundedly at iter {i}",
                s.depth()
            );
            assert_eq!(s.current(), Some((Pc(1), alive)));
        }
        // Last thread leaves uniformly.
        s.apply(Transition::Advance(Pc(2)), None);
        s.apply(
            Transition::from_branch(alive, Mask::EMPTY, Pc(1), Pc(3)),
            Some(Pc(3)),
        );
        // Everyone reconverged at the loop exit.
        assert_eq!(s.current(), Some((Pc(3), full4())));
    }

    #[test]
    fn exit_inside_divergent_path() {
        let mut s = PdomStack::new(full4());
        let taken = Mask::from_bits(0b0011);
        s.apply(
            Transition::from_branch(full4(), taken, Pc(5), Pc(1)),
            Some(Pc(8)),
        );
        // Fallthrough threads exit inside their path.
        s.apply(Transition::Exit, None);
        // Taken path becomes current; continuation no longer owns the dead
        // threads.
        assert_eq!(s.current(), Some((Pc(5), taken)));
        s.apply(Transition::Advance(Pc(8)), None);
        assert_eq!(s.current(), Some((Pc(8), taken)));
        s.apply(Transition::Exit, None);
        assert!(s.is_done());
    }

    #[test]
    fn barrier_flags() {
        let mut s = PdomStack::new(full4());
        s.apply(Transition::Barrier(Pc(1)), None);
        assert!(s.at_barrier());
        s.release_barrier();
        assert!(!s.at_barrier());
        assert_eq!(s.current(), Some((Pc(1), full4())));
    }

    #[test]
    fn reconverge_at_exit_branch() {
        // Divergent branch with no reconvergence point (both paths exit).
        let mut s = PdomStack::new(full4());
        let taken = Mask::from_bits(0b1000);
        s.apply(Transition::from_branch(full4(), taken, Pc(7), Pc(1)), None);
        assert_eq!(s.depth(), 2);
        s.apply(Transition::Exit, None); // fallthrough exits
        assert_eq!(s.current(), Some((Pc(7), taken)));
        s.apply(Transition::Exit, None);
        assert!(s.is_done());
    }

    #[test]
    fn max_depth_tracks_high_water() {
        let mut s = PdomStack::new(full4());
        s.apply(
            Transition::from_branch(full4(), Mask::from_bits(1), Pc(5), Pc(1)),
            Some(Pc(9)),
        );
        assert_eq!(s.max_depth(), 3);
    }
}
