//! The workspace's one content digest: FNV-1a 64.
//!
//! Three subsystems need a cheap, deterministic, dependency-free digest of
//! a canonical byte string: the checkpoint format (per-line checksums and
//! the grid id a [`crate::checkpoint::SweepCheckpoint`] binds to), the
//! sweep-fabric result cache (the content address of a `(config, workload,
//! seed)` cell), and the bench grid registry. They must all agree — a cache
//! keyed with a different hash than the grid id would silently decouple —
//! so the function lives here exactly once and everything else imports it.
//!
//! FNV-1a is **not** cryptographic. It is used for torn-write/bit-flip
//! detection and content addressing among trusted cooperating processes,
//! where 64 bits of avalanche is plenty and speed plus zero dependencies
//! matter more than collision resistance against an adversary.

/// FNV-1a 64 offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a 64 over a byte string — the checkpoint line checksum, the sweep
/// grid id and the cell-cache content address.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a 64 hasher, for digests assembled from several
/// sections without concatenating them into a scratch string first.
///
/// # Examples
/// ```
/// use warpweave_core::digest::{fnv1a, Fnv1a};
///
/// let mut h = Fnv1a::new();
/// h.update(b"cell-v1;");
/// h.update(b"MatrixMul/SBI");
/// assert_eq!(h.finish(), fnv1a(b"cell-v1;MatrixMul/SBI"));
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(OFFSET_BASIS)
    }

    /// Folds `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot_at_any_split() {
        let text = b"warpweave-sweep-fabric canonical cell encoding";
        let whole = fnv1a(text);
        for split in 0..=text.len() {
            let mut h = Fnv1a::new();
            h.update(&text[..split]);
            h.update(&text[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }
}
