//! Issue-event tracing for pipeline visualisation (fig. 2).

use warpweave_isa::{Pc, UnitClass};

use crate::mask::Mask;

/// Which issue slot an event came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueSlot {
    /// The primary scheduler (I1).
    Primary,
    /// The secondary scheduler (I2 — SBI/SWI co-issue).
    Secondary,
}

/// One issued instruction, as recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Cycle of issue.
    pub cycle: u64,
    /// Issuing warp.
    pub warp: usize,
    /// Primary or secondary slot.
    pub slot: IssueSlot,
    /// Instruction address.
    pub pc: Pc,
    /// Active threads (thread space).
    pub mask: Mask,
    /// Active lanes (after lane shuffling).
    pub lanes: Mask,
    /// Functional unit class.
    pub unit: UnitClass,
}

/// Renders a per-lane timeline of trace events: one row per (warp, thread),
/// one column per cycle, each cell showing the issued PC (`.` = idle). This
/// reproduces the presentation of the paper's fig. 2.
pub fn render_timeline(events: &[TraceEvent], num_warps: usize, width: usize) -> String {
    if events.is_empty() {
        return String::from("(no events)\n");
    }
    let c0 = events.iter().map(|e| e.cycle).min().expect("non-empty");
    let c1 = events.iter().map(|e| e.cycle).max().expect("non-empty");
    let ncols = (c1 - c0 + 1) as usize;
    let mut grid = vec![vec![String::from("."); ncols]; num_warps * width];
    for e in events {
        let col = (e.cycle - c0) as usize;
        for t in e.mask.iter() {
            if e.warp < num_warps && t < width {
                grid[e.warp * width + t][col] = format!("{}", e.pc.0);
            }
        }
    }
    let cellw = grid
        .iter()
        .flatten()
        .map(String::len)
        .max()
        .unwrap_or(1)
        .max(2);
    let mut out = String::new();
    out.push_str(&format!("{:>8} |", "cycle"));
    for c in 0..ncols {
        out.push_str(&format!(" {:>cellw$}", c0 + c as u64));
    }
    out.push('\n');
    for w in 0..num_warps {
        for t in 0..width {
            out.push_str(&format!("w{w:>2} t{t:>2} |"));
            for cell in &grid[w * width + t] {
                out.push_str(&format!(" {cell:>cellw$}"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_renders_events() {
        let ev = vec![
            TraceEvent {
                cycle: 10,
                warp: 0,
                slot: IssueSlot::Primary,
                pc: Pc(1),
                mask: Mask::from_bits(0b11),
                lanes: Mask::from_bits(0b11),
                unit: UnitClass::Mad,
            },
            TraceEvent {
                cycle: 11,
                warp: 1,
                slot: IssueSlot::Secondary,
                pc: Pc(5),
                mask: Mask::from_bits(0b10),
                lanes: Mask::from_bits(0b10),
                unit: UnitClass::Mad,
            },
        ];
        let s = render_timeline(&ev, 2, 2);
        assert!(s.contains("w 0 t 0"));
        assert!(s.contains('5'));
        // Warp 1 thread 0 stays idle both cycles.
        let line = s.lines().find(|l| l.starts_with("w 1 t 0")).unwrap();
        assert!(line.contains('.'));
    }

    #[test]
    fn empty_timeline() {
        assert_eq!(render_timeline(&[], 1, 4), "(no events)\n");
    }
}
