//! The baseline dual-pool front-end (paper §2, fig. 1), shared by the
//! `Baseline`, `Warp64` and `GreedyThenOldest` registry entries.

use super::{older, FetchChannels, FetchPref, IssueCtx, IssuePolicy, Pick, Ready, SchedOrder};

/// Two warp pools by warp-ID parity, one scheduler each, one issue per
/// pool per cycle. Under [`SchedOrder::OldestFirst`] each pool picks its
/// oldest ready instruction (the paper's baseline); under
/// [`SchedOrder::GreedyThenOldest`] the warp that issued last in a pool
/// keeps priority while it stays ready.
#[derive(Debug, Default)]
pub struct DualPoolPolicy {
    order: SchedOrder,
    /// Per-pool warp that issued most recently (GTO's greedy handle).
    last: [Option<usize>; 2],
}

const CHANNELS: FetchChannels = {
    const EVEN: &[FetchPref] = &[(Some(0), 0)];
    const ODD: &[FetchPref] = &[(Some(1), 0)];
    [EVEN, ODD]
};

impl DualPoolPolicy {
    /// A dual-pool scheduler walking candidates in `order`.
    pub fn new(order: SchedOrder) -> DualPoolPolicy {
        DualPoolPolicy {
            order,
            last: [None, None],
        }
    }
}

impl IssuePolicy for DualPoolPolicy {
    fn issue(&mut self, ctx: &mut IssueCtx<'_>) -> usize {
        let mut issued = 0;
        let first = (ctx.cycle() % 2) as usize;
        for pool in [first, 1 - first] {
            // Greedy handle first (GTO only): the pool's last-issued warp
            // retains priority while it has a ready instruction.
            let mut best: Option<Ready> = None;
            if self.order == SchedOrder::GreedyThenOldest {
                if let Some(w) = self.last[pool] {
                    best = ctx.ready_check(w, 0);
                }
            }
            if best.is_none() {
                for w in (0..ctx.num_warps()).filter(|w| w % 2 == pool) {
                    if let Some(r) = ctx.ready_check(w, 0) {
                        best = older(best, r);
                    }
                }
            }
            if let Some(r) = best {
                if let Some(dispatch) = ctx.plan_dispatch(r.unit) {
                    self.last[pool] = Some(r.warp);
                    ctx.commit(
                        r.warp,
                        vec![Pick {
                            ready: r,
                            dispatch,
                            secondary: false,
                        }],
                    );
                    issued += 1;
                }
            }
        }
        issued
    }

    fn fetch_channels(&self) -> FetchChannels {
        CHANNELS
    }
}
