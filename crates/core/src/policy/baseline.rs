//! The baseline dual-pool front-end (paper §2, fig. 1), shared by the
//! `Baseline`, `Warp64` and `GreedyThenOldest` registry entries.

use super::{FetchChannels, FetchPref, IssueCtx, IssuePolicy, Pick, Ready, SchedOrder};

/// Two warp pools by warp-ID parity, one scheduler each, one issue per
/// pool per cycle. Under [`SchedOrder::OldestFirst`] each pool picks its
/// oldest ready instruction (the paper's baseline); under
/// [`SchedOrder::GreedyThenOldest`] the warp that issued last in a pool
/// keeps priority while it stays ready.
#[derive(Debug, Default)]
pub struct DualPoolPolicy {
    order: SchedOrder,
    /// Per-pool warp that issued most recently (GTO's greedy handle).
    last: [Option<usize>; 2],
}

const CHANNELS: FetchChannels = {
    const EVEN: &[FetchPref] = &[(Some(0), 0)];
    const ODD: &[FetchPref] = &[(Some(1), 0)];
    [EVEN, ODD]
};

impl DualPoolPolicy {
    /// A dual-pool scheduler walking candidates in `order`.
    pub fn new(order: SchedOrder) -> DualPoolPolicy {
        DualPoolPolicy {
            order,
            last: [None, None],
        }
    }
}

impl IssuePolicy for DualPoolPolicy {
    fn issue(&mut self, ctx: &mut IssueCtx<'_>) -> usize {
        let mut issued = 0;
        let first = (ctx.cycle() % 2) as usize;
        for pool in [first, 1 - first] {
            // Greedy handle first (GTO only): the pool's last-issued warp
            // retains priority while it has a ready instruction.
            let mut best: Option<Ready> = None;
            if self.order == SchedOrder::GreedyThenOldest {
                if let Some(w) = self.last[pool] {
                    best = ctx.ready_check(w, 0);
                }
            }
            if best.is_none() {
                // Walk only the maintained candidate set: a clear bit is a
                // memoized not-ready guarantee, and `older` picks the
                // minimum seq, so skipping clear bits changes nothing.
                const EVEN: u64 = 0x5555_5555_5555_5555;
                let pool_mask = if pool == 0 { EVEN } else { !EVEN };
                // Settle candidates whose memo went stale so the dense
                // mirrors cover the whole pool...
                let mut unknown = ctx.ready_candidates(0) & pool_mask & !ctx.ready_now(0);
                while unknown != 0 {
                    let w = unknown.trailing_zeros() as usize;
                    unknown &= unknown - 1;
                    let _ = ctx.ready_check_unported(w, 0);
                }
                // ...then pick the oldest memoized-ready warp whose unit
                // has a free port, touching only the (seq, unit) mirror.
                // Ascending-warp order with a strict compare reproduces
                // the old `older` fold exactly (first wins on seq ties).
                let free = ctx.free_unit_mask();
                let mut ready = ctx.ready_now(0) & pool_mask;
                let mut best_w = None;
                let mut best_seq = u64::MAX;
                while ready != 0 {
                    let w = ready.trailing_zeros() as usize;
                    ready &= ready - 1;
                    let (seq, unit) = ctx.ready_info(w, 0);
                    if free & (1 << unit as u8) != 0 && seq < best_seq {
                        best_seq = seq;
                        best_w = Some(w);
                    }
                }
                best = best_w.and_then(|w| ctx.ready_check(w, 0));
            }
            if let Some(r) = best {
                if let Some(dispatch) = ctx.plan_dispatch(r.unit) {
                    self.last[pool] = Some(r.warp);
                    ctx.commit(
                        r.warp,
                        &[Pick {
                            ready: r,
                            dispatch,
                            secondary: false,
                        }],
                    );
                    issued += 1;
                }
            }
        }
        issued
    }

    fn fetch_channels(&self) -> FetchChannels {
        CHANNELS
    }
}
