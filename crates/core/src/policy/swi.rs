//! Simultaneous Warp Interweaving (paper §4): a cascaded two-phase
//! scheduler (2-cycle latency) whose secondary front-end fills the
//! primary instruction's free lanes with another warp's instruction.
//! With [`SwiPolicy::with_sbi`] the same cascade also co-issues the
//! primary warp's CPC2 split (fig. 2e, SBI+SWI).

use warpweave_isa::{Pc, UnitClass};

use crate::mask::Mask;

use super::{
    older, Dispatch, FetchChannels, FetchPref, IssueCtx, IssuePolicy, Pick, Ready, SchedOrder,
};

/// The pending primary pick of the cascade (selected one cycle before
/// issue — table 2's 2-cycle scheduler latency).
#[derive(Debug, Clone, Copy)]
struct PendingPrimary {
    warp: usize,
    slot: usize,
    pc: Pc,
}

/// The SWI front-end (solo, or combined with SBI's secondary-split
/// fetch). This cycle issues the primary picked *last* cycle plus a
/// secondary found now; in parallel the next primary is picked, with
/// a-posteriori conflict squashing (§4).
#[derive(Debug)]
pub struct SwiPolicy {
    order: SchedOrder,
    /// Ibuf slots fetched per warp: 1 solo, 2 when combined with SBI.
    slots: usize,
    pending: Option<PendingPrimary>,
    /// Warp of the last committed primary (GTO's greedy handle).
    last: Option<usize>,
}

const SOLO_CHANNELS: FetchChannels = {
    const CPC1: &[FetchPref] = &[(None, 0)];
    [CPC1, CPC1]
};

const SBI_CHANNELS: FetchChannels = {
    const CPC1: &[FetchPref] = &[(None, 0)];
    const CPC2: &[FetchPref] = &[(None, 1), (None, 0)];
    [CPC1, CPC2]
};

impl SwiPolicy {
    /// SWI alone: one divergence context fetched per warp.
    pub fn solo(order: SchedOrder) -> SwiPolicy {
        SwiPolicy {
            order,
            slots: 1,
            pending: None,
            last: None,
        }
    }

    /// SBI+SWI: the cascade also sees every warp's CPC2 split.
    pub fn with_sbi(order: SchedOrder) -> SwiPolicy {
        SwiPolicy {
            order,
            slots: 2,
            pending: None,
            last: None,
        }
    }

    /// The SWI secondary lookup: search the primary's associativity set
    /// for a ready instruction whose lanes fit in the primary's free
    /// lanes (same-group ride), or any instruction for another free
    /// group. Best-fit (max occupancy) with pseudo-random tie-breaking.
    fn find_secondary(
        &self,
        ctx: &mut IssueCtx<'_>,
        r1: &Ready,
        d1: Dispatch,
    ) -> Option<(Ready, Dispatch)> {
        let width = ctx.warp_width();
        let nw = ctx.num_warps();
        let free = Mask::full(width) - ctx.lanes_of(r1.mask, r1.warp);
        let sets = ctx.lookup_sets();
        let my_set = r1.warp % sets;

        let mut rides: Vec<(Ready, usize, u32)> = Vec::new(); // (ready, group, fit)
        let mut others: Vec<(Ready, Dispatch)> = Vec::new();

        // Same-warp CPC2 (SBI-style) — always reachable, no lookup needed.
        if self.slots > 1 {
            if let Some(r2) = ctx.ready_check(r1.warp, 1) {
                if let Some(d2) = ctx.plan_coissue(r1, d1, &r2) {
                    match d2 {
                        Dispatch::Ride(g) => rides.push((r2, g, r2.mask.count())),
                        d => others.push((r2, d)),
                    }
                }
            }
        }

        for w in (0..nw).filter(|w| w % sets == my_set && *w != r1.warp) {
            for slot in 0..self.slots {
                let Some(r2) = ctx.ready_check(w, slot) else {
                    continue;
                };
                ctx.count_lookup_probe();
                // Cross-warp branch pairs are fine (separate HCT sorters);
                // only the single 128-byte L1 port is exclusive.
                if r2.unit == UnitClass::Lsu && r1.unit == UnitClass::Lsu {
                    continue;
                }
                let lanes = ctx.lanes_of(r2.mask, w);
                if r2.unit == r1.unit
                    && matches!(r1.unit, UnitClass::Mad | UnitClass::Sfu)
                    && lanes.is_subset(free)
                {
                    if let Dispatch::Group(g) = d1 {
                        rides.push((r2, g, lanes.count()));
                        continue;
                    }
                }
                if r2.unit == UnitClass::Control {
                    others.push((r2, Dispatch::None));
                } else if r2.unit != r1.unit {
                    if let Some(g) = ctx.free_group(r2.unit) {
                        others.push((r2, Dispatch::Group(g)));
                    }
                }
            }
        }

        // Best fit: maximise occupancy; pseudo-random tie-breaking.
        if !rides.is_empty() {
            let best_fit = rides.iter().map(|&(_, _, c)| c).max().expect("non-empty");
            let tied: Vec<&(Ready, usize, u32)> =
                rides.iter().filter(|&&(_, _, c)| c == best_fit).collect();
            let pick = tied[ctx.rand_below(tied.len())];
            ctx.count_lookup_hit();
            return Some((pick.0, Dispatch::Ride(pick.1)));
        }
        if !others.is_empty() {
            let oldest = others
                .into_iter()
                .min_by_key(|(r, _)| r.seq)
                .expect("non-empty");
            ctx.count_lookup_hit();
            return Some(oldest);
        }
        None
    }

    /// The secondary scheduler's solo pick (after a conflict bubble):
    /// best-fit over all ready instructions.
    fn solo_pick(&self, ctx: &mut IssueCtx<'_>) -> Option<Ready> {
        let mut best: Vec<Ready> = Vec::new();
        let mut best_fit = 0;
        for w in 0..ctx.num_warps() {
            for slot in 0..self.slots {
                if let Some(r) = ctx.ready_check(w, slot) {
                    let c = r.mask.count();
                    if c > best_fit {
                        best_fit = c;
                        best.clear();
                    }
                    if c == best_fit {
                        best.push(r);
                    }
                }
            }
        }
        if best.is_empty() {
            None
        } else {
            Some(best[ctx.rand_below(best.len())])
        }
    }
}

impl IssuePolicy for SwiPolicy {
    fn issue(&mut self, ctx: &mut IssueCtx<'_>) -> usize {
        // Phase n+1 primary pick (in parallel with this cycle's secondary).
        let mut np: Option<Ready> = None;
        for w in 0..ctx.num_warps() {
            // Exclude the entry reserved by the pending primary.
            if let Some(pp) = self.pending {
                if pp.warp == w {
                    continue;
                }
            }
            if let Some(r) = ctx.ready_check(w, 0) {
                np = older(np, r);
            }
        }
        if self.order == SchedOrder::GreedyThenOldest {
            if let Some(w) = self.last {
                if self.pending.is_none_or(|pp| pp.warp != w) {
                    if let Some(r) = ctx.ready_check(w, 0) {
                        np = Some(r);
                    }
                }
            }
        }

        let mut issued = 0;
        let pending = self.pending.take();
        let mut secondary_issued: Option<(usize, usize)> = None; // (warp, slot)
        match pending {
            Some(pp) => {
                // Revalidate: the split may have moved, a dependency may
                // have appeared, or the entry may have been squashed.
                // (No free-group requirement: a busy port holds the pick.)
                let still = ctx
                    .ready_check_unported(pp.warp, pp.slot)
                    .filter(|r| r.pc == pp.pc);
                if let Some(r1) = still {
                    if let Some(d1) = ctx.plan_dispatch(r1.unit) {
                        let sec = self.find_secondary(ctx, &r1, d1);
                        let pick1 = Pick {
                            ready: r1,
                            dispatch: d1,
                            secondary: false,
                        };
                        self.last = Some(r1.warp);
                        match sec {
                            Some((r2, d2)) => {
                                secondary_issued = Some((r2.warp, r2.slot));
                                let pick2 = Pick {
                                    ready: r2,
                                    dispatch: d2,
                                    secondary: true,
                                };
                                issued += 2;
                                if r2.warp == r1.warp {
                                    ctx.commit(r1.warp, &[pick1, pick2]);
                                } else {
                                    ctx.commit(r1.warp, &[pick1]);
                                    ctx.commit(r2.warp, &[pick2]);
                                }
                            }
                            None => {
                                issued += 1;
                                ctx.commit(r1.warp, &[pick1]);
                            }
                        }
                    } else {
                        // Port busy: hold the pick, stall the cascade.
                        self.pending = Some(pp);
                        return 0;
                    }
                }
                // else: pick evaporated — bubble.
            }
            None => {
                // No pending primary (start-up or after a conflict): the
                // secondary scheduler "substitutes itself", picking by its
                // own best-fit policy.
                if let Some(r) = self.solo_pick(ctx) {
                    if let Some(d) = ctx.plan_dispatch(r.unit) {
                        secondary_issued = Some((r.warp, r.slot));
                        ctx.commit(
                            r.warp,
                            &[Pick {
                                ready: r,
                                dispatch: d,
                                secondary: true,
                            }],
                        );
                        issued += 1;
                    }
                }
            }
        }

        // Conflict: the secondary issued the very instruction the next
        // primary picked — squash the primary copy.
        if let (Some(np_r), Some(sec)) = (np, secondary_issued) {
            if (np_r.warp, np_r.slot) == sec {
                ctx.count_scheduler_conflict();
                np = None;
            }
        }
        self.pending = np.map(|r| PendingPrimary {
            warp: r.warp,
            slot: r.slot,
            pc: r.pc,
        });
        issued
    }

    fn fetch_channels(&self) -> FetchChannels {
        if self.slots > 1 {
            SBI_CHANNELS
        } else {
            SOLO_CHANNELS
        }
    }

    fn reserved_slot(&self, warp: usize) -> Option<usize> {
        self.pending.filter(|pp| pp.warp == warp).map(|pp| pp.slot)
    }

    fn carries_pick(&self) -> bool {
        self.pending.is_some()
    }
}
