//! Simultaneous Branch Interweaving (paper §3): the single scheduler
//! picks the warp with the oldest ready *primary* (CPC1) instruction and
//! the second front-end co-issues the same warp's CPC2 where resources
//! allow.

use warpweave_isa::UnitClass;

use super::{
    older, Dispatch, FetchChannels, FetchPref, IssueCtx, IssuePolicy, Pick, Ready, SchedOrder,
};

/// The SBI front-end. Scheduling is primary-led: the leading split never
/// advances while the laggard stalls, so desynchronised splits can catch
/// up and re-merge (fig. 3: one `wid` feeds both fetch paths). When the
/// picked warp offers no co-issuable secondary, the second front-end
/// falls back to the oldest ready instruction of another warp for a
/// *different* free SIMD group (conventional multiple-issue — full masks
/// cannot share lanes).
#[derive(Debug, Default)]
pub struct SbiPolicy {
    order: SchedOrder,
    /// Warp of the last primary issue (GTO's greedy handle).
    last: Option<usize>,
}

const CHANNELS: FetchChannels = {
    const CPC1: &[FetchPref] = &[(None, 0)];
    const CPC2: &[FetchPref] = &[(None, 1), (None, 0)];
    [CPC1, CPC2]
};

impl SbiPolicy {
    /// An SBI scheduler walking primary candidates in `order`.
    pub fn new(order: SchedOrder) -> SbiPolicy {
        SbiPolicy { order, last: None }
    }
}

impl IssuePolicy for SbiPolicy {
    fn issue(&mut self, ctx: &mut IssueCtx<'_>) -> usize {
        // One scan selects the oldest ready primary *and* counts parked
        // secondaries (the §3.3 constraint-suspension statistic) — the
        // scan always runs in full so the statistic is order-independent.
        let mut best: Option<Ready> = None;
        for w in 0..ctx.num_warps() {
            if let Some(r) = ctx.ready_check(w, 0) {
                best = older(best, r);
            }
            if ctx.ready_check(w, 1).is_none() {
                ctx.note_constraint_suspension(w);
            }
        }
        if self.order == SchedOrder::GreedyThenOldest {
            if let Some(w) = self.last {
                if let Some(r) = ctx.ready_check(w, 0) {
                    best = Some(r);
                }
            }
        }
        let Some(r1) = best else { return 0 };
        let w = r1.warp;
        let Some(d1) = ctx.plan_dispatch(r1.unit) else {
            return 0;
        };
        let p1 = Pick {
            ready: r1,
            dispatch: d1,
            secondary: false,
        };
        // Fixed two-slot pick buffer (second slot unused unless co-issued).
        let mut picks = [p1, p1];
        let mut n = 1;
        if let Some(r2) = ctx.ready_check(w, 1) {
            if let Some(d2) = ctx.plan_coissue(&r1, d1, &r2) {
                picks[n] = Pick {
                    ready: r2,
                    dispatch: d2,
                    secondary: true,
                };
                n += 1;
            }
        }
        let mut issued = n;
        if n == 1 {
            // Other-warp fallback for the idle front-end.
            let mut alt: Option<(Ready, Dispatch)> = None;
            for ow in (0..ctx.num_warps()).filter(|&ow| ow != w) {
                let Some(r) = ctx.ready_check(ow, 0) else {
                    continue;
                };
                if alt.as_ref().is_some_and(|(b, _)| b.seq <= r.seq) {
                    continue;
                }
                if r.unit == UnitClass::Control {
                    alt = Some((r, Dispatch::None));
                } else if r.unit != p1.ready.unit || matches!(p1.dispatch, Dispatch::None) {
                    if let Some(g) = ctx.free_group(r.unit) {
                        alt = Some((r, Dispatch::Group(g)));
                    }
                }
            }
            if let Some((r, d)) = alt {
                let lsu_clash = p1.ready.unit == UnitClass::Lsu && r.unit == UnitClass::Lsu;
                if !(lsu_clash || (ctx.is_branch(p1.ready.pc) && ctx.is_branch(r.pc))) {
                    issued += 1;
                    ctx.commit(
                        r.warp,
                        &[Pick {
                            ready: r,
                            dispatch: d,
                            secondary: true,
                        }],
                    );
                }
            }
        }
        self.last = Some(w);
        ctx.commit(w, &picks[..n]);
        issued
    }

    fn fetch_channels(&self) -> FetchChannels {
        CHANNELS
    }

    fn account_idle_skip(&mut self, ctx: &mut IssueCtx<'_>, skipped: u64) {
        // `issue` counts parked secondaries once per cycle even when
        // nothing issues; replicate that for the skipped cycles so the
        // statistic is exact (the suspension set is frozen with the rest
        // of the state — no group frees and no writeback lands inside the
        // skipped window by construction).
        let parked = (0..ctx.num_warps())
            .filter(|&w| ctx.ready_check(w, 1).is_none() && ctx.constraint_suspended(w))
            .count() as u64;
        ctx.add_constraint_suspensions(skipped * parked);
    }
}
