//! Versioned, deterministic serialization of sweep results.
//!
//! A sweep at bench scale is minutes of simulation; losing it to a Ctrl-C
//! at cell 97 of 105 is unacceptable, and trusting it requires diffing it
//! against a pinned baseline. This module provides the storage layer for
//! both: a [`SweepCheckpoint`] is an append-only, checksummed, versioned
//! record of completed sweep cells that
//!
//! * the bench harness appends to **incrementally, per completed cell**, so
//!   an interrupted sweep resumes from the last finished cell;
//! * binds to a **grid id** (a digest of the sweep's workloads, configs and
//!   scale), so a checkpoint can never be resumed against a different grid;
//! * refuses to load anything it cannot prove intact — wrong version,
//!   unknown grid, torn or bit-flipped lines all fail with a
//!   [`CheckpointError`] instead of silently resuming with partial cells;
//! * offers an **explicit** recovery path for damaged files:
//!   [`SweepCheckpoint::salvage`] truncates to the last checksum-valid
//!   line, quarantines the damaged tail as a `.quarantine` sidecar, and
//!   lets the sweep resume from the intact prefix.
//!
//! # File format (`CHECKPOINT_VERSION` 3)
//!
//! Line-oriented UTF-8. The first line is the header:
//!
//! ```text
//! warpweave-sweep-checkpoint v3 grid=<16 hex digits>
//! ```
//!
//! Every subsequent line is one completed cell:
//!
//! ```text
//! cell|<key>|s:<name>=<value>,...|c:<name>=<value>,...|#<16 hex digits>
//! ```
//!
//! where `s:` carries the canonical [`Stats::to_fields`] list, the optional
//! `c:` section carries [`ChannelStats::to_fields`] (machine probes), and
//! the trailer is the FNV-1a 64 checksum of everything before the `|#`.
//! A crash mid-append leaves a torn final line; the checksum catches it.
//!
//! **Versioning rule:** any change to the field lists, the line grammar or
//! the checksum must bump [`CHECKPOINT_VERSION`] — old files then fail the
//! header check cleanly instead of decoding garbage. The exhaustive
//! destructuring inside `to_fields` makes forgetting this a compile error.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use warpweave_mem::ChannelStats;

use crate::faultinject::FaultInjector;
use crate::stats::Stats;

/// Current checkpoint file-format version (see the module docs for the
/// rules that force a bump).
pub const CHECKPOINT_VERSION: u32 = 3;

/// The header magic of a checkpoint file.
const MAGIC: &str = "warpweave-sweep-checkpoint";

/// Why a checkpoint could not be loaded, written or recorded.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file's header names a different format version (or no valid
    /// header at all).
    Version {
        /// The offending header line.
        header: String,
    },
    /// The file belongs to a different sweep grid.
    GridMismatch {
        /// Grid id in the file.
        found: u64,
        /// Grid id of the sweep being resumed.
        expected: u64,
    },
    /// A cell line is torn, bit-flipped or malformed.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What failed to parse.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Version { header } => write!(
                f,
                "not a v{CHECKPOINT_VERSION} checkpoint (header `{header}`); \
                 delete the file to start fresh"
            ),
            CheckpointError::GridMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to grid {found:016x}, this sweep is grid \
                 {expected:016x}; delete the file to start fresh"
            ),
            CheckpointError::Corrupt { line, detail } => write!(
                f,
                "checkpoint line {line} is corrupt ({detail}); refusing to \
                 resume from a damaged file — delete it to start fresh"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

// The line checksum and the grid-id hash both come from the shared digest
// module; re-exported here because the checkpoint format is where most
// callers first meet it.
pub use crate::digest::fnv1a;

/// The result of one completed sweep cell: the SM (or machine-total)
/// statistics, plus the shared-channel counters when the cell simulated a
/// shared-bandwidth machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Simulation counters of the cell.
    pub stats: Stats,
    /// Shared-channel counters (machine probes only).
    pub channel: Option<ChannelStats>,
}

impl CellRecord {
    /// A record carrying only SM statistics.
    pub fn new(stats: Stats) -> CellRecord {
        CellRecord {
            stats,
            channel: None,
        }
    }

    /// A record carrying SM statistics plus shared-channel counters.
    pub fn with_channel(stats: Stats, channel: ChannelStats) -> CellRecord {
        CellRecord {
            stats,
            channel: Some(channel),
        }
    }
}

/// Renders a field list as `name=value,...`.
fn render_fields(fields: &[(&'static str, u64)]) -> String {
    fields
        .iter()
        .map(|(name, value)| format!("{name}={value}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a `name=value,...` section back into a field list.
fn parse_fields(section: &str) -> Result<Vec<(&str, u64)>, String> {
    if section.is_empty() {
        return Ok(Vec::new());
    }
    section
        .split(',')
        .map(|pair| {
            let (name, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("field `{pair}` has no `=`"))?;
            let value: u64 = value
                .parse()
                .map_err(|e| format!("field `{name}` value `{value}`: {e}"))?;
            Ok((name, value))
        })
        .collect()
}

/// Renders one cell line *without* its checksum trailer.
fn render_cell_body(key: &str, record: &CellRecord) -> String {
    let mut line = format!("cell|{key}|s:{}", render_fields(&record.stats.to_fields()));
    if let Some(channel) = &record.channel {
        line.push_str(&format!("|c:{}", render_fields(&channel.to_fields())));
    }
    line
}

/// Encodes one complete cell line, checksum trailer included — the exact
/// bytes [`SweepCheckpoint::record`] appends.
pub fn encode_cell(key: &str, record: &CellRecord) -> String {
    let body = render_cell_body(key, record);
    let checksum = fnv1a(body.as_bytes());
    format!("{body}|#{checksum:016x}")
}

/// Decodes one cell line (checksum verified) back into `(key, record)`.
///
/// # Errors
/// A description of the first defect: torn trailer, checksum mismatch,
/// bad grammar, or a field-list drift.
pub fn decode_cell(line: &str) -> Result<(String, CellRecord), String> {
    let (body, checksum) = line
        .rsplit_once("|#")
        .ok_or("missing checksum trailer (torn write?)")?;
    let stored =
        u64::from_str_radix(checksum, 16).map_err(|_| format!("bad checksum `{checksum}`"))?;
    let computed = fnv1a(body.as_bytes());
    if stored != computed {
        return Err(format!(
            "checksum mismatch (stored {stored:016x}, computed {computed:016x})"
        ));
    }
    let mut sections = body.split('|');
    match sections.next() {
        Some("cell") => {}
        other => return Err(format!("unexpected record tag {other:?}")),
    }
    let key = sections.next().ok_or("missing cell key")?.to_string();
    let stats_section = sections
        .next()
        .and_then(|s| s.strip_prefix("s:"))
        .ok_or("missing `s:` stats section")?;
    let stats = Stats::from_fields(&parse_fields(stats_section)?)?;
    let channel = match sections.next() {
        None => None,
        Some(section) => {
            let fields = section
                .strip_prefix("c:")
                .ok_or_else(|| format!("unexpected section `{section}`"))?;
            Some(ChannelStats::from_fields(&parse_fields(fields)?)?)
        }
    };
    if let Some(extra) = sections.next() {
        return Err(format!("trailing section `{extra}`"));
    }
    Ok((key, CellRecord { stats, channel }))
}

/// An on-disk, append-only store of completed sweep cells.
///
/// Open with [`SweepCheckpoint::resume`] (load-or-create against a grid id)
/// and append with [`SweepCheckpoint::record`]; each record is flushed
/// before `record` returns, so every completed cell survives a kill at any
/// later point.
///
/// # Examples
/// ```no_run
/// use warpweave_core::checkpoint::{CellRecord, SweepCheckpoint};
/// use warpweave_core::Stats;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = SweepCheckpoint::resume("sweep.checkpoint", 0xfeed)?;
/// if !store.contains("MatrixMul/SBI") {
///     let stats = Stats::default(); // ... actually simulate the cell ...
///     store.record("MatrixMul/SBI", CellRecord::new(stats))?;
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SweepCheckpoint {
    path: PathBuf,
    grid_id: u64,
    cells: BTreeMap<String, CellRecord>,
    /// Open append handle; `None` for in-memory stores.
    file: Option<File>,
    /// Armed fault plan (torn-write injection); `None` in production.
    faults: Option<Arc<FaultInjector>>,
}

/// What a [`SweepCheckpoint::salvage`] pass recovered and discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Checksum-valid cell lines kept in the truncated file.
    pub kept_cells: usize,
    /// Bytes of damaged tail moved to the quarantine sidecar.
    pub dropped_bytes: usize,
    /// Path of the `.quarantine` sidecar, when a tail was dropped.
    pub quarantine: Option<PathBuf>,
}

impl fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.quarantine {
            Some(q) => write!(
                f,
                "salvage kept {} cell(s), quarantined {} damaged byte(s) to {}",
                self.kept_cells,
                self.dropped_bytes,
                q.display()
            ),
            None => write!(
                f,
                "salvage found the file intact ({} cell(s), nothing dropped)",
                self.kept_cells
            ),
        }
    }
}

impl SweepCheckpoint {
    /// Creates a fresh checkpoint file at `path` for `grid_id`,
    /// truncating anything already there.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failures.
    pub fn create(
        path: impl AsRef<Path>,
        grid_id: u64,
    ) -> Result<SweepCheckpoint, CheckpointError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        writeln!(file, "{MAGIC} v{CHECKPOINT_VERSION} grid={grid_id:016x}")?;
        file.flush()?;
        Ok(SweepCheckpoint {
            path,
            grid_id,
            cells: BTreeMap::new(),
            file: Some(file),
            faults: None,
        })
    }

    /// Loads the checkpoint at `path` if it exists (validating version and
    /// grid id), or creates a fresh one bound to `grid_id`.
    ///
    /// # Errors
    /// Any [`CheckpointError`]: I/O, version/grid mismatch, or a corrupt
    /// cell line. A damaged file is **never** partially loaded.
    pub fn resume(
        path: impl AsRef<Path>,
        grid_id: u64,
    ) -> Result<SweepCheckpoint, CheckpointError> {
        let path = path.as_ref();
        if path.exists() {
            let mut store = Self::load(path)?;
            if store.grid_id != grid_id {
                return Err(CheckpointError::GridMismatch {
                    found: store.grid_id,
                    expected: grid_id,
                });
            }
            let mut file = OpenOptions::new().append(true).open(path)?;
            // A kill between a record's bytes and its newline leaves a
            // checksum-valid but unterminated final line, which `load`
            // accepts. Terminate it before appending anything, or the next
            // record would concatenate onto it and corrupt the file.
            if std::fs::read(path)?.last().is_some_and(|&b| b != b'\n') {
                file.write_all(b"\n")?;
                file.flush()?;
            }
            store.file = Some(file);
            Ok(store)
        } else {
            Self::create(path, grid_id)
        }
    }

    /// Loads an existing checkpoint read-only (no append handle); useful
    /// for inspection and for the resume integration tests.
    ///
    /// # Errors
    /// As [`SweepCheckpoint::resume`], minus grid binding.
    pub fn load(path: impl AsRef<Path>) -> Result<SweepCheckpoint, CheckpointError> {
        let path = path.as_ref().to_path_buf();
        let text = std::fs::read_to_string(&path)?;
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(CheckpointError::Version {
            header: String::from("<empty file>"),
        })?;
        let grid_id = Self::parse_header(header)?;
        let mut cells = BTreeMap::new();
        for (idx, line) in lines {
            if line.is_empty() {
                // A single trailing newline is normal; emptiness anywhere
                // else means the file was edited or torn.
                return Err(CheckpointError::Corrupt {
                    line: idx + 1,
                    detail: "empty line inside checkpoint".into(),
                });
            }
            let (key, record) = decode_cell(line).map_err(|detail| CheckpointError::Corrupt {
                line: idx + 1,
                detail,
            })?;
            if cells.insert(key.clone(), record).is_some() {
                return Err(CheckpointError::Corrupt {
                    line: idx + 1,
                    detail: format!("duplicate cell `{key}`"),
                });
            }
        }
        Ok(SweepCheckpoint {
            path,
            grid_id,
            cells,
            file: None,
            faults: None,
        })
    }

    /// Repairs a torn or corrupt checkpoint file in place: keeps the
    /// longest prefix of checksum-valid cell lines, moves everything
    /// after it (torn writes, bit flips, duplicate keys, trailing
    /// garbage) to a `<path>.quarantine` sidecar, and truncates the file
    /// so a subsequent [`SweepCheckpoint::resume`] succeeds. An intact
    /// file is left untouched (and no sidecar is written).
    ///
    /// This is deliberately **not** automatic on resume: damage means
    /// something went wrong, and losing cells silently would hide it.
    /// The bench binaries expose it behind an explicit `--salvage` flag.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] on filesystem failures, or
    /// [`CheckpointError::Version`] when the header line itself is
    /// damaged — without a valid header there is no version or grid
    /// identity to trust, so the file cannot be salvaged.
    pub fn salvage(path: impl AsRef<Path>) -> Result<SalvageReport, CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let header_end = match bytes.iter().position(|&b| b == b'\n') {
            Some(nl) => nl + 1,
            None => bytes.len(),
        };
        let header = std::str::from_utf8(&bytes[..header_end])
            .map(|h| h.trim_end_matches('\n'))
            .map_err(|_| CheckpointError::Version {
                header: String::from("<non-utf8 header>"),
            })?;
        Self::parse_header(header)?;

        // Scan cell lines; the valid prefix ends at the first line that
        // is torn, corrupt, duplicated or not newline-terminated cleanly.
        let mut valid_end = header_end;
        let mut kept_cells = 0usize;
        let mut seen = std::collections::BTreeSet::new();
        let mut pos = header_end;
        while pos < bytes.len() {
            let (line_bytes, line_end) = match bytes[pos..].iter().position(|&b| b == b'\n') {
                Some(nl) => (&bytes[pos..pos + nl], pos + nl + 1),
                None => (&bytes[pos..], bytes.len()),
            };
            let Ok(line) = std::str::from_utf8(line_bytes) else {
                break;
            };
            if line.is_empty() {
                break;
            }
            let Ok((key, _)) = decode_cell(line) else {
                break;
            };
            if !seen.insert(key) {
                break;
            }
            valid_end = line_end;
            kept_cells += 1;
            pos = line_end;
        }

        let dropped_bytes = bytes.len() - valid_end;
        let mut quarantine = None;
        if dropped_bytes > 0 {
            let mut sidecar = path.as_os_str().to_os_string();
            sidecar.push(".quarantine");
            let sidecar = PathBuf::from(sidecar);
            std::fs::write(&sidecar, &bytes[valid_end..])?;
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_end as u64)?;
            file.sync_all()?;
            quarantine = Some(sidecar);
        }
        Ok(SalvageReport {
            kept_cells,
            dropped_bytes,
            quarantine,
        })
    }

    /// An in-memory store (no file) — for tests and dry runs.
    pub fn in_memory(grid_id: u64) -> SweepCheckpoint {
        SweepCheckpoint {
            path: PathBuf::new(),
            grid_id,
            cells: BTreeMap::new(),
            file: None,
            faults: None,
        }
    }

    /// Arms deterministic fault injection on this store's writer: rules
    /// from the injector's plan (`torn@record:IDX:KEEP`) make
    /// [`SweepCheckpoint::record`] write the matching record short and
    /// report an I/O error, reproducing a crash mid-append.
    pub fn arm_faults(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    fn parse_header(header: &str) -> Result<u64, CheckpointError> {
        let bad = || CheckpointError::Version {
            header: header.to_string(),
        };
        let rest = header.strip_prefix(MAGIC).ok_or_else(bad)?;
        let rest = rest
            .strip_prefix(&format!(" v{CHECKPOINT_VERSION} grid="))
            .ok_or_else(bad)?;
        if rest.len() != 16 {
            return Err(bad());
        }
        u64::from_str_radix(rest, 16).map_err(|_| bad())
    }

    /// The grid id this checkpoint is bound to.
    pub fn grid_id(&self) -> u64 {
        self.grid_id
    }

    /// The file backing this store (empty for in-memory stores).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell has completed yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// True when `key` has already completed.
    pub fn contains(&self, key: &str) -> bool {
        self.cells.contains_key(key)
    }

    /// The record of a completed cell.
    pub fn get(&self, key: &str) -> Option<&CellRecord> {
        self.cells.get(key)
    }

    /// Completed cell keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.cells.keys().map(String::as_str)
    }

    /// Appends one completed cell and flushes it to disk before returning,
    /// so the cell survives any subsequent kill.
    ///
    /// # Errors
    /// A key containing the reserved characters `|`, `#` or a newline, a
    /// duplicate key, or an I/O failure.
    pub fn record(&mut self, key: &str, record: CellRecord) -> Result<(), CheckpointError> {
        if key.is_empty() || key.contains(['|', '#', '\n', '\r']) {
            return Err(CheckpointError::Corrupt {
                line: 0,
                detail: format!("cell key `{key}` is empty or contains reserved characters"),
            });
        }
        if self.cells.contains_key(key) {
            return Err(CheckpointError::Corrupt {
                line: 0,
                detail: format!("cell `{key}` recorded twice"),
            });
        }
        if let Some(file) = &mut self.file {
            let line = encode_cell(key, &record);
            if let Some(keep) = self
                .faults
                .as_ref()
                .and_then(|inj| inj.torn_write(self.cells.len()))
            {
                // Injected torn write: only a prefix of the line reaches
                // the file (no newline), exactly like a crash mid-append.
                let cut = keep.min(line.len());
                file.write_all(&line.as_bytes()[..cut])?;
                file.flush()?;
                return Err(CheckpointError::Io(std::io::Error::other(format!(
                    "injected torn write: record {} cut to {cut} of {} bytes",
                    self.cells.len(),
                    line.len()
                ))));
            }
            writeln!(file, "{line}")?;
            file.flush()?;
        }
        self.cells.insert(key.to_string(), record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(bias: u64) -> Stats {
        let mut fields = Stats::default().to_fields();
        for (i, field) in fields.iter_mut().enumerate() {
            field.1 = bias + i as u64;
        }
        Stats::from_fields(&fields).unwrap()
    }

    #[test]
    fn cell_line_round_trips() {
        let record = CellRecord::with_channel(
            sample_stats(7),
            ChannelStats {
                read_transfers: 1,
                write_transfers: 2,
                bytes_transferred: 384,
                queued_requests: 1,
                queue_delay_cycles: 13,
                max_queue_delay: 13,
                l2_hits: 5,
                l2_misses: 6,
                l2_cross_sm_evictions: 2,
            },
        );
        let line = encode_cell("MatrixMul/SBI+SWI", &record);
        let (key, parsed) = decode_cell(&line).unwrap();
        assert_eq!(key, "MatrixMul/SBI+SWI");
        assert_eq!(parsed, record);
    }

    #[test]
    fn bit_flip_is_detected() {
        let line = encode_cell("k", &CellRecord::new(sample_stats(3)));
        let flipped = line.replacen('3', "4", 1);
        assert!(decode_cell(&flipped).is_err());
    }

    #[test]
    fn file_round_trip_and_resume() {
        let dir = std::env::temp_dir().join("warpweave-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.checkpoint");
        let _ = std::fs::remove_file(&path);

        let mut store = SweepCheckpoint::resume(&path, 0xabcd).unwrap();
        store.record("a", CellRecord::new(sample_stats(1))).unwrap();
        store.record("b", CellRecord::new(sample_stats(2))).unwrap();
        drop(store);

        // Resume finds both cells.
        let store = SweepCheckpoint::resume(&path, 0xabcd).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("a").unwrap().stats, sample_stats(1));

        // A different grid id refuses to resume.
        assert!(matches!(
            SweepCheckpoint::resume(&path, 0x1234),
            Err(CheckpointError::GridMismatch { .. })
        ));

        // Truncating the last line (torn write) fails the load cleanly.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();
        assert!(matches!(
            SweepCheckpoint::load(&path),
            Err(CheckpointError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_after_missing_final_newline_stays_appendable() {
        // A kill can land between the last record's bytes and its
        // newline: the final line is checksum-valid but unterminated.
        // Resuming must terminate it before appending, or the next record
        // would merge onto it and corrupt the file.
        let dir = std::env::temp_dir().join("warpweave-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn-newline.checkpoint");
        let _ = std::fs::remove_file(&path);

        let mut store = SweepCheckpoint::resume(&path, 0x77).unwrap();
        store.record("a", CellRecord::new(sample_stats(1))).unwrap();
        drop(store);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        std::fs::write(&path, text.trim_end_matches('\n')).unwrap();

        let mut store = SweepCheckpoint::resume(&path, 0x77).unwrap();
        assert_eq!(store.len(), 1, "unterminated final line still loads");
        store.record("b", CellRecord::new(sample_stats(2))).unwrap();
        drop(store);

        let store = SweepCheckpoint::resume(&path, 0x77).unwrap();
        assert_eq!(store.len(), 2, "both cells survive the torn newline");
        assert_eq!(store.get("a").unwrap().stats, sample_stats(1));
        assert_eq!(store.get("b").unwrap().stats, sample_stats(2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn salvage_recovers_valid_prefix_and_quarantines_tail() {
        let dir = std::env::temp_dir().join("warpweave-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("salvage.checkpoint");
        let _ = std::fs::remove_file(&path);

        let mut store = SweepCheckpoint::resume(&path, 0xbeef).unwrap();
        store.record("a", CellRecord::new(sample_stats(1))).unwrap();
        store.record("b", CellRecord::new(sample_stats(2))).unwrap();
        store.record("c", CellRecord::new(sample_stats(3))).unwrap();
        drop(store);

        // Tear the final record mid-line.
        let intact = std::fs::read(&path).unwrap();
        let torn_at = intact.len() - 20;
        std::fs::write(&path, &intact[..torn_at]).unwrap();
        assert!(SweepCheckpoint::load(&path).is_err(), "torn file refuses");

        let report = SweepCheckpoint::salvage(&path).unwrap();
        assert_eq!(report.kept_cells, 2);
        assert!(report.dropped_bytes > 0);
        let sidecar = report.quarantine.clone().unwrap();
        let tail = std::fs::read(&sidecar).unwrap();
        assert_eq!(report.dropped_bytes, tail.len());
        assert!(intact.windows(tail.len()).any(|w| w == tail.as_slice()));

        // The truncated file resumes cleanly and can finish the sweep.
        let mut store = SweepCheckpoint::resume(&path, 0xbeef).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("a").unwrap().stats, sample_stats(1));
        assert_eq!(store.get("b").unwrap().stats, sample_stats(2));
        store.record("c", CellRecord::new(sample_stats(3))).unwrap();
        drop(store);
        assert_eq!(SweepCheckpoint::load(&path).unwrap().len(), 3);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);
    }

    #[test]
    fn salvage_leaves_intact_file_untouched() {
        let dir = std::env::temp_dir().join("warpweave-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("salvage-clean.checkpoint");
        let _ = std::fs::remove_file(&path);

        let mut store = SweepCheckpoint::resume(&path, 0x5a).unwrap();
        store.record("a", CellRecord::new(sample_stats(1))).unwrap();
        drop(store);
        let before = std::fs::read(&path).unwrap();

        let report = SweepCheckpoint::salvage(&path).unwrap();
        assert_eq!(report.kept_cells, 1);
        assert_eq!(report.dropped_bytes, 0);
        assert!(report.quarantine.is_none());
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn salvage_refuses_damaged_header() {
        let dir = std::env::temp_dir().join("warpweave-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("salvage-header.checkpoint");
        std::fs::write(&path, "warpweave-sweep-chec").unwrap();
        assert!(matches!(
            SweepCheckpoint::salvage(&path),
            Err(CheckpointError::Version { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_torn_write_reproduces_crash_mid_append() {
        use crate::faultinject::FaultPlan;
        let dir = std::env::temp_dir().join("warpweave-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn-inject.checkpoint");
        let _ = std::fs::remove_file(&path);

        let mut store = SweepCheckpoint::resume(&path, 0x7e57).unwrap();
        store.arm_faults(Arc::new(FaultPlan::parse("torn@record:1:9").unwrap().arm()));
        store.record("a", CellRecord::new(sample_stats(1))).unwrap();
        let err = store
            .record("b", CellRecord::new(sample_stats(2)))
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        drop(store);

        // The file now holds a 9-byte torn tail; plain resume refuses,
        // salvage recovers cell `a` exactly.
        assert!(SweepCheckpoint::resume(&path, 0x7e57).is_err());
        let report = SweepCheckpoint::salvage(&path).unwrap();
        assert_eq!(report.kept_cells, 1);
        assert_eq!(report.dropped_bytes, 9);
        let store = SweepCheckpoint::resume(&path, 0x7e57).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains("a"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(report.quarantine.unwrap());
    }

    #[test]
    fn reserved_key_characters_rejected() {
        let mut store = SweepCheckpoint::in_memory(0);
        for key in ["a|b", "a#b", "a\nb", ""] {
            assert!(store
                .record(key, CellRecord::new(Stats::default()))
                .is_err());
        }
        store
            .record("ok", CellRecord::new(Stats::default()))
            .unwrap();
        assert!(store
            .record("ok", CellRecord::new(Stats::default()))
            .is_err());
    }
}
