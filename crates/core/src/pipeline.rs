//! The cycle-level SM pipeline.
//!
//! One [`Sm`] simulates a single streaming multiprocessor running one kernel
//! launch, following the paper's methodology (§5.1): functional execution at
//! issue, back-end timing via group occupancy, an L1 + throughput-limited
//! memory, and a pluggable issue front-end.
//!
//! The front-end is an [`crate::policy::IssuePolicy`] trait object
//! resolved by name from the [`crate::policy::PolicyRegistry`] at
//! construction — the baseline dual-pool scheduler, SBI's CPC1/CPC2
//! co-issue, SWI's cascaded lane-filling, their combination, and any
//! registered extension all drive this pipeline through the narrow
//! [`crate::policy::IssueCtx`] view; the pipeline itself carries no
//! policy-specific issue logic.

use std::cell::Cell;

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use warpweave_isa::{Instruction, Op, Pc, Program, SuperblockSet, UnitClass};
use warpweave_mem::{
    atomic_transactions_into, coalesce_into, Cache, MemEventQueue, MemGrant, MemRequest, Memory,
    MshrFile, SharedDramChannel, SharedMem, TxScratch,
};

use crate::config::{ScoreboardMode, SmConfig};
use crate::divergence::frontier::FrontierHeap;
use crate::divergence::stack::PdomStack;
use crate::divergence::Transition;
use crate::exec::execute_warp;
use crate::groups::ExecGroups;
use crate::lane::LaneTable;
use crate::launch::{Launch, WarpInfo};
use crate::lsu::{plan_global_into, shared_passes, GlobalPlan};
use crate::machine::MemJournal;
use crate::mask::Mask;
use crate::policy::{Dispatch, IssueCtx, IssuePolicy, Pick, PolicyRegistry, Ready};
use crate::regfile::WarpRegFile;
use crate::scoreboard::{SbToken, Scoreboard};
use crate::stats::Stats;
use crate::superblock::execute_fused;
use crate::trace::{IssueSlot, TraceEvent};

/// One alive warp's stall snapshot: what it is executing, how deep its
/// divergence state is, and what it is blocked on. The deadlock watchdog
/// embeds one per alive warp in [`SimError::Deadlock`], so a hang is
/// diagnosable from the error alone — no re-run under a tracer needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpDiagnosis {
    /// SM owning the warp.
    pub sm: u32,
    /// Warp index within its SM.
    pub warp: usize,
    /// Current pc of the warp's schedulable context, when one exists.
    pub pc: Option<u32>,
    /// Divergence depth: reconvergence-stack depth (stack model) or live
    /// splits (frontier model).
    pub divergence_depth: usize,
    /// True when the current context is parked at a block barrier.
    pub at_barrier: bool,
    /// Occupied scoreboard entries the warp's dependants stall on.
    pub scoreboard_in_flight: usize,
    /// Destination registers of those in-flight entries.
    pub blocked_dst_regs: Vec<u8>,
    /// Shared-channel DRAM grants the warp is still waiting on.
    pub pending_grants: u32,
}

impl std::fmt::Display for WarpDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sm{} w{}: pc {}, div depth {}, at_barrier {}, sb in-flight {} (dst regs {:?}), pending grants {}",
            self.sm,
            self.warp,
            self.pc
                .map_or_else(|| "-".to_string(), |pc| pc.to_string()),
            self.divergence_depth,
            self.at_barrier,
            self.scoreboard_in_flight,
            self.blocked_dst_regs,
            self.pending_grants
        )
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Construction or configuration failed before any cycle ran.
    Setup {
        /// What failed to validate.
        detail: String,
    },
    /// No forward progress for a long time — a deadlock in the simulated
    /// machine (or a kernel bug).
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Cycle of the last forward progress (issue/writeback/block event).
        last_progress: u64,
        /// Name of the kernel that hung.
        kernel: String,
        /// Free-form diagnostic detail (divergence-state dump, or the
        /// machine's epoch-livelock summary).
        detail: String,
        /// Structured stall snapshot of every alive warp.
        warps: Vec<WarpDiagnosis>,
    },
    /// `run` hit its cycle budget before the kernel finished.
    CyclesExhausted {
        /// The exhausted budget.
        budget: u64,
        /// Cycle at which the budget ran out.
        cycle: u64,
        /// Cycle of the last forward progress — distinguishes "slow but
        /// alive" (recent) from "wedged long before the budget" (stale).
        last_progress: u64,
        /// Name of the kernel that blew the budget.
        kernel: String,
        /// `(index, total)` of the launch within its workload, when the
        /// workload runner attached it via [`SimError::with_launch`].
        launch: Option<(usize, usize)>,
    },
}

impl SimError {
    /// Attaches launch provenance (`index` out of `total`) to a budget
    /// blowout; other variants pass through unchanged. Used by the
    /// workload runners, which know which launch of a multi-kernel
    /// workload was executing.
    #[must_use]
    pub fn with_launch(mut self, index: usize, total: usize) -> SimError {
        if let SimError::CyclesExhausted { launch, .. } = &mut self {
            *launch = Some((index, total));
        }
        self
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Setup { detail } => write!(f, "setup failed: {detail}"),
            SimError::Deadlock {
                cycle,
                last_progress,
                kernel,
                detail,
                warps,
            } => {
                write!(
                    f,
                    "deadlock in kernel `{kernel}` at cycle {cycle} \
                     (last progress at cycle {last_progress}): {detail}"
                )?;
                for w in warps {
                    write!(f, "\n  {w}")?;
                }
                Ok(())
            }
            SimError::CyclesExhausted {
                budget,
                cycle,
                last_progress,
                kernel,
                launch,
            } => {
                write!(f, "cycle budget {budget} exhausted in kernel `{kernel}`")?;
                if let Some((i, n)) = launch {
                    write!(f, " (launch {}/{n})", i + 1)?;
                }
                write!(
                    f,
                    " at cycle {cycle}, last progress at cycle {last_progress}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One slot's cached [`Sm::ready_check_nogroup`] outcome (see
/// [`Warp::ready_memo`]). Both non-`Stale` states are stable under pure
/// clock advance: a ready instruction stays ready — with the identical
/// [`Ready`] record — until an event touches the warp, and the only
/// time-gated failure (an entry fetched this cycle) carries the cycle at
/// which it clears.
/// Interior-mutable min-heap of `(wake_cycle, warp)` re-arm entries (see
/// [`Sm::park_warp`]).
type TimedWakeHeap = std::cell::RefCell<std::collections::BinaryHeap<std::cmp::Reverse<(u64, u8)>>>;

#[derive(Debug, Clone, Copy)]
enum ReadyMemo {
    /// An event may have changed the outcome: re-evaluate.
    Stale,
    /// Known not ready at every cycle strictly before this one
    /// (`u64::MAX` = blocked until a waking event).
    NotBefore(u64),
    /// Known ready with this exact result.
    Ready(Ready),
}

/// Per-warp divergence tracking (selected by the configuration).
#[derive(Debug, Clone)]
enum Divergence {
    Stack(PdomStack),
    Frontier(FrontierHeap),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IbufEntry {
    pc: Pc,
    fetched_at: u64,
    seq: u64,
}

/// Pre-decoded per-pc issue metadata: everything the per-cycle ready
/// checks need, packed into 16 bytes so they never touch the full
/// [`Instruction`] record (which spans two cache lines).
#[derive(Debug, Clone, Copy)]
struct PcMeta {
    /// [`Instruction::reg_footprint`] — registers read or written.
    regs: u64,
    /// [`Instruction::pred_footprint`] — predicates read or written.
    preds: u8,
    /// The instruction writes a register or predicate (needs a scoreboard
    /// entry).
    writes: bool,
    /// `op == Op::Sync` (SBI reconvergence-constraint park).
    is_sync: bool,
    /// Issue unit class.
    unit: UnitClass,
}

impl PcMeta {
    fn of(instr: &Instruction) -> PcMeta {
        PcMeta {
            regs: instr.reg_footprint(),
            preds: instr.pred_footprint(),
            writes: instr.dst.is_some() || instr.pdst.is_some(),
            is_sync: instr.op == Op::Sync,
            unit: instr.op.unit(),
        }
    }
}

/// One issue slot's superblock run: the context is replaying a fused
/// region and the next covered grant is expected at `next` with `mask`.
/// Inactive when `next >= end` (the all-zero default).
///
/// A run is pure bookkeeping — covered instructions still execute one per
/// issue grant — so aborting it (context moved, mask changed under a
/// merge, block reassigned) costs nothing beyond falling back to the
/// interpreter for that grant.
#[derive(Debug, Clone, Copy, Default)]
struct SbRun {
    /// Superblock index in the program's [`SuperblockSet`].
    index: u32,
    /// First pc of the superblock (op index = `next - start`).
    start: u32,
    /// Next covered pc.
    next: u32,
    /// One past the superblock's last pc.
    end: u32,
    /// The mask the run entered with; a deviating grant aborts.
    mask: Mask,
}

#[derive(Debug)]
struct Warp {
    alive: bool,
    block_slot: usize,
    /// SoA architectural state: register rows + predicate bitmasks,
    /// allocated once and zero-filled in place on every block launch.
    regs: WarpRegFile,
    /// SoA launch coordinates (warp-uniform splats + the lane row).
    info: WarpInfo,
    div: Divergence,
    scoreboard: Scoreboard,
    ibuf: [Option<IbufEntry>; 2],
    exited: Mask,
    /// Thread-space mask of threads that exist in this warp (partial last
    /// warp of a block).
    populated: Mask,
    /// Per-slot superblock replay state (slot 0 = primary context, slot 1
    /// = the SBI secondary).
    sb_run: [SbRun; 2],
}

#[derive(Debug, Clone, Copy)]
struct BlockSlot {
    active: bool,
    block_id: u32,
    first_warp: usize,
    num_warps: usize,
    alive_threads: u32,
    barrier_arrived: u32,
}

/// Payload of a pending-writeback event: which warp's scoreboard entry
/// retires when the event fires.
#[derive(Debug, Clone, Copy)]
struct WbSlot {
    warp: usize,
    token: SbToken,
}

/// A scoreboard entry blocked on outstanding DRAM transactions: the warp's
/// dependants stay stalled until every grant in `first_seq..=last_seq` —
/// plus every MSHR-merged owner grant in `merged` — arrives, at which
/// point the entry becomes a timed writeback at
/// `max(floor, latest grant) + delivery`.
#[derive(Debug, Clone)]
struct PendingMemOp {
    /// Own transaction range; empty (`first_seq > last_seq`) when the
    /// instruction's every miss merged onto other warps' transactions.
    first_seq: u64,
    last_seq: u64,
    /// Other warps' transaction seqs this entry merged onto (MSHR waits).
    merged: Vec<u64>,
    /// Grants still outstanding (own range + merged).
    remaining: u32,
    /// Completion floor from the instruction's L1-hit transactions.
    floor: u64,
    /// Latest grant completion seen so far.
    max_done: u64,
    warp: usize,
    token: SbToken,
}

/// When a pick's scoreboard entry retires.
#[derive(Debug, Clone)]
enum WbTiming {
    /// At a cycle known at issue (includes delivery latency).
    At(u64),
    /// When DRAM transactions `first_seq..first_seq+count` and the merged
    /// owner transactions are granted (`floor` = the inline L1-hit
    /// completion, before delivery latency).
    Mem {
        first_seq: u64,
        count: u32,
        merged: Vec<u64>,
        floor: u64,
    },
}

/// A single simulated streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    cfg: SmConfig,
    /// Decoded instructions, shared (not cloned) with every other SM
    /// simulating the same kernel and borrowed on the issue path.
    program: Arc<Program>,
    params: Vec<u32>,
    mem: Memory,
    shared: Vec<SharedMem>,
    l1: Cache,
    /// Per-SM miss-status holding registers: merges same-line misses into
    /// one in-flight transaction. Disabled (capacity 0) by default.
    mshr: MshrFile,
    /// The SM's private DRAM channel. Grants transactions immediately at
    /// issue unless a machine-shared channel is attached
    /// ([`Sm::attach_shared_channel`]), in which case it is bypassed.
    dram: SharedDramChannel,
    /// This SM's id inside a [`crate::machine::Machine`] (0 standalone);
    /// stamps outgoing [`MemRequest`]s for deterministic arbitration.
    sm_id: u32,
    /// Monotonic per-SM DRAM transaction counter.
    mem_seq: u64,
    /// Monotonic writeback-event counter (heap tie-break).
    wb_seq: u64,
    /// Transactions issued but not yet arbitrated; drained every epoch by
    /// the machine (shared mode) or at the end of each issue event
    /// (private mode).
    mem_outbox: Vec<MemRequest>,
    /// Scoreboard entries blocked on outstanding DRAM grants.
    pending_mem: Vec<PendingMemOp>,
    /// True when a machine owns arbitration (never self-grant).
    external_mem: bool,
    finalized: bool,
    cycle: u64,
    warps: Vec<Warp>,
    /// Per-`(warp, slot)` cached [`Sm::ready_check_nogroup`] outcome,
    /// kept as a dense side array (not in [`Warp`]) so the schedulers'
    /// every-warp-every-cycle scans stay inside a few hot cache lines
    /// and never touch the big per-warp records. `Cell` keeps the check
    /// `&self`. Invalidated by [`Sm::wake_warp`] at every event that can
    /// change readiness; see [`ReadyMemo`].
    ready_memo: Vec<[Cell<ReadyMemo>; 2]>,
    /// Bit `w` set ⇔ `ready_check(w, slot)` *might* return `Some` — i.e.
    /// warp `w`'s slot memo is not a cached until-wake failure. Scanning
    /// policies walk only set bits, so a blocked warp costs nothing per
    /// cycle. Maintained by [`Sm::wake_warp`] (set) and the memo's slow
    /// path (cleared on an until-wake failure).
    ready_cand: [Cell<u64>; 2],
    /// Re-arm times for warps parked on a timed readiness failure: a
    /// min-heap of `(cycle, warp)` per slot, drained at each cycle start
    /// to restore the candidate bits whose `NotBefore` horizon arrived.
    timed_wake: [TimedWakeHeap; 2],
    /// Earliest entry in each `timed_wake` heap (`u64::MAX` when empty),
    /// so the per-cycle drain is a single compare in the common case.
    timed_min: [Cell<u64>; 2],
    /// Warps whose slot-`i` readiness memo currently holds a `Ready`
    /// value — the dense mirror oldest-first scans walk instead of
    /// copying the memo enum per probe.
    ready_now: [Cell<u64>; 2],
    /// `(seq, unit)` of the memoized `Ready` per `(warp, slot)`; valid
    /// only while the matching `ready_now` bit is set.
    ready_info: Vec<[Cell<(u64, UnitClass)>; 2]>,
    /// Bit `w` set ⇔ warp `w`'s divergence contexts may have moved (or
    /// its ibuf been written) since `validate_ibufs` last ran for it.
    /// Clean warps are fixed points of the re-association pass; the pass
    /// walks only set bits instead of touching every `Warp`.
    ctx_dirty: u64,
    /// Bit `w` of `[slot]` set ⇔ warp `w` is alive with `ibuf[slot]`
    /// empty — the fetch channels' candidate set. Maintained by
    /// [`Sm::update_fetchable`] at every ibuf/liveness writer.
    fetchable: [u64; 2],
    blocks: Vec<BlockSlot>,
    /// Index of the next entry of `block_ids` to assign to a free slot.
    next_block: u32,
    /// The grid blocks this SM simulates (the whole grid for a standalone
    /// SM; a fixed shard under [`crate::machine::Machine`]).
    block_ids: Vec<u32>,
    grid_blocks: u32,
    block_threads: u32,
    /// Optional journal of global-memory effects, enabled by the parallel
    /// machine so shards can be merged deterministically.
    journal: Option<MemJournal>,
    groups: ExecGroups,
    sideband_busy_until: u64,
    pending_wb: MemEventQueue<WbSlot>,
    /// The issue front-end, resolved by name from the
    /// [`PolicyRegistry`] at construction. Always `Some` outside the
    /// issue call itself (taken out to let the policy borrow the SM
    /// through an [`IssueCtx`]).
    policy: Option<Box<dyn IssuePolicy>>,
    /// Precomputed per-warp thread→lane permutation (SoA form of the
    /// configured [`crate::lane::LaneShuffle`]).
    lane_table: LaneTable,
    rng: SmallRng,
    stats: Stats,
    trace: Option<Vec<TraceEvent>>,
    fetch_rr: [usize; 2],
    next_seq: u64,
    last_progress: u64,
    /// Persistent access-list scratch `(thread, addr, data)` — reused by
    /// every issued instruction instead of a per-issue allocation.
    access_scratch: Vec<(usize, u32, u32)>,
    /// Persistent word-aligned `(thread, addr)` scratch for the LSU
    /// coalescer.
    addr_scratch: Vec<(usize, u32)>,
    /// Persistent transaction arena for the coalescer — per-transaction
    /// lane lists keep their capacity across issue events.
    tx_scratch: TxScratch,
    /// Persistent LSU plan for [`crate::lsu::plan_global_into`] — its
    /// request/merge vectors keep their capacity across issue events.
    plan_scratch: GlobalPlan,
    /// Superblock fusion plan for `program`, built once at construction
    /// when [`SmConfig::superblocks`] is set. `None` disables the fused
    /// issue path entirely.
    sb: Option<SuperblockSet>,
    /// Per-pc pre-decoded issue metadata, parallel to `program`.
    pc_meta: Vec<PcMeta>,
}

/// Cycles without any issue or writeback before the deadlock watchdog fires.
const WATCHDOG_CYCLES: u64 = 100_000;

impl Sm {
    /// Builds an SM for `launch` under `cfg`.
    ///
    /// # Errors
    /// Configuration validation failures and empty programs.
    pub fn new(cfg: SmConfig, launch: Launch) -> Result<Sm, String> {
        let blocks = (0..launch.grid_blocks).collect();
        Sm::for_blocks(
            cfg,
            Arc::new(launch.program),
            launch.grid_blocks,
            launch.block_threads,
            launch.params,
            blocks,
        )
    }

    /// Builds an SM that simulates only `block_ids` of a
    /// `grid_blocks × block_threads` launch whose decoded program is shared
    /// between SMs. This is the constructor the parallel
    /// [`crate::machine::Machine`] uses to shard a grid.
    ///
    /// # Errors
    /// Configuration validation failures, empty programs and out-of-range
    /// block ids.
    pub fn for_blocks(
        cfg: SmConfig,
        program: Arc<Program>,
        grid_blocks: u32,
        block_threads: u32,
        params: Vec<u32>,
        block_ids: Vec<u32>,
    ) -> Result<Sm, String> {
        cfg.validate()?;
        if program.is_empty() {
            return Err("empty program".into());
        }
        if grid_blocks == 0 || block_threads == 0 {
            return Err("empty launch grid".into());
        }
        if let Some(&bad) = block_ids.iter().find(|&&b| b >= grid_blocks) {
            return Err(format!("block id {bad} outside grid of {grid_blocks}"));
        }
        let warps_per_block = (block_threads as usize).div_ceil(cfg.warp_width);
        if warps_per_block > cfg.num_warps {
            return Err(format!(
                "block of {block_threads} threads needs {warps_per_block} warps; SM has {}",
                cfg.num_warps
            ));
        }
        let num_slots = cfg.num_warps / warps_per_block;
        let blocks = (0..num_slots)
            .map(|i| BlockSlot {
                active: false,
                block_id: 0,
                first_warp: i * warps_per_block,
                num_warps: warps_per_block,
                alive_threads: 0,
                barrier_arrived: 0,
            })
            .collect();
        let warps = (0..cfg.num_warps)
            .map(|_| Warp {
                alive: false,
                block_slot: 0,
                regs: WarpRegFile::new(cfg.warp_width),
                info: WarpInfo::new(cfg.warp_width),
                div: Divergence::Stack(PdomStack::new(Mask::EMPTY)),
                scoreboard: Scoreboard::new(cfg.scoreboard_mode, cfg.scoreboard_entries),
                ibuf: [None, None],
                exited: Mask::EMPTY,
                populated: Mask::EMPTY,
                sb_run: [SbRun::default(); 2],
            })
            .collect();
        let l1 = Cache::new(cfg.l1);
        let mshr = MshrFile::new(cfg.mshr_entries as usize);
        let dram = SharedDramChannel::new(cfg.dram);
        let seed = cfg.seed;
        let policy = PolicyRegistry::resolve_global(&cfg.policy)
            .ok_or_else(|| format!("unknown issue policy '{}'", cfg.policy))?
            .build(&cfg);
        let lane_table = cfg.lane_shuffle.table(cfg.warp_width, cfg.num_warps);
        let sb = cfg.superblocks.then(|| SuperblockSet::build(&program));
        let pc_meta = program.instructions().iter().map(PcMeta::of).collect();
        let mut sm = Sm {
            program,
            params,
            mem: Memory::new(),
            shared: vec![SharedMem::new(); num_slots],
            l1,
            mshr,
            dram,
            sm_id: 0,
            mem_seq: 0,
            wb_seq: 0,
            mem_outbox: Vec::new(),
            pending_mem: Vec::new(),
            external_mem: false,
            finalized: false,
            cycle: 0,
            ready_memo: (0..cfg.num_warps)
                .map(|_| [Cell::new(ReadyMemo::Stale), Cell::new(ReadyMemo::Stale)])
                .collect(),
            ready_cand: {
                let all = if cfg.num_warps >= 64 {
                    u64::MAX
                } else {
                    (1u64 << cfg.num_warps) - 1
                };
                [Cell::new(all), Cell::new(all)]
            },
            timed_wake: [
                std::cell::RefCell::new(std::collections::BinaryHeap::new()),
                std::cell::RefCell::new(std::collections::BinaryHeap::new()),
            ],
            timed_min: [Cell::new(u64::MAX), Cell::new(u64::MAX)],
            ready_now: [Cell::new(0), Cell::new(0)],
            ready_info: (0..cfg.num_warps)
                .map(|_| {
                    [
                        Cell::new((0, UnitClass::Control)),
                        Cell::new((0, UnitClass::Control)),
                    ]
                })
                .collect(),
            ctx_dirty: if cfg.num_warps >= 64 {
                u64::MAX
            } else {
                (1u64 << cfg.num_warps) - 1
            },
            fetchable: [0, 0],
            warps,
            blocks,
            next_block: 0,
            block_ids,
            grid_blocks,
            block_threads,
            journal: None,
            groups: ExecGroups::new(&cfg.groups),
            sideband_busy_until: 0,
            pending_wb: MemEventQueue::new(),
            policy: Some(policy),
            lane_table,
            rng: SmallRng::seed_from_u64(seed),
            stats: Stats::default(),
            trace: None,
            fetch_rr: [0, 0],
            next_seq: 0,
            last_progress: 0,
            access_scratch: Vec::new(),
            addr_scratch: Vec::new(),
            tx_scratch: TxScratch::default(),
            plan_scratch: GlobalPlan::default(),
            sb,
            pc_meta,
            cfg,
        };
        sm.refill_blocks();
        Ok(sm)
    }

    /// Enables issue-event tracing (see [`crate::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace (empty unless [`Sm::enable_trace`] was called).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Global memory (for writing inputs before `run` and reading results
    /// after).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Global memory, read-only.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Consumes the SM and hands back its global memory (to seed the next
    /// launch of a multi-kernel workload).
    pub fn into_memory(self) -> Memory {
        self.mem
    }

    /// Replaces global memory wholesale (multi-launch workloads carry state
    /// between kernels this way).
    pub fn set_memory(&mut self, mem: Memory) {
        self.mem = mem;
    }

    /// The active configuration.
    pub fn config(&self) -> &SmConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Starts journaling global-memory stores and atomics so a parallel
    /// machine can merge this SM's effects with its siblings'.
    pub fn enable_mem_journal(&mut self) {
        self.journal = Some(MemJournal::default());
    }

    /// Takes the accumulated journal (if journaling was enabled).
    pub fn take_mem_journal(&mut self) -> Option<MemJournal> {
        self.journal.take()
    }

    /// Sets this SM's machine-wide id: stamps outgoing [`MemRequest`]s so
    /// the shared channel's arbitration order is well-defined across SMs.
    pub fn set_sm_id(&mut self, sm_id: u32) {
        self.sm_id = sm_id;
    }

    /// Hands DRAM arbitration to an external machine-shared channel: the
    /// SM stops self-granting, leaves its transactions in the outbox for
    /// [`Sm::drain_mem_requests`] and blocks the issuing warps until
    /// [`Sm::deliver_mem_grants`] supplies the completion times.
    pub fn attach_shared_channel(&mut self) {
        self.external_mem = true;
    }

    /// Drains the transactions issued since the last drain (machine epoch
    /// barrier). Empty unless [`Sm::attach_shared_channel`] was called.
    pub fn drain_mem_requests(&mut self) -> Vec<MemRequest> {
        std::mem::take(&mut self.mem_outbox)
    }

    /// Delivers arbitration grants from the machine-shared channel,
    /// unblocking the scoreboard entries that were waiting on them.
    pub fn deliver_mem_grants(&mut self, grants: &[MemGrant]) {
        for grant in grants {
            debug_assert_eq!(grant.sm_id, self.sm_id, "grant routed to wrong SM");
            self.apply_grant(grant);
        }
    }

    /// True when every assigned block has completed.
    pub fn is_done(&self) -> bool {
        self.next_block as usize >= self.block_ids.len() && self.blocks.iter().all(|b| !b.active)
    }

    /// Runs until the kernel finishes or `max_cycles` elapse; returns the
    /// final statistics on success.
    ///
    /// # Errors
    /// [`SimError::Deadlock`] if the watchdog detects no forward progress;
    /// [`SimError::CyclesExhausted`] if the budget runs out.
    pub fn run(&mut self, max_cycles: u64) -> Result<&Stats, SimError> {
        while !self.is_done() {
            if self.cycle >= max_cycles {
                return Err(self.cycles_exhausted(max_cycles));
            }
            self.step_capped(None)?;
        }
        self.finalize_stats();
        Ok(&self.stats)
    }

    /// Runs until the kernel finishes or the clock reaches `limit`
    /// (an epoch barrier of the shared-channel machine), whichever comes
    /// first; returns whether the SM is done. The idle fast-forward may
    /// overshoot `limit` when the SM provably cannot issue memory traffic
    /// before its next event — the machine's epoch merge stays exact
    /// because an overshooting SM's request window is empty.
    ///
    /// # Errors
    /// As [`Sm::run`], with `budget` as the cycle budget.
    pub fn run_until(&mut self, limit: u64, budget: u64) -> Result<bool, SimError> {
        while !self.is_done() && self.cycle < limit {
            if self.cycle >= budget {
                return Err(self.cycles_exhausted(budget));
            }
            self.step_capped(Some(limit))?;
        }
        let done = self.is_done();
        if done {
            self.finalize_stats();
        }
        Ok(done)
    }

    fn finalize_stats(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        self.stats.cycles = self.cycle;
        self.stats.l1 = self.l1.stats();
        for w in &self.warps {
            match &w.div {
                Divergence::Stack(s) => {
                    self.stats.max_stack_depth = self.stats.max_stack_depth.max(s.max_depth());
                }
                Divergence::Frontier(h) => {
                    let hs = h.stats();
                    self.stats.heap.max_live_splits =
                        self.stats.heap.max_live_splits.max(hs.max_live_splits);
                    self.stats.heap.merges += hs.merges;
                    self.stats.heap.spills += hs.spills;
                    self.stats.heap.degraded_inserts += hs.degraded_inserts;
                }
            }
        }
    }

    /// Advances one cycle.
    ///
    /// # Errors
    /// [`SimError::Deadlock`] from the watchdog.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.step_capped(None)
    }

    /// [`Sm::step`] with an optional fast-forward cap — the epoch barrier
    /// a machine-driven SM must not jump past while it waits on grants.
    fn step_capped(&mut self, cap: Option<u64>) -> Result<(), SimError> {
        self.cycle += 1;
        self.rearm_timed_wakes();
        self.process_writebacks();
        self.validate_ibufs();
        // The policy is taken out for the call so it can borrow the SM
        // mutably through the `IssueCtx` view; it is always restored.
        let mut policy = self.policy.take().expect("policy present outside issue");
        let issued = policy.issue(&mut IssueCtx { sm: self });
        self.policy = Some(policy);
        if issued == 0 {
            self.stats.idle_cycles += 1;
        } else {
            self.last_progress = self.cycle;
        }
        self.release_barriers();
        self.refill_blocks();
        let fetched = self.fetch();
        // Idle fast-forward: if this whole cycle did nothing (no writeback,
        // no issue, no barrier/block event, no fetch) and the front-end
        // carries no pick between cycles, the machine state is frozen until
        // the next timed event — jump straight to it instead of ticking.
        if self.cfg.fast_forward
            && !fetched
            && self.last_progress < self.cycle
            && !self.policy().carries_pick()
        {
            self.fast_forward_idle(cap);
        }
        if self.cycle - self.last_progress > WATCHDOG_CYCLES {
            return Err(SimError::Deadlock {
                cycle: self.cycle,
                last_progress: self.last_progress,
                kernel: self.program.name().to_string(),
                detail: self.deadlock_detail(),
                warps: self.warp_diagnosis(),
            });
        }
        Ok(())
    }

    /// The [`SimError::CyclesExhausted`] for this SM right now (launch
    /// provenance is attached later by the workload runner).
    fn cycles_exhausted(&self, budget: u64) -> SimError {
        SimError::CyclesExhausted {
            budget,
            cycle: self.cycle,
            last_progress: self.last_progress,
            kernel: self.program.name().to_string(),
            launch: None,
        }
    }

    /// Jumps the clock to one cycle before the next event that can unfreeze
    /// the machine: the earliest pending writeback, issue-port release or —
    /// for a machine-driven SM with outstanding memory traffic — the epoch
    /// barrier at which its grants arrive. Exact with respect to
    /// cycle-by-cycle simulation — every skipped cycle would have issued
    /// nothing, fetched nothing and retired nothing, so only `cycle`,
    /// `idle_cycles` and the fetch round-robin pointers (which rotate
    /// 1/cycle while no warp is fetchable) need advancing.
    fn fast_forward_idle(&mut self, cap: Option<u64>) {
        let now = self.cycle;
        let mut next_event = self.pending_wb.next_ready_cycle().unwrap_or(u64::MAX);
        if let Some(t) = self.groups.next_release_after(now) {
            next_event = next_event.min(t);
        }
        if let Some(limit) = cap {
            // Waiting on an arbitration grant (or holding undelivered
            // write traffic): the next relevant event is the barrier.
            if !self.pending_mem.is_empty() || !self.mem_outbox.is_empty() {
                next_event = next_event.min(limit);
            }
        }
        let target = if next_event == u64::MAX {
            // Nothing in flight at all: this is a deadlock — jump to where
            // the watchdog fires so it is reported without 100k idle ticks
            // (never past the machine's barrier, which may deliver work).
            let watchdog = self.last_progress + WATCHDOG_CYCLES + 1;
            cap.map_or(watchdog, |limit| watchdog.min(limit))
        } else {
            next_event
        };
        if target > now + 1 {
            let skipped = target - now - 1;
            self.cycle += skipped;
            self.stats.idle_cycles += skipped;
            let nw = self.cfg.num_warps as u64;
            for rr in &mut self.fetch_rr {
                *rr = ((*rr as u64 + skipped) % nw) as usize;
            }
            // Policies that count a per-cycle condition even on idle
            // cycles (SBI's parked secondaries) replicate it for the
            // skipped window so fast-forwarding stays statistics-exact.
            let mut policy = self.policy.take().expect("policy present outside issue");
            policy.account_idle_skip(&mut IssueCtx { sm: self }, skipped);
            self.policy = Some(policy);
        }
    }

    /// The active issue policy (always present outside the issue call).
    fn policy(&self) -> &dyn IssuePolicy {
        self.policy
            .as_deref()
            .expect("policy present outside issue")
    }

    /// Cycle of the most recent forward progress (issue, writeback or
    /// block event) — the reference point of the deadlock watchdog.
    pub fn last_progress_cycle(&self) -> u64 {
        self.last_progress
    }

    /// This SM's id within its machine (0 for a standalone SM).
    pub fn sm_id(&self) -> u32 {
        self.sm_id
    }

    /// Name of the kernel this SM is executing.
    pub fn program_name(&self) -> &str {
        self.program.name()
    }

    /// Structured stall snapshot of every alive warp — what the deadlock
    /// watchdog embeds in [`SimError::Deadlock`]. Exposed so the
    /// shared-channel machine can aggregate diagnoses across SMs when it
    /// detects an epoch livelock.
    pub fn warp_diagnosis(&self) -> Vec<WarpDiagnosis> {
        self.warps
            .iter()
            .enumerate()
            .filter(|(_, w)| w.alive)
            .map(|(i, w)| {
                let (pc, at_barrier, depth) = match &w.div {
                    Divergence::Stack(s) => {
                        (s.current().map(|(pc, _)| pc.0), s.at_barrier(), s.depth())
                    }
                    Divergence::Frontier(h) => (
                        h.primary().map(|c| c.pc.0),
                        h.primary().is_some_and(|c| c.at_barrier),
                        h.live_splits(),
                    ),
                };
                WarpDiagnosis {
                    sm: self.sm_id,
                    warp: i,
                    pc,
                    divergence_depth: depth,
                    at_barrier,
                    scoreboard_in_flight: w.scoreboard.in_flight(),
                    blocked_dst_regs: w.scoreboard.in_flight_dsts(),
                    pending_grants: self
                        .pending_mem
                        .iter()
                        .filter(|op| op.warp == i)
                        .map(|op| op.remaining)
                        .sum(),
                }
            })
            .collect()
    }

    fn deadlock_detail(&self) -> String {
        let mut s = String::new();
        for (i, w) in self.warps.iter().enumerate() {
            if !w.alive {
                continue;
            }
            match &w.div {
                Divergence::Stack(st) => {
                    s.push_str(&format!(
                        "w{i}: stack depth {} cur {:?} barrier {}\n",
                        st.depth(),
                        st.current(),
                        st.at_barrier()
                    ));
                }
                Divergence::Frontier(h) => {
                    s.push_str(&format!(
                        "w{i}: splits {} cpc1 {:?} cpc2 {:?}\n",
                        h.live_splits(),
                        h.primary().map(|c| (c.pc, c.at_barrier)),
                        h.secondary().map(|c| (c.pc, c.at_barrier)),
                    ));
                }
            }
        }
        s
    }

    // --- divergence-state accessors -------------------------------------------

    /// `(pc, mask, at_barrier)` of the context feeding ibuf `slot` of `w`.
    pub(crate) fn ctx(&self, w: usize, slot: usize) -> Option<(Pc, Mask, bool)> {
        let warp = &self.warps[w];
        if !warp.alive {
            return None;
        }
        match &warp.div {
            Divergence::Stack(s) => {
                if slot == 0 {
                    s.current().map(|(pc, m)| (pc, m, s.at_barrier()))
                } else {
                    None
                }
            }
            Divergence::Frontier(h) => {
                let c = if slot == 0 {
                    h.primary()
                } else {
                    h.secondary()
                };
                c.map(|c| (c.pc, c.mask, c.at_barrier))
            }
        }
    }

    pub(crate) fn slot_masks(&self, w: usize) -> [Mask; 3] {
        match &self.warps[w].div {
            Divergence::Stack(_) => [Mask::EMPTY; 3],
            Divergence::Frontier(h) => {
                let m0 = h.primary().map_or(Mask::EMPTY, |c| c.mask);
                let m1 = h.secondary().map_or(Mask::EMPTY, |c| c.mask);
                [m0, m1, h.alive_mask() - m0 - m1]
            }
        }
    }

    // --- pipeline stages -------------------------------------------------------

    fn process_writebacks(&mut self) {
        let now = self.cycle;
        let mut progressed = false;
        while let Some(ev) = self.pending_wb.pop_ready(now) {
            self.warps[ev.payload.warp]
                .scoreboard
                .retire(ev.payload.token);
            self.wake_warp(ev.payload.warp);
            progressed = true;
        }
        if progressed {
            self.last_progress = now;
        }
    }

    // --- event-driven memory system -------------------------------------------

    /// Schedules a writeback at `time` retiring `token` of warp `warp`.
    fn push_wb(&mut self, time: u64, warp: usize, token: SbToken) {
        let seq = self.wb_seq;
        self.wb_seq += 1;
        self.pending_wb
            .push(time, self.sm_id, seq, WbSlot { warp, token });
    }

    /// Enqueues the DRAM transactions of one instruction (`(issue_cycle,
    /// block_addr, is_write)` triples, in port order) and returns the
    /// sequence number of the first.
    fn enqueue_dram(&mut self, requests: &[(u64, u32, bool)]) -> u64 {
        let first = self.mem_seq;
        for &(issue_cycle, addr, is_write) in requests {
            let seq = self.mem_seq;
            self.mem_seq += 1;
            if is_write {
                self.stats.dram.write_transfers += 1;
            } else {
                self.stats.dram.read_transfers += 1;
            }
            self.mem_outbox.push(MemRequest {
                issue_cycle,
                sm_id: self.sm_id,
                seq,
                addr,
                is_write,
            });
        }
        first
    }

    /// Grants every outbox transaction against the SM's private channel
    /// (the non-machine-driven mode): arbitration degenerates to
    /// issue-order service, reproducing the historical inline-latency
    /// timings bit-for-bit.
    fn drain_local_grants(&mut self) {
        // Take/put-back (rather than consume) so the outbox keeps its
        // allocation across issue events.
        let mut outbox = std::mem::take(&mut self.mem_outbox);
        for req in outbox.drain(..) {
            let grant = self.dram.grant(&req);
            self.apply_grant(&grant);
        }
        self.mem_outbox = outbox;
    }

    /// Applies one arbitration grant: finds every pending scoreboard entry
    /// waiting on the transaction — its issuer plus any warps the MSHR
    /// file merged onto it — folds in the completion time and — once an
    /// entry's last outstanding transaction lands — converts it into a
    /// timed writeback. Write grants only account bandwidth; they never
    /// block a warp.
    fn apply_grant(&mut self, grant: &MemGrant) {
        if grant.is_write {
            return;
        }
        self.mshr.on_grant(grant.seq, grant.ready_cycle);
        let mut matched = false;
        let mut i = 0;
        while i < self.pending_mem.len() {
            let op = &mut self.pending_mem[i];
            let own = op.first_seq <= grant.seq && grant.seq <= op.last_seq;
            if !own && !op.merged.contains(&grant.seq) {
                i += 1;
                continue;
            }
            matched = true;
            op.remaining -= 1;
            op.max_done = op.max_done.max(grant.ready_cycle);
            if op.remaining == 0 {
                let op = self.pending_mem.swap_remove(i);
                let wb = op.floor.max(op.max_done) + self.cfg.delivery_latency as u64;
                self.push_wb(wb, op.warp, op.token);
                // swap_remove moved a fresh op into slot i: revisit it.
            } else {
                i += 1;
            }
        }
        if matched {
            self.stats.dram_queue_delay += grant.queue_delay;
            if grant.queue_delay > 0 {
                self.stats.dram_queued_loads += 1;
            }
            self.stats.dram_max_queue_delay =
                self.stats.dram_max_queue_delay.max(grant.queue_delay);
        }
    }

    /// Re-associates instruction-buffer entries with the warp-splits they
    /// were fetched for (entries are tagged by PC, so when the HCT sorter
    /// swaps the hot contexts the buffered instructions follow), and
    /// squashes entries whose split moved under them (the redundant-fetch
    /// cost of desynchronisation).
    fn validate_ibufs(&mut self) {
        // Contexts move only at issue, barrier release and block
        // (re)launch, and fetch is the only other ibuf writer; all of
        // those mark the warp in `ctx_dirty`, so a clean warp is already
        // a fixed point of this re-association — the pass walks the set
        // bits and never touches a clean `Warp` at all.
        let mut dirty = self.ctx_dirty;
        self.ctx_dirty = 0;
        while dirty != 0 {
            let w = dirty.trailing_zeros() as usize;
            dirty &= dirty - 1;
            if self.warps[w].ibuf.iter().all(Option::is_none) {
                continue;
            }
            let before = self.warps[w].ibuf;
            // A policy-reserved entry (the SWI cascade's pending primary)
            // is validated at issue instead. Fixed two-slot pool — this
            // runs per warp per cycle, so it must not allocate.
            let reserved = self.policy().reserved_slot(w);
            let mut pool: [Option<IbufEntry>; 2] = [None, None];
            for (slot, entry) in pool.iter_mut().enumerate() {
                if reserved == Some(slot) {
                    continue;
                }
                *entry = self.warps[w].ibuf[slot].take();
            }
            for slot in 0..2 {
                if reserved == Some(slot) {
                    continue;
                }
                if let Some((pc, _, _)) = self.ctx(w, slot) {
                    if let Some(i) = pool.iter().position(|e| e.is_some_and(|e| e.pc == pc)) {
                        self.warps[w].ibuf[slot] = pool[i].take();
                    }
                }
            }
            self.stats.fetch_squashes += pool.iter().flatten().count() as u64;
            if self.warps[w].ibuf != before {
                self.wake_warp(w);
            }
            self.update_fetchable(w);
            // A reserved slot was skipped above, so the warp is not yet a
            // fixed point — keep it marked and revisit next cycle.
            if reserved.is_some() {
                self.ctx_dirty |= 1u64 << w;
            }
        }
    }

    /// Checks whether `(w, slot)` holds a ready instruction whose execution
    /// group has a free issue port (schedulers pick the oldest *eligible*
    /// instruction — a busy unit does not stall the whole slot). Pure — no
    /// statistics are updated here.
    pub(crate) fn ready_check(&self, w: usize, slot: usize) -> Option<Ready> {
        let r = self.ready_check_nogroup(w, slot)?;
        if r.unit != UnitClass::Control && self.groups.find_free(r.unit, self.cycle).is_none() {
            return None;
        }
        Some(r)
    }

    /// [`Sm::ready_check`] without the free-group requirement (used by the
    /// SWI cascade to *hold* a pending primary while its port drains).
    ///
    /// Memoized per `(warp, slot)`: both outcomes of an evaluation are
    /// stable until an event touches the warp (a failure records the
    /// first cycle at which it could clear on its own — `fetched_at + 1`
    /// for a just-fetched entry, `u64::MAX` otherwise), so the
    /// schedulers' every-warp-every-cycle scans short-circuit on the
    /// cached state. [`Sm::wake_warp`] resets the memo at each event
    /// that can change the outcome, so this is behaviour-invariant.
    pub(crate) fn ready_check_nogroup(&self, w: usize, slot: usize) -> Option<Ready> {
        let memo = &self.ready_memo[w][slot];
        match memo.get() {
            ReadyMemo::Ready(r) => return Some(r),
            ReadyMemo::NotBefore(c) if self.cycle < c => {
                self.park_warp(w, slot, c);
                return None;
            }
            _ => {}
        }
        match self.ready_check_slow(w, slot) {
            Ok(r) => {
                memo.set(ReadyMemo::Ready(r));
                self.ready_now[slot].set(self.ready_now[slot].get() | (1u64 << w));
                self.ready_info[w][slot].set((r.seq, r.unit));
                Some(r)
            }
            Err(until) => {
                memo.set(ReadyMemo::NotBefore(until));
                self.park_warp(w, slot, until);
                None
            }
        }
    }

    /// Drops warp `w` from slot `slot`'s candidate set after a readiness
    /// failure. An until-wake failure (`u64::MAX`) relies on
    /// [`Sm::wake_warp`] alone to restore the bit; a timed failure also
    /// queues a re-arm at `until` so the guarantee stays conservative.
    fn park_warp(&self, w: usize, slot: usize, until: u64) {
        let bit = 1u64 << w;
        let cands = self.ready_cand[slot].get();
        if cands & bit == 0 {
            return;
        }
        self.ready_cand[slot].set(cands & !bit);
        if until != u64::MAX {
            self.timed_wake[slot]
                .borrow_mut()
                .push(std::cmp::Reverse((until, w as u8)));
            if until < self.timed_min[slot].get() {
                self.timed_min[slot].set(until);
            }
        }
    }

    /// Restores the candidate bits of parked warps whose `NotBefore`
    /// horizon has arrived. Runs once per cycle, before issue; setting a
    /// bit is always safe (the check itself still decides), so stale or
    /// duplicate heap entries are harmless.
    fn rearm_timed_wakes(&mut self) {
        for slot in 0..2 {
            if self.timed_min[slot].get() > self.cycle {
                continue;
            }
            let heap = self.timed_wake[slot].get_mut();
            while let Some(&std::cmp::Reverse((t, w))) = heap.peek() {
                if t > self.cycle {
                    break;
                }
                heap.pop();
                self.ready_cand[slot].set(self.ready_cand[slot].get() | 1u64 << w);
            }
            self.timed_min[slot].set(heap.peek().map_or(u64::MAX, |r| r.0 .0));
        }
    }

    /// Resets warp `w`'s readiness memo so the next scan re-evaluates it.
    /// Must be called whenever state feeding [`Sm::ready_check_slow`]
    /// changes: issue (divergence / ibuf / scoreboard), fetch fill,
    /// writeback retirement, barrier release, block launch or teardown,
    /// and ibuf re-association.
    fn wake_warp(&self, w: usize) {
        self.ready_memo[w][0].set(ReadyMemo::Stale);
        self.ready_memo[w][1].set(ReadyMemo::Stale);
        let bit = 1u64 << w;
        self.ready_cand[0].set(self.ready_cand[0].get() | bit);
        self.ready_cand[1].set(self.ready_cand[1].get() | bit);
        self.ready_now[0].set(self.ready_now[0].get() & !bit);
        self.ready_now[1].set(self.ready_now[1].get() & !bit);
    }

    /// Warps whose `ready_check(w, slot)` might return `Some` this cycle,
    /// as a bitmask. A clear bit is a *guarantee* of not-ready (a cached
    /// until-wake failure), so scanning policies skip it outright; a set
    /// bit is only a candidate — the check itself still decides.
    pub(crate) fn ready_candidates(&self, slot: usize) -> u64 {
        self.ready_cand[slot].get()
    }

    /// Warps with a memoized `Ready` in `slot` (always a subset of
    /// [`Sm::ready_candidates`]).
    pub(crate) fn ready_now(&self, slot: usize) -> u64 {
        self.ready_now[slot].get()
    }

    /// `(seq, unit)` of the memoized `Ready` — only meaningful while the
    /// matching [`Sm::ready_now`] bit is set.
    pub(crate) fn ready_info(&self, w: usize, slot: usize) -> (u64, UnitClass) {
        self.ready_info[w][slot].get()
    }

    /// Unit classes with a free issue port this cycle, as a bitmask over
    /// `UnitClass as u8` (Control, which needs no port, is always set).
    pub(crate) fn free_unit_mask(&self) -> u8 {
        self.groups.free_class_mask(self.cycle) | (1 << UnitClass::Control as u8)
    }

    /// Re-derives warp `w`'s fetch-candidate bits from its liveness and
    /// ibuf occupancy. Must be called after any write to either.
    fn update_fetchable(&mut self, w: usize) {
        let bit = 1u64 << w;
        let warp = &self.warps[w];
        for slot in 0..2 {
            if warp.alive && warp.ibuf[slot].is_none() {
                self.fetchable[slot] |= bit;
            } else {
                self.fetchable[slot] &= !bit;
            }
        }
    }

    /// The uncached evaluation behind [`Sm::ready_check_nogroup`]:
    /// `Err(c)` means not ready at any cycle before `c` unless a waking
    /// event intervenes.
    fn ready_check_slow(&self, w: usize, slot: usize) -> Result<Ready, u64> {
        let warp = &self.warps[w];
        let Some((pc, mask, at_barrier)) = self.ctx(w, slot) else {
            return Err(u64::MAX);
        };
        if at_barrier {
            return Err(u64::MAX);
        }
        let Some(entry) = warp.ibuf[slot] else {
            return Err(u64::MAX);
        };
        if entry.pc != pc {
            return Err(u64::MAX);
        }
        if entry.fetched_at >= self.cycle {
            // The only purely time-gated failure: ready next cycle.
            return Err(entry.fetched_at + 1);
        }
        // The pre-decoded metadata covers every check below, so the hot
        // per-cycle path never loads the full `Instruction` record.
        let meta = self.pc_meta[pc.index()];
        // SBI reconvergence constraints (§3.3, conservative form): the
        // secondary split never executes past a SYNC marker — it parks
        // there until the primary catches up and the HCT sorter merges
        // them. (The paper's (PCdiv, PCrec) window with PCdiv = the
        // immediate dominator's last instruction degenerates for loop-exit
        // joins, whose immediate dominator is the loop-back block itself,
        // so loop-carried run-ahead would never suspend.)
        if slot == 1 && self.cfg.sbi_constraints && meta.is_sync {
            if let Some((cpc1, _, _)) = self.ctx(w, 0) {
                if cpc1 < pc {
                    return Err(u64::MAX);
                }
            }
        }
        if warp
            .scoreboard
            .depends_masks(meta.regs, meta.preds, mask, slot)
        {
            return Err(u64::MAX);
        }
        if meta.writes && !warp.scoreboard.has_free() {
            return Err(u64::MAX);
        }
        Ok(Ready {
            warp: w,
            slot,
            pc,
            mask,
            unit: meta.unit,
            seq: entry.seq,
        })
    }

    /// True if warp `w`'s secondary slot is currently parked by an SBI
    /// reconvergence constraint (§3.3).
    pub(crate) fn constraint_suspended(&self, w: usize) -> bool {
        if !self.cfg.sbi_constraints {
            return false;
        }
        let Some((pc, _, at_barrier)) = self.ctx(w, 1) else {
            return false;
        };
        if at_barrier || self.program[pc].op != Op::Sync {
            return false;
        }
        matches!(self.ctx(w, 0), Some((cpc1, _, _)) if cpc1 < pc)
    }

    /// Counts a constraint suspension if that is the (only) reason the slot
    /// is not ready (statistics for §5.1's constraints discussion).
    pub(crate) fn note_constraint_suspension(&mut self, w: usize) {
        if self.constraint_suspended(w) {
            self.stats.constraint_suspensions += 1;
        }
    }

    // --- the narrow policy-facing queries (see `crate::policy::IssueCtx`) ------

    /// Mutable statistics access for the dedicated policy counters.
    pub(crate) fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Index of a free back-end group serving `unit` this cycle.
    pub(crate) fn free_group(&self, unit: UnitClass) -> Option<usize> {
        self.groups.find_free(unit, self.cycle)
    }

    /// True if the decoded instruction at `pc` is a branch.
    pub(crate) fn is_branch(&self, pc: Pc) -> bool {
        self.program[pc].op.is_branch()
    }

    /// Thread-space `mask` of warp `wid` translated into lane space
    /// through the precomputed permutation table.
    pub(crate) fn lanes_of(&self, mask: Mask, wid: usize) -> Mask {
        self.lane_table.mask_to_lanes(mask, wid)
    }

    /// A pseudo-random index below `n` from the seeded tie-breaking RNG.
    pub(crate) fn rand_below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    // --- back-end resource planning (policy-facing port queries) ---------------

    /// Dispatch plan for a lone instruction.
    pub(crate) fn plan_dispatch(&self, unit: UnitClass) -> Option<Dispatch> {
        if unit == UnitClass::Control {
            return Some(Dispatch::None);
        }
        self.groups.find_free(unit, self.cycle).map(Dispatch::Group)
    }

    /// Dispatch plan for a secondary co-issued with `r1` (same warp, SBI):
    /// ride the same group pass for MAD/SFU, otherwise another free group.
    /// Enforces the one-divergence-per-cycle and single-LSU-port rules.
    pub(crate) fn plan_coissue(&self, r1: &Ready, d1: Dispatch, r2: &Ready) -> Option<Dispatch> {
        let i1 = &self.program[r1.pc];
        let i2 = &self.program[r2.pc];
        // "At most one divergence (branch or memory) can happen each cycle."
        if i1.op.is_branch() && i2.op.is_branch() {
            return None;
        }
        if r1.unit == UnitClass::Lsu && r2.unit == UnitClass::Lsu {
            return None; // single 128-byte L1 port
        }
        if r2.unit == UnitClass::Control {
            return Some(Dispatch::None);
        }
        if r2.unit == r1.unit && matches!(r1.unit, UnitClass::Mad | UnitClass::Sfu) {
            if let Dispatch::Group(g) = d1 {
                return Some(Dispatch::Ride(g));
            }
        }
        // Different class (or primary was control): needs its own free group.
        self.groups
            .find_free(r2.unit, self.cycle)
            .map(Dispatch::Group)
    }

    // --- issue commit ----------------------------------------------------------

    /// Issues `picks` (1 or 2 instructions) for warp `w`: functional
    /// execution, back-end timing, divergence update, scoreboard event.
    /// This is the only mutation path a policy has
    /// ([`crate::policy::IssueCtx::commit`]).
    pub(crate) fn commit_warp_issue(&mut self, w: usize, picks: &[Pick]) {
        debug_assert!(!picks.is_empty() && picks.len() <= 2);
        // One refcount bump per issue event buys borrowed access to every
        // decoded instruction below — no per-issue `Instruction` clone.
        let program = Arc::clone(&self.program);
        let before = self.slot_masks(w);
        let mut transitions: [Option<Transition>; 2] = [None, None];
        // At most two picks per event: fixed slots, no per-issue heap churn.
        let mut sb_alloc: [Option<(&Instruction, Mask)>; 2] = [None, None];
        let mut wb_times: [Option<WbTiming>; 2] = [None, None]; // parallel to sb_alloc
        let mut n_alloc = 0usize;

        for pick in picks {
            let r = pick.ready;
            let instr = &program[r.pc];
            let (taken, accesses) = self.execute_pick(w, r.slot, instr, r.pc, r.mask);
            let transition = self.transition_for(instr, r.pc, r.mask, taken);
            transitions[r.slot] = Some(transition);

            // Back-end timing, then hand the scratch buffer back for the
            // next issue event.
            let wb_time = self.time_pick(w, instr, r.mask, &accesses, pick.dispatch);
            self.access_scratch = accesses;

            // Statistics & trace.
            self.stats.warp_instructions += 1;
            self.stats.thread_instructions += r.mask.count() as u64;
            if pick.secondary {
                self.stats.secondary_issues += 1;
                match pick.dispatch {
                    Dispatch::Ride(_) => self.stats.same_group_coissues += 1,
                    _ => self.stats.other_group_coissues += 1,
                }
            } else {
                self.stats.primary_issues += 1;
            }
            if let Some(trace) = &mut self.trace {
                let lanes = self.lane_table.mask_to_lanes(r.mask, w);
                trace.push(TraceEvent {
                    cycle: self.cycle,
                    warp: w,
                    slot: if pick.secondary {
                        IssueSlot::Secondary
                    } else {
                        IssueSlot::Primary
                    },
                    pc: r.pc,
                    mask: r.mask,
                    lanes,
                    unit: r.unit,
                });
            }

            if instr.dst.is_some() || instr.pdst.is_some() {
                sb_alloc[n_alloc] = Some((instr, r.mask));
                wb_times[n_alloc] = Some(wb_time);
                n_alloc += 1;
            }

            // Consume the instruction-buffer entry.
            self.warps[w].ibuf[r.slot] = None;

            // Handle exits & barriers at block level.
            match transition {
                Transition::Exit => self.thread_exit(w, r.mask),
                Transition::Barrier(_) => {
                    let slot = self.warps[w].block_slot;
                    self.blocks[slot].barrier_arrived += r.mask.count();
                }
                _ => {}
            }
        }

        // Divergence update (one event covering both co-issued instructions,
        // like the HCT sorter receiving CPC1/CPC2/CPC3 at once).
        let branch_reconv = picks
            .iter()
            .find(|p| matches!(transitions[p.ready.slot], Some(Transition::Split { .. })))
            .map(|p| self.program[p.ready.pc].reconv)
            .unwrap_or(None);
        let sideband_free = self.sideband_busy_until <= self.cycle;
        match &mut self.warps[w].div {
            Divergence::Stack(s) => {
                let t = transitions[0].expect("stack issues from slot 0");
                s.apply(t, branch_reconv);
            }
            Divergence::Frontier(h) => {
                let update = h.apply_pair(transitions[0], transitions[1], sideband_free);
                if update.spilled && !update.degraded && self.cfg.model_sideband_sorter {
                    self.sideband_busy_until = self.cycle + update.cct_walk as u64;
                }
            }
        }

        // Scoreboard: allocate the entry for this event, then fold the slot
        // transition into every in-flight matrix.
        let after = self.slot_masks(w);
        let mut new_entry = None;
        if n_alloc > 0 {
            let warp = &mut self.warps[w];
            let first = sb_alloc[0].expect("non-empty");
            let i2 = sb_alloc[1];
            let tokens = warp
                .scoreboard
                .allocate(first, i2)
                .expect("ready_check guaranteed a free entry");
            new_entry = Some(tokens.0);
            let wb0 = wb_times[0].take().expect("parallel to sb_alloc");
            self.schedule_retire(w, tokens.0, wb0);
            if let (Some(t2), Some(wb2)) = (tokens.1, wb_times[1].take()) {
                self.schedule_retire(w, t2, wb2);
            }
        }
        if self.cfg.scoreboard_mode == ScoreboardMode::Matrix {
            self.warps[w]
                .scoreboard
                .on_event(&before, &after, new_entry);
        }
        // Private-channel mode: arbitration degenerates to issue order, so
        // grant this event's transactions on the spot (the historical
        // inline-latency timing). Machine-driven SMs leave the outbox for
        // the epoch barrier instead.
        if !self.external_mem && !self.mem_outbox.is_empty() {
            self.drain_local_grants();
        }
        // Divergence, ibuf and scoreboard state all moved: re-evaluate
        // readiness and re-associate the warp's buffered entries.
        self.wake_warp(w);
        self.ctx_dirty |= 1u64 << w;
        self.update_fetchable(w);
    }

    /// Registers a scoreboard entry's retirement: either a timed writeback
    /// or a pending-memory entry blocked on DRAM grants.
    fn schedule_retire(&mut self, w: usize, token: SbToken, timing: WbTiming) {
        match timing {
            WbTiming::At(time) => self.push_wb(time, w, token),
            WbTiming::Mem {
                first_seq,
                count,
                merged,
                floor,
            } => {
                // A fully-merged instruction (count 0) has no transactions
                // of its own: give it an explicitly empty seq range so the
                // membership test `first ≤ seq ≤ last` can never fire.
                let (first, last) = if count > 0 {
                    (first_seq, first_seq + count as u64 - 1)
                } else {
                    (1, 0)
                };
                self.pending_mem.push(PendingMemOp {
                    first_seq: first,
                    last_seq: last,
                    remaining: count + merged.len() as u32,
                    merged,
                    floor,
                    max_done: 0,
                    warp: w,
                    token,
                });
            }
        }
    }

    /// Functional execution of one issue grant: through the superblock
    /// fused path when the grant continues (or enters) the slot's active
    /// superblock run, falling back to the interpreter otherwise.
    ///
    /// Covered instructions still execute exactly one per grant, so the
    /// fused path changes *how* an instruction's semantics are computed
    /// (pre-resolved operands, in-place rows), never *when* — timing,
    /// transitions and memory effects are charged per original
    /// instruction, identically to the interpreter path.
    fn execute_pick(
        &mut self,
        w: usize,
        slot: usize,
        instr: &Instruction,
        pc: Pc,
        mask: Mask,
    ) -> (Mask, Vec<(usize, u32, u32)>) {
        if self.sb.is_some() {
            if let Some(loc) = self.superblock_advance(w, slot, pc, mask) {
                return self.execute_covered(w, loc, instr, mask);
            }
        }
        self.execute_functional(w, instr, mask)
    }

    /// Advances slot `slot`'s superblock run for a grant at `pc` with
    /// `mask`. Returns `Some((superblock index, op index))` when the grant
    /// is covered — either the next instruction of the active run or the
    /// entry of a new superblock — and `None` (interpreter fallback) when
    /// it deviates. A deviating grant while a run is active (the context
    /// branched away, or its mask changed under divergence or a merge)
    /// aborts the run; since runs execute nothing ahead of the grant,
    /// aborting is free.
    fn superblock_advance(
        &mut self,
        w: usize,
        slot: usize,
        pc: Pc,
        mask: Mask,
    ) -> Option<(u32, u32)> {
        let set = self.sb.as_ref()?;
        let run = &mut self.warps[w].sb_run[slot];
        if run.next < run.end {
            if pc.index() as u32 == run.next && mask == run.mask {
                let op = run.next - run.start;
                run.next += 1;
                self.stats.superblock_covered += 1;
                return Some((run.index, op));
            }
            *run = SbRun::default();
            self.stats.superblock_aborts += 1;
        }
        let index = set.entry_index_at(pc)?;
        let sb = &set.superblocks()[index as usize];
        *run = SbRun {
            index,
            start: pc.index() as u32,
            next: pc.index() as u32 + 1,
            end: sb.end.index() as u32,
            mask,
        };
        self.stats.superblock_enters += 1;
        self.stats.superblock_covered += 1;
        Some((index, 0))
    }

    /// Executes a covered grant through [`execute_fused`] and applies its
    /// memory effects through the same code path as the interpreter.
    fn execute_covered(
        &mut self,
        w: usize,
        loc: (u32, u32),
        instr: &Instruction,
        mask: Mask,
    ) -> (Mask, Vec<(usize, u32, u32)>) {
        let mut accesses = std::mem::take(&mut self.access_scratch);
        let taken = {
            let set = self.sb.as_ref().expect("covered grant has a plan");
            let fop = &set.superblocks()[loc.0 as usize].ops[loc.1 as usize];
            debug_assert_eq!(fop.op, instr.op, "fused op tracks the program");
            let params = &self.params;
            let warp = &mut self.warps[w];
            let active = mask & warp.populated;
            execute_fused(
                fop,
                &mut warp.regs,
                &warp.info,
                params,
                active,
                &mut accesses,
            )
        };
        self.apply_memory_effects(w, instr, &accesses);
        (taken, accesses)
    }

    /// Functional execution of `instr` for the threads in `mask`: runs the
    /// warp-level SoA execute path ([`execute_warp`]), performs the memory
    /// reads/writes it reported, and returns the taken mask (branches)
    /// plus the access list `(thread, addr, data)`.
    ///
    /// The access list is the SM's persistent scratch buffer, moved out to
    /// satisfy the borrow checker — the caller returns it via
    /// `self.access_scratch = accesses` once timing is done, so no issue
    /// event allocates.
    fn execute_functional(
        &mut self,
        w: usize,
        instr: &Instruction,
        mask: Mask,
    ) -> (Mask, Vec<(usize, u32, u32)>) {
        let mut accesses = std::mem::take(&mut self.access_scratch);
        let params = &self.params;
        let warp = &mut self.warps[w];
        let active = mask & warp.populated;
        let taken = execute_warp(
            instr,
            &mut warp.regs,
            &warp.info,
            params,
            active,
            &mut accesses,
        );
        self.apply_memory_effects(w, instr, &accesses);
        (taken, accesses)
    }

    /// Memory side effects of one executed instruction (loads read,
    /// stores/atomics write), applied from its access list. Shared by the
    /// interpreter and superblock paths so their journal and memory state
    /// are bit-identical by construction.
    fn apply_memory_effects(
        &mut self,
        w: usize,
        instr: &Instruction,
        accesses: &[(usize, u32, u32)],
    ) {
        let block_slot = self.warps[w].block_slot;
        match instr.op {
            Op::Ld => {
                let d = instr.dst.expect("load has dst").index();
                let row = self.warps[w].regs.row_mut(d);
                match instr.space {
                    warpweave_isa::MemSpace::Global => {
                        // Warp loads are mostly uniform or unit-stride, so
                        // cache the current page across lanes — one table
                        // walk per page transition instead of per lane.
                        let mem = &self.mem;
                        let mut key = u32::MAX; // page id of `page`
                        let mut page: Option<&[u32]> = None;
                        for &(t, addr, _) in accesses {
                            let a = addr & !3;
                            if a >> 12 != key {
                                key = a >> 12;
                                page = mem.page(a);
                            }
                            row[t] = page.map_or(0, |p| p[Memory::page_word(a)]);
                        }
                    }
                    warpweave_isa::MemSpace::Shared => {
                        let words = self.shared[block_slot].words();
                        for &(t, addr, _) in accesses {
                            let wi = ((addr & !3) >> 2) as usize;
                            row[t] = words.get(wi).copied().unwrap_or(0);
                        }
                    }
                }
            }
            Op::St => {
                for &(_, addr, data) in accesses {
                    match instr.space {
                        warpweave_isa::MemSpace::Global => {
                            self.mem.write_u32(addr & !3, data);
                            if let Some(j) = &mut self.journal {
                                j.record_store(addr & !3, data);
                            }
                        }
                        warpweave_isa::MemSpace::Shared => {
                            self.shared[block_slot].write_u32(addr & !3, data)
                        }
                    }
                }
            }
            Op::AtomAdd => {
                for &(_, addr, data) in accesses {
                    match instr.space {
                        warpweave_isa::MemSpace::Global => {
                            let old = self.mem.read_u32(addr & !3);
                            self.mem.write_u32(addr & !3, old.wrapping_add(data));
                            if let Some(j) = &mut self.journal {
                                j.record_atomic_add(addr & !3, data);
                            }
                        }
                        warpweave_isa::MemSpace::Shared => {
                            let old = self.shared[block_slot].read_u32(addr & !3);
                            self.shared[block_slot].write_u32(addr & !3, old.wrapping_add(data));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Builds the control-flow transition for an executed instruction.
    fn transition_for(&self, instr: &Instruction, pc: Pc, mask: Mask, taken: Mask) -> Transition {
        match instr.op {
            Op::Bra => Transition::from_branch(
                mask,
                taken,
                instr.target.expect("validated branch"),
                pc.next(),
            ),
            Op::Exit => Transition::Exit,
            Op::Bar => Transition::Barrier(pc.next()),
            _ => Transition::Advance(pc.next()),
        }
    }

    /// Back-end timing for one pick; returns when its scoreboard entry
    /// retires — a known cycle, or a pending-memory marker for global loads
    /// whose transactions await a DRAM grant.
    fn time_pick(
        &mut self,
        _w: usize,
        instr: &Instruction,
        _mask: Mask,
        accesses: &[(usize, u32, u32)],
        dispatch: Dispatch,
    ) -> WbTiming {
        let now = self.cycle;
        let width = self.cfg.warp_width;
        let delivery = self.cfg.delivery_latency as u64;
        let lat = self.cfg.exec_latency as u64 + delivery;
        match dispatch {
            Dispatch::None => WbTiming::At(now + 1),
            Dispatch::Ride(g) => {
                // Shares the primary's waves: same completion profile, no
                // extra port occupancy.
                let waves = self.groups.waves(g, width);
                WbTiming::At(now + waves - 1 + lat)
            }
            Dispatch::Group(g) => match instr.op.unit() {
                UnitClass::Mad | UnitClass::Sfu => {
                    let waves = self.groups.waves(g, width);
                    let last = self.groups.occupy(g, now, waves);
                    WbTiming::At(last + lat)
                }
                UnitClass::Lsu => {
                    let mut addr_list = std::mem::take(&mut self.addr_scratch);
                    addr_list.clear();
                    addr_list.extend(accesses.iter().map(|&(t, a, _)| (t, a & !3)));
                    // The transaction arena is moved out for the borrow
                    // and handed back below — per-transaction lane lists
                    // keep their capacity across issue events.
                    let mut txs = std::mem::take(&mut self.tx_scratch);
                    let mut plan = std::mem::take(&mut self.plan_scratch);
                    let waves = self.groups.waves(g, width);
                    let (port, timing) = match (instr.space, instr.op) {
                        (warpweave_isa::MemSpace::Global, Op::AtomAdd) => {
                            atomic_transactions_into(&addr_list, &mut txs);
                            self.stats.lsu_transactions += txs.len() as u64;
                            if txs.len() > 1 {
                                self.stats.lsu_replays += 1;
                            }
                            // Atomics are fire-and-forget write traffic.
                            plan_global_into(
                                &mut plan,
                                &mut self.l1,
                                &mut self.mshr,
                                now,
                                txs.txs(),
                                true,
                                self.mem_seq,
                            );
                            self.enqueue_dram(&plan.dram_requests);
                            (plan.port_cycles, WbTiming::At(now + 1 + delivery))
                        }
                        (warpweave_isa::MemSpace::Global, op) => {
                            coalesce_into(&addr_list, &mut txs);
                            self.stats.lsu_transactions += txs.len() as u64;
                            if txs.len() > 1 {
                                self.stats.lsu_replays += 1;
                            }
                            let is_store = op == Op::St;
                            plan_global_into(
                                &mut plan,
                                &mut self.l1,
                                &mut self.mshr,
                                now,
                                txs.txs(),
                                is_store,
                                self.mem_seq,
                            );
                            self.stats.mshr_merges += plan.mshr_merges;
                            self.stats.mshr_bypasses += plan.mshr_bypasses;
                            let first_seq = self.enqueue_dram(&plan.dram_requests);
                            if plan.resolves_inline(is_store) {
                                // Stores are write-through (the pipeline
                                // releases at the port drain) and hit-only
                                // loads complete at the L1 latency.
                                (plan.port_cycles, WbTiming::At(plan.inline_ready + delivery))
                            } else {
                                // The warp blocks on a pending-transaction
                                // scoreboard entry until every miss — its
                                // own and any it merged onto — is granted
                                // by the (private or machine-shared)
                                // channel.
                                (
                                    plan.port_cycles,
                                    WbTiming::Mem {
                                        first_seq,
                                        count: plan.dram_requests.len() as u32,
                                        // Moved out only on the (rare) MSHR-
                                        // merge path; the scratch plan keeps
                                        // its capacity otherwise.
                                        merged: std::mem::take(&mut plan.merged_waits),
                                        floor: plan.inline_ready,
                                    },
                                )
                            }
                        }
                        (warpweave_isa::MemSpace::Shared, Op::AtomAdd) => {
                            atomic_transactions_into(&addr_list, &mut txs);
                            self.stats.lsu_transactions += txs.len() as u64;
                            (
                                txs.len().max(1) as u64,
                                WbTiming::At(now + self.cfg.shared_latency as u64 + delivery),
                            )
                        }
                        (warpweave_isa::MemSpace::Shared, _) => {
                            let passes = shared_passes(&addr_list);
                            self.stats.lsu_transactions += passes;
                            if passes > 1 {
                                self.stats.lsu_replays += 1;
                            }
                            (
                                passes,
                                WbTiming::At(
                                    now + passes - 1 + self.cfg.shared_latency as u64 + delivery,
                                ),
                            )
                        }
                    };
                    self.groups.occupy(g, now, port.max(waves));
                    self.addr_scratch = addr_list;
                    self.tx_scratch = txs;
                    self.plan_scratch = plan;
                    timing
                }
                UnitClass::Control => WbTiming::At(now + 1),
            },
        }
    }

    fn thread_exit(&mut self, w: usize, mask: Mask) {
        let warp = &mut self.warps[w];
        let newly = mask - warp.exited;
        warp.exited |= mask;
        let slot = warp.block_slot;
        self.blocks[slot].alive_threads -= newly.count();
        if warp.exited == warp.populated {
            // Transition::Exit removal happens in the divergence structure;
            // keep `alive` true until the scoreboard drains (refill handles
            // it).
        }
    }

    fn release_barriers(&mut self) {
        for b in 0..self.blocks.len() {
            let blk = self.blocks[b];
            if !blk.active || blk.barrier_arrived == 0 {
                continue;
            }
            if blk.barrier_arrived >= blk.alive_threads {
                for w in blk.first_warp..blk.first_warp + blk.num_warps {
                    match &mut self.warps[w].div {
                        Divergence::Stack(s) => s.release_barrier(),
                        Divergence::Frontier(h) => h.release_barrier(),
                    }
                    self.wake_warp(w);
                    self.ctx_dirty |= 1u64 << w;
                }
                self.blocks[b].barrier_arrived = 0;
                self.stats.barrier_releases += 1;
                self.last_progress = self.cycle;
            }
        }
    }

    /// Retires finished blocks and assigns fresh blocks to free slots.
    fn refill_blocks(&mut self) {
        for b in 0..self.blocks.len() {
            let blk = self.blocks[b];
            if blk.active && blk.alive_threads == 0 {
                // Wait for the warps' scoreboards to drain before recycling.
                let drained = (blk.first_warp..blk.first_warp + blk.num_warps)
                    .all(|w| self.warps[w].scoreboard.in_flight() == 0);
                if drained {
                    self.blocks[b].active = false;
                    for w in blk.first_warp..blk.first_warp + blk.num_warps {
                        self.warps[w].alive = false;
                        self.warps[w].ibuf = [None, None];
                        self.wake_warp(w);
                        self.ctx_dirty |= 1u64 << w;
                        self.update_fetchable(w);
                    }
                    self.stats.blocks_completed += 1;
                    self.last_progress = self.cycle;
                }
            }
            if !self.blocks[b].active && (self.next_block as usize) < self.block_ids.len() {
                let block_id = self.block_ids[self.next_block as usize];
                self.next_block += 1;
                self.assign_block(b, block_id);
                self.last_progress = self.cycle;
            }
        }
    }

    fn assign_block(&mut self, slot: usize, block_id: u32) {
        let blk = &mut self.blocks[slot];
        blk.active = true;
        blk.block_id = block_id;
        blk.alive_threads = self.block_threads;
        blk.barrier_arrived = 0;
        let first = blk.first_warp;
        let nwarps = blk.num_warps;
        self.shared[slot].clear();
        let width = self.cfg.warp_width;
        for wi in 0..nwarps {
            let w = first + wi;
            let base_tid = (wi * width) as u32;
            let populated: Mask = (0..width)
                .filter(|&t| base_tid + (t as u32) < self.block_threads)
                .collect();
            let warp = &mut self.warps[w];
            warp.alive = true;
            warp.block_slot = slot;
            warp.exited = Mask::EMPTY;
            warp.populated = populated;
            // Zero-fill the SoA register file and re-seed the launch
            // coordinates in place — no per-launch reallocation.
            warp.regs.reset();
            warp.info.seed(
                base_tid,
                block_id,
                self.block_threads,
                self.grid_blocks,
                w as u32,
                self.cfg.lane_shuffle,
                width,
                self.cfg.num_warps,
            );
            warp.scoreboard =
                Scoreboard::new(self.cfg.scoreboard_mode, self.cfg.scoreboard_entries);
            warp.ibuf = [None, None];
            warp.sb_run = [SbRun::default(); 2];
            self.ctx_dirty |= 1u64 << w;
            self.ready_cand[0].set(self.ready_cand[0].get() | 1u64 << w);
            self.ready_cand[1].set(self.ready_cand[1].get() | 1u64 << w);
            self.ready_now[0].set(self.ready_now[0].get() & !(1u64 << w));
            self.ready_now[1].set(self.ready_now[1].get() & !(1u64 << w));
            self.ready_memo[w] = [Cell::new(ReadyMemo::Stale), Cell::new(ReadyMemo::Stale)];
            warp.div = match self.cfg.divergence {
                crate::config::DivergenceModel::Stack => {
                    Divergence::Stack(PdomStack::new(populated))
                }
                crate::config::DivergenceModel::Frontier => {
                    Divergence::Frontier(FrontierHeap::new(populated))
                }
            };
            self.update_fetchable(w);
        }
    }

    /// Two fetch/decode channels refill instruction-buffer entries
    /// round-robin (1 instruction per channel per cycle — paper §2).
    /// The channel domains — ordered preferences of (parity filter, slot)
    /// — come from the issue policy: dual-pool policies split the pool by
    /// parity, SBI-style policies follow the CPC2 stream on channel 1 but
    /// fall back to the CPC1 stream when no warp has a secondary split to
    /// fetch for (otherwise the channel would idle on convergent code).
    ///
    /// Returns whether any channel filled a buffer entry this cycle.
    fn fetch(&mut self) -> bool {
        // Even/odd warp-id masks for parity-filtered channel domains.
        const EVEN: u64 = 0x5555_5555_5555_5555;
        let mut any = false;
        let nw = self.cfg.num_warps;
        let channels = self.policy().fetch_channels();
        for (ch, prefs) in channels.into_iter().enumerate() {
            let mut advanced = false;
            'pref: for &(parity, slot) in prefs {
                // Alive warps with an empty buffer entry, straight off the
                // maintained candidate mask — the round-robin scan visits
                // only those instead of probing all `nw` warps' ibufs.
                let mut cands = self.fetchable[slot];
                if let Some(p) = parity {
                    cands &= if p == 0 { EVEN } else { !EVEN };
                }
                let rr = self.fetch_rr[ch];
                while cands != 0 {
                    // First candidate at or after the round-robin pointer,
                    // wrapping — identical pick order to the linear scan.
                    let ahead = cands & !((1u64 << rr) - 1);
                    let w = if ahead != 0 {
                        ahead.trailing_zeros() as usize
                    } else {
                        cands.trailing_zeros() as usize
                    };
                    cands &= !(1u64 << w);
                    let Some((pc, _, _)) = self.ctx(w, slot) else {
                        continue;
                    };
                    self.warps[w].ibuf[slot] = Some(IbufEntry {
                        pc,
                        fetched_at: self.cycle,
                        seq: self.next_seq,
                    });
                    self.next_seq += 1;
                    self.wake_warp(w);
                    self.ctx_dirty |= 1u64 << w;
                    self.update_fetchable(w);
                    self.fetch_rr[ch] = (w + 1) % nw;
                    advanced = true;
                    any = true;
                    break 'pref;
                }
            }
            if !advanced {
                self.fetch_rr[ch] = (self.fetch_rr[ch] + 1) % nw;
            }
        }
        any
    }
}
