//! Simulator configuration and the paper's architecture presets (table 2).

use warpweave_mem::{CacheConfig, DramConfig};

use crate::lane::LaneShuffle;
use crate::policy::{PolicyRegistry, SchedOrder};

/// The paper's five issue front-ends, kept as a **thin alias over the
/// policy registry's names**: since the issue paths moved into
/// [`crate::policy`], an [`SmConfig`] selects its front-end by registry
/// name ([`SmConfig::policy`]) and this enum only maps the legacy figure
/// labels onto those names (and back via [`Frontend::from_name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frontend {
    /// Fermi-like baseline: two warp pools (even/odd IDs), one oldest-first
    /// scheduler each, PDOM-stack reconvergence (paper §2, fig. 1).
    Baseline,
    /// Reference design from fig. 7: thread-frontier reconvergence with
    /// 64-wide warps, sequential branch execution, dual pools.
    Warp64,
    /// Simultaneous Branch Interweaving: co-issues the primary and secondary
    /// warp-splits (CPC1/CPC2) of the *same* warp (paper §3).
    Sbi,
    /// Simultaneous Warp Interweaving: a cascaded secondary scheduler fills
    /// the primary instruction's free lanes with another warp (paper §4).
    Swi,
    /// Both techniques combined (fig. 2e).
    SbiSwi,
}

impl Frontend {
    /// The label used in the paper's figures — also the policy's
    /// canonical [`PolicyRegistry`] name.
    pub fn name(self) -> &'static str {
        match self {
            Frontend::Baseline => "Baseline",
            Frontend::Warp64 => "Warp64",
            Frontend::Sbi => "SBI",
            Frontend::Swi => "SWI",
            Frontend::SbiSwi => "SBI+SWI",
        }
    }

    /// Maps a registry name back onto the legacy enum (`None` for
    /// policies outside the paper's five, e.g. `GreedyThenOldest`).
    pub fn from_name(name: &str) -> Option<Frontend> {
        [
            Frontend::Baseline,
            Frontend::Warp64,
            Frontend::Sbi,
            Frontend::Swi,
            Frontend::SbiSwi,
        ]
        .into_iter()
        .find(|f| f.name() == name)
    }

    /// True if this front-end can co-issue a secondary instruction.
    pub fn dual_issue_same_row(self) -> bool {
        matches!(self, Frontend::Sbi | Frontend::Swi | Frontend::SbiSwi)
    }
}

/// How intra-warp divergence is tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivergenceModel {
    /// Per-warp PDOM reconvergence stack (baseline, §2).
    Stack,
    /// Thread-frontier sorted heap: HCT + CCT, min-PC scheduling (§3.4).
    Frontier,
}

/// How register dependences between in-flight instructions are tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoreboardMode {
    /// Register-ID match at warp granularity (baseline, conservative).
    WarpLevel,
    /// Oracle: register match refined by exact thread-mask intersection.
    Exact,
    /// The paper's 3×3 dependency-matrix scheme (§3.4, fig. 6):
    /// register match refined by the transitive closure of the warp-split
    /// divergence/convergence graph. Conservative w.r.t. `Exact`.
    Matrix,
}

/// Associativity of the SWI mask-inclusion lookup (§4, fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Associativity {
    /// CAM: every other warp's buffered instruction is a candidate.
    Full,
    /// Set-associative: warps are partitioned into `num_warps / (k + 1)`
    /// sets by low-order warp-ID bits; the lookup searches only the primary
    /// warp's set, i.e. `k` candidates. `Ways(1)` is the paper's
    /// direct-mapped point.
    Ways(usize),
}

impl Associativity {
    /// Number of candidate entries searched per lookup given the pool size.
    pub fn candidates(self, num_warps: usize) -> usize {
        match self {
            Associativity::Full => num_warps.saturating_sub(1),
            Associativity::Ways(k) => k.min(num_warps.saturating_sub(1)),
        }
    }

    /// Number of sets the warp pool is partitioned into.
    pub fn num_sets(self, num_warps: usize) -> usize {
        match self {
            Associativity::Full => 1,
            Associativity::Ways(k) => (num_warps / (k + 1)).max(1),
        }
    }

    /// The label used in fig. 9.
    pub fn name(self) -> String {
        match self {
            Associativity::Full => "Fully associative".into(),
            Associativity::Ways(1) => "Direct mapped".into(),
            Associativity::Ways(k) => format!("{k}-way"),
        }
    }
}

/// How off-chip DRAM bandwidth is provisioned across the SMs of a
/// [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemModel {
    /// Every SM owns a private channel of [`SmConfig::dram`] bandwidth
    /// (the pre-event-driven model, and the paper's single-SM methodology
    /// where 10 GB/s *is* one SM's share). Grants are computed at issue.
    PrivatePerSm,
    /// All SMs share **one** channel of [`SmConfig::dram`] bandwidth,
    /// arbitrated per epoch with rotating SM-id priority — the
    /// whole-machine bandwidth pool of a real GPU. Requires a
    /// [`crate::Machine`] to drive the epoch barriers; a standalone
    /// [`crate::Sm`] under this model self-grants against a private
    /// channel (identical to [`MemModel::PrivatePerSm`]).
    SharedChannel,
}

impl MemModel {
    /// The label used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            MemModel::PrivatePerSm => "private",
            MemModel::SharedChannel => "shared",
        }
    }
}

/// One back-end SIMD group (paper fig. 1/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupConfig {
    /// Unit class served by the group.
    pub class: warpweave_isa::UnitClass,
    /// Number of lanes.
    pub width: usize,
}

/// Full SM configuration. Build one with the presets ([`SmConfig::baseline`]
/// etc.) and adjust fields as needed.
#[derive(Debug, Clone)]
pub struct SmConfig {
    /// Human-readable label (defaults to the front-end name).
    pub name: String,
    /// Warps resident on the SM.
    pub num_warps: usize,
    /// Threads per warp (32 baseline, 64 for SBI/SWI — table 2).
    pub warp_width: usize,
    /// Issue-policy registry name (see [`PolicyRegistry`]); resolved to a
    /// boxed [`crate::policy::IssuePolicy`] at SM construction.
    pub policy: String,
    /// Scheduling order the policy walks its primary candidates in —
    /// composable across every registered policy.
    pub sched_order: SchedOrder,
    /// Divergence tracking structure.
    pub divergence: DivergenceModel,
    /// Apply SBI reconvergence constraints (`SYNC` suspension, §3.3).
    pub sbi_constraints: bool,
    /// Thread→lane mapping (SWI conflict decorrelation, table 1).
    pub lane_shuffle: LaneShuffle,
    /// SWI mask-lookup associativity (fig. 9).
    pub swi_assoc: Associativity,
    /// Dependence-tracking scheme.
    pub scoreboard_mode: ScoreboardMode,
    /// In-flight instructions tracked per warp (table 2: 6).
    pub scoreboard_entries: usize,
    /// Scheduler latency in cycles (1; 2 for SWI's cascade — table 2).
    pub sched_latency: u32,
    /// Instruction delivery latency (0 baseline; 1 for SBI/SWI — table 2).
    pub delivery_latency: u32,
    /// Execution latency in cycles (table 2: 8).
    pub exec_latency: u32,
    /// Shared-memory access latency in cycles.
    pub shared_latency: u32,
    /// Cold Context Table entries per warp (§5.2 assumes 8).
    pub cct_capacity: usize,
    /// Model the sideband CCT sorter's walk time (degrades to stack order
    /// under pressure, §3.4). `false` keeps the CCT ideally sorted.
    pub model_sideband_sorter: bool,
    /// Skip over provably-idle stretches by jumping the clock to the next
    /// writeback / port-release event instead of ticking cycle-by-cycle.
    /// Produces bit-identical statistics to exhaustive ticking (the
    /// equivalence is asserted by `fast_forward_is_exact` in
    /// `tests/multi_sm_determinism.rs`); disable only when tracing
    /// cycle-by-cycle behaviour in a debugger.
    pub fast_forward: bool,
    /// Back-end SIMD groups.
    pub groups: Vec<GroupConfig>,
    /// L1 data cache geometry/timing.
    pub l1: CacheConfig,
    /// Per-SM miss-status holding registers: same-line misses merge onto
    /// one in-flight transaction instead of multiplying DRAM traffic.
    /// 0 (the default) disables merging — the historical model.
    pub mshr_entries: u32,
    /// Optional machine-shared L2 between the L1s and the DRAM channels
    /// (shared-channel machines only). `None` (the default) goes straight
    /// to DRAM.
    pub l2: Option<CacheConfig>,
    /// Off-chip memory model.
    pub dram: DramConfig,
    /// Whether [`SmConfig::dram`] bandwidth is private per SM or one
    /// machine-shared pool (see [`MemModel`]).
    pub mem_model: MemModel,
    /// Execute straight-line regions through the superblock trace engine
    /// (pre-resolved operands, in-place register rows). Functionally and
    /// timing bit-identical to the per-instruction interpreter — this knob
    /// exists for differential testing and perf attribution, not as a
    /// fidelity trade-off.
    pub superblocks: bool,
    /// Seed for the secondary scheduler's pseudo-random tie-breaking.
    pub seed: u64,
}

impl SmConfig {
    fn common(frontend: Frontend) -> SmConfig {
        use warpweave_isa::UnitClass::*;
        SmConfig {
            name: frontend.name().to_string(),
            num_warps: 16,
            warp_width: 64,
            policy: frontend.name().to_string(),
            sched_order: SchedOrder::OldestFirst,
            divergence: DivergenceModel::Frontier,
            sbi_constraints: false,
            lane_shuffle: LaneShuffle::Identity,
            swi_assoc: Associativity::Full,
            scoreboard_mode: ScoreboardMode::WarpLevel,
            scoreboard_entries: 6,
            sched_latency: 1,
            delivery_latency: 1,
            exec_latency: 8,
            shared_latency: 10,
            cct_capacity: 8,
            model_sideband_sorter: true,
            fast_forward: true,
            groups: vec![
                GroupConfig {
                    class: Mad,
                    width: 64,
                },
                GroupConfig {
                    class: Sfu,
                    width: 8,
                },
                GroupConfig {
                    class: Lsu,
                    width: 32,
                },
            ],
            l1: CacheConfig::paper_l1(),
            mshr_entries: 0,
            l2: None,
            dram: DramConfig::paper(),
            mem_model: MemModel::PrivatePerSm,
            superblocks: true,
            seed: 0xb1e55ed,
        }
    }

    /// The baseline Fermi-like SM: 32 warps × 32 threads, two pools,
    /// PDOM stack (table 2, column 1).
    pub fn baseline() -> SmConfig {
        use warpweave_isa::UnitClass::*;
        SmConfig {
            num_warps: 32,
            warp_width: 32,
            divergence: DivergenceModel::Stack,
            delivery_latency: 0,
            groups: vec![
                GroupConfig {
                    class: Mad,
                    width: 32,
                },
                GroupConfig {
                    class: Mad,
                    width: 32,
                },
                GroupConfig {
                    class: Sfu,
                    width: 8,
                },
                GroupConfig {
                    class: Lsu,
                    width: 32,
                },
            ],
            ..Self::common(Frontend::Baseline)
        }
    }

    /// The fig. 7 reference: thread frontiers with 64-wide warps, sequential
    /// branch execution.
    pub fn warp64() -> SmConfig {
        Self::common(Frontend::Warp64)
    }

    /// Simultaneous Branch Interweaving (table 2, column 2). Reconvergence
    /// constraints default *on*: without them, greedy scheduling lets the
    /// secondary warp-split run ahead indefinitely in loop-carried kernels
    /// (§3.3's desynchronisation), and in this model the redundant fetches
    /// and memory-resource conflicts it causes are strongly visible
    /// (fig. 8a measures both settings).
    pub fn sbi() -> SmConfig {
        SmConfig {
            scoreboard_mode: ScoreboardMode::Matrix,
            sbi_constraints: true,
            ..Self::common(Frontend::Sbi)
        }
    }

    /// Simultaneous Warp Interweaving (table 2, column 3): cascaded
    /// scheduler (2-cycle latency), fully-associative lookup, XorRev lane
    /// shuffling (the paper's most consistent policy).
    pub fn swi() -> SmConfig {
        SmConfig {
            sched_latency: 2,
            lane_shuffle: LaneShuffle::XorRev,
            ..Self::common(Frontend::Swi)
        }
    }

    /// SBI and SWI combined (constraints on, as for [`SmConfig::sbi`]).
    pub fn sbi_swi() -> SmConfig {
        SmConfig {
            scoreboard_mode: ScoreboardMode::Matrix,
            sbi_constraints: true,
            sched_latency: 2,
            lane_shuffle: LaneShuffle::XorRev,
            ..Self::common(Frontend::SbiSwi)
        }
    }

    /// The net-new scheduling-order policy: the baseline dual-pool
    /// machine with **greedy-then-oldest** warp ordering (the pool's
    /// last-issued warp keeps priority while it stays ready). The order
    /// itself is a composable [`SchedOrder`] parameter — this preset is
    /// its registered stand-alone entry point.
    pub fn greedy_then_oldest() -> SmConfig {
        SmConfig {
            name: "GreedyThenOldest".into(),
            policy: "GreedyThenOldest".into(),
            sched_order: SchedOrder::GreedyThenOldest,
            ..Self::baseline()
        }
    }

    /// Builds the preset configuration of any registered issue policy by
    /// name (canonical or alias) — the registry-driven entry point the
    /// sweep/figure CLIs' `--frontend <name>` flag resolves through.
    ///
    /// # Errors
    /// Unknown policy names, listing what is registered.
    pub fn with_policy(name: &str) -> Result<SmConfig, String> {
        PolicyRegistry::resolve_global(name)
            .map(|entry| entry.preset())
            .ok_or_else(|| {
                format!(
                    "unknown issue policy '{name}' (registered: {})",
                    PolicyRegistry::global_names().join(", ")
                )
            })
    }

    /// The five configurations of fig. 7, in presentation order.
    pub fn figure7_set() -> Vec<SmConfig> {
        vec![
            Self::baseline(),
            Self::sbi(),
            Self::swi(),
            Self::sbi_swi(),
            Self::warp64(),
        ]
    }

    /// Renames the configuration (builder style).
    pub fn named(mut self, name: impl Into<String>) -> SmConfig {
        self.name = name.into();
        self
    }

    /// Sets the resident warp count (builder style).
    pub fn with_warps(mut self, n: usize) -> SmConfig {
        self.num_warps = n;
        self
    }

    /// Sets the lane-shuffle policy (builder style).
    pub fn with_lane_shuffle(mut self, s: LaneShuffle) -> SmConfig {
        self.lane_shuffle = s;
        self
    }

    /// Sets the SWI lookup associativity (builder style).
    pub fn with_assoc(mut self, a: Associativity) -> SmConfig {
        self.swi_assoc = a;
        self
    }

    /// Enables/disables SBI reconvergence constraints (builder style).
    pub fn with_constraints(mut self, on: bool) -> SmConfig {
        self.sbi_constraints = on;
        self
    }

    /// Sets the scheduling order (builder style) — composable with every
    /// registered policy.
    pub fn with_sched_order(mut self, order: SchedOrder) -> SmConfig {
        self.sched_order = order;
        self
    }

    /// The legacy [`Frontend`] this configuration's policy name maps to
    /// (`None` for policies outside the paper's five).
    pub fn frontend(&self) -> Option<Frontend> {
        Frontend::from_name(&self.policy)
    }

    /// Enables/disables idle-cycle fast-forwarding (builder style).
    pub fn with_fast_forward(mut self, on: bool) -> SmConfig {
        self.fast_forward = on;
        self
    }

    /// Selects the off-chip bandwidth model (builder style).
    pub fn with_mem_model(mut self, m: MemModel) -> SmConfig {
        self.mem_model = m;
        self
    }

    /// Switches to the machine-shared bandwidth pool (builder style);
    /// shorthand for `with_mem_model(MemModel::SharedChannel)`.
    pub fn with_shared_dram(self) -> SmConfig {
        self.with_mem_model(MemModel::SharedChannel)
    }

    /// Sets the number of address-interleaved DRAM channels a shared-DRAM
    /// machine arbitrates (builder style); each adds a full
    /// `bytes_per_cycle` of bandwidth.
    pub fn with_dram_channels(mut self, n: u32) -> SmConfig {
        self.dram.num_channels = n;
        self
    }

    /// Sets the per-SM MSHR file size (builder style); 0 disables merging.
    pub fn with_mshrs(mut self, entries: u32) -> SmConfig {
        self.mshr_entries = entries;
        self
    }

    /// Enables/disables the superblock trace engine (builder style).
    pub fn with_superblocks(mut self, on: bool) -> SmConfig {
        self.superblocks = on;
        self
    }

    /// Adds a machine-shared L2 between the L1s and the DRAM channels
    /// (builder style; shared-channel machines only).
    pub fn with_l2(mut self, l2: CacheConfig) -> SmConfig {
        self.l2 = Some(l2);
        self
    }

    /// The epoch length (in core cycles) a [`crate::Machine`] uses to
    /// barrier SMs for shared-channel arbitration. Capped at the DRAM
    /// latency so a transaction issued in epoch *k* can never complete
    /// before the barrier that grants it — the property that makes the
    /// epoch-parallel co-simulation exact.
    pub fn mem_epoch_cycles(&self) -> u64 {
        self.dram.latency.clamp(1, 256)
    }

    /// Derives the configuration for SM `sm_id` of a multi-SM machine:
    /// identical architecture, with the tie-breaking RNG re-seeded from
    /// `(seed, sm_id)` so per-SM pseudo-random streams are decorrelated yet
    /// fully deterministic. SM 0 keeps the base seed, so a 1-SM machine
    /// reproduces a standalone [`crate::Sm`] bit-for-bit.
    pub fn for_sm(&self, sm_id: usize) -> SmConfig {
        use rand::rngs::SmallRng;
        use rand::{RngCore, SeedableRng};
        let mut cfg = self.clone();
        if sm_id > 0 {
            cfg.seed = SmallRng::seed_from_u64(cfg.seed.wrapping_add(sm_id as u64)).next_u64();
        }
        cfg
    }

    /// Total SM thread capacity.
    pub fn thread_capacity(&self) -> usize {
        self.num_warps * self.warp_width
    }

    /// Total back-end lanes.
    pub fn total_lanes(&self) -> usize {
        self.groups.iter().map(|g| g.width).sum()
    }

    /// Peak thread-instructions per cycle: issue-bound (2 warps/cycle) or
    /// back-end-bound, whichever is lower. 64 for the baseline, 104 for
    /// SBI/SWI (§5.1).
    pub fn peak_ipc(&self) -> usize {
        (2 * self.warp_width).min(self.total_lanes())
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Describes the first inconsistency found (e.g. SBI over a stack, zero
    /// warps, non-power-of-two width).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_warps == 0 || self.warp_width == 0 {
            return Err("warp pool and width must be non-zero".into());
        }
        if !self.warp_width.is_power_of_two() || self.warp_width > 64 {
            return Err(format!(
                "warp width {} must be a power of two ≤ 64",
                self.warp_width
            ));
        }
        let Some(entry) = PolicyRegistry::resolve_global(&self.policy) else {
            return Err(format!(
                "unknown issue policy '{}' (registered: {})",
                self.policy,
                PolicyRegistry::global_names().join(", ")
            ));
        };
        if entry.needs_frontier && self.divergence != DivergenceModel::Frontier {
            return Err(format!(
                "{} requires thread-frontier divergence tracking",
                entry.name
            ));
        }
        if entry.needs_masked_scoreboard && self.scoreboard_mode == ScoreboardMode::WarpLevel {
            return Err(format!(
                "{} needs mask-aware dependence tracking (Exact or Matrix)",
                entry.name
            ));
        }
        if self.scoreboard_entries == 0 {
            return Err("scoreboard needs at least one entry".into());
        }
        if self.groups.is_empty() {
            return Err("at least one execution group required".into());
        }
        self.l1
            .validate()
            .map_err(|e| format!("l1 geometry: {e}"))?;
        self.dram
            .validate()
            .map_err(|e| format!("dram config: {e}"))?;
        if let Some(l2) = &self.l2 {
            l2.validate().map_err(|e| format!("l2 geometry: {e}"))?;
            if self.mem_model != MemModel::SharedChannel {
                return Err("a shared L2 requires the shared-channel memory model \
                     (it sits between the L1s and the machine's channels)"
                    .into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_bad_memory_geometry() {
        let mut c = SmConfig::baseline();
        c.l1.capacity_bytes = 100; // not a multiple of 6 × 128
        assert!(c.validate().unwrap_err().contains("l1 geometry"));
        let mut c = SmConfig::baseline();
        c.l1.ways = 0;
        assert!(c.validate().unwrap_err().contains("l1 geometry"));
        let mut c = SmConfig::baseline();
        c.dram.num_channels = 0;
        assert!(c.validate().unwrap_err().contains("dram config"));
        let mut c = SmConfig::baseline();
        c.dram.interleave_bytes = 64; // below the 128 B transfer
        assert!(c.validate().unwrap_err().contains("dram config"));
        let mut c = SmConfig::baseline()
            .with_shared_dram()
            .with_l2(CacheConfig {
                capacity_bytes: 384, // 3 sets: not a power of two
                ways: 1,
                line_bytes: 128,
                hit_latency: 10,
            });
        assert!(c.validate().unwrap_err().contains("l2 geometry"));
        c = SmConfig::baseline().with_l2(CacheConfig::paper_l1());
        assert!(c.validate().unwrap_err().contains("shared-channel"));
        c = SmConfig::baseline()
            .with_shared_dram()
            .with_l2(CacheConfig::paper_l1())
            .with_dram_channels(4)
            .with_mshrs(8);
        c.validate().unwrap();
    }

    #[test]
    fn table2_baseline() {
        let c = SmConfig::baseline();
        assert_eq!((c.num_warps, c.warp_width), (32, 32));
        assert_eq!(c.sched_latency, 1);
        assert_eq!(c.delivery_latency, 0);
        assert_eq!(c.exec_latency, 8);
        assert_eq!(c.scoreboard_entries, 6);
        assert_eq!(c.peak_ipc(), 64);
        assert_eq!(c.thread_capacity(), 1024);
        c.validate().unwrap();
    }

    #[test]
    fn table2_sbi_swi() {
        let sbi = SmConfig::sbi();
        assert_eq!((sbi.num_warps, sbi.warp_width), (16, 64));
        assert_eq!(sbi.sched_latency, 1);
        assert_eq!(sbi.delivery_latency, 1);
        assert_eq!(sbi.peak_ipc(), 104);
        sbi.validate().unwrap();

        let swi = SmConfig::swi();
        assert_eq!(swi.sched_latency, 2);
        assert_eq!(swi.delivery_latency, 1);
        assert_eq!(swi.peak_ipc(), 104);
        swi.validate().unwrap();

        let both = SmConfig::sbi_swi();
        assert_eq!(both.scoreboard_mode, ScoreboardMode::Matrix);
        assert_eq!(both.sched_latency, 2);
        both.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_combos() {
        let mut c = SmConfig::sbi();
        c.scoreboard_mode = ScoreboardMode::WarpLevel;
        assert!(c.validate().is_err());

        let mut c = SmConfig::sbi();
        c.divergence = DivergenceModel::Stack;
        assert!(c.validate().is_err());

        let mut c = SmConfig::baseline();
        c.warp_width = 48;
        assert!(c.validate().is_err());
    }

    #[test]
    fn associativity_partitioning_24_warps() {
        // The fig. 9 points with a 24-warp pool.
        assert_eq!(Associativity::Full.candidates(24), 23);
        assert_eq!(Associativity::Ways(11).num_sets(24), 2);
        assert_eq!(Associativity::Ways(11).candidates(24), 11);
        assert_eq!(Associativity::Ways(3).num_sets(24), 6);
        assert_eq!(Associativity::Ways(1).num_sets(24), 12);
        assert_eq!(Associativity::Ways(1).candidates(24), 1);
        assert_eq!(Associativity::Ways(1).name(), "Direct mapped");
    }

    #[test]
    fn with_policy_reproduces_constructors() {
        for (name, ctor) in [
            ("Baseline", SmConfig::baseline as fn() -> SmConfig),
            ("Warp64", SmConfig::warp64),
            ("SBI", SmConfig::sbi),
            ("SWI", SmConfig::swi),
            ("SBI+SWI", SmConfig::sbi_swi),
            ("GreedyThenOldest", SmConfig::greedy_then_oldest),
        ] {
            let via_registry = SmConfig::with_policy(name).unwrap();
            let direct = ctor();
            assert_eq!(via_registry.name, direct.name, "{name}");
            assert_eq!(via_registry.policy, direct.policy, "{name}");
            assert_eq!(via_registry.sched_order, direct.sched_order, "{name}");
            via_registry.validate().unwrap();
        }
        assert!(SmConfig::with_policy("NoSuchPolicy").is_err());
    }

    #[test]
    fn frontend_is_a_thin_alias_over_registry_names() {
        for f in [
            Frontend::Baseline,
            Frontend::Warp64,
            Frontend::Sbi,
            Frontend::Swi,
            Frontend::SbiSwi,
        ] {
            assert_eq!(Frontend::from_name(f.name()), Some(f));
            let cfg = SmConfig::with_policy(f.name()).unwrap();
            assert_eq!(cfg.frontend(), Some(f));
        }
        // The net-new policy has no legacy alias.
        assert_eq!(SmConfig::greedy_then_oldest().frontend(), None);
    }

    #[test]
    fn gto_preset_composes_the_order_parameter() {
        let gto = SmConfig::greedy_then_oldest();
        assert_eq!(gto.sched_order, SchedOrder::GreedyThenOldest);
        // Same machine as the baseline, different walk order.
        let base = SmConfig::baseline();
        assert_eq!(gto.num_warps, base.num_warps);
        assert_eq!(gto.warp_width, base.warp_width);
        assert_eq!(gto.divergence, base.divergence);
        // And the order composes onto any policy.
        let swi = SmConfig::swi().with_sched_order(SchedOrder::GreedyThenOldest);
        swi.validate().unwrap();
        assert_eq!(swi.policy, "SWI");
    }

    #[test]
    fn figure7_set_is_complete() {
        let set = SmConfig::figure7_set();
        assert_eq!(set.len(), 5);
        for c in &set {
            c.validate().unwrap();
        }
    }
}
