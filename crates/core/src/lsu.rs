//! Load-store unit planning: coalesced global access through the L1 and
//! shared-memory bank-conflict modelling.
//!
//! Since the event-driven memory rework the LSU no longer charges DRAM
//! latency inline. [`plan_global`] walks an instruction's transactions
//! through the L1 port and *classifies* them: hits (and stores) resolve to
//! an inline ready cycle, misses become [`warpweave_mem::MemRequest`]
//! issue slots the pipeline enqueues on the (private or machine-shared)
//! DRAM channel. The warp then blocks on its scoreboard entry until every
//! outstanding transaction's grant arrives.

use warpweave_mem::{AccessKind, Cache, MshrFile, MshrLookup, Transaction};

/// The LSU's plan for one global-memory instruction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalPlan {
    /// Cycles the LSU's single 128-byte port is occupied (replay count).
    pub port_cycles: u64,
    /// Completion cycle of the inline part (L1 hits, MSHR merges whose
    /// data is already scheduled to land; the port-release cycle for
    /// stores). For a load with no outstanding requests this is the
    /// writeback time; otherwise it floors the eventual completion.
    pub inline_ready: u64,
    /// DRAM transactions to enqueue: `(issue_cycle, block_addr, is_write)`,
    /// one per unmerged L1 miss (loads) or per transaction (write-through
    /// stores/atomics), in port order.
    pub dram_requests: Vec<(u64, u32, bool)>,
    /// Sequence numbers of *other* warps' in-flight transactions this
    /// instruction merged onto (MSHR hits on pending misses): the warp
    /// additionally blocks until those grants arrive.
    pub merged_waits: Vec<u64>,
    /// Misses merged onto an in-flight transaction (no new DRAM traffic).
    pub mshr_merges: u64,
    /// Misses that found the MSHR file full and issued unmerged.
    pub mshr_bypasses: u64,
}

impl GlobalPlan {
    /// True when the instruction completes without waiting on a DRAM grant
    /// (hit-only load, store, or atomic — write traffic never blocks).
    pub fn resolves_inline(&self, is_store: bool) -> bool {
        is_store || (self.dram_requests.is_empty() && self.merged_waits.is_empty())
    }

    /// Grants this instruction must wait on: its own requests plus merges.
    pub fn wait_count(&self) -> usize {
        self.dram_requests.len() + self.merged_waits.len()
    }
}

/// Plans a list of global-memory transactions starting at `start`: one
/// transaction per cycle through the L1 port; hits complete after the L1
/// latency, misses consult the MSHR file and either merge onto an in-flight
/// fill or are handed back as DRAM requests. `seq_base` is the sequence
/// number the *first* enqueued request will receive (the pipeline's
/// transaction counter), so allocated MSHR entries know their owner.
/// Stores are write-through (every transaction becomes a write request;
/// completion is the port-release cycle — the pipeline does not wait, and
/// the MSHR file is never consulted).
pub fn plan_global(
    l1: &mut Cache,
    mshr: &mut MshrFile,
    start: u64,
    txs: &[Transaction],
    is_store: bool,
    seq_base: u64,
) -> GlobalPlan {
    let mut plan = GlobalPlan::default();
    plan_global_into(&mut plan, l1, mshr, start, txs, is_store, seq_base);
    plan
}

/// [`plan_global`] into a caller-held plan, reusing its request/merge
/// vectors — the pipeline keeps one scratch plan per SM so the per-
/// instruction planning allocates nothing in steady state.
pub fn plan_global_into(
    plan: &mut GlobalPlan,
    l1: &mut Cache,
    mshr: &mut MshrFile,
    start: u64,
    txs: &[Transaction],
    is_store: bool,
    seq_base: u64,
) {
    plan.port_cycles = txs.len().max(1) as u64;
    plan.inline_ready = start;
    plan.dram_requests.clear();
    plan.merged_waits.clear();
    plan.mshr_merges = 0;
    plan.mshr_bypasses = 0;
    for (i, tx) in txs.iter().enumerate() {
        let t_issue = start + i as u64;
        if is_store {
            l1.access_store(tx.block_addr);
            plan.dram_requests.push((t_issue, tx.block_addr, true));
            plan.inline_ready = plan.inline_ready.max(t_issue);
            continue;
        }
        match l1.access_load(tx.block_addr) {
            AccessKind::Hit => {
                plan.inline_ready = plan
                    .inline_ready
                    .max(t_issue + l1.config().hit_latency as u64);
            }
            AccessKind::Miss => {
                let seq = seq_base + plan.dram_requests.len() as u64;
                match mshr.lookup(tx.block_addr, t_issue, seq) {
                    MshrLookup::Allocated => {
                        plan.dram_requests.push((t_issue, tx.block_addr, false));
                    }
                    MshrLookup::Bypassed => {
                        if mshr.is_enabled() {
                            plan.mshr_bypasses += 1;
                        }
                        plan.dram_requests.push((t_issue, tx.block_addr, false));
                    }
                    MshrLookup::MergedPending { owner_seq } => {
                        plan.mshr_merges += 1;
                        if !plan.merged_waits.contains(&owner_seq) {
                            plan.merged_waits.push(owner_seq);
                        }
                    }
                    MshrLookup::MergedReady { ready_cycle } => {
                        plan.mshr_merges += 1;
                        plan.inline_ready = plan.inline_ready.max(ready_cycle);
                    }
                }
            }
        }
    }
}

/// Shared-memory access cost in passes: per 32-lane wave, lanes hitting
/// distinct banks proceed together; lanes hitting different words in the
/// same bank serialise (Fermi-style 32-bank scratchpad; broadcast of the
/// same word is free).
///
/// Contract: `accesses` holds at most one entry per lane (the pipeline
/// emits one access per executing thread) and addresses are expected
/// word-aligned — the caller masks with `& !3`, and conflicts are
/// counted at word granularity (two byte addresses inside one word are
/// one broadcast, exactly the banked-SRAM behaviour). A wave with more
/// than 32 entries (duplicate lanes) panics.
pub fn shared_passes(accesses: &[(usize, u32)]) -> u64 {
    if accesses.is_empty() {
        return 1;
    }
    let mut total = 0u64;
    // Process in 32-lane waves. Lanes are unique (see contract), so a
    // wave holds at most 32 accesses — a stack buffer and one sort
    // replace the per-bank filter passes (hot path: every shared-memory
    // instruction lands here), with identical pass counts for the
    // word-aligned addresses the pipeline emits.
    let max_lane = accesses.iter().map(|&(l, _)| l).max().unwrap_or(0);
    for wave in 0..=(max_lane / 32) {
        let mut words = [0u32; 32];
        let mut n = 0;
        for &(l, a) in accesses {
            if l / 32 == wave {
                debug_assert!(n < 32, "duplicate lanes in shared access list");
                words[n] = a / 4;
                n += 1;
            }
        }
        if n == 0 {
            continue;
        }
        let words = &mut words[..n];
        words.sort_unstable();
        // Distinct words per bank (word % 32); the wave's cost is the
        // worst bank (broadcast of one word counts once).
        let mut per_bank = [0u64; 32];
        let mut worst = 1u64;
        let mut prev = None;
        for &w in words.iter() {
            if prev == Some(w) {
                continue;
            }
            prev = Some(w);
            let b = (w % 32) as usize;
            per_bank[b] += 1;
            worst = worst.max(per_bank[b]);
        }
        total += worst;
    }
    total.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_mem::{CacheConfig, DramConfig, MemRequest, SharedDramChannel};

    fn setup() -> (Cache, SharedDramChannel) {
        (
            Cache::new(CacheConfig::paper_l1()),
            SharedDramChannel::new(DramConfig::paper()),
        )
    }

    fn tx(block: u32) -> Transaction {
        Transaction {
            block_addr: block,
            lanes: vec![0],
        }
    }

    /// Plans with MSHRs disabled — the historical single-miss model.
    fn plan(l1: &mut Cache, start: u64, txs: &[Transaction], is_store: bool) -> GlobalPlan {
        plan_global(l1, &mut MshrFile::disabled(), start, txs, is_store, 0)
    }

    /// Drives a plan's requests through a channel the way the pipeline's
    /// private-mode immediate-grant path does, returning the data-ready
    /// cycle.
    fn resolve(plan: &GlobalPlan, channel: &mut SharedDramChannel) -> u64 {
        let mut ready = plan.inline_ready;
        for (seq, &(issue_cycle, addr, is_write)) in plan.dram_requests.iter().enumerate() {
            let grant = channel.grant(&MemRequest {
                issue_cycle,
                sm_id: 0,
                seq: seq as u64,
                addr,
                is_write,
            });
            if !is_write {
                ready = ready.max(grant.ready_cycle);
            }
        }
        ready
    }

    #[test]
    fn single_hit_latency() {
        let (mut l1, _) = setup();
        l1.access_load(0); // warm
        let plan = plan(&mut l1, 100, &[tx(0)], false);
        assert_eq!(plan.port_cycles, 1);
        assert_eq!(plan.inline_ready, 103);
        assert!(plan.resolves_inline(false));
    }

    #[test]
    fn miss_goes_to_dram() {
        let (mut l1, mut ch) = setup();
        let plan = plan(&mut l1, 0, &[tx(0)], false);
        assert_eq!(plan.dram_requests, vec![(0, 0, false)]);
        assert!(!plan.resolves_inline(false));
        assert_eq!(resolve(&plan, &mut ch), 330);
        assert_eq!(ch.stats().read_transfers, 1);
    }

    #[test]
    fn replays_occupy_port_serially() {
        let (mut l1, _) = setup();
        for b in 0..4 {
            l1.access_load(b * 128);
        }
        let txs: Vec<Transaction> = (0..4).map(|b| tx(b * 128)).collect();
        let plan = plan(&mut l1, 10, &txs, false);
        assert_eq!(plan.port_cycles, 4);
        // Last hit issues at 13, ready at 16.
        assert_eq!(plan.inline_ready, 16);
    }

    #[test]
    fn mixed_hit_miss_takes_the_slower_path() {
        let (mut l1, mut ch) = setup();
        l1.access_load(0); // warm block 0 only
        let plan = plan(&mut l1, 0, &[tx(0), tx(128)], false);
        assert_eq!(plan.dram_requests, vec![(1, 128, false)]);
        assert_eq!(plan.inline_ready, 3, "hit part");
        assert_eq!(resolve(&plan, &mut ch), 331, "miss dominates");
    }

    #[test]
    fn store_does_not_block() {
        let (mut l1, mut ch) = setup();
        let plan = plan(&mut l1, 5, &[tx(0)], true);
        assert_eq!(plan.inline_ready, 5);
        assert!(plan.resolves_inline(true));
        resolve(&plan, &mut ch);
        assert_eq!(ch.stats().write_transfers, 1);
    }

    #[test]
    fn mshr_merges_evicted_inflight_line() {
        // A line misses, is evicted by set pressure, then re-misses while
        // its fill is still in flight: with an MSHR file the re-miss
        // merges onto the owner's seq instead of issuing a second fill.
        let mut l1 = Cache::new(CacheConfig {
            capacity_bytes: 256, // 1 set × 2 ways
            ways: 2,
            line_bytes: 128,
            hit_latency: 3,
        });
        let mut mshr = MshrFile::new(8);
        // Three distinct blocks thrash the single 2-way set.
        let p1 = plan_global(&mut l1, &mut mshr, 0, &[tx(0), tx(256), tx(512)], false, 0);
        assert_eq!(p1.dram_requests.len(), 3);
        assert_eq!(p1.mshr_merges, 0);
        // Block 0 was evicted by block 512 → L1 re-miss, but seq 0's fill
        // is still outstanding: merged, no new request.
        let p2 = plan_global(&mut l1, &mut mshr, 10, &[tx(0)], false, 3);
        assert!(p2.dram_requests.is_empty());
        assert_eq!(p2.merged_waits, vec![0]);
        assert_eq!(p2.mshr_merges, 1);
        assert!(!p2.resolves_inline(false));
        assert_eq!(p2.wait_count(), 1);
        // Once the owner's grant lands, later re-misses resolve inline at
        // the fill's ready cycle. (The p2 re-miss re-allocated block 0's
        // L1 tag, so evict it again first — straight through the cache,
        // which leaves the MSHR file untouched.)
        mshr.on_grant(0, 330);
        l1.access_load(256);
        l1.access_load(512);
        let p3 = plan_global(&mut l1, &mut mshr, 20, &[tx(0)], false, 3);
        assert!(p3.dram_requests.is_empty() && p3.merged_waits.is_empty());
        assert_eq!(p3.inline_ready, 330);
        assert!(p3.resolves_inline(false));
    }

    #[test]
    fn mshr_full_file_bypasses_and_counts() {
        let mut l1 = Cache::new(CacheConfig::paper_l1());
        let mut mshr = MshrFile::new(1);
        let p = plan_global(&mut l1, &mut mshr, 0, &[tx(0), tx(128)], false, 0);
        assert_eq!(p.dram_requests.len(), 2, "bypass still issues");
        assert_eq!(p.mshr_bypasses, 1);
        assert_eq!(p.mshr_merges, 0);
    }

    #[test]
    fn shared_conflict_free() {
        // 32 lanes, consecutive words: one pass.
        let acc: Vec<(usize, u32)> = (0..32).map(|l| (l, l as u32 * 4)).collect();
        assert_eq!(shared_passes(&acc), 1);
    }

    #[test]
    fn shared_two_way_conflict() {
        // Stride 2 words: lanes pair up on 16 banks, 2 distinct words each.
        let acc: Vec<(usize, u32)> = (0..32).map(|l| (l, l as u32 * 8)).collect();
        assert_eq!(shared_passes(&acc), 2);
    }

    #[test]
    fn shared_broadcast_is_free() {
        // Everyone reads word 0: same word, one pass.
        let acc: Vec<(usize, u32)> = (0..32).map(|l| (l, 0)).collect();
        assert_eq!(shared_passes(&acc), 1);
    }

    #[test]
    fn shared_two_waves() {
        // 64 lanes conflict-free = 2 waves.
        let acc: Vec<(usize, u32)> = (0..64).map(|l| (l, l as u32 * 4)).collect();
        assert_eq!(shared_passes(&acc), 2);
    }
}
