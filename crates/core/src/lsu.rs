//! Load-store unit timing: coalesced global access through L1/DRAM and
//! shared-memory bank-conflict modelling.

use warpweave_mem::{AccessKind, Cache, Dram, Transaction};

/// Timing of one memory instruction through the LSU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsuTiming {
    /// Cycles the LSU's single 128-byte port is occupied (replay count).
    pub port_cycles: u64,
    /// Cycle at which load data is available for writeback.
    pub data_ready: u64,
}

/// Times a list of global-memory transactions starting at `start`: one
/// transaction per cycle through the L1 port; hits return after the L1
/// latency, misses after the DRAM round trip. Stores are write-through
/// (traffic accounted, completion immediate for the pipeline).
pub fn time_global(
    l1: &mut Cache,
    dram: &mut Dram,
    start: u64,
    txs: &[Transaction],
    is_store: bool,
) -> LsuTiming {
    let mut ready = start;
    for (i, tx) in txs.iter().enumerate() {
        let t_issue = start + i as u64;
        let done = if is_store {
            l1.access_store(tx.block_addr);
            dram.write(t_issue);
            t_issue // write-through: pipeline does not wait
        } else {
            match l1.access_load(tx.block_addr) {
                AccessKind::Hit => t_issue + l1.config().hit_latency as u64,
                AccessKind::Miss => dram.read(t_issue),
            }
        };
        ready = ready.max(done);
    }
    LsuTiming {
        port_cycles: txs.len().max(1) as u64,
        data_ready: ready,
    }
}

/// Shared-memory access cost in passes: per 32-lane wave, lanes hitting
/// distinct banks proceed together; lanes hitting different words in the
/// same bank serialise (Fermi-style 32-bank scratchpad; broadcast of the
/// same word is free).
pub fn shared_passes(accesses: &[(usize, u32)]) -> u64 {
    if accesses.is_empty() {
        return 1;
    }
    let mut total = 0u64;
    // Process in 32-lane waves.
    let max_lane = accesses.iter().map(|&(l, _)| l).max().unwrap_or(0);
    for wave in 0..=(max_lane / 32) {
        let wave_accesses: Vec<u32> = accesses
            .iter()
            .filter(|&&(l, _)| l / 32 == wave)
            .map(|&(_, a)| a)
            .collect();
        if wave_accesses.is_empty() {
            continue;
        }
        let mut worst = 1u64;
        for bank in 0..32u32 {
            let mut words: Vec<u32> = wave_accesses
                .iter()
                .copied()
                .filter(|a| (a / 4) % 32 == bank)
                .collect();
            words.sort_unstable();
            words.dedup();
            worst = worst.max(words.len() as u64);
        }
        total += worst;
    }
    total.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_mem::{CacheConfig, DramConfig};

    fn setup() -> (Cache, Dram) {
        (
            Cache::new(CacheConfig::paper_l1()),
            Dram::new(DramConfig::paper()),
        )
    }

    fn tx(block: u32) -> Transaction {
        Transaction {
            block_addr: block,
            lanes: vec![0],
        }
    }

    #[test]
    fn single_hit_latency() {
        let (mut l1, mut dram) = setup();
        l1.access_load(0); // warm
        let t = time_global(&mut l1, &mut dram, 100, &[tx(0)], false);
        assert_eq!(t.port_cycles, 1);
        assert_eq!(t.data_ready, 103);
    }

    #[test]
    fn miss_goes_to_dram() {
        let (mut l1, mut dram) = setup();
        let t = time_global(&mut l1, &mut dram, 0, &[tx(0)], false);
        assert_eq!(t.data_ready, 330);
        assert_eq!(dram.stats().read_transfers, 1);
    }

    #[test]
    fn replays_occupy_port_serially() {
        let (mut l1, mut dram) = setup();
        for b in 0..4 {
            l1.access_load(b * 128);
        }
        let txs: Vec<Transaction> = (0..4).map(|b| tx(b * 128)).collect();
        let t = time_global(&mut l1, &mut dram, 10, &txs, false);
        assert_eq!(t.port_cycles, 4);
        // Last hit issues at 13, ready at 16.
        assert_eq!(t.data_ready, 16);
    }

    #[test]
    fn store_does_not_block() {
        let (mut l1, mut dram) = setup();
        let t = time_global(&mut l1, &mut dram, 5, &[tx(0)], true);
        assert_eq!(t.data_ready, 5);
        assert_eq!(dram.stats().write_transfers, 1);
    }

    #[test]
    fn shared_conflict_free() {
        // 32 lanes, consecutive words: one pass.
        let acc: Vec<(usize, u32)> = (0..32).map(|l| (l, l as u32 * 4)).collect();
        assert_eq!(shared_passes(&acc), 1);
    }

    #[test]
    fn shared_two_way_conflict() {
        // Stride 2 words: lanes pair up on 16 banks, 2 distinct words each.
        let acc: Vec<(usize, u32)> = (0..32).map(|l| (l, l as u32 * 8)).collect();
        assert_eq!(shared_passes(&acc), 2);
    }

    #[test]
    fn shared_broadcast_is_free() {
        // Everyone reads word 0: same word, one pass.
        let acc: Vec<(usize, u32)> = (0..32).map(|l| (l, 0)).collect();
        assert_eq!(shared_passes(&acc), 1);
    }

    #[test]
    fn shared_two_waves() {
        // 64 lanes conflict-free = 2 waves.
        let acc: Vec<(usize, u32)> = (0..64).map(|l| (l, l as u32 * 4)).collect();
        assert_eq!(shared_passes(&acc), 2);
    }
}
