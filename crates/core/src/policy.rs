//! Pluggable issue policies: the [`IssuePolicy`] trait, the narrow
//! [`IssueCtx`] view of the SM it schedules through, and the
//! [`PolicyRegistry`] that resolves policy names to boxed factories.
//!
//! The paper's contribution is a family of *front-end issue policies* —
//! the baseline dual-pool scheduler (§2), SBI's CPC1/CPC2 co-issue (§3),
//! SWI's cascaded lane-filling (§4) and their combination. Each lives in a
//! submodule here as an [`IssuePolicy`] implementation; the pipeline only
//! ever sees the trait object. Adding a new policy (dynamic warp resizing,
//! alternative scheduling orders, …) means writing one impl and one
//! registry entry — no pipeline surgery.
//!
//! # The `IssueCtx` contract
//!
//! A policy is asked once per cycle to produce the cycle's picks. It
//! observes the SM **only** through [`IssueCtx`] — ready-checks, slot
//! masks, lane-shuffle translation, scoreboard and issue-port queries —
//! and mutates it **only** through [`IssueCtx::commit`] (plus the
//! dedicated statistic counters and the SM's tie-breaking RNG). A policy
//! must never cache `Ready` entries across cycles without revalidating
//! them (warp-splits move, dependencies appear, buffer entries get
//! squashed); the SWI cascade's pending-primary revalidation shows the
//! pattern.
//!
//! # Determinism clause
//!
//! Every policy must be a **deterministic function of the SM state and
//! the SM's seeded RNG**. No wall-clock, no host addresses, no
//! `HashMap` iteration order, no thread-count dependence: the sweep
//! engine proves bit-identical statistics across host thread counts, and
//! the golden baseline pins every counter with zero tolerance. Randomised
//! tie-breaking is fine — through [`IssueCtx::rand_below`] only.

pub mod baseline;
pub mod sbi;
pub mod swi;

use std::sync::OnceLock;

use warpweave_isa::{Pc, UnitClass};

use crate::config::SmConfig;
use crate::mask::Mask;
use crate::pipeline::Sm;

/// The order in which a scheduler walks its ready candidates.
///
/// This is a *composable* parameter: every built-in policy honours it for
/// its primary pick, so `SmConfig::baseline().with_sched_order(..)` or the
/// registered `GreedyThenOldest` preset both get greedy warp scheduling
/// without a new scheduler implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedOrder {
    /// Strict oldest-first: the ready instruction with the smallest fetch
    /// sequence number wins (the paper's baseline order).
    #[default]
    OldestFirst,
    /// Greedy-then-oldest (GTO): the warp that issued last keeps priority
    /// while it stays ready; when it stalls, fall back to oldest-first.
    /// Improves L1 locality on regular kernels at the cost of fairness.
    GreedyThenOldest,
}

impl SchedOrder {
    /// The label used in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            SchedOrder::OldestFirst => "oldest-first",
            SchedOrder::GreedyThenOldest => "greedy-then-oldest",
        }
    }
}

/// A scheduling candidate: a ready, decoded instruction in some warp's
/// instruction buffer, as reported by [`IssueCtx::ready_check`].
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// Warp index.
    pub warp: usize,
    /// Instruction-buffer slot (0 = primary split, 1 = secondary).
    pub slot: usize,
    /// Program counter of the buffered instruction.
    pub pc: Pc,
    /// Thread-space active mask of the issuing warp-split.
    pub mask: Mask,
    /// Back-end unit class the instruction needs.
    pub unit: UnitClass,
    /// Fetch sequence number (age; smaller = older).
    pub seq: u64,
}

/// How a pick maps onto the back-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dispatch {
    /// Occupies group `idx` normally.
    Group(usize),
    /// Rides the same pass as the primary through group `idx` (disjoint
    /// lanes, no extra occupancy).
    Ride(usize),
    /// Control instruction: no back-end group.
    None,
}

/// One instruction selected for issue this cycle.
#[derive(Debug, Clone, Copy)]
pub struct Pick {
    /// The scheduling candidate being issued.
    pub ready: Ready,
    /// Its back-end dispatch plan.
    pub dispatch: Dispatch,
    /// True when this pick came from the secondary scheduler/front-end
    /// (statistics attribution).
    pub secondary: bool,
}

/// One fetch-channel preference: `(warp-parity filter, ibuf slot)`.
/// `None` parity means "any warp".
pub type FetchPref = (Option<usize>, usize);

/// The per-channel fetch domains a policy wants: two channels, each an
/// ordered preference list tried per cycle (paper §2: two fetch/decode
/// channels, 1 instruction each).
pub type FetchChannels = [&'static [FetchPref]; 2];

/// An issue front-end: asked once per cycle to pick and commit this
/// cycle's instructions through an [`IssueCtx`].
///
/// See the module docs for the `IssueCtx` contract and the determinism
/// clause every implementation must obey.
pub trait IssuePolicy: std::fmt::Debug + Send {
    /// Selects and commits this cycle's picks; returns how many
    /// instructions were issued (0 counts as an idle cycle).
    fn issue(&mut self, ctx: &mut IssueCtx<'_>) -> usize;

    /// The fetch-channel domains this policy wants serviced — this is
    /// what determines which ibuf slots get filled (an SBI-style policy
    /// lists slot 1 on its second channel; see
    /// [`crate::policy::sbi::SbiPolicy`]'s channel table).
    fn fetch_channels(&self) -> FetchChannels;

    /// The ibuf slot of `warp` this policy holds reserved across cycles
    /// (the SWI cascade's pending primary), exempt from revalidation
    /// squashing. `None` for stateless policies.
    fn reserved_slot(&self, warp: usize) -> Option<usize> {
        let _ = warp;
        None
    }

    /// True while the policy carries a pick between cycles (blocks the
    /// idle fast-forward: the machine state is not frozen).
    fn carries_pick(&self) -> bool {
        false
    }

    /// Statistics hook for the idle fast-forward: `skipped` cycles were
    /// provably issue-free and are being jumped over; policies that count
    /// a per-cycle condition (SBI's parked secondaries) replicate it here
    /// so fast-forwarding stays statistics-exact.
    fn account_idle_skip(&mut self, ctx: &mut IssueCtx<'_>, skipped: u64) {
        let _ = (ctx, skipped);
    }
}

/// The narrow, policy-facing view of one [`Sm`].
///
/// Everything an issue policy may observe or mutate goes through here:
/// pure queries (ready checks, slot masks, lane translation, port
/// probes), the dedicated statistic counters, the seeded tie-breaking
/// RNG, and [`IssueCtx::commit`] — never the SM's internals directly.
pub struct IssueCtx<'a> {
    pub(crate) sm: &'a mut Sm,
}

impl IssueCtx<'_> {
    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.sm.cycle()
    }

    /// Resident warps on the SM.
    pub fn num_warps(&self) -> usize {
        self.sm.config().num_warps
    }

    /// Threads per warp.
    pub fn warp_width(&self) -> usize {
        self.sm.config().warp_width
    }

    /// The configured scheduling order (see [`SchedOrder`]).
    pub fn sched_order(&self) -> SchedOrder {
        self.sm.config().sched_order
    }

    /// Number of sets the SWI mask-lookup partitions the warp pool into
    /// (fig. 9 associativity).
    pub fn lookup_sets(&self) -> usize {
        let cfg = self.sm.config();
        cfg.swi_assoc.num_sets(cfg.num_warps)
    }

    /// Whether `(warp, slot)` holds a ready instruction whose execution
    /// group has a free issue port. Pure — no statistics move.
    pub fn ready_check(&self, warp: usize, slot: usize) -> Option<Ready> {
        self.sm.ready_check(warp, slot)
    }

    /// [`IssueCtx::ready_check`] without the free-port requirement (used
    /// to *hold* a pick while its port drains).
    pub fn ready_check_unported(&self, warp: usize, slot: usize) -> Option<Ready> {
        self.sm.ready_check_nogroup(warp, slot)
    }

    /// Warp bitmask for which [`IssueCtx::ready_check`] on `slot` *might*
    /// return `Some` this cycle. A clear bit is a guarantee of not-ready
    /// (a memoized until-wake failure), so scan loops may skip it without
    /// changing any pick; a set bit still needs the check itself.
    pub fn ready_candidates(&self, slot: usize) -> u64 {
        self.sm.ready_candidates(slot)
    }

    /// Warps with a *memoized* ready instruction in `slot` (subset of
    /// [`IssueCtx::ready_candidates`]); pair with
    /// [`IssueCtx::ready_info`] for scan loops that only need age and
    /// unit class.
    pub fn ready_now(&self, slot: usize) -> u64 {
        self.sm.ready_now(slot)
    }

    /// `(seq, unit)` of the memoized ready instruction — only meaningful
    /// while the matching [`IssueCtx::ready_now`] bit is set.
    pub fn ready_info(&self, warp: usize, slot: usize) -> (u64, UnitClass) {
        self.sm.ready_info(warp, slot)
    }

    /// Unit classes with a free issue port this cycle, as a bitmask over
    /// `UnitClass as u8` (Control is always set).
    pub fn free_unit_mask(&self) -> u8 {
        self.sm.free_unit_mask()
    }

    /// `(pc, mask, at_barrier)` of the divergence context feeding ibuf
    /// `slot` of `warp` (`None` when the warp is dead or the slot empty).
    pub fn split_ctx(&self, warp: usize, slot: usize) -> Option<(Pc, Mask, bool)> {
        self.sm.ctx(warp, slot)
    }

    /// The thread-space masks of `warp`'s primary split, secondary split
    /// and cold remainder (all empty under stack divergence).
    pub fn slot_masks(&self, warp: usize) -> [Mask; 3] {
        self.sm.slot_masks(warp)
    }

    /// True if `warp`'s secondary slot is parked by an SBI reconvergence
    /// constraint (§3.3).
    pub fn constraint_suspended(&self, warp: usize) -> bool {
        self.sm.constraint_suspended(warp)
    }

    /// Counts a constraint suspension if that is the reason `warp`'s
    /// secondary slot is not ready (§5.1 statistics).
    pub fn note_constraint_suspension(&mut self, warp: usize) {
        self.sm.note_constraint_suspension(warp);
    }

    /// Adds `n` pre-counted constraint suspensions (the idle fast-forward
    /// replication path).
    pub fn add_constraint_suspensions(&mut self, n: u64) {
        self.sm.stats_mut().constraint_suspensions += n;
    }

    /// Counts one SWI mask-lookup probe.
    pub fn count_lookup_probe(&mut self) {
        self.sm.stats_mut().lookup_probes += 1;
    }

    /// Counts one successful SWI mask-lookup.
    pub fn count_lookup_hit(&mut self) {
        self.sm.stats_mut().lookup_hits += 1;
    }

    /// Counts one cascaded-scheduler conflict squash (§4).
    pub fn count_scheduler_conflict(&mut self) {
        self.sm.stats_mut().scheduler_conflicts += 1;
    }

    /// Dispatch plan for a lone instruction of class `unit` (`None` when
    /// every serving port is busy).
    pub fn plan_dispatch(&self, unit: UnitClass) -> Option<Dispatch> {
        self.sm.plan_dispatch(unit)
    }

    /// Dispatch plan for a secondary co-issued with primary `r1`
    /// (dispatched as `d1`): ride the same group pass for MAD/SFU,
    /// otherwise another free group. Enforces the
    /// one-divergence-per-cycle and single-LSU-port rules.
    pub fn plan_coissue(&self, r1: &Ready, d1: Dispatch, r2: &Ready) -> Option<Dispatch> {
        self.sm.plan_coissue(r1, d1, r2)
    }

    /// Index of a free back-end group serving `unit` this cycle.
    pub fn free_group(&self, unit: UnitClass) -> Option<usize> {
        self.sm.free_group(unit)
    }

    /// True if the instruction at `pc` is a branch (the
    /// one-divergence-per-cycle co-issue rule needs this).
    pub fn is_branch(&self, pc: Pc) -> bool {
        self.sm.is_branch(pc)
    }

    /// Translates a thread-space `mask` of warp `wid` into lane space
    /// through the SM's precomputed lane-permutation table.
    pub fn lanes_of(&self, mask: Mask, wid: usize) -> Mask {
        self.sm.lanes_of(mask, wid)
    }

    /// Deterministic tie-breaking: a pseudo-random index below `n` from
    /// the SM's seeded RNG.
    pub fn rand_below(&mut self, n: usize) -> usize {
        self.sm.rand_below(n)
    }

    /// Issues `picks` (1 or 2 instructions) for `warp`: functional
    /// execution, back-end timing, divergence update, scoreboard event.
    /// Commit order is architecturally meaningful (port occupancy and
    /// DRAM arbitration follow it), so commit in the order picked.
    pub fn commit(&mut self, warp: usize, picks: &[Pick]) {
        self.sm.commit_warp_issue(warp, picks);
    }
}

/// Selects the better primary candidate under oldest-first ordering.
/// Shared by every built-in policy's scan loop.
pub(crate) fn older(best: Option<Ready>, candidate: Ready) -> Option<Ready> {
    match best {
        Some(b) if b.seq <= candidate.seq => Some(b),
        _ => Some(candidate),
    }
}

/// Factory signature the registry stores: builds a fresh policy instance
/// for one SM from its configuration.
pub type PolicyFactory = fn(&SmConfig) -> Box<dyn IssuePolicy>;

/// One registered issue policy: identity, documentation pointers, the
/// architectural requirements [`SmConfig::validate`] enforces, the preset
/// configuration and the boxed factory.
#[derive(Debug, Clone)]
pub struct PolicyInfo {
    /// Canonical registry name (also the preset's config label).
    pub name: &'static str,
    /// Alternate names [`PolicyRegistry::resolve`] accepts.
    pub aliases: &'static [&'static str],
    /// One-line description.
    pub summary: &'static str,
    /// Paper section (or provenance) of the policy.
    pub paper: &'static str,
    /// Requires thread-frontier divergence tracking.
    pub needs_frontier: bool,
    /// Requires a mask-aware scoreboard (`Exact` or `Matrix`).
    pub needs_masked_scoreboard: bool,
    preset: fn() -> SmConfig,
    factory: PolicyFactory,
}

impl PolicyInfo {
    /// A new entry with no aliases and no architectural requirements
    /// (builder-style setters below add them). `preset` returns the
    /// policy's default [`SmConfig`]; `factory` builds a fresh policy
    /// instance per SM. Register the result with
    /// [`PolicyRegistry::register_global`] to make the policy
    /// constructible by name everywhere.
    pub fn new(
        name: &'static str,
        summary: &'static str,
        paper: &'static str,
        preset: fn() -> SmConfig,
        factory: PolicyFactory,
    ) -> PolicyInfo {
        PolicyInfo {
            name,
            aliases: &[],
            summary,
            paper,
            needs_frontier: false,
            needs_masked_scoreboard: false,
            preset,
            factory,
        }
    }

    /// Sets the alternate names [`PolicyRegistry::resolve`] accepts
    /// (builder style).
    pub fn with_aliases(mut self, aliases: &'static [&'static str]) -> PolicyInfo {
        self.aliases = aliases;
        self
    }

    /// Marks the policy as requiring thread-frontier divergence tracking
    /// (builder style; enforced by [`SmConfig::validate`]).
    pub fn requires_frontier(mut self) -> PolicyInfo {
        self.needs_frontier = true;
        self
    }

    /// Marks the policy as requiring a mask-aware scoreboard (builder
    /// style; enforced by [`SmConfig::validate`]).
    pub fn requires_masked_scoreboard(mut self) -> PolicyInfo {
        self.needs_masked_scoreboard = true;
        self
    }

    /// The policy's preset [`SmConfig`] (table-2 parameters).
    pub fn preset(&self) -> SmConfig {
        (self.preset)()
    }

    /// Builds a fresh policy instance for an SM configured by `cfg`.
    pub fn build(&self, cfg: &SmConfig) -> Box<dyn IssuePolicy> {
        (self.factory)(cfg)
    }

    /// True when `name` matches the canonical name or an alias.
    pub fn matches(&self, name: &str) -> bool {
        self.name == name || self.aliases.contains(&name)
    }
}

/// Resolves issue-policy names to boxed factories.
///
/// The **process-wide** registry (seeded with the built-ins, extended
/// via [`PolicyRegistry::register_global`]) is what [`SmConfig`]
/// validation and SM construction resolve against — registering a
/// custom policy there makes it constructible by name everywhere
/// (`SmConfig::with_policy`, `--frontend <name>`, `Sm::new`). Owned
/// registries (via [`PolicyRegistry::with_builtins`] +
/// [`PolicyRegistry::register`]) stay available for staging entries
/// without touching process state.
#[derive(Debug, Clone)]
pub struct PolicyRegistry {
    entries: Vec<PolicyInfo>,
}

/// The process-wide registry cell.
fn global() -> &'static std::sync::RwLock<PolicyRegistry> {
    static GLOBAL: OnceLock<std::sync::RwLock<PolicyRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| std::sync::RwLock::new(PolicyRegistry::with_builtins()))
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> PolicyRegistry {
        PolicyRegistry {
            entries: Vec::new(),
        }
    }

    /// A fresh owned registry pre-populated with the built-in policies.
    pub fn with_builtins() -> PolicyRegistry {
        let mut r = PolicyRegistry::new();
        for e in builtin_entries() {
            r.register(e);
        }
        r
    }

    /// Registers `info` in the **process-wide** registry, replacing any
    /// entry with the same canonical name. After this call the policy is
    /// constructible by name from every entry point
    /// ([`SmConfig::with_policy`], [`SmConfig::validate`],
    /// `Sm`/`Machine` construction, the CLIs' `--frontend`).
    pub fn register_global(info: PolicyInfo) {
        global()
            .write()
            .expect("policy registry lock")
            .register(info);
    }

    /// Resolves a name or alias against the process-wide registry
    /// (a cheap clone of the entry — two `fn` pointers plus statics).
    pub fn resolve_global(name: &str) -> Option<PolicyInfo> {
        global()
            .read()
            .expect("policy registry lock")
            .resolve(name)
            .cloned()
    }

    /// Canonical names registered process-wide, in registration order.
    pub fn global_names() -> Vec<&'static str> {
        global().read().expect("policy registry lock").names()
    }

    /// Registers `info` in this owned registry, replacing any entry with
    /// the same canonical name.
    pub fn register(&mut self, info: PolicyInfo) {
        self.entries.retain(|e| e.name != info.name);
        self.entries.push(info);
    }

    /// Resolves a canonical name or alias to its entry.
    pub fn resolve(&self, name: &str) -> Option<&PolicyInfo> {
        self.entries.iter().find(|e| e.matches(name))
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[PolicyInfo] {
        &self.entries
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        PolicyRegistry::with_builtins()
    }
}

fn builtin_entries() -> Vec<PolicyInfo> {
    vec![
        PolicyInfo {
            name: "Baseline",
            aliases: &["baseline"],
            summary: "Fermi-like dual warp pools, oldest-first, PDOM stack",
            paper: "§2, fig. 1",
            needs_frontier: false,
            needs_masked_scoreboard: false,
            preset: SmConfig::baseline,
            factory: |cfg| Box::new(baseline::DualPoolPolicy::new(cfg.sched_order)),
        },
        PolicyInfo {
            name: "Warp64",
            aliases: &["warp64"],
            summary: "Thread-frontier reference: 64-wide warps, sequential branches",
            paper: "fig. 7 reference",
            needs_frontier: true,
            needs_masked_scoreboard: false,
            preset: SmConfig::warp64,
            factory: |cfg| Box::new(baseline::DualPoolPolicy::new(cfg.sched_order)),
        },
        PolicyInfo {
            name: "SBI",
            aliases: &["sbi"],
            summary: "Simultaneous Branch Interweaving: co-issues CPC1/CPC2 of one warp",
            paper: "§3",
            needs_frontier: true,
            needs_masked_scoreboard: true,
            preset: SmConfig::sbi,
            factory: |cfg| Box::new(sbi::SbiPolicy::new(cfg.sched_order)),
        },
        PolicyInfo {
            name: "SWI",
            aliases: &["swi"],
            summary: "Simultaneous Warp Interweaving: cascaded lane-filling secondary",
            paper: "§4",
            needs_frontier: true,
            needs_masked_scoreboard: false,
            preset: SmConfig::swi,
            factory: |cfg| Box::new(swi::SwiPolicy::solo(cfg.sched_order)),
        },
        PolicyInfo {
            name: "SBI+SWI",
            aliases: &["sbi+swi", "sbi_swi"],
            summary: "Both techniques combined",
            paper: "§3+§4, fig. 2e",
            needs_frontier: true,
            needs_masked_scoreboard: true,
            preset: SmConfig::sbi_swi,
            factory: |cfg| Box::new(swi::SwiPolicy::with_sbi(cfg.sched_order)),
        },
        PolicyInfo {
            name: "GreedyThenOldest",
            aliases: &["GTO", "gto"],
            summary: "Dual-pool scheduler with greedy-then-oldest warp ordering",
            paper: "scheduling-order study (net-new; GTO à la Rogers et al.)",
            needs_frontier: false,
            needs_masked_scoreboard: false,
            preset: SmConfig::greedy_then_oldest,
            factory: |cfg| Box::new(baseline::DualPoolPolicy::new(cfg.sched_order)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_resolve_and_validate() {
        let reg = PolicyRegistry::with_builtins();
        assert_eq!(
            reg.names(),
            vec![
                "Baseline",
                "Warp64",
                "SBI",
                "SWI",
                "SBI+SWI",
                "GreedyThenOldest"
            ]
        );
        for entry in reg.entries() {
            let cfg = entry.preset();
            assert_eq!(cfg.policy, entry.name, "preset policy name mismatch");
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            // The factory builds without panicking.
            let policy = entry.build(&cfg);
            assert!(!policy.fetch_channels()[0].is_empty());
        }
    }

    #[test]
    fn aliases_resolve_to_the_same_entry() {
        let reg = PolicyRegistry::with_builtins();
        assert_eq!(reg.resolve("gto").unwrap().name, "GreedyThenOldest");
        assert_eq!(reg.resolve("GTO").unwrap().name, "GreedyThenOldest");
        assert_eq!(reg.resolve("sbi+swi").unwrap().name, "SBI+SWI");
        assert!(reg.resolve("nope").is_none());
    }

    #[test]
    fn custom_registration_replaces_by_name() {
        let mut reg = PolicyRegistry::with_builtins();
        let n = reg.entries().len();
        let mut custom = reg.resolve("Baseline").unwrap().clone();
        custom.summary = "replaced";
        reg.register(custom);
        assert_eq!(reg.entries().len(), n);
        assert_eq!(reg.resolve("Baseline").unwrap().summary, "replaced");
    }

    #[test]
    fn sched_order_labels() {
        assert_eq!(SchedOrder::OldestFirst.name(), "oldest-first");
        assert_eq!(SchedOrder::GreedyThenOldest.name(), "greedy-then-oldest");
        assert_eq!(SchedOrder::default(), SchedOrder::OldestFirst);
    }
}
