//! Fused execution of superblock micro-ops.
//!
//! [`execute_fused`] is the execute-stage twin of
//! [`execute_warp`](crate::exec::execute_warp) for instructions covered by
//! a [`SuperblockSet`](warpweave_isa::SuperblockSet): same architectural
//! semantics, same access-list contract, same return value — but driven by
//! a pre-resolved [`FusedOp`] instead of a raw `Instruction`, so the hot
//! path skips the interpreter's per-instruction operand snapshot (three
//! 64-lane scratch rows zeroed and filled per op) and instead reads source
//! rows *in place* through the flat SoA storage. Each op dispatches once on
//! the resolved source kinds (register row vs warp-uniform value) and runs
//! a monomorphic lane loop for that combination, computing into a single
//! stack row that is then committed under the execution mask — so a
//! destination aliasing a source reads only pre-instruction state, and the
//! compute loop carries no per-lane branches for the autovectoriser to
//! trip over.
//!
//! **Timing-identity contract:** this module never executes ahead. The
//! pipeline calls [`execute_fused`] once per issue grant, for exactly the
//! instruction the grant would have interpreted; cycles, ports, scoreboard
//! entries and memory transactions are still charged per original
//! instruction by the unchanged timing model. A covered grant is therefore
//! bit-exact *and* cycle-exact with the interpreter, and falling back to
//! [`execute_warp`](crate::exec::execute_warp) mid-superblock is always
//! safe because no state was touched early.

use warpweave_isa::{FusedOp, FusedSrc, Op, SpecialReg};

use crate::exec::{commit_pred, f1, f2, f3};
use crate::launch::WarpInfo;
use crate::mask::Mask;
use crate::regfile::WarpRegFile;

/// A source operand resolved against one warp's launch state: either a
/// flat base index into the register storage or a per-warp constant.
#[derive(Clone, Copy)]
enum Rs<'a> {
    /// Register row: flat base index (`row * width`).
    Base(usize),
    /// Warp-uniform value (immediate, param, uniform special).
    Splat(u32),
    /// `Tid`: `base_tid + t`.
    Affine(u32),
    /// `LaneId`: the shuffle row.
    Lanes(&'a [u32]),
}

#[inline]
fn resolve<'a>(src: FusedSrc, width: usize, info: &'a WarpInfo, params: &[u32]) -> Rs<'a> {
    match src {
        FusedSrc::None => Rs::Splat(0), // never read on validated programs
        FusedSrc::Row(r) => Rs::Base(r as usize * width),
        FusedSrc::Imm(v) => Rs::Splat(v),
        FusedSrc::Param(i) => Rs::Splat(params.get(i as usize).copied().unwrap_or(0)),
        FusedSrc::Special(s) => match info.splat(s) {
            Some(v) => Rs::Splat(v),
            None if s == SpecialReg::Tid => Rs::Affine(info.base_tid),
            None => Rs::Lanes(info.lanes()),
        },
    }
}

/// Lane `t`'s value of a resolved source — the generic (branch-per-lane)
/// path, used only for the rare source kinds (`Affine`, `Lanes`) and
/// combinations the specialised loops below don't cover.
#[inline(always)]
fn val(rs: Rs<'_>, regs: &[u32], t: usize) -> u32 {
    match rs {
        Rs::Base(b) => regs[b + t],
        Rs::Splat(v) => v,
        Rs::Affine(base) => base + t as u32,
        Rs::Lanes(l) => l[t],
    }
}

/// One result row, computed full-width on the stack and committed under
/// the execution mask. Computing disabled lanes is harmless (every op is
/// pure at this point) and keeps the compute loops branch-free.
type OutRow = [u32; 64];

/// Commits a computed row into register `d`: every lane on a full mask
/// (one memcpy), executing lanes only otherwise.
#[inline]
fn commit_row(rf: &mut WarpRegFile, d: usize, out: &OutRow, exec: Mask, full: bool) {
    let row = rf.row_mut(d);
    if full {
        let w = row.len();
        row.copy_from_slice(&out[..w]);
    } else {
        for t in exec.iter() {
            row[t] = out[t];
        }
    }
}

#[inline]
fn apply1(rf: &mut WarpRegFile, d: usize, a: Rs, exec: Mask, full: bool, f: impl Fn(u32) -> u32) {
    let w = rf.width();
    let mut out: OutRow = [0; 64];
    {
        let regs = rf.flat();
        let out = &mut out[..w];
        match a {
            Rs::Base(ab) => {
                for (o, &x) in out.iter_mut().zip(&regs[ab..ab + w]) {
                    *o = f(x);
                }
            }
            Rs::Splat(v) => out.fill(f(v)),
            aa => {
                for (t, o) in out.iter_mut().enumerate() {
                    *o = f(val(aa, regs, t));
                }
            }
        }
    }
    commit_row(rf, d, &out, exec, full);
}

#[inline]
fn apply2(
    rf: &mut WarpRegFile,
    d: usize,
    a: Rs,
    b: Rs,
    exec: Mask,
    full: bool,
    f: impl Fn(u32, u32) -> u32,
) {
    let w = rf.width();
    let mut out: OutRow = [0; 64];
    {
        let regs = rf.flat();
        let out = &mut out[..w];
        match (a, b) {
            (Rs::Base(ab), Rs::Base(bb)) => {
                for ((o, &x), &y) in out.iter_mut().zip(&regs[ab..ab + w]).zip(&regs[bb..bb + w]) {
                    *o = f(x, y);
                }
            }
            (Rs::Base(ab), Rs::Splat(y)) => {
                for (o, &x) in out.iter_mut().zip(&regs[ab..ab + w]) {
                    *o = f(x, y);
                }
            }
            (Rs::Splat(x), Rs::Base(bb)) => {
                for (o, &y) in out.iter_mut().zip(&regs[bb..bb + w]) {
                    *o = f(x, y);
                }
            }
            (aa, bb) => {
                for (t, o) in out.iter_mut().enumerate() {
                    *o = f(val(aa, regs, t), val(bb, regs, t));
                }
            }
        }
    }
    commit_row(rf, d, &out, exec, full);
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn apply3(
    rf: &mut WarpRegFile,
    d: usize,
    a: Rs,
    b: Rs,
    c: Rs,
    exec: Mask,
    full: bool,
    f: impl Fn(u32, u32, u32) -> u32,
) {
    let w = rf.width();
    let mut out: OutRow = [0; 64];
    {
        let regs = rf.flat();
        let out = &mut out[..w];
        match (a, b, c) {
            (Rs::Base(ab), Rs::Base(bb), Rs::Base(cb)) => {
                for (((o, &x), &y), &z) in out
                    .iter_mut()
                    .zip(&regs[ab..ab + w])
                    .zip(&regs[bb..bb + w])
                    .zip(&regs[cb..cb + w])
                {
                    *o = f(x, y, z);
                }
            }
            (Rs::Base(ab), Rs::Base(bb), Rs::Splat(z)) => {
                for ((o, &x), &y) in out.iter_mut().zip(&regs[ab..ab + w]).zip(&regs[bb..bb + w]) {
                    *o = f(x, y, z);
                }
            }
            (Rs::Base(ab), Rs::Splat(y), Rs::Base(cb)) => {
                for ((o, &x), &z) in out.iter_mut().zip(&regs[ab..ab + w]).zip(&regs[cb..cb + w]) {
                    *o = f(x, y, z);
                }
            }
            (Rs::Splat(x), Rs::Base(bb), Rs::Base(cb)) => {
                for ((o, &y), &z) in out.iter_mut().zip(&regs[bb..bb + w]).zip(&regs[cb..cb + w]) {
                    *o = f(x, y, z);
                }
            }
            (aa, bb, cc) => {
                for (t, o) in out.iter_mut().enumerate() {
                    *o = f(val(aa, regs, t), val(bb, regs, t), val(cc, regs, t));
                }
            }
        }
    }
    commit_row(rf, d, &out, exec, full);
}

/// `ISetP`/`FSetP`: evaluates the comparison full-width into a bitmask,
/// masks it to the executing lanes and merges through
/// [`commit_pred`] — same hoisted-dispatch scheme as the value ops.
#[inline]
fn setp(rf: &mut WarpRegFile, pd: usize, a: Rs, b: Rs, exec: Mask, g: impl Fn(u32, u32) -> bool) {
    let w = rf.width();
    let mut res = 0u64;
    {
        let regs = rf.flat();
        match (a, b) {
            (Rs::Base(ab), Rs::Base(bb)) => {
                for (t, (&x, &y)) in regs[ab..ab + w].iter().zip(&regs[bb..bb + w]).enumerate() {
                    res |= (g(x, y) as u64) << t;
                }
            }
            (Rs::Base(ab), Rs::Splat(y)) => {
                for (t, &x) in regs[ab..ab + w].iter().enumerate() {
                    res |= (g(x, y) as u64) << t;
                }
            }
            (Rs::Splat(x), Rs::Base(bb)) => {
                for (t, &y) in regs[bb..bb + w].iter().enumerate() {
                    res |= (g(x, y) as u64) << t;
                }
            }
            (aa, bb) => {
                for t in 0..w {
                    res |= (g(val(aa, regs, t), val(bb, regs, t)) as u64) << t;
                }
            }
        }
    }
    commit_pred(rf, pd, exec, res & exec.bits());
}

/// Executes one fused micro-op for every thread of a warp, committing
/// register/predicate writes in place.
///
/// Same contract as [`execute_warp`](crate::exec::execute_warp): `active`
/// is the issue mask already restricted to populated threads, the guard is
/// folded in as one bitmask operation, memory ops append
/// `(thread, address, data)` triples to `accesses` in ascending thread
/// order without touching memory, and the return value is the taken mask
/// (always empty — branches are never fused). The `exec_differential` and
/// fuzzer differential suites pin this bit-for-bit against both the scalar
/// reference and the SoA interpreter.
pub fn execute_fused(
    fop: &FusedOp,
    rf: &mut WarpRegFile,
    info: &WarpInfo,
    params: &[u32],
    active: Mask,
    accesses: &mut Vec<(usize, u32, u32)>,
) -> Mask {
    accesses.clear();
    let width = rf.width();
    let exec = active & rf.guard_mask(fop.guard);
    if exec.is_empty() {
        return Mask::EMPTY;
    }
    let full = exec == Mask::full(width);

    let a = resolve(fop.srcs[0], width, info, params);
    let b = resolve(fop.srcs[1], width, info, params);
    let c = resolve(fop.srcs[2], width, info, params);
    let d = || fop.dst.expect("validated dst").index();

    match fop.op {
        Op::Mov => apply1(rf, d(), a, exec, full, |x| x),
        Op::IAdd => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).wrapping_add(y as i32) as u32
        }),
        Op::ISub => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).wrapping_sub(y as i32) as u32
        }),
        Op::IMul => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).wrapping_mul(y as i32) as u32
        }),
        Op::IMad => apply3(rf, d(), a, b, c, exec, full, |x, y, z| {
            (x as i32).wrapping_mul(y as i32).wrapping_add(z as i32) as u32
        }),
        Op::IMin => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).min(y as i32) as u32
        }),
        Op::IMax => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).max(y as i32) as u32
        }),
        Op::And => apply2(rf, d(), a, b, exec, full, |x, y| x & y),
        Op::Or => apply2(rf, d(), a, b, exec, full, |x, y| x | y),
        Op::Xor => apply2(rf, d(), a, b, exec, full, |x, y| x ^ y),
        Op::Not => apply1(rf, d(), a, exec, full, |x| !x),
        Op::Shl => apply2(rf, d(), a, b, exec, full, |x, y| x << (y & 31)),
        Op::Shr => apply2(rf, d(), a, b, exec, full, |x, y| x >> (y & 31)),
        Op::Sra => apply2(rf, d(), a, b, exec, full, |x, y| {
            ((x as i32) >> (y & 31)) as u32
        }),
        Op::FAdd => apply2(rf, d(), a, b, exec, full, f2(|x, y| x + y)),
        Op::FSub => apply2(rf, d(), a, b, exec, full, f2(|x, y| x - y)),
        Op::FMul => apply2(rf, d(), a, b, exec, full, f2(|x, y| x * y)),
        Op::FFma => apply3(rf, d(), a, b, c, exec, full, f3(|x, y, z| x.mul_add(y, z))),
        Op::FMin => apply2(rf, d(), a, b, exec, full, f2(f32::min)),
        Op::FMax => apply2(rf, d(), a, b, exec, full, f2(f32::max)),
        Op::I2F => apply1(rf, d(), a, exec, full, |x| (x as i32 as f32).to_bits()),
        Op::F2I => apply1(rf, d(), a, exec, full, |x| f32::from_bits(x) as i32 as u32),
        Op::ISetP => {
            let cmp = fop.cmp.expect("validated cmp");
            let pd = fop.pdst.expect("validated pdst").index();
            setp(rf, pd, a, b, exec, |x, y| cmp.eval_i32(x as i32, y as i32));
        }
        Op::FSetP => {
            let cmp = fop.cmp.expect("validated cmp");
            let pd = fop.pdst.expect("validated pdst").index();
            setp(rf, pd, a, b, exec, |x, y| {
                cmp.eval_f32(f32::from_bits(x), f32::from_bits(y))
            });
        }
        Op::Sel => {
            let pm = rf.pred_bits(fop.sel_pred.expect("validated sel_pred").index());
            let mut out: OutRow = [0; 64];
            {
                let regs = rf.flat();
                for (t, o) in out[..width].iter_mut().enumerate() {
                    *o = if (pm >> t) & 1 == 1 {
                        val(a, regs, t)
                    } else {
                        val(b, regs, t)
                    };
                }
            }
            commit_row(rf, d(), &out, exec, full);
        }
        Op::Rcp => apply1(rf, d(), a, exec, full, f1(|x| 1.0 / x)),
        Op::Sqrt => apply1(rf, d(), a, exec, full, f1(f32::sqrt)),
        Op::Rsqrt => apply1(rf, d(), a, exec, full, f1(|x| 1.0 / x.sqrt())),
        Op::Sin => apply1(rf, d(), a, exec, full, f1(f32::sin)),
        Op::Cos => apply1(rf, d(), a, exec, full, f1(f32::cos)),
        Op::Ex2 => apply1(rf, d(), a, exec, full, f1(f32::exp2)),
        Op::Lg2 => apply1(rf, d(), a, exec, full, f1(f32::log2)),
        Op::Ld => {
            let off = fop.offset as u32;
            let regs = rf.flat();
            match a {
                Rs::Base(ab) => {
                    let ar = &regs[ab..ab + width];
                    for t in exec.iter() {
                        accesses.push((t, ar[t].wrapping_add(off), 0));
                    }
                }
                aa => {
                    for t in exec.iter() {
                        accesses.push((t, val(aa, regs, t).wrapping_add(off), 0));
                    }
                }
            }
        }
        Op::St | Op::AtomAdd => {
            let off = fop.offset as u32;
            let regs = rf.flat();
            match (a, b) {
                (Rs::Base(ab), Rs::Base(bb)) => {
                    let ar = &regs[ab..ab + width];
                    let br = &regs[bb..bb + width];
                    for t in exec.iter() {
                        accesses.push((t, ar[t].wrapping_add(off), br[t]));
                    }
                }
                (aa, bb) => {
                    for t in exec.iter() {
                        accesses.push((t, val(aa, regs, t).wrapping_add(off), val(bb, regs, t)));
                    }
                }
            }
        }
        Op::Nop => {}
        Op::Bra | Op::Sync | Op::Bar | Op::Exit => {
            unreachable!("control ops are never fused into superblocks")
        }
    }
    Mask::EMPTY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_warp;
    use warpweave_isa::{p, r, CmpOp, KernelBuilder, Program, SuperblockSet};

    fn info(width: usize) -> WarpInfo {
        let mut i = WarpInfo::new(width);
        i.seed(64, 3, 256, 16, 1, crate::LaneShuffle::Identity, width, 16);
        i
    }

    fn build(buildfn: impl FnOnce(&mut KernelBuilder)) -> (Program, SuperblockSet) {
        let mut k = KernelBuilder::new("t");
        buildfn(&mut k);
        k.exit();
        let prog = k.build().unwrap();
        let set = SuperblockSet::build(&prog);
        (prog, set)
    }

    /// Fused execution of a whole covered region matches the interpreter
    /// op-for-op on the same initial state, including in-place aliasing
    /// (r1 = r1 + r2) and partial masks.
    #[test]
    fn fused_matches_interpreter_with_aliasing_and_partial_mask() {
        let width = 8;
        let (prog, set) = build(|k| {
            k.mov(r(1), warpweave_isa::SpecialReg::Tid);
            k.iadd(r(1), r(1), r(1)); // dst aliases both sources
            k.imad(r(2), r(1), 3i32, r(1));
            k.isetp(p(1), CmpOp::Gt, r(2), 10i32);
            k.sel(r(3), p(1), r(2), 0i32);
            k.ld(r(4), r(3), 4);
            k.st(r(3), 8, r(2));
        });
        let sb = &set.superblocks()[0];
        assert_eq!(sb.len(), 7);

        let wi = info(width);
        let params: Vec<u32> = vec![5, 9];
        let mut rf_i = WarpRegFile::new(width);
        let mut rf_f = WarpRegFile::new(width);
        for t in 0..width {
            for ri in 0..8 {
                rf_i.set_reg(t, ri, (t * 17 + ri) as u32);
                rf_f.set_reg(t, ri, (t * 17 + ri) as u32);
            }
        }
        let active = Mask::from_bits(0b1011_0110);
        let (mut acc_i, mut acc_f) = (Vec::new(), Vec::new());
        for (j, fop) in sb.ops.iter().enumerate() {
            let instr = &prog.instructions()[j];
            let ti = execute_warp(instr, &mut rf_i, &wi, &params, active, &mut acc_i);
            let tf = execute_fused(fop, &mut rf_f, &wi, &params, active, &mut acc_f);
            assert_eq!(ti, tf, "taken mask of op {j}");
            assert_eq!(acc_i, acc_f, "access list of op {j}");
            assert_eq!(rf_i, rf_f, "register state after op {j}");
        }
    }

    /// Params and warp-uniform specials resolve identically to the
    /// interpreter's splats.
    #[test]
    fn splats_match_interpreter() {
        let width = 4;
        let (prog, set) = build(|k| {
            k.mov(r(0), warpweave_isa::Operand::Param(1));
            k.iadd(r(1), r(0), warpweave_isa::SpecialReg::CtaId);
            k.imul(r(2), r(1), warpweave_isa::Operand::Param(7)); // missing → 0
        });
        let sb = &set.superblocks()[0];
        let wi = info(width);
        let params = vec![11, 22];
        let mut rf_i = WarpRegFile::new(width);
        let mut rf_f = WarpRegFile::new(width);
        let active = Mask::full(width);
        let (mut acc_i, mut acc_f) = (Vec::new(), Vec::new());
        for (j, fop) in sb.ops.iter().enumerate() {
            execute_warp(
                &prog.instructions()[j],
                &mut rf_i,
                &wi,
                &params,
                active,
                &mut acc_i,
            );
            execute_fused(fop, &mut rf_f, &wi, &params, active, &mut acc_f);
        }
        assert_eq!(rf_i, rf_f);
        assert_eq!(rf_f.reg(0, 0), 22);
        assert_eq!(rf_f.reg(0, 2), 0);
    }

    /// A guarded fused op executes only the guard-passing lanes.
    #[test]
    fn guard_folds_into_exec_mask() {
        let width = 4;
        let (prog, set) = build(|k| {
            k.guard_t(p(0)).mov(r(0), 7i32);
            k.mov(r(1), 1i32);
        });
        let sb = &set.superblocks()[0];
        let wi = info(width);
        let mut rf_i = WarpRegFile::new(width);
        let mut rf_f = WarpRegFile::new(width);
        rf_i.set_pred_bits(0, 0b0101);
        rf_f.set_pred_bits(0, 0b0101);
        let active = Mask::full(width);
        let (mut acc_i, mut acc_f) = (Vec::new(), Vec::new());
        for (j, fop) in sb.ops.iter().enumerate() {
            execute_warp(
                &prog.instructions()[j],
                &mut rf_i,
                &wi,
                &[],
                active,
                &mut acc_i,
            );
            execute_fused(fop, &mut rf_f, &wi, &[], active, &mut acc_f);
        }
        assert_eq!(rf_i, rf_f);
        assert_eq!(rf_f.reg(0, 0), 7);
        assert_eq!(rf_f.reg(1, 0), 0); // guard failed on lane 1
    }
}
