//! Static lane-shuffling policies (paper §4, table 1).
//!
//! Many kernels exhibit *correlated* imbalance: thread 0 of every warp gets
//! the most work, so the free-lane gaps of different warps line up and SWI
//! finds no non-overlapping partner. Lane shuffling permutes the
//! thread→lane mapping per warp — "it requires no additional hardware nor
//! data migration" — so gaps of different warps fall on different lanes.
//! Memory coalescing is unaffected: addresses depend on thread IDs, not
//! lanes.

use crate::mask::Mask;

/// The five static thread→lane mappings of table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneShuffle {
    /// `lane = tid` (the paper's "Linear" reference).
    #[default]
    Identity,
    /// `lane = n - tid` for odd warps, `tid` otherwise (n = width-1).
    MirrorOdd,
    /// `lane = n - tid` for warps in the upper half of the pool.
    MirrorHalf,
    /// `lane = tid ⊕ wid` (warp id folded into the lane-index bits).
    Xor,
    /// `lane = tid ⊕ bitrev(wid)` — bit-reversed warp id; the paper's most
    /// consistent policy.
    XorRev,
}

impl LaneShuffle {
    /// All policies, in table 1 order.
    pub const ALL: [LaneShuffle; 5] = [
        LaneShuffle::Identity,
        LaneShuffle::MirrorOdd,
        LaneShuffle::MirrorHalf,
        LaneShuffle::Xor,
        LaneShuffle::XorRev,
    ];

    /// The paper's label for this policy.
    pub fn name(self) -> &'static str {
        match self {
            LaneShuffle::Identity => "Identity",
            LaneShuffle::MirrorOdd => "MirrorOdd",
            LaneShuffle::MirrorHalf => "MirrorHalf",
            LaneShuffle::Xor => "Xor",
            LaneShuffle::XorRev => "XorRev",
        }
    }

    /// Maps thread-in-warp `tid` of warp `wid` to a physical lane.
    ///
    /// `width` must be a power of two; `num_warps` is the pool size `m` used
    /// by `MirrorHalf`. The mapping is a bijection on `0..width` for every
    /// `wid`.
    pub fn lane(self, tid: usize, wid: usize, width: usize, num_warps: usize) -> usize {
        debug_assert!(width.is_power_of_two());
        debug_assert!(tid < width);
        let n = width - 1;
        match self {
            LaneShuffle::Identity => tid,
            LaneShuffle::MirrorOdd => {
                if wid % 2 == 1 {
                    n - tid
                } else {
                    tid
                }
            }
            LaneShuffle::MirrorHalf => {
                if wid > num_warps / 2 {
                    n - tid
                } else {
                    tid
                }
            }
            LaneShuffle::Xor => tid ^ (wid & n),
            LaneShuffle::XorRev => tid ^ (bitrev(wid, width.trailing_zeros()) & n),
        }
    }

    /// Writes the thread→lane mapping of warp `wid` into `out` (index =
    /// thread-in-warp, value = physical lane), reusing the allocation.
    /// This is the SoA row the launch path seeds into
    /// [`crate::launch::WarpInfo`] and `execute_warp` reads when it
    /// materialises the `laneid` special register.
    pub fn fill_lanes(self, out: &mut Vec<u32>, wid: usize, width: usize, num_warps: usize) {
        out.clear();
        out.extend((0..width).map(|t| self.lane(t, wid, width, num_warps) as u32));
    }

    /// Translates a thread-space mask into lane space for warp `wid`.
    ///
    /// This is the uncached reference: it recomputes the permutation per
    /// bit (including `bitrev` for [`LaneShuffle::XorRev`]). The pipeline
    /// uses the precomputed [`LaneTable`] instead — the SWI mask lookup
    /// translates a mask per probed candidate per cycle, which made the
    /// recomputation a measurable hot path.
    pub fn mask_to_lanes(self, mask: Mask, wid: usize, width: usize, num_warps: usize) -> Mask {
        if self == LaneShuffle::Identity {
            return mask; // hot path
        }
        mask.iter()
            .map(|tid| self.lane(tid, wid, width, num_warps))
            .collect()
    }

    /// Precomputes the per-warp thread→lane permutation table for a pool
    /// of `num_warps` warps of `width` threads (the SoA form of this
    /// policy — one row per warp, built once at SM construction).
    pub fn table(self, width: usize, num_warps: usize) -> LaneTable {
        let identity = self == LaneShuffle::Identity;
        let mut perms = Vec::new();
        if !identity {
            perms.reserve(width * num_warps);
            for wid in 0..num_warps {
                for tid in 0..width {
                    perms.push(self.lane(tid, wid, width, num_warps) as u16);
                }
            }
        }
        LaneTable {
            identity,
            width,
            perms,
        }
    }
}

/// A precomputed per-warp lane-permutation table (`perms[wid][tid] =
/// lane`), replacing the bit-by-bit permute of
/// [`LaneShuffle::mask_to_lanes`] on the pipeline's hot paths. The
/// translation is exactly equivalent for every policy (asserted by
/// `table_matches_reference` below); identity shuffles skip the table
/// entirely.
#[derive(Debug, Clone)]
pub struct LaneTable {
    identity: bool,
    width: usize,
    /// Flattened `num_warps × width` permutation rows (empty for
    /// identity).
    perms: Vec<u16>,
}

impl LaneTable {
    /// Translates a thread-space `mask` of warp `wid` into lane space.
    pub fn mask_to_lanes(&self, mask: Mask, wid: usize) -> Mask {
        if self.identity {
            return mask;
        }
        let row = &self.perms[wid * self.width..(wid + 1) * self.width];
        mask.iter().map(|tid| row[tid] as usize).collect()
    }
}

/// Reverses the low `bits` bits of `v` (higher bits are discarded).
pub fn bitrev(v: usize, bits: u32) -> usize {
    let mut out = 0usize;
    for i in 0..bits {
        if (v >> i) & 1 == 1 {
            out |= 1 << (bits - 1 - i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitrev_examples() {
        assert_eq!(bitrev(0b001, 3), 0b100);
        assert_eq!(bitrev(0b110, 3), 0b011);
        assert_eq!(bitrev(0b1, 1), 0b1);
        assert_eq!(bitrev(0b1011, 4), 0b1101);
    }

    #[test]
    fn all_policies_are_bijections() {
        for policy in LaneShuffle::ALL {
            for width in [4usize, 32, 64] {
                for wid in 0..16 {
                    let mut seen = vec![false; width];
                    for tid in 0..width {
                        let l = policy.lane(tid, wid, width, 16);
                        assert!(l < width, "{policy:?} out of range");
                        assert!(!seen[l], "{policy:?} not injective (w={wid})");
                        seen[l] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn identity_is_noop() {
        let m = Mask::from_bits(0b1011);
        assert_eq!(LaneShuffle::Identity.mask_to_lanes(m, 7, 32, 16), m);
    }

    #[test]
    fn mirror_odd_flips_odd_warps_only() {
        let p = LaneShuffle::MirrorOdd;
        assert_eq!(p.lane(0, 0, 4, 16), 0);
        assert_eq!(p.lane(0, 1, 4, 16), 3);
        assert_eq!(p.lane(3, 1, 4, 16), 0);
    }

    #[test]
    fn xor_decorrelates_leader_lane() {
        // Thread 0 of each warp lands on lane wid under Xor — distinct lanes
        // for warps 0..width, which is exactly the decorrelation SWI needs.
        let p = LaneShuffle::Xor;
        let lanes: Vec<usize> = (0..4).map(|w| p.lane(0, w, 4, 16)).collect();
        assert_eq!(lanes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn xorrev_differs_from_xor_for_wide_pools() {
        let a = LaneShuffle::Xor.lane(0, 1, 32, 16);
        let b = LaneShuffle::XorRev.lane(0, 1, 32, 16);
        assert_eq!(a, 1);
        assert_eq!(b, 16); // bitrev(1) over 5 bits = 0b10000
    }

    #[test]
    fn mask_translation_preserves_population() {
        for policy in LaneShuffle::ALL {
            let m = Mask::from_bits(0xdead_beef);
            let t = policy.mask_to_lanes(m, 5, 32, 16);
            assert_eq!(m.count(), t.count());
        }
    }

    #[test]
    fn table_matches_reference() {
        // The precomputed table must translate every mask exactly as the
        // per-bit reference, for every policy, width and warp.
        for policy in LaneShuffle::ALL {
            for (width, num_warps) in [(4usize, 16usize), (32, 16), (64, 24)] {
                let table = policy.table(width, num_warps);
                for wid in 0..num_warps {
                    for bits in [0u64, 1, 0b1011, 0xdead_beef, u64::MAX] {
                        let m = Mask::from_bits(bits) & Mask::full(width);
                        assert_eq!(
                            table.mask_to_lanes(m, wid),
                            policy.mask_to_lanes(m, wid, width, num_warps),
                            "{policy:?} w={wid} width={width}"
                        );
                    }
                }
            }
        }
    }
}
