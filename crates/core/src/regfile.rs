//! Struct-of-arrays warp register file.
//!
//! The per-thread layout ([`crate::exec::ThreadRegs`], one heap `Vec<u32>`
//! per lane) scattered every architectural register across `width`
//! allocations, so the execute path touched `width` cache lines per operand
//! and the compiler could not vectorise anything. [`WarpRegFile`] stores the
//! same state register-major instead:
//!
//! ```text
//!            lane 0   lane 1   lane 2  …  lane w-1
//! r0      [  u32   |  u32   |  u32   | … |  u32  ]   ← one contiguous row
//! r1      [  u32   |  u32   |  u32   | … |  u32  ]
//! …
//! r63     [  u32   |  u32   |  u32   | … |  u32  ]
//! ```
//!
//! One flat `Vec<u32>` of `NUM_REGS × width` words: register `r` of lane `t`
//! lives at index `r * width + t`, so a warp-level operation reads and
//! writes contiguous rows the compiler can autovectorise. Predicates are
//! bitmasks — `preds[p]` holds predicate `p` of every lane, bit `t` = lane
//! `t` — so a guard evaluates as a single AND/ANDN against the active mask
//! instead of `width` boolean loads (warps go up to 64 wide, hence `u64`
//! rows, matching [`Mask`]).
//!
//! The scalar per-thread path in [`crate::exec`] is retained purely as the
//! differential-test reference; the pipeline executes through
//! [`crate::exec::execute_warp`] on this layout.

use warpweave_isa::{Guard, NUM_PREDS, NUM_REGS};

use crate::mask::Mask;

/// Struct-of-arrays architectural state of one warp: `NUM_REGS` lane-
/// contiguous register rows plus `NUM_PREDS` predicate bitmasks.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpRegFile {
    width: usize,
    /// Register-major storage: row `r` is `regs[r*width .. (r+1)*width]`.
    regs: Vec<u32>,
    /// Predicate bitmasks: bit `t` of `preds[p]` is predicate `p` of lane
    /// `t`. Bits at and above `width` are always zero.
    preds: [u64; NUM_PREDS],
}

impl WarpRegFile {
    /// A zero-initialised register file for a `width`-lane warp.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 64 (the [`Mask`] limit).
    pub fn new(width: usize) -> WarpRegFile {
        assert!(width > 0 && width <= 64, "warp width {width} out of range");
        WarpRegFile {
            width,
            regs: vec![0; NUM_REGS * width],
            preds: [0; NUM_PREDS],
        }
    }

    /// The warp width this file was sized for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Zero-fills every register row and predicate bitmask **in place** —
    /// the block-launch reset, reusing the existing allocation.
    pub fn reset(&mut self) {
        self.regs.fill(0);
        self.preds = [0; NUM_PREDS];
    }

    /// Register row `r` across all lanes (lane `t` at index `t`).
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        &self.regs[r * self.width..(r + 1) * self.width]
    }

    /// Mutable register row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u32] {
        &mut self.regs[r * self.width..(r + 1) * self.width]
    }

    /// The whole register-major storage as one flat slice (row `r` spans
    /// `r*width .. (r+1)*width`). The superblock fast path reads source
    /// rows through this without snapshotting them.
    #[inline]
    pub(crate) fn flat(&self) -> &[u32] {
        &self.regs
    }

    /// Reads register `r` of lane `t`.
    #[inline]
    pub fn reg(&self, t: usize, r: usize) -> u32 {
        self.regs[r * self.width + t]
    }

    /// Writes register `r` of lane `t`.
    #[inline]
    pub fn set_reg(&mut self, t: usize, r: usize, v: u32) {
        self.regs[r * self.width + t] = v;
    }

    /// The bitmask of predicate `p` across all lanes.
    #[inline]
    pub fn pred_bits(&self, p: usize) -> u64 {
        self.preds[p]
    }

    /// Replaces the bitmask of predicate `p`. Bits at and above the warp
    /// width must be zero (callers mask writes with the active mask).
    #[inline]
    pub fn set_pred_bits(&mut self, p: usize, bits: u64) {
        debug_assert_eq!(
            bits & !Mask::full(self.width).bits(),
            0,
            "predicate bits beyond warp width"
        );
        self.preds[p] = bits;
    }

    /// Reads predicate `p` of lane `t`.
    #[inline]
    pub fn pred(&self, t: usize, p: usize) -> bool {
        (self.preds[p] >> t) & 1 == 1
    }

    /// Writes predicate `p` of lane `t`.
    #[inline]
    pub fn set_pred(&mut self, t: usize, p: usize, v: bool) {
        if v {
            self.preds[p] |= 1 << t;
        } else {
            self.preds[p] &= !(1 << t);
        }
    }

    /// The lanes whose state passes `guard`: the full warp for an
    /// unguarded instruction, otherwise one AND (sense `@p`) or ANDN
    /// (sense `@!p`) against the predicate bitmask.
    #[inline]
    pub fn guard_mask(&self, guard: Option<Guard>) -> Mask {
        match guard {
            None => Mask::full(self.width),
            Some(g) => {
                let bits = self.preds[g.pred.index()];
                if g.sense {
                    Mask::from_bits(bits)
                } else {
                    Mask::full(self.width) - Mask::from_bits(bits)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_isa::p;

    #[test]
    fn rows_are_lane_contiguous() {
        let mut rf = WarpRegFile::new(8);
        for t in 0..8 {
            rf.set_reg(t, 3, 100 + t as u32);
        }
        assert_eq!(rf.row(3), &[100, 101, 102, 103, 104, 105, 106, 107]);
        assert_eq!(rf.reg(5, 3), 105);
        assert!(rf.row(2).iter().all(|&v| v == 0));
    }

    #[test]
    fn predicate_bitmask_roundtrip() {
        let mut rf = WarpRegFile::new(32);
        rf.set_pred(0, 1, true);
        rf.set_pred(7, 1, true);
        assert_eq!(rf.pred_bits(1), 0b1000_0001);
        assert!(rf.pred(7, 1));
        rf.set_pred(7, 1, false);
        assert_eq!(rf.pred_bits(1), 1);
    }

    #[test]
    fn guard_mask_and_andn() {
        let mut rf = WarpRegFile::new(4);
        rf.set_pred_bits(2, 0b0101);
        assert_eq!(rf.guard_mask(None), Mask::full(4));
        assert_eq!(
            rf.guard_mask(Some(Guard::if_true(p(2)))),
            Mask::from_bits(0b0101)
        );
        assert_eq!(
            rf.guard_mask(Some(Guard::if_false(p(2)))),
            Mask::from_bits(0b1010)
        );
    }

    #[test]
    fn reset_zero_fills_in_place() {
        let mut rf = WarpRegFile::new(16);
        rf.set_reg(9, 60, 7);
        rf.set_pred(9, 6, true);
        let cap = {
            rf.reset();
            rf.row(60).as_ptr()
        };
        assert_eq!(rf.reg(9, 60), 0);
        assert_eq!(rf.pred_bits(6), 0);
        // Same backing storage after reset (no reallocation).
        assert_eq!(cap, rf.row(60).as_ptr());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn width_over_64_rejected() {
        WarpRegFile::new(65);
    }
}
