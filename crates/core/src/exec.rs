//! Functional (architectural) execution of single instructions.
//!
//! The pipeline executes instructions functionally at issue time and models
//! timing separately. Two implementations of the same architectural
//! semantics live here:
//!
//! * [`execute_warp`] — the **hot path**: matches the opcode once per warp,
//!   hoists operand resolution (immediates, params, warp-uniform specials)
//!   out of the lane loop, evaluates guards as one mask AND/ANDN against
//!   the [`WarpRegFile`] predicate bitmasks,
//!   and runs tight per-op lane loops over contiguous register rows.
//! * [`execute_thread`] (with [`ThreadRegs`], [`operand_value`],
//!   [`guard_passes`]) — the **scalar reference path**, retained only so
//!   the differential test suite can check `execute_warp` lane-by-lane
//!   against an independent, obviously-sequential implementation.

use warpweave_isa::{CmpOp, Instruction, Op, Operand, SpecialReg, NUM_PREDS, NUM_REGS};

use crate::launch::WarpInfo;
use crate::mask::Mask;
use crate::regfile::WarpRegFile;

/// Architectural state of one thread: general registers and predicates.
#[derive(Debug, Clone)]
pub struct ThreadRegs {
    regs: Vec<u32>,
    preds: [bool; NUM_PREDS],
}

impl Default for ThreadRegs {
    fn default() -> Self {
        ThreadRegs {
            regs: vec![0; NUM_REGS],
            preds: [false; NUM_PREDS],
        }
    }
}

impl ThreadRegs {
    /// Zero-initialised registers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads register `i`.
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i]
    }

    /// Writes register `i`.
    pub fn set_reg(&mut self, i: usize, v: u32) {
        self.regs[i] = v;
    }

    /// Reads predicate `i`.
    pub fn pred(&self, i: usize) -> bool {
        self.preds[i]
    }

    /// Writes predicate `i`.
    pub fn set_pred(&mut self, i: usize, v: bool) {
        self.preds[i] = v;
    }
}

/// A thread's launch coordinates, feeding the special registers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadInfo {
    /// Thread index within its block.
    pub tid: u32,
    /// Block index within the grid.
    pub ctaid: u32,
    /// Threads per block.
    pub ntid: u32,
    /// Blocks in the grid.
    pub nctaid: u32,
    /// Physical lane (after lane shuffling).
    pub lane: u32,
    /// Warp identifier.
    pub warp: u32,
}

impl ThreadInfo {
    /// The value of a special register for this thread.
    pub fn special(&self, s: SpecialReg) -> u32 {
        match s {
            SpecialReg::Tid => self.tid,
            SpecialReg::CtaId => self.ctaid,
            SpecialReg::NTid => self.ntid,
            SpecialReg::NCtaId => self.nctaid,
            SpecialReg::LaneId => self.lane,
            SpecialReg::WarpId => self.warp,
        }
    }
}

/// Resolves an operand to its 32-bit value for one thread.
///
/// Scalar reference path — the pipeline resolves operands warp-wide inside
/// [`execute_warp`]; this survives only for the differential tests.
#[doc(hidden)]
pub fn operand_value(op: Operand, regs: &ThreadRegs, info: &ThreadInfo, params: &[u32]) -> u32 {
    match op {
        Operand::Reg(r) => regs.reg(r.index()),
        Operand::Imm(v) => v,
        Operand::Special(s) => info.special(s),
        Operand::Param(i) => params.get(i as usize).copied().unwrap_or(0),
    }
}

/// The architectural outcome of one thread executing one instruction
/// (memory operations report their address; the LSU applies the access).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThreadOutcome {
    /// Register write to commit.
    pub reg_write: Option<(usize, u32)>,
    /// Predicate write to commit.
    pub pred_write: Option<(usize, bool)>,
    /// For `Bra`: whether this thread takes the branch.
    pub branch_taken: bool,
    /// For memory ops: the effective byte address.
    pub mem_addr: Option<u32>,
    /// For stores/atomics: the data value.
    pub mem_data: Option<u32>,
}

/// Evaluates whether the guard passes for one thread.
///
/// Scalar reference path — the pipeline evaluates guards as a single mask
/// operation ([`WarpRegFile::guard_mask`]); this survives only for the
/// differential tests.
#[doc(hidden)]
pub fn guard_passes(instr: &Instruction, regs: &ThreadRegs) -> bool {
    match instr.guard {
        None => true,
        Some(g) => regs.pred(g.pred.index()) == g.sense,
    }
}

/// Executes `instr` for one thread, returning the outcome. Does **not**
/// commit anything: the caller applies register writes (so that all threads
/// of a warp read pre-instruction state) and routes memory effects through
/// the LSU.
///
/// The guard must already have been checked with [`guard_passes`]; a failed
/// guard means the instruction has no architectural effect for the thread
/// (except that an unguarded-path `Bra` thread simply falls through).
///
/// Scalar reference path — the pipeline executes whole warps through
/// [`execute_warp`]; this survives only for the differential tests that
/// prove the two implementations bit-identical.
pub fn execute_thread(
    instr: &Instruction,
    regs: &ThreadRegs,
    info: &ThreadInfo,
    params: &[u32],
) -> ThreadOutcome {
    let mut out = ThreadOutcome::default();
    let v = |i: usize| {
        operand_value(
            instr.srcs[i].expect("validated operand"),
            regs,
            info,
            params,
        )
    };
    let f = |i: usize| f32::from_bits(v(i));
    let dst = instr.dst.map(|r| r.index());
    let wr = |val: u32| Some((dst.expect("validated dst"), val));
    let wf = |val: f32| Some((dst.expect("validated dst"), val.to_bits()));

    match instr.op {
        Op::Mov => out.reg_write = wr(v(0)),
        Op::IAdd => out.reg_write = wr((v(0) as i32).wrapping_add(v(1) as i32) as u32),
        Op::ISub => out.reg_write = wr((v(0) as i32).wrapping_sub(v(1) as i32) as u32),
        Op::IMul => out.reg_write = wr((v(0) as i32).wrapping_mul(v(1) as i32) as u32),
        Op::IMad => {
            let r = (v(0) as i32)
                .wrapping_mul(v(1) as i32)
                .wrapping_add(v(2) as i32);
            out.reg_write = wr(r as u32);
        }
        Op::IMin => out.reg_write = wr((v(0) as i32).min(v(1) as i32) as u32),
        Op::IMax => out.reg_write = wr((v(0) as i32).max(v(1) as i32) as u32),
        Op::And => out.reg_write = wr(v(0) & v(1)),
        Op::Or => out.reg_write = wr(v(0) | v(1)),
        Op::Xor => out.reg_write = wr(v(0) ^ v(1)),
        Op::Not => out.reg_write = wr(!v(0)),
        Op::Shl => out.reg_write = wr(v(0) << (v(1) & 31)),
        Op::Shr => out.reg_write = wr(v(0) >> (v(1) & 31)),
        Op::Sra => out.reg_write = wr(((v(0) as i32) >> (v(1) & 31)) as u32),
        Op::FAdd => out.reg_write = wf(f(0) + f(1)),
        Op::FSub => out.reg_write = wf(f(0) - f(1)),
        Op::FMul => out.reg_write = wf(f(0) * f(1)),
        Op::FFma => out.reg_write = wf(f(0).mul_add(f(1), f(2))),
        Op::FMin => out.reg_write = wf(f(0).min(f(1))),
        Op::FMax => out.reg_write = wf(f(0).max(f(1))),
        Op::I2F => out.reg_write = wf(v(0) as i32 as f32),
        Op::F2I => out.reg_write = wr(f(0) as i32 as u32),
        Op::ISetP => {
            let c = instr.cmp.expect("validated cmp");
            out.pred_write = Some((
                instr.pdst.expect("validated pdst").index(),
                c.eval_i32(v(0) as i32, v(1) as i32),
            ));
        }
        Op::FSetP => {
            let c = instr.cmp.expect("validated cmp");
            out.pred_write = Some((
                instr.pdst.expect("validated pdst").index(),
                c.eval_f32(f(0), f(1)),
            ));
        }
        Op::Sel => {
            let p = instr.sel_pred.expect("validated sel_pred");
            let val = if regs.pred(p.index()) { v(0) } else { v(1) };
            out.reg_write = wr(val);
        }
        Op::Rcp => out.reg_write = wf(1.0 / f(0)),
        Op::Sqrt => out.reg_write = wf(f(0).sqrt()),
        Op::Rsqrt => out.reg_write = wf(1.0 / f(0).sqrt()),
        Op::Sin => out.reg_write = wf(f(0).sin()),
        Op::Cos => out.reg_write = wf(f(0).cos()),
        Op::Ex2 => out.reg_write = wf(f(0).exp2()),
        Op::Lg2 => out.reg_write = wf(f(0).log2()),
        Op::Ld => {
            out.mem_addr = Some(v(0).wrapping_add(instr.offset as u32));
        }
        Op::St | Op::AtomAdd => {
            out.mem_addr = Some(v(0).wrapping_add(instr.offset as u32));
            out.mem_data = Some(v(1));
        }
        Op::Bra => out.branch_taken = true, // caller gates on guard
        Op::Sync | Op::Bar | Op::Exit | Op::Nop => {}
    }
    out
}

// --- warp-level execute path ------------------------------------------------

/// Per-operand scratch row: one resolved 32-bit value per lane. Sized for
/// the widest warp so resolution never allocates.
type LaneBuf = [u32; 64];

/// Resolves one operand for every lane of the warp into `buf[..width]`:
/// register operands copy a contiguous [`WarpRegFile`] row, immediates and
/// params splat one value, and of the specials only `tid` (affine:
/// `base_tid + t`) and `laneid` (the shuffle row) need per-lane values.
#[inline]
fn resolve_operand(
    op: Operand,
    rf: &WarpRegFile,
    info: &WarpInfo,
    params: &[u32],
    buf: &mut LaneBuf,
) {
    let width = rf.width();
    match op {
        Operand::Reg(r) => buf[..width].copy_from_slice(rf.row(r.index())),
        Operand::Imm(v) => buf[..width].fill(v),
        Operand::Param(i) => buf[..width].fill(params.get(i as usize).copied().unwrap_or(0)),
        Operand::Special(s) => match info.splat(s) {
            Some(v) => buf[..width].fill(v),
            None if s == SpecialReg::Tid => {
                for (t, b) in buf[..width].iter_mut().enumerate() {
                    *b = info.base_tid + t as u32;
                }
            }
            None => buf[..width].copy_from_slice(info.lanes()),
        },
    }
}

/// Writes `f(a[t])` into register row `d` for every executing lane. The
/// sources were snapshotted into scratch rows, so the destination row may
/// alias a source register without hazard, and the full-mask fast path is
/// a straight slice loop the compiler can autovectorise.
#[inline]
fn apply1(
    rf: &mut WarpRegFile,
    d: usize,
    a: &LaneBuf,
    exec: Mask,
    full: bool,
    f: impl Fn(u32) -> u32,
) {
    let row = rf.row_mut(d);
    if full {
        for (o, &x) in row.iter_mut().zip(a.iter()) {
            *o = f(x);
        }
    } else {
        for t in exec.iter() {
            row[t] = f(a[t]);
        }
    }
}

/// Two-source variant of [`apply1`].
#[inline]
fn apply2(
    rf: &mut WarpRegFile,
    d: usize,
    a: &LaneBuf,
    b: &LaneBuf,
    exec: Mask,
    full: bool,
    f: impl Fn(u32, u32) -> u32,
) {
    let row = rf.row_mut(d);
    if full {
        for ((o, &x), &y) in row.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o = f(x, y);
        }
    } else {
        for t in exec.iter() {
            row[t] = f(a[t], b[t]);
        }
    }
}

/// Three-source variant of [`apply1`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn apply3(
    rf: &mut WarpRegFile,
    d: usize,
    a: &LaneBuf,
    b: &LaneBuf,
    c: &LaneBuf,
    exec: Mask,
    full: bool,
    f: impl Fn(u32, u32, u32) -> u32,
) {
    let row = rf.row_mut(d);
    if full {
        for (((o, &x), &y), &z) in row.iter_mut().zip(a.iter()).zip(b.iter()).zip(c.iter()) {
            *o = f(x, y, z);
        }
    } else {
        for t in exec.iter() {
            row[t] = f(a[t], b[t], c[t]);
        }
    }
}

/// Merges a freshly computed predicate bitmask into predicate `p`:
/// executing lanes take `res`, all others keep their old bit. Shared with
/// the superblock fused path so the merge rule cannot drift.
#[inline]
pub(crate) fn commit_pred(rf: &mut WarpRegFile, p: usize, exec: Mask, res: u64) {
    debug_assert_eq!(res & !exec.bits(), 0);
    let bits = (rf.pred_bits(p) & !exec.bits()) | res;
    rf.set_pred_bits(p, bits);
}

/// Bit-casting adapters for the f32 op families (shared with the
/// superblock fused path).
#[inline]
pub(crate) fn f1(f: impl Fn(f32) -> f32) -> impl Fn(u32) -> u32 {
    move |x| f(f32::from_bits(x)).to_bits()
}
#[inline]
pub(crate) fn f2(f: impl Fn(f32, f32) -> f32) -> impl Fn(u32, u32) -> u32 {
    move |x, y| f(f32::from_bits(x), f32::from_bits(y)).to_bits()
}
#[inline]
pub(crate) fn f3(f: impl Fn(f32, f32, f32) -> f32) -> impl Fn(u32, u32, u32) -> u32 {
    move |x, y, z| f(f32::from_bits(x), f32::from_bits(y), f32::from_bits(z)).to_bits()
}

/// Executes `instr` for every thread of a warp in one pass over the SoA
/// register file, committing register/predicate writes in place.
///
/// `active` is the issue mask already restricted to populated threads; the
/// guard is folded in here as a single bitmask operation. Memory
/// operations do **not** touch memory: each executing lane appends its
/// `(thread, effective address, store data)` triple to `accesses` in
/// ascending thread order — exactly the order the scalar loop produced —
/// and the caller (the LSU/pipeline) applies the effects. `accesses` is a
/// caller-owned scratch buffer (cleared here) so the hot path never
/// allocates. Returns the taken mask: the executing lanes for `Bra`,
/// empty otherwise.
///
/// Architecturally equivalent to running [`guard_passes`] +
/// [`execute_thread`] per lane and committing each outcome — the property
/// the `exec_differential` proptest suite pins down bit-for-bit.
pub fn execute_warp(
    instr: &Instruction,
    rf: &mut WarpRegFile,
    info: &WarpInfo,
    params: &[u32],
    active: Mask,
    accesses: &mut Vec<(usize, u32, u32)>,
) -> Mask {
    accesses.clear();
    let width = rf.width();
    // Guard evaluation: one AND (`@p`) or ANDN (`@!p`) against the
    // predicate bitmask, instead of `width` boolean loads.
    let exec = active & rf.guard_mask(instr.guard);
    if exec.is_empty() {
        return Mask::EMPTY;
    }
    let full = exec == Mask::full(width);

    // Operand resolution, hoisted out of the lane loop: every present
    // source becomes one contiguous scratch row (register rows are
    // snapshots, so a destination aliasing a source is hazard-free and all
    // lanes read pre-instruction state).
    let mut bufs = [[0u32; 64]; 3];
    for (s, buf) in instr.srcs.iter().zip(bufs.iter_mut()) {
        if let Some(op) = s {
            resolve_operand(*op, rf, info, params, buf);
        }
    }
    let [a, b, c] = &bufs;
    let d = || instr.dst.expect("validated dst").index();

    match instr.op {
        Op::Mov => apply1(rf, d(), a, exec, full, |x| x),
        Op::IAdd => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).wrapping_add(y as i32) as u32
        }),
        Op::ISub => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).wrapping_sub(y as i32) as u32
        }),
        Op::IMul => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).wrapping_mul(y as i32) as u32
        }),
        Op::IMad => apply3(rf, d(), a, b, c, exec, full, |x, y, z| {
            (x as i32).wrapping_mul(y as i32).wrapping_add(z as i32) as u32
        }),
        Op::IMin => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).min(y as i32) as u32
        }),
        Op::IMax => apply2(rf, d(), a, b, exec, full, |x, y| {
            (x as i32).max(y as i32) as u32
        }),
        Op::And => apply2(rf, d(), a, b, exec, full, |x, y| x & y),
        Op::Or => apply2(rf, d(), a, b, exec, full, |x, y| x | y),
        Op::Xor => apply2(rf, d(), a, b, exec, full, |x, y| x ^ y),
        Op::Not => apply1(rf, d(), a, exec, full, |x| !x),
        Op::Shl => apply2(rf, d(), a, b, exec, full, |x, y| x << (y & 31)),
        Op::Shr => apply2(rf, d(), a, b, exec, full, |x, y| x >> (y & 31)),
        Op::Sra => apply2(rf, d(), a, b, exec, full, |x, y| {
            ((x as i32) >> (y & 31)) as u32
        }),
        Op::FAdd => apply2(rf, d(), a, b, exec, full, f2(|x, y| x + y)),
        Op::FSub => apply2(rf, d(), a, b, exec, full, f2(|x, y| x - y)),
        Op::FMul => apply2(rf, d(), a, b, exec, full, f2(|x, y| x * y)),
        Op::FFma => apply3(rf, d(), a, b, c, exec, full, f3(|x, y, z| x.mul_add(y, z))),
        Op::FMin => apply2(rf, d(), a, b, exec, full, f2(f32::min)),
        Op::FMax => apply2(rf, d(), a, b, exec, full, f2(f32::max)),
        Op::I2F => apply1(rf, d(), a, exec, full, |x| (x as i32 as f32).to_bits()),
        Op::F2I => apply1(rf, d(), a, exec, full, |x| f32::from_bits(x) as i32 as u32),
        Op::ISetP => {
            let cmp = instr.cmp.expect("validated cmp");
            let mut res = 0u64;
            for t in exec.iter() {
                if cmp.eval_i32(a[t] as i32, b[t] as i32) {
                    res |= 1 << t;
                }
            }
            commit_pred(rf, instr.pdst.expect("validated pdst").index(), exec, res);
        }
        Op::FSetP => {
            let cmp = instr.cmp.expect("validated cmp");
            let mut res = 0u64;
            for t in exec.iter() {
                if cmp.eval_f32(f32::from_bits(a[t]), f32::from_bits(b[t])) {
                    res |= 1 << t;
                }
            }
            commit_pred(rf, instr.pdst.expect("validated pdst").index(), exec, res);
        }
        Op::Sel => {
            // `Sel` reads its predicate per lane, which the value-only
            // apply helpers hide; write the row directly.
            let pm = rf.pred_bits(instr.sel_pred.expect("validated sel_pred").index());
            let row = rf.row_mut(d());
            if full {
                for (t, o) in row.iter_mut().enumerate() {
                    *o = if (pm >> t) & 1 == 1 { a[t] } else { b[t] };
                }
            } else {
                for t in exec.iter() {
                    row[t] = if (pm >> t) & 1 == 1 { a[t] } else { b[t] };
                }
            }
        }
        Op::Rcp => apply1(rf, d(), a, exec, full, f1(|x| 1.0 / x)),
        Op::Sqrt => apply1(rf, d(), a, exec, full, f1(f32::sqrt)),
        Op::Rsqrt => apply1(rf, d(), a, exec, full, f1(|x| 1.0 / x.sqrt())),
        Op::Sin => apply1(rf, d(), a, exec, full, f1(f32::sin)),
        Op::Cos => apply1(rf, d(), a, exec, full, f1(f32::cos)),
        Op::Ex2 => apply1(rf, d(), a, exec, full, f1(f32::exp2)),
        Op::Lg2 => apply1(rf, d(), a, exec, full, f1(f32::log2)),
        Op::Ld => {
            let off = instr.offset as u32;
            for t in exec.iter() {
                accesses.push((t, a[t].wrapping_add(off), 0));
            }
        }
        Op::St | Op::AtomAdd => {
            let off = instr.offset as u32;
            for t in exec.iter() {
                accesses.push((t, a[t].wrapping_add(off), b[t]));
            }
        }
        Op::Bra => return exec, // caller gates on guard
        Op::Sync | Op::Bar | Op::Exit | Op::Nop => {}
    }
    Mask::EMPTY
}

/// Convenience: evaluates a comparison the way `ISetP` would (used by
/// tests).
pub fn compare_i32(cmp: CmpOp, a: i32, b: i32) -> bool {
    cmp.eval_i32(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_isa::{p, r, Guard, KernelBuilder};

    fn setup() -> (ThreadRegs, ThreadInfo) {
        let mut regs = ThreadRegs::new();
        regs.set_reg(1, 6);
        regs.set_reg(2, 7);
        regs.set_reg(3, (-3i32) as u32);
        (regs, ThreadInfo::default())
    }

    fn run_one(build: impl FnOnce(&mut KernelBuilder)) -> ThreadOutcome {
        let mut k = KernelBuilder::new("t");
        build(&mut k);
        k.exit();
        let prog = k.build().unwrap();
        let (regs, info) = setup();
        execute_thread(&prog.instructions()[0], &regs, &info, &[])
    }

    #[test]
    fn integer_alu() {
        assert_eq!(
            run_one(|k| {
                k.imad(r(0), r(1), r(2), 1i32);
            })
            .reg_write,
            Some((0, 43))
        );
        assert_eq!(
            run_one(|k| {
                k.imin(r(0), r(1), r(3));
            })
            .reg_write,
            Some((0, (-3i32) as u32))
        );
        assert_eq!(
            run_one(|k| {
                k.sra(r(0), r(3), 1i32);
            })
            .reg_write,
            Some((0, (-2i32) as u32))
        );
        assert_eq!(
            run_one(|k| {
                k.shr(r(0), r(3), 1i32);
            })
            .reg_write,
            Some((0, 0x7fff_fffe))
        );
    }

    #[test]
    fn float_ops_bitcast() {
        let out = run_one(|k| {
            k.ffma(r(0), 2.0f32, 3.0f32, 1.0f32);
        });
        let (_, bits) = out.reg_write.unwrap();
        assert_eq!(f32::from_bits(bits), 7.0);
    }

    #[test]
    fn sfu_ops() {
        let out = run_one(|k| {
            k.rsqrt(r(0), 4.0f32);
        });
        assert_eq!(f32::from_bits(out.reg_write.unwrap().1), 0.5);
        let out = run_one(|k| {
            k.ex2(r(0), 3.0f32);
        });
        assert_eq!(f32::from_bits(out.reg_write.unwrap().1), 8.0);
    }

    #[test]
    fn setp_and_sel() {
        let out = run_one(|k| {
            k.isetp(p(0), CmpOp::Lt, r(1), r(2));
        });
        assert_eq!(out.pred_write, Some((0, true)));

        // Sel reads p0 (false by default) → second source.
        let out = run_one(|k| {
            k.sel(r(0), p(0), 11i32, 22i32);
        });
        assert_eq!(out.reg_write, Some((0, 22)));
    }

    #[test]
    fn memory_addresses() {
        let out = run_one(|k| {
            k.ld(r(0), r(1), 8);
        });
        assert_eq!(out.mem_addr, Some(14));
        let out = run_one(|k| {
            k.st(r(1), -4, r(2));
        });
        assert_eq!(out.mem_addr, Some(2));
        assert_eq!(out.mem_data, Some(7));
    }

    #[test]
    fn guard_evaluation() {
        let mut i = warpweave_isa::Instruction::new(Op::Nop);
        let (mut regs, _) = setup();
        assert!(guard_passes(&i, &regs));
        i.guard = Some(Guard::if_true(p(1)));
        assert!(!guard_passes(&i, &regs));
        regs.set_pred(1, true);
        assert!(guard_passes(&i, &regs));
        i.guard = Some(Guard::if_false(p(1)));
        assert!(!guard_passes(&i, &regs));
    }

    #[test]
    fn special_registers() {
        let info = ThreadInfo {
            tid: 3,
            ctaid: 5,
            ntid: 256,
            nctaid: 12,
            lane: 9,
            warp: 2,
        };
        assert_eq!(info.special(SpecialReg::Tid), 3);
        assert_eq!(info.special(SpecialReg::NTid), 256);
        assert_eq!(info.special(SpecialReg::LaneId), 9);
    }

    #[test]
    fn params_resolve() {
        let regs = ThreadRegs::new();
        let info = ThreadInfo::default();
        assert_eq!(
            operand_value(Operand::Param(1), &regs, &info, &[10, 20]),
            20
        );
        assert_eq!(operand_value(Operand::Param(9), &regs, &info, &[10]), 0);
    }
}
