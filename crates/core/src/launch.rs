//! Kernel launch descriptors.

use warpweave_isa::Program;

/// A kernel launch: the program, grid geometry and parameters.
///
/// # Examples
/// ```
/// use warpweave_core::Launch;
/// use warpweave_isa::KernelBuilder;
///
/// # fn main() -> Result<(), String> {
/// let mut k = KernelBuilder::new("noop");
/// k.exit();
/// let launch = Launch::new(k.build()?, 4, 256).with_params(vec![0x1000]);
/// assert_eq!(launch.total_threads(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Launch {
    /// The kernel to run.
    pub program: Program,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// 32-bit launch parameters (pointers are byte addresses into global
    /// memory).
    pub params: Vec<u32>,
}

impl Launch {
    /// Creates a launch of `grid_blocks × block_threads` threads.
    ///
    /// # Panics
    /// Panics if the grid is empty.
    pub fn new(program: Program, grid_blocks: u32, block_threads: u32) -> Self {
        assert!(grid_blocks > 0 && block_threads > 0, "empty launch grid");
        Launch {
            program,
            grid_blocks,
            block_threads,
            params: Vec::new(),
        }
    }

    /// Attaches launch parameters (builder style).
    pub fn with_params(mut self, params: Vec<u32>) -> Self {
        self.params = params;
        self
    }

    /// Total threads across the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}
