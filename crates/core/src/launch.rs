//! Kernel launch descriptors and per-warp launch coordinates.

use warpweave_isa::{Program, SpecialReg};

use crate::exec::ThreadInfo;
use crate::lane::LaneShuffle;

/// A kernel launch: the program, grid geometry and parameters.
///
/// # Examples
/// ```
/// use warpweave_core::Launch;
/// use warpweave_isa::KernelBuilder;
///
/// # fn main() -> Result<(), String> {
/// let mut k = KernelBuilder::new("noop");
/// k.exit();
/// let launch = Launch::new(k.build()?, 4, 256).with_params(vec![0x1000]);
/// assert_eq!(launch.total_threads(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Launch {
    /// The kernel to run.
    pub program: Program,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub block_threads: u32,
    /// 32-bit launch parameters (pointers are byte addresses into global
    /// memory).
    pub params: Vec<u32>,
}

impl Launch {
    /// Creates a launch of `grid_blocks × block_threads` threads.
    ///
    /// # Panics
    /// Panics if the grid is empty.
    pub fn new(program: Program, grid_blocks: u32, block_threads: u32) -> Self {
        assert!(grid_blocks > 0 && block_threads > 0, "empty launch grid");
        Launch {
            program,
            grid_blocks,
            block_threads,
            params: Vec::new(),
        }
    }

    /// Attaches launch parameters (builder style).
    pub fn with_params(mut self, params: Vec<u32>) -> Self {
        self.params = params;
        self
    }

    /// Total threads across the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

/// Struct-of-arrays launch coordinates of one warp, feeding the special
/// registers of the warp-level execute path.
///
/// Four of the six special registers (`ctaid`, `ntid`, `nctaid`, `warpid`)
/// are warp-uniform, `tid` is an affine function of the thread index
/// (`base_tid + t`) and only `laneid` needs a per-thread row — so the
/// warp-level operand resolver materialises most specials as splats
/// instead of gathering `width` copies of a per-thread struct
/// ([`ThreadInfo`], which remains the scalar reference-path encoding).
#[derive(Debug, Clone, PartialEq)]
pub struct WarpInfo {
    /// Thread index (within the block) of lane 0's thread.
    pub base_tid: u32,
    /// Block index within the grid.
    pub ctaid: u32,
    /// Threads per block.
    pub ntid: u32,
    /// Blocks in the grid.
    pub nctaid: u32,
    /// Warp identifier.
    pub warp: u32,
    /// Physical lane of each thread (the lane-shuffle SoA row).
    lanes: Vec<u32>,
}

impl WarpInfo {
    /// Zeroed coordinates for a `width`-thread warp (identity lanes).
    pub fn new(width: usize) -> WarpInfo {
        WarpInfo {
            base_tid: 0,
            ctaid: 0,
            ntid: 0,
            nctaid: 0,
            warp: 0,
            lanes: (0..width as u32).collect(),
        }
    }

    /// Re-seeds the coordinates in place for a fresh block launch,
    /// rewriting the lane row under `shuffle` without reallocating.
    #[allow(clippy::too_many_arguments)]
    pub fn seed(
        &mut self,
        base_tid: u32,
        ctaid: u32,
        ntid: u32,
        nctaid: u32,
        warp: u32,
        shuffle: LaneShuffle,
        width: usize,
        num_warps: usize,
    ) {
        self.base_tid = base_tid;
        self.ctaid = ctaid;
        self.ntid = ntid;
        self.nctaid = nctaid;
        self.warp = warp;
        shuffle.fill_lanes(&mut self.lanes, warp as usize, width, num_warps);
    }

    /// The per-thread lane row.
    pub fn lanes(&self) -> &[u32] {
        &self.lanes
    }

    /// The warp-uniform value of special register `s`, or `None` for the
    /// two per-thread specials (`tid`, `laneid`).
    pub fn splat(&self, s: SpecialReg) -> Option<u32> {
        match s {
            SpecialReg::CtaId => Some(self.ctaid),
            SpecialReg::NTid => Some(self.ntid),
            SpecialReg::NCtaId => Some(self.nctaid),
            SpecialReg::WarpId => Some(self.warp),
            SpecialReg::Tid | SpecialReg::LaneId => None,
        }
    }

    /// The scalar reference-path view of thread `t` (differential tests
    /// bridge to [`crate::exec::execute_thread`] through this).
    pub fn thread_info(&self, t: usize) -> ThreadInfo {
        ThreadInfo {
            tid: self.base_tid + t as u32,
            ctaid: self.ctaid,
            ntid: self.ntid,
            nctaid: self.nctaid,
            lane: self.lanes[t],
            warp: self.warp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_info_seeds_in_place() {
        let mut info = WarpInfo::new(4);
        let cap = info.lanes().as_ptr();
        info.seed(8, 3, 16, 5, 2, LaneShuffle::MirrorOdd, 4, 16);
        assert_eq!(info.lanes(), &[0, 1, 2, 3]); // warp 2 is even → identity
        info.seed(8, 3, 16, 5, 1, LaneShuffle::MirrorOdd, 4, 16);
        assert_eq!(info.lanes(), &[3, 2, 1, 0]);
        assert_eq!(cap, info.lanes().as_ptr(), "seed must not reallocate");
        let ti = info.thread_info(2);
        assert_eq!((ti.tid, ti.lane, ti.warp), (10, 1, 1));
        assert_eq!(info.splat(SpecialReg::NTid), Some(16));
        assert_eq!(info.splat(SpecialReg::Tid), None);
    }
}
