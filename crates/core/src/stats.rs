//! Simulation statistics.

use warpweave_mem::{CacheStats, DramConfig, DramStats};

use crate::divergence::frontier::HeapStats;

/// Counters collected over one kernel execution on one SM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Thread-instructions committed (Σ active-mask population per issued
    /// instruction) — the numerator of the paper's IPC metric.
    pub thread_instructions: u64,
    /// Warp-level instructions issued.
    pub warp_instructions: u64,
    /// Primary-slot issues.
    pub primary_issues: u64,
    /// Secondary-slot issues (SBI/SWI co-issues).
    pub secondary_issues: u64,
    /// Secondary issues that shared the primary's SIMD group (disjoint
    /// lanes, single pass).
    pub same_group_coissues: u64,
    /// Secondary issues dispatched to a different free SIMD group.
    pub other_group_coissues: u64,
    /// Instruction-buffer entries squashed because the warp-split state
    /// changed under them (redundant fetch cost of desynchronisation).
    pub fetch_squashes: u64,
    /// Primary picks squashed because the cascaded secondary scheduler had
    /// already issued the same instruction (paper §4, conflict avoidance).
    pub scheduler_conflicts: u64,
    /// Cycles a secondary warp-split spent suspended by a reconvergence
    /// constraint (§3.3).
    pub constraint_suspensions: u64,
    /// SWI mask-lookup probes performed.
    pub lookup_probes: u64,
    /// SWI lookups that found a co-issuable instruction.
    pub lookup_hits: u64,
    /// Memory transactions issued by the LSU (after coalescing).
    pub lsu_transactions: u64,
    /// Memory instructions that needed replay (more than one transaction).
    pub lsu_replays: u64,
    /// Cycles with zero instructions issued.
    pub idle_cycles: u64,
    /// Block barrier releases.
    pub barrier_releases: u64,
    /// Thread blocks completed.
    pub blocks_completed: u64,
    /// High-water PDOM stack depth across warps (baseline).
    pub max_stack_depth: usize,
    /// Aggregated frontier-heap statistics across warps.
    pub heap: HeapStats,
    /// L1 statistics (copied at teardown).
    pub l1: CacheStats,
    /// DRAM traffic issued by this SM (counted at enqueue).
    pub dram: DramStats,
    /// Load transactions that queued behind the DRAM channel (grant start
    /// later than issue) — the per-SM face of bandwidth contention.
    pub dram_queued_loads: u64,
    /// Total cycles this SM's load transactions spent queued behind the
    /// channel.
    pub dram_queue_delay: u64,
    /// Worst single-load queue delay observed.
    pub dram_max_queue_delay: u64,
    /// Same-line misses merged into an already in-flight MSHR transaction
    /// (each merge is a DRAM request the MSHR file absorbed).
    pub mshr_merges: u64,
    /// Misses that found the MSHR file full and fell through to their own
    /// DRAM request (0 when MSHRs are disabled).
    pub mshr_bypasses: u64,
    /// Superblock runs entered (an issue grant landed on a fused region's
    /// first instruction).
    pub superblock_enters: u64,
    /// Issue grants executed through the superblock fused path (includes
    /// the entering grant of each run).
    pub superblock_covered: u64,
    /// Superblock runs abandoned because a grant deviated from the
    /// expected pc/mask (divergence, merges, context swaps).
    pub superblock_aborts: u64,
}

impl Stats {
    /// Thread-instructions per cycle — the metric of fig. 7.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.cycles as f64
        }
    }

    /// Average active threads per issued warp instruction (SIMD efficiency).
    pub fn simd_efficiency(&self, warp_width: usize) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / (self.warp_instructions as f64 * warp_width as f64)
        }
    }

    /// Fraction of issue events that co-issued a secondary instruction.
    pub fn coissue_rate(&self) -> f64 {
        if self.primary_issues == 0 {
            0.0
        } else {
            self.secondary_issues as f64 / self.primary_issues as f64
        }
    }

    /// Fraction of the DRAM byte budget (`bytes_per_cycle × cycles`) this
    /// run actually moved — the bandwidth-saturation metric the benchmark
    /// output records. 1.0 means the channel never idled.
    pub fn dram_utilization(&self, dram: &DramConfig) -> f64 {
        if self.cycles == 0 || dram.bytes_per_cycle <= 0.0 {
            0.0
        } else {
            self.dram.total_bytes(dram.transfer_bytes) as f64
                / (dram.bytes_per_cycle * self.cycles as f64)
        }
    }

    /// Mean queue delay per DRAM load transaction, in cycles (0 when no
    /// load ever waited on the channel).
    pub fn avg_dram_queue_delay(&self) -> f64 {
        if self.dram.read_transfers == 0 {
            0.0
        } else {
            self.dram_queue_delay as f64 / self.dram.read_transfers as f64
        }
    }

    /// The canonical `(field name, value)` enumeration of every counter, in
    /// a fixed order — the single source of truth the checkpoint codec
    /// ([`crate::checkpoint`]) serializes. `usize` high-water marks are
    /// widened to `u64` (lossless on every supported host).
    ///
    /// The exhaustive destructuring below is deliberate: adding a field to
    /// [`Stats`] (or any nested stats struct) breaks this function's
    /// compilation, forcing the author to extend the codec and bump
    /// [`crate::checkpoint::CHECKPOINT_VERSION`] in the same change.
    pub fn to_fields(&self) -> Vec<(&'static str, u64)> {
        let Stats {
            cycles,
            thread_instructions,
            warp_instructions,
            primary_issues,
            secondary_issues,
            same_group_coissues,
            other_group_coissues,
            fetch_squashes,
            scheduler_conflicts,
            constraint_suspensions,
            lookup_probes,
            lookup_hits,
            lsu_transactions,
            lsu_replays,
            idle_cycles,
            barrier_releases,
            blocks_completed,
            max_stack_depth,
            heap:
                HeapStats {
                    max_live_splits,
                    spills,
                    degraded_inserts,
                    merges,
                },
            l1:
                CacheStats {
                    load_hits,
                    load_misses,
                    stores,
                },
            dram:
                DramStats {
                    read_transfers,
                    write_transfers,
                },
            dram_queued_loads,
            dram_queue_delay,
            dram_max_queue_delay,
            mshr_merges,
            mshr_bypasses,
            superblock_enters,
            superblock_covered,
            superblock_aborts,
        } = self.clone();
        vec![
            ("cycles", cycles),
            ("thread_instructions", thread_instructions),
            ("warp_instructions", warp_instructions),
            ("primary_issues", primary_issues),
            ("secondary_issues", secondary_issues),
            ("same_group_coissues", same_group_coissues),
            ("other_group_coissues", other_group_coissues),
            ("fetch_squashes", fetch_squashes),
            ("scheduler_conflicts", scheduler_conflicts),
            ("constraint_suspensions", constraint_suspensions),
            ("lookup_probes", lookup_probes),
            ("lookup_hits", lookup_hits),
            ("lsu_transactions", lsu_transactions),
            ("lsu_replays", lsu_replays),
            ("idle_cycles", idle_cycles),
            ("barrier_releases", barrier_releases),
            ("blocks_completed", blocks_completed),
            ("max_stack_depth", max_stack_depth as u64),
            ("heap_max_live_splits", max_live_splits as u64),
            ("heap_spills", spills),
            ("heap_degraded_inserts", degraded_inserts),
            ("heap_merges", merges),
            ("l1_load_hits", load_hits),
            ("l1_load_misses", load_misses),
            ("l1_stores", stores),
            ("dram_read_transfers", read_transfers),
            ("dram_write_transfers", write_transfers),
            ("dram_queued_loads", dram_queued_loads),
            ("dram_queue_delay", dram_queue_delay),
            ("dram_max_queue_delay", dram_max_queue_delay),
            ("mshr_merges", mshr_merges),
            ("mshr_bypasses", mshr_bypasses),
            ("superblock_enters", superblock_enters),
            ("superblock_covered", superblock_covered),
            ("superblock_aborts", superblock_aborts),
        ]
    }

    /// Rebuilds a [`Stats`] from the field list [`Stats::to_fields`]
    /// produced. Strict by design: the fields must appear in exactly the
    /// canonical order with no extras and no omissions, so a checkpoint
    /// written by a different struct layout is rejected instead of being
    /// half-applied.
    ///
    /// # Errors
    /// A description of the first mismatch (wrong count, wrong name in a
    /// slot, or a value that does not fit the target field's width).
    pub fn from_fields(fields: &[(&str, u64)]) -> Result<Stats, String> {
        let mut stats = Stats::default();
        let expected = stats.to_fields();
        if fields.len() != expected.len() {
            return Err(format!(
                "expected {} stats fields, got {}",
                expected.len(),
                fields.len()
            ));
        }
        for (&(name, value), &(want, _)) in fields.iter().zip(&expected) {
            if name != want {
                return Err(format!("expected stats field `{want}`, found `{name}`"));
            }
            stats.set_field(name, value)?;
        }
        Ok(stats)
    }

    /// Assigns one canonical field by name (the write half of the codec).
    fn set_field(&mut self, name: &str, value: u64) -> Result<(), String> {
        let narrow = |v: u64| {
            usize::try_from(v).map_err(|_| format!("stats field `{name}` value {v} exceeds usize"))
        };
        match name {
            "cycles" => self.cycles = value,
            "thread_instructions" => self.thread_instructions = value,
            "warp_instructions" => self.warp_instructions = value,
            "primary_issues" => self.primary_issues = value,
            "secondary_issues" => self.secondary_issues = value,
            "same_group_coissues" => self.same_group_coissues = value,
            "other_group_coissues" => self.other_group_coissues = value,
            "fetch_squashes" => self.fetch_squashes = value,
            "scheduler_conflicts" => self.scheduler_conflicts = value,
            "constraint_suspensions" => self.constraint_suspensions = value,
            "lookup_probes" => self.lookup_probes = value,
            "lookup_hits" => self.lookup_hits = value,
            "lsu_transactions" => self.lsu_transactions = value,
            "lsu_replays" => self.lsu_replays = value,
            "idle_cycles" => self.idle_cycles = value,
            "barrier_releases" => self.barrier_releases = value,
            "blocks_completed" => self.blocks_completed = value,
            "max_stack_depth" => self.max_stack_depth = narrow(value)?,
            "heap_max_live_splits" => self.heap.max_live_splits = narrow(value)?,
            "heap_spills" => self.heap.spills = value,
            "heap_degraded_inserts" => self.heap.degraded_inserts = value,
            "heap_merges" => self.heap.merges = value,
            "l1_load_hits" => self.l1.load_hits = value,
            "l1_load_misses" => self.l1.load_misses = value,
            "l1_stores" => self.l1.stores = value,
            "dram_read_transfers" => self.dram.read_transfers = value,
            "dram_write_transfers" => self.dram.write_transfers = value,
            "dram_queued_loads" => self.dram_queued_loads = value,
            "dram_queue_delay" => self.dram_queue_delay = value,
            "dram_max_queue_delay" => self.dram_max_queue_delay = value,
            "mshr_merges" => self.mshr_merges = value,
            "mshr_bypasses" => self.mshr_bypasses = value,
            "superblock_enters" => self.superblock_enters = value,
            "superblock_covered" => self.superblock_covered = value,
            "superblock_aborts" => self.superblock_aborts = value,
            other => return Err(format!("unknown stats field `{other}`")),
        }
        Ok(())
    }

    /// Folds the statistics of a subsequent launch into this one (summing
    /// counters, taking the maximum of high-water marks) — used by
    /// multi-launch workloads such as BFS.
    pub fn accumulate(&mut self, other: &Stats) {
        self.cycles += other.cycles;
        self.thread_instructions += other.thread_instructions;
        self.warp_instructions += other.warp_instructions;
        self.primary_issues += other.primary_issues;
        self.secondary_issues += other.secondary_issues;
        self.same_group_coissues += other.same_group_coissues;
        self.other_group_coissues += other.other_group_coissues;
        self.fetch_squashes += other.fetch_squashes;
        self.scheduler_conflicts += other.scheduler_conflicts;
        self.constraint_suspensions += other.constraint_suspensions;
        self.lookup_probes += other.lookup_probes;
        self.lookup_hits += other.lookup_hits;
        self.lsu_transactions += other.lsu_transactions;
        self.lsu_replays += other.lsu_replays;
        self.idle_cycles += other.idle_cycles;
        self.barrier_releases += other.barrier_releases;
        self.blocks_completed += other.blocks_completed;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
        self.heap.max_live_splits = self.heap.max_live_splits.max(other.heap.max_live_splits);
        self.heap.spills += other.heap.spills;
        self.heap.degraded_inserts += other.heap.degraded_inserts;
        self.heap.merges += other.heap.merges;
        self.l1.load_hits += other.l1.load_hits;
        self.l1.load_misses += other.l1.load_misses;
        self.l1.stores += other.l1.stores;
        self.dram.read_transfers += other.dram.read_transfers;
        self.dram.write_transfers += other.dram.write_transfers;
        self.dram_queued_loads += other.dram_queued_loads;
        self.dram_queue_delay += other.dram_queue_delay;
        self.dram_max_queue_delay = self.dram_max_queue_delay.max(other.dram_max_queue_delay);
        self.mshr_merges += other.mshr_merges;
        self.mshr_bypasses += other.mshr_bypasses;
        self.superblock_enters += other.superblock_enters;
        self.superblock_covered += other.superblock_covered;
        self.superblock_aborts += other.superblock_aborts;
    }

    /// Folds the statistics of an SM that ran *concurrently* with this one
    /// into an aggregate: counters are summed as in [`Stats::accumulate`],
    /// but `cycles` becomes the makespan (maximum), so [`Stats::ipc`] on the
    /// merged value reads as whole-machine throughput per cycle.
    pub fn merge_parallel(&mut self, other: &Stats) {
        let my_cycles = self.cycles;
        self.accumulate(other);
        self.cycles = my_cycles.max(other.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_efficiency() {
        let s = Stats {
            cycles: 100,
            thread_instructions: 3200,
            warp_instructions: 200,
            ..Stats::default()
        };
        assert_eq!(s.ipc(), 32.0);
        assert_eq!(s.simd_efficiency(32), 0.5);
    }

    #[test]
    fn field_codec_round_trips() {
        let mut s = Stats::default();
        // Give every field a distinct value so a swapped assignment shows.
        for (i, (name, _)) in Stats::default().to_fields().into_iter().enumerate() {
            s.set_field(name, 1000 + i as u64).unwrap();
        }
        let fields = s.to_fields();
        assert_eq!(Stats::from_fields(&fields).unwrap(), s);
    }

    #[test]
    fn field_codec_rejects_drift() {
        let good = Stats::default().to_fields();
        // Truncated list.
        assert!(Stats::from_fields(&good[..good.len() - 1]).is_err());
        // Renamed field in place.
        let mut renamed = good.clone();
        renamed[0].0 = "cycels";
        assert!(Stats::from_fields(&renamed).is_err());
        // Reordered fields (same set, wrong slots).
        let mut swapped = good;
        swapped.swap(0, 1);
        assert!(Stats::from_fields(&swapped).is_err());
    }

    #[test]
    fn zero_cycle_safety() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.simd_efficiency(32), 0.0);
        assert_eq!(s.coissue_rate(), 0.0);
    }
}
