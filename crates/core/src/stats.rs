//! Simulation statistics.

use warpweave_mem::{CacheStats, DramConfig, DramStats};

use crate::divergence::frontier::HeapStats;

/// Counters collected over one kernel execution on one SM.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Thread-instructions committed (Σ active-mask population per issued
    /// instruction) — the numerator of the paper's IPC metric.
    pub thread_instructions: u64,
    /// Warp-level instructions issued.
    pub warp_instructions: u64,
    /// Primary-slot issues.
    pub primary_issues: u64,
    /// Secondary-slot issues (SBI/SWI co-issues).
    pub secondary_issues: u64,
    /// Secondary issues that shared the primary's SIMD group (disjoint
    /// lanes, single pass).
    pub same_group_coissues: u64,
    /// Secondary issues dispatched to a different free SIMD group.
    pub other_group_coissues: u64,
    /// Instruction-buffer entries squashed because the warp-split state
    /// changed under them (redundant fetch cost of desynchronisation).
    pub fetch_squashes: u64,
    /// Primary picks squashed because the cascaded secondary scheduler had
    /// already issued the same instruction (paper §4, conflict avoidance).
    pub scheduler_conflicts: u64,
    /// Cycles a secondary warp-split spent suspended by a reconvergence
    /// constraint (§3.3).
    pub constraint_suspensions: u64,
    /// SWI mask-lookup probes performed.
    pub lookup_probes: u64,
    /// SWI lookups that found a co-issuable instruction.
    pub lookup_hits: u64,
    /// Memory transactions issued by the LSU (after coalescing).
    pub lsu_transactions: u64,
    /// Memory instructions that needed replay (more than one transaction).
    pub lsu_replays: u64,
    /// Cycles with zero instructions issued.
    pub idle_cycles: u64,
    /// Block barrier releases.
    pub barrier_releases: u64,
    /// Thread blocks completed.
    pub blocks_completed: u64,
    /// High-water PDOM stack depth across warps (baseline).
    pub max_stack_depth: usize,
    /// Aggregated frontier-heap statistics across warps.
    pub heap: HeapStats,
    /// L1 statistics (copied at teardown).
    pub l1: CacheStats,
    /// DRAM traffic issued by this SM (counted at enqueue).
    pub dram: DramStats,
    /// Load transactions that queued behind the DRAM channel (grant start
    /// later than issue) — the per-SM face of bandwidth contention.
    pub dram_queued_loads: u64,
    /// Total cycles this SM's load transactions spent queued behind the
    /// channel.
    pub dram_queue_delay: u64,
    /// Worst single-load queue delay observed.
    pub dram_max_queue_delay: u64,
}

impl Stats {
    /// Thread-instructions per cycle — the metric of fig. 7.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.cycles as f64
        }
    }

    /// Average active threads per issued warp instruction (SIMD efficiency).
    pub fn simd_efficiency(&self, warp_width: usize) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / (self.warp_instructions as f64 * warp_width as f64)
        }
    }

    /// Fraction of issue events that co-issued a secondary instruction.
    pub fn coissue_rate(&self) -> f64 {
        if self.primary_issues == 0 {
            0.0
        } else {
            self.secondary_issues as f64 / self.primary_issues as f64
        }
    }

    /// Fraction of the DRAM byte budget (`bytes_per_cycle × cycles`) this
    /// run actually moved — the bandwidth-saturation metric the benchmark
    /// output records. 1.0 means the channel never idled.
    pub fn dram_utilization(&self, dram: &DramConfig) -> f64 {
        if self.cycles == 0 || dram.bytes_per_cycle <= 0.0 {
            0.0
        } else {
            self.dram.total_bytes(dram.transfer_bytes) as f64
                / (dram.bytes_per_cycle * self.cycles as f64)
        }
    }

    /// Mean queue delay per DRAM load transaction, in cycles (0 when no
    /// load ever waited on the channel).
    pub fn avg_dram_queue_delay(&self) -> f64 {
        if self.dram.read_transfers == 0 {
            0.0
        } else {
            self.dram_queue_delay as f64 / self.dram.read_transfers as f64
        }
    }

    /// Folds the statistics of a subsequent launch into this one (summing
    /// counters, taking the maximum of high-water marks) — used by
    /// multi-launch workloads such as BFS.
    pub fn accumulate(&mut self, other: &Stats) {
        self.cycles += other.cycles;
        self.thread_instructions += other.thread_instructions;
        self.warp_instructions += other.warp_instructions;
        self.primary_issues += other.primary_issues;
        self.secondary_issues += other.secondary_issues;
        self.same_group_coissues += other.same_group_coissues;
        self.other_group_coissues += other.other_group_coissues;
        self.fetch_squashes += other.fetch_squashes;
        self.scheduler_conflicts += other.scheduler_conflicts;
        self.constraint_suspensions += other.constraint_suspensions;
        self.lookup_probes += other.lookup_probes;
        self.lookup_hits += other.lookup_hits;
        self.lsu_transactions += other.lsu_transactions;
        self.lsu_replays += other.lsu_replays;
        self.idle_cycles += other.idle_cycles;
        self.barrier_releases += other.barrier_releases;
        self.blocks_completed += other.blocks_completed;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
        self.heap.max_live_splits = self.heap.max_live_splits.max(other.heap.max_live_splits);
        self.heap.spills += other.heap.spills;
        self.heap.degraded_inserts += other.heap.degraded_inserts;
        self.heap.merges += other.heap.merges;
        self.l1.load_hits += other.l1.load_hits;
        self.l1.load_misses += other.l1.load_misses;
        self.l1.stores += other.l1.stores;
        self.dram.read_transfers += other.dram.read_transfers;
        self.dram.write_transfers += other.dram.write_transfers;
        self.dram_queued_loads += other.dram_queued_loads;
        self.dram_queue_delay += other.dram_queue_delay;
        self.dram_max_queue_delay = self.dram_max_queue_delay.max(other.dram_max_queue_delay);
    }

    /// Folds the statistics of an SM that ran *concurrently* with this one
    /// into an aggregate: counters are summed as in [`Stats::accumulate`],
    /// but `cycles` becomes the makespan (maximum), so [`Stats::ipc`] on the
    /// merged value reads as whole-machine throughput per cycle.
    pub fn merge_parallel(&mut self, other: &Stats) {
        let my_cycles = self.cycles;
        self.accumulate(other);
        self.cycles = my_cycles.max(other.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_efficiency() {
        let s = Stats {
            cycles: 100,
            thread_instructions: 3200,
            warp_instructions: 200,
            ..Stats::default()
        };
        assert_eq!(s.ipc(), 32.0);
        assert_eq!(s.simd_efficiency(32), 0.5);
    }

    #[test]
    fn zero_cycle_safety() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.simd_efficiency(32), 0.0);
        assert_eq!(s.coissue_rate(), 0.0);
    }
}
