//! The parallel multi-SM machine.
//!
//! A [`Machine`] simulates a kernel launch on `num_sms` streaming
//! multiprocessors at once, the way the paper's evaluation platform (and
//! any real GPU) runs a grid: blocks are distributed over SMs and each SM
//! executes its share independently. Per-SM simulations run concurrently
//! on host threads, which is where the wall-clock speedup of the engine
//! comes from.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of host thread count**:
//!
//! * the block→SM assignment is a pure function of `(block_id, num_sms)`
//!   (round-robin), never of host scheduling;
//! * each SM's tie-breaking RNG is seeded from `(seed, sm_id)` via
//!   [`SmConfig::for_sm`];
//! * global-memory side effects are collected in per-SM [`MemJournal`]s
//!   and merged in SM-id order after every SM finishes;
//! * per-SM [`Stats`] are merged in SM-id order.
//!
//! `tests/multi_sm_determinism.rs` pins all four properties.
//!
//! # Memory model
//!
//! Every SM starts a launch from a snapshot of global memory and runs
//! against its private copy; cross-SM effects commit at launch boundaries
//! (stores in SM order, atomic-add deltas summed). This is the bulk-
//! synchronous approximation CUDA itself licenses inside one kernel —
//! blocks may not rely on the order of other blocks' same-launch writes —
//! and it is exact for the disjoint-store and commutative-atomic patterns
//! the benchmarked workloads use. A kernel that both plain-stores *and*
//! atomically updates the same word in one launch is outside the model
//! (the merge applies stores before deltas).
//!
//! # Bandwidth model
//!
//! Under [`MemModel::PrivatePerSm`] (default) each SM owns a channel of
//! [`SmConfig::dram`] bandwidth and runs to completion independently.
//! Under [`MemModel::SharedChannel`] all SMs share a pool of
//! [`DramConfig::num_channels`](warpweave_mem::DramConfig) address-
//! interleaved [`SharedDramChannel`]s (and, when [`SmConfig::l2`] is set,
//! one [`SharedL2`] in front of them): the machine advances SMs in
//! parallel to epoch barriers (one DRAM latency wide), collects each
//! epoch's [`warpweave_mem::MemRequest`]s, sorts the whole batch into the
//! deterministic total order `(issue_cycle, rotating SM priority, seq)`,
//! probes the L2 in that order (hits are granted locally at the L2 hit
//! latency), partitions the remainder by
//! [`DramConfig::channel_of`](warpweave_mem::DramConfig::channel_of) and
//! arbitrates each channel independently — the per-channel rotation is
//! de-phased by the channel index. Grants return before the next epoch.
//! Because the epoch is never longer than the DRAM latency, a transaction
//! issued inside epoch *k* cannot complete before the barrier that grants
//! it — the co-simulation is exact, and bit-identical across host thread
//! counts.

use std::collections::HashMap;
use std::sync::Arc;

use warpweave_isa::Program;
use warpweave_mem::{
    sort_epoch_order, AccessKind, ChannelStats, MemGrant, MemRequest, Memory, SharedDramChannel,
    SharedL2,
};

use crate::config::{MemModel, SmConfig};
use crate::launch::Launch;
use crate::pipeline::{SimError, Sm};
use crate::stats::Stats;
use crate::sweep::SweepRunner;

/// Outcome of one SM shard's simulation: `(sm_id, stats + journal, or the
/// failure the shard hit)`.
type ShardOutcome = (usize, Result<(Stats, MemJournal), SimError>);

/// Epochs of total silence — no SM progress, no new requests, no pending
/// channel completions — before [`Machine::run_shared`] declares an epoch
/// livelock. Epochs are at least one DRAM latency wide, so this fires
/// well before the per-SM watchdog's 100k-cycle stall threshold and can
/// report cross-SM state the SM-local watchdog cannot see.
const LIVELOCK_EPOCHS: u32 = 128;

/// The epoch-livelock state machine of [`Machine::run_shared`], factored
/// out so the stall/reset logic is unit-testable without building a
/// multi-SM deadlock. Each epoch the machine reports whether anything
/// moved; `LIVELOCK_EPOCHS` consecutive silent epochs trip the detector.
#[derive(Debug)]
struct LivelockDetector {
    threshold: u32,
    stalled: u32,
    last_progress_sum: Option<u64>,
}

impl LivelockDetector {
    fn new(threshold: u32) -> LivelockDetector {
        LivelockDetector {
            threshold,
            stalled: 0,
            last_progress_sum: None,
        }
    }

    /// Feeds one epoch's observation; true means the machine is livelocked.
    /// `progress_sum` is the sum of every SM's last-progress cycle (any
    /// forward progress changes it), `had_traffic` whether the epoch
    /// arbitrated any requests, and `mem_pending` whether the channel
    /// still holds completions the SMs have not consumed.
    fn observe(&mut self, progress_sum: u64, had_traffic: bool, mem_pending: bool) -> bool {
        let moved = had_traffic || mem_pending || self.last_progress_sum != Some(progress_sum);
        self.last_progress_sum = Some(progress_sum);
        if moved {
            self.stalled = 0;
            return false;
        }
        self.stalled += 1;
        self.stalled >= self.threshold
    }
}

/// Global-memory side effects of one SM over one launch, recorded so a
/// [`Machine`] can merge shards deterministically.
///
/// Stores keep the last value written per word; atomic adds keep the
/// wrapping sum of deltas per word (commutative, so the cross-SM merge
/// is order-independent for atomics).
#[derive(Debug, Clone, Default)]
pub struct MemJournal {
    stores: HashMap<u32, u32>,
    atomic_deltas: HashMap<u32, u32>,
}

impl MemJournal {
    /// Records a plain store of `value` at word-aligned `addr`.
    #[inline]
    pub fn record_store(&mut self, addr: u32, value: u32) {
        self.stores.insert(addr, value);
    }

    /// Records an atomic add of `delta` at word-aligned `addr`.
    #[inline]
    pub fn record_atomic_add(&mut self, addr: u32, delta: u32) {
        let slot = self.atomic_deltas.entry(addr).or_insert(0);
        *slot = slot.wrapping_add(delta);
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty() && self.atomic_deltas.is_empty()
    }

    /// Number of distinct words touched.
    pub fn words_touched(&self) -> usize {
        self.stores.len() + self.atomic_deltas.len()
    }

    /// Commits a sequence of journals to `mem`: every journal's stores in
    /// the order given (so the caller's SM-id ordering decides write-write
    /// races deterministically), then the atomic deltas summed across all
    /// journals (commutative, hence order-independent). This is the single
    /// authoritative merge used by [`Machine::run`].
    pub fn commit_all<'a>(journals: impl IntoIterator<Item = &'a MemJournal>, mem: &mut Memory) {
        let mut summed_deltas: HashMap<u32, u32> = HashMap::new();
        for journal in journals {
            for (&addr, &value) in &journal.stores {
                mem.write_u32(addr, value);
            }
            for (&addr, &delta) in &journal.atomic_deltas {
                let slot = summed_deltas.entry(addr).or_insert(0);
                *slot = slot.wrapping_add(delta);
            }
        }
        for (&addr, &delta) in &summed_deltas {
            let old = mem.read_u32(addr);
            mem.write_u32(addr, old.wrapping_add(delta));
        }
    }
}

/// Statistics of one [`Machine::run`]: the per-SM breakdown plus the
/// aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// One entry per simulated SM, in SM-id order (empty shards included
    /// as default stats so indices always equal SM ids).
    pub per_sm: Vec<Stats>,
    /// Counters summed across SMs with `cycles` = the makespan
    /// (see [`Stats::merge_parallel`]).
    pub total: Stats,
    /// Shared-channel traffic/contention counters. All-zero under
    /// [`MemModel::PrivatePerSm`] (per-SM traffic still appears in each
    /// [`Stats::dram`]).
    pub channel: ChannelStats,
}

impl MachineStats {
    /// Whole-machine thread-instructions per makespan cycle.
    pub fn ipc(&self) -> f64 {
        self.total.ipc()
    }

    /// Shared-channel bandwidth saturation over the makespan: fraction of
    /// the channel's byte budget actually moved (0 under
    /// [`MemModel::PrivatePerSm`]).
    pub fn channel_utilization(&self, bytes_per_cycle: f64) -> f64 {
        self.channel.utilization(self.total.cycles, bytes_per_cycle)
    }

    /// Folds a subsequent launch's machine stats into this one (summing,
    /// like [`Stats::accumulate`], launch after launch).
    pub fn accumulate(&mut self, other: &MachineStats) {
        if self.per_sm.len() < other.per_sm.len() {
            self.per_sm.resize(other.per_sm.len(), Stats::default());
        }
        for (mine, theirs) in self.per_sm.iter_mut().zip(&other.per_sm) {
            mine.accumulate(theirs);
        }
        self.total.accumulate(&other.total);
        self.channel.accumulate(&other.channel);
    }
}

/// A whole simulated GPU: `num_sms` SMs sharing a kernel and a global
/// memory, simulated in parallel on host threads.
///
/// # Examples
/// ```
/// use warpweave_core::{Launch, Machine, SmConfig};
/// use warpweave_isa::{KernelBuilder, SpecialReg, r};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut k = KernelBuilder::new("demo");
/// k.mov(r(0), SpecialReg::Tid);
/// k.exit();
/// let launch = Launch::new(k.build()?, 16, 256);
/// let mut machine = Machine::new(SmConfig::sbi(), 4, launch)?;
/// let stats = machine.run(1_000_000)?;
/// assert_eq!(stats.per_sm.len(), 4);
/// assert!(stats.ipc() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    cfg: SmConfig,
    num_sms: usize,
    threads: Option<usize>,
    program: Arc<Program>,
    grid_blocks: u32,
    block_threads: u32,
    params: Vec<u32>,
    mem: Memory,
    stats: MachineStats,
}

impl Machine {
    /// Builds a machine of `num_sms` SMs for `launch` under `cfg`.
    ///
    /// # Errors
    /// Configuration validation failures, empty programs, zero SMs.
    pub fn new(cfg: SmConfig, num_sms: usize, launch: Launch) -> Result<Machine, String> {
        cfg.validate()?;
        if num_sms == 0 {
            return Err("machine needs at least one SM".into());
        }
        if launch.program.is_empty() {
            return Err("empty program".into());
        }
        let warps_per_block = (launch.block_threads as usize).div_ceil(cfg.warp_width);
        if warps_per_block > cfg.num_warps {
            return Err(format!(
                "block of {} threads needs {warps_per_block} warps; each SM has {}",
                launch.block_threads, cfg.num_warps
            ));
        }
        Ok(Machine {
            cfg,
            num_sms,
            threads: None,
            program: Arc::new(launch.program),
            grid_blocks: launch.grid_blocks,
            block_threads: launch.block_threads,
            params: launch.params,
            mem: Memory::new(),
            stats: MachineStats::default(),
        })
    }

    /// Caps the host threads used to simulate SMs (builder style). The
    /// default is one thread per available core. Results never depend on
    /// this setting — only wall-clock time does.
    pub fn with_threads(mut self, n: usize) -> Machine {
        self.threads = Some(n);
        self
    }

    /// Number of simulated SMs.
    pub fn num_sms(&self) -> usize {
        self.num_sms
    }

    /// The block ids SM `sm_id` simulates: round-robin over the grid, a
    /// pure function of the ids so results cannot depend on host timing.
    pub fn shard(&self, sm_id: usize) -> Vec<u32> {
        (0..self.grid_blocks)
            .filter(|b| (*b as usize) % self.num_sms == sm_id)
            .collect()
    }

    /// Global memory (for writing inputs before `run` and reading results
    /// after).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Global memory, read-only.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Consumes the machine and hands back its global memory (to seed the
    /// next launch of a multi-kernel workload).
    pub fn into_memory(self) -> Memory {
        self.mem
    }

    /// Replaces global memory wholesale.
    pub fn set_memory(&mut self, mem: Memory) {
        self.mem = mem;
    }

    /// Statistics of the last [`Machine::run`].
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Runs the launch to completion, simulating SMs in parallel, and
    /// merges per-SM statistics and memory effects deterministically.
    /// Dispatches on [`SmConfig::mem_model`]: private channels run each
    /// shard to completion independently; the shared channel co-simulates
    /// the shards in epochs around one arbitrated bandwidth pool.
    ///
    /// # Errors
    /// The first (by SM id) [`SimError`] any SM hits.
    pub fn run(&mut self, max_cycles: u64) -> Result<&MachineStats, SimError> {
        match self.cfg.mem_model {
            MemModel::PrivatePerSm => self.run_private(max_cycles),
            MemModel::SharedChannel => self.run_shared(max_cycles),
        }
    }

    /// The non-empty shards of the grid, in SM-id order.
    fn nonempty_shards(&self) -> Vec<(usize, Vec<u32>)> {
        (0..self.num_sms)
            .map(|sm| (sm, self.shard(sm)))
            .filter(|(_, blocks)| !blocks.is_empty())
            .collect()
    }

    /// Folds per-SM outcomes into `self.stats`/`self.mem` in SM-id order.
    fn merge_shards(
        &mut self,
        outcomes: Vec<(usize, Stats, MemJournal)>,
        channel: ChannelStats,
    ) -> &MachineStats {
        let mut per_sm = vec![Stats::default(); self.num_sms];
        let mut journals: Vec<MemJournal> = Vec::with_capacity(outcomes.len());
        for (sm_id, stats, journal) in outcomes {
            per_sm[sm_id] = stats;
            journals.push(journal);
        }
        MemJournal::commit_all(&journals, &mut self.mem);
        let mut total = Stats::default();
        for stats in &per_sm {
            total.merge_parallel(stats);
        }
        self.stats = MachineStats {
            per_sm,
            total,
            channel,
        };
        &self.stats
    }

    /// Private-channel mode: every shard runs to completion on its own.
    fn run_private(&mut self, max_cycles: u64) -> Result<&MachineStats, SimError> {
        let shards = self.nonempty_shards();
        let runner = match self.threads {
            Some(n) => SweepRunner::with_threads(n),
            None => SweepRunner::new(),
        };
        let cfg = &self.cfg;
        let program = &self.program;
        let base_mem = &self.mem;
        let (grid, threads, params) = (self.grid_blocks, self.block_threads, &self.params);
        let results: Vec<ShardOutcome> = runner.run(&shards, |(sm_id, blocks)| {
            let outcome = (|| {
                let mut sm = Sm::for_blocks(
                    cfg.for_sm(*sm_id),
                    Arc::clone(program),
                    grid,
                    threads,
                    params.clone(),
                    blocks.clone(),
                )
                .map_err(|e| SimError::Setup {
                    detail: format!("SM {sm_id} setup: {e}"),
                })?;
                sm.set_sm_id(*sm_id as u32);
                sm.set_memory(base_mem.clone());
                sm.enable_mem_journal();
                let stats = sm.run(max_cycles)?.clone();
                let journal = sm.take_mem_journal().expect("journal was enabled");
                Ok((stats, journal))
            })();
            (*sm_id, outcome)
        });

        // Merge in SM-id order (the runner already preserves input order;
        // the sort is a belt-and-braces guarantee of the contract).
        let mut results = results;
        results.sort_by_key(|(sm_id, _)| *sm_id);

        let mut outcomes = Vec::with_capacity(results.len());
        for (sm_id, outcome) in results {
            let (stats, journal) = outcome?;
            outcomes.push((sm_id, stats, journal));
        }
        Ok(self.merge_shards(outcomes, ChannelStats::default()))
    }

    /// Shared-channel mode: epoch-barriered co-simulation around one
    /// arbitrated bandwidth pool (see the module docs for the contract).
    fn run_shared(&mut self, max_cycles: u64) -> Result<&MachineStats, SimError> {
        let mut ids: Vec<usize> = Vec::new();
        let mut sms: Vec<Sm> = Vec::new();
        for (sm_id, blocks) in self.nonempty_shards() {
            let mut sm = Sm::for_blocks(
                self.cfg.for_sm(sm_id),
                Arc::clone(&self.program),
                self.grid_blocks,
                self.block_threads,
                self.params.clone(),
                blocks,
            )
            .map_err(|e| SimError::Setup {
                detail: format!("SM {sm_id} setup: {e}"),
            })?;
            sm.set_sm_id(sm_id as u32);
            sm.attach_shared_channel();
            sm.set_memory(self.mem.clone());
            sm.enable_mem_journal();
            ids.push(sm_id);
            sms.push(sm);
        }

        let runner = match self.threads {
            Some(n) => SweepRunner::with_threads(n),
            None => SweepRunner::new(),
        };
        let num_channels = self.cfg.dram.num_channels.max(1) as usize;
        let mut channels: Vec<SharedDramChannel> = (0..num_channels)
            .map(|_| SharedDramChannel::new(self.cfg.dram))
            .collect();
        let mut l2 = self.cfg.l2.map(SharedL2::new);
        let epoch_len = self.cfg.mem_epoch_cycles();
        let num_sms = self.num_sms as u32;
        let mut epoch = 0u64;
        let mut epoch_end = epoch_len;
        let mut livelock = LivelockDetector::new(LIVELOCK_EPOCHS);
        loop {
            // Parallel phase: every SM advances to the barrier (or to
            // completion) on its own worker thread.
            let stepped = runner.run_mut(&mut sms, |sm| sm.run_until(epoch_end, max_cycles));
            for outcome in stepped {
                outcome?; // first error in SM-id order
            }
            // Serial phase: arbitrate this epoch's transactions in the
            // deterministic total order and hand the grants back.
            let mut batch = Vec::new();
            for sm in &mut sms {
                batch.extend(sm.drain_mem_requests());
            }
            let had_traffic = !batch.is_empty();
            if had_traffic {
                // One machine-wide deterministic order first: the L2 sees
                // probes in the exact sequence a single channel would grant
                // them, so its replacement state — and every hit/miss — is
                // a pure function of the request set.
                sort_epoch_order(epoch, num_sms, &mut batch);
                let mut grants: Vec<MemGrant> = Vec::with_capacity(batch.len());
                let mut per_channel: Vec<Vec<MemRequest>> = vec![Vec::new(); num_channels];
                for req in batch {
                    if let Some(l2) = &mut l2 {
                        if req.is_write {
                            // Write-through/no-allocate: refresh recency,
                            // still pay the off-chip transfer.
                            l2.access_store(req.addr);
                        } else if l2.access_load(req.addr, req.sm_id) == AccessKind::Hit {
                            grants.push(MemGrant {
                                sm_id: req.sm_id,
                                seq: req.seq,
                                ready_cycle: req.issue_cycle + l2.config().hit_latency as u64,
                                queue_delay: 0,
                                is_write: false,
                            });
                            continue;
                        }
                    }
                    per_channel[self.cfg.dram.channel_of(req.addr) as usize].push(req);
                }
                for (ch_idx, reqs) in per_channel.into_iter().enumerate() {
                    // Offsetting the epoch by the channel index de-phases
                    // the priority rotations so no SM holds top priority
                    // on every channel of the same epoch.
                    grants.extend(channels[ch_idx].arbitrate_epoch(
                        epoch + ch_idx as u64,
                        num_sms,
                        reqs,
                    ));
                }
                for grant in grants {
                    let idx = ids
                        .binary_search(&(grant.sm_id as usize))
                        .expect("grant routed to a known SM");
                    sms[idx].deliver_mem_grants(std::slice::from_ref(&grant));
                }
            }
            if sms.iter().all(Sm::is_done) {
                break;
            }
            epoch += 1;
            // Machine-level idle fast-forward: when every active SM has
            // already jumped past the next barrier (nothing in flight to
            // arbitrate in between), move the barrier to the first cycle
            // any of them can act again instead of ticking empty epochs.
            let min_active = sms
                .iter()
                .filter(|sm| !sm.is_done())
                .map(Sm::cycle)
                .min()
                .unwrap_or(epoch_end);
            // Epoch-livelock watchdog: epochs keep ticking but no SM
            // progresses, no requests arrive and the channel holds no
            // undelivered completion — cross-SM silence the per-SM
            // watchdog would only report 100k cycles later, without the
            // machine-wide view.
            let progress_sum: u64 = sms.iter().map(Sm::last_progress_cycle).sum();
            for channel in &mut channels {
                channel.retire_completions_before(min_active);
            }
            let mem_pending = channels
                .iter()
                .any(|ch| ch.next_completion_at_or_after(min_active).is_some());
            if livelock.observe(progress_sum, had_traffic, mem_pending) {
                return Err(Self::livelock_error(&sms, epoch, &channels));
            }
            epoch_end = (epoch_end + epoch_len).max(min_active.saturating_add(1));
        }

        let outcomes = ids
            .iter()
            .zip(&mut sms)
            .map(|(&sm_id, sm)| {
                let stats = sm.stats().clone();
                let journal = sm.take_mem_journal().expect("journal was enabled");
                (sm_id, stats, journal)
            })
            .collect();
        let mut channel_total = ChannelStats::default();
        for channel in &channels {
            channel_total.accumulate(&channel.stats());
        }
        if let Some(l2) = &l2 {
            let s = l2.stats();
            channel_total.l2_hits += s.hits;
            channel_total.l2_misses += s.misses;
            channel_total.l2_cross_sm_evictions += s.cross_sm_evictions;
        }
        Ok(self.merge_shards(outcomes, channel_total))
    }

    /// The [`SimError::Deadlock`] reported when the epoch-livelock
    /// watchdog fires: machine-wide summary plus every stuck SM's
    /// per-warp diagnosis.
    fn livelock_error(sms: &[Sm], epoch: u64, channels: &[SharedDramChannel]) -> SimError {
        let stuck: Vec<&Sm> = sms.iter().filter(|sm| !sm.is_done()).collect();
        let outstanding: usize = channels
            .iter()
            .map(SharedDramChannel::outstanding_transfers)
            .sum();
        let mut detail = format!(
            "shared-channel epoch livelock: {LIVELOCK_EPOCHS} consecutive silent epochs \
             (through epoch {epoch}, {outstanding} outstanding channel transfer(s) \
             across {} channel(s)); stuck SMs:",
            channels.len()
        );
        for sm in &stuck {
            detail.push_str(&format!(
                " sm{} at cycle {} (last progress {})",
                sm.sm_id(),
                sm.cycle(),
                sm.last_progress_cycle()
            ));
        }
        SimError::Deadlock {
            cycle: sms.iter().map(Sm::cycle).max().unwrap_or(0),
            last_progress: stuck
                .iter()
                .map(|sm| sm.last_progress_cycle())
                .max()
                .unwrap_or(0),
            kernel: stuck
                .first()
                .map_or_else(String::new, |sm| sm.program_name().to_string()),
            detail,
            warps: stuck.iter().flat_map(|sm| sm.warp_diagnosis()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_isa::{r, KernelBuilder, SpecialReg};

    fn store_tid_launch(grid: u32) -> Launch {
        let mut k = KernelBuilder::new("store_tid");
        k.mov(r(0), SpecialReg::CtaId);
        k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
        k.shl(r(1), r(0), 2i32);
        k.st(r(1), 0x1000, r(0));
        k.exit();
        Launch::new(k.build().unwrap(), grid, 128)
    }

    #[test]
    fn shards_partition_the_grid() {
        let m = Machine::new(SmConfig::baseline(), 3, store_tid_launch(10)).unwrap();
        let mut seen: Vec<u32> = (0..3).flat_map(|s| m.shard(s)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u32>>());
        assert_eq!(m.shard(0), vec![0, 3, 6, 9]);
    }

    #[test]
    fn single_sm_machine_matches_standalone_sm() {
        let launch = store_tid_launch(4);
        let mut sm = Sm::new(SmConfig::baseline(), launch.clone()).unwrap();
        let solo = sm.run(1_000_000).unwrap().clone();
        let mut m = Machine::new(SmConfig::baseline(), 1, launch).unwrap();
        let stats = m.run(1_000_000).unwrap();
        assert_eq!(stats.per_sm[0], solo);
        assert_eq!(stats.total, solo);
        for i in 0..4 * 128u32 {
            assert_eq!(
                m.memory().read_u32(0x1000 + 4 * i),
                sm.memory().read_u32(0x1000 + 4 * i)
            );
        }
    }

    #[test]
    fn multi_sm_merges_disjoint_stores() {
        let mut m = Machine::new(SmConfig::sbi(), 4, store_tid_launch(8)).unwrap();
        m.run(1_000_000).unwrap();
        for i in 0..8 * 128u32 {
            assert_eq!(m.memory().read_u32(0x1000 + 4 * i), i, "word {i}");
        }
        assert!(m.stats().ipc() > 0.0);
        assert_eq!(m.stats().per_sm.len(), 4);
    }

    #[test]
    fn livelock_detector_requires_sustained_silence() {
        let mut d = LivelockDetector::new(3);
        // First observation establishes the baseline — never a trip.
        assert!(!d.observe(100, false, false));
        // Progress resets the stall counter.
        assert!(!d.observe(150, false, false));
        // Pure silence accumulates...
        assert!(!d.observe(150, false, false));
        assert!(!d.observe(150, false, false));
        // ...and trips at the threshold.
        assert!(d.observe(150, false, false));
    }

    #[test]
    fn livelock_detector_resets_on_traffic_or_pending_memory() {
        let mut d = LivelockDetector::new(2);
        assert!(!d.observe(9, false, false));
        assert!(!d.observe(9, true, false), "traffic resets");
        assert!(!d.observe(9, false, true), "pending completion resets");
        assert!(!d.observe(9, false, false));
        assert!(
            d.observe(9, false, false),
            "silence after resets still trips"
        );
    }

    #[test]
    fn journal_commit_all_merges_stores_and_atomics() {
        let mut j1 = MemJournal::default();
        let mut j2 = MemJournal::default();
        j1.record_atomic_add(0x40, 5);
        j2.record_atomic_add(0x40, 7);
        j1.record_store(0x80, 1);
        j2.record_store(0x80, 2); // later journal wins write-write races
        assert!(!j1.is_empty());
        assert_eq!(j1.words_touched(), 2);

        let mut mem = Memory::new();
        mem.write_u32(0x40, 100);
        MemJournal::commit_all([&j1, &j2], &mut mem);
        assert_eq!(mem.read_u32(0x40), 112, "base + summed deltas");
        assert_eq!(mem.read_u32(0x80), 2, "stores applied in journal order");

        // Commit order of the journals must not matter for atomics.
        let mut mem2 = Memory::new();
        mem2.write_u32(0x40, 100);
        MemJournal::commit_all([&j2, &j1], &mut mem2);
        assert_eq!(mem2.read_u32(0x40), 112);
        assert_eq!(mem2.read_u32(0x80), 1);
    }
}
