//! Deterministic fault injection for the sweep / checkpoint robustness
//! paths.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (CLI flag or the
//! [`FAULTS_ENV`] environment variable) and then armed into a
//! [`FaultInjector`], which the bench harness consults once per cell
//! attempt and the checkpoint writer consults once per appended record.
//! Everything is a pure function of the plan and the attempt counters —
//! no wall clock, no global RNG — so an injected failure reproduces
//! bit-identically at any host thread count and under `--salvage`
//! replays.
//!
//! # Spec grammar
//!
//! A plan is a `;`-separated list of rules:
//!
//! | rule | effect |
//! |------|--------|
//! | `panic@cell:IDX` | panic every attempt of the cell at job index `IDX` |
//! | `sim@cell:IDX` | fail every attempt of cell `IDX` with a simulated [`crate::SimError`]-style error |
//! | `panic@key:KEY` / `sim@key:KEY` | same, targeting the cell whose key (`workload/config`) equals `KEY` |
//! | `...*TIMES` | suffix: only the first `TIMES` attempts fail (so retries succeed) |
//! | `torn@record:IDX:KEEP` | cut checkpoint record number `IDX` to its first `KEEP` bytes |
//!
//! Cell indices refer to a cell's position in the full job grid (stable
//! across resumes), not its position among the cells remaining.
//!
//! # Examples
//! ```
//! use warpweave_core::faultinject::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::parse("panic@cell:3*1; torn@record:2:10").unwrap();
//! let inj = plan.arm();
//! // First attempt on cell 3 fails, the retry succeeds.
//! assert_eq!(inj.cell_fault(3, "BFS/Baseline"), Some(FaultKind::Panic));
//! assert_eq!(inj.cell_fault(3, "BFS/Baseline"), None);
//! // Checkpoint record 2 is torn after 10 bytes.
//! assert_eq!(inj.torn_write(2), Some(10));
//! assert_eq!(inj.torn_write(1), None);
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

/// Environment variable holding a fault-plan spec (same grammar as
/// [`FaultPlan::parse`]). Read by [`FaultPlan::from_env`].
pub const FAULTS_ENV: &str = "WARPWEAVE_FAULTS";

/// What an injected cell fault does to the attempt it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The cell closure panics (exercises `catch_unwind` containment).
    Panic,
    /// The cell closure returns a simulation-style error.
    SimError,
}

/// Which sweep cell a rule targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellTarget {
    /// The cell at this index in the full job grid.
    Index(usize),
    /// The cell whose `workload/config` key equals this string.
    Key(String),
}

/// One cell-fault rule: target, effect, and how many attempts it poisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFault {
    /// Which cell the rule fires on.
    pub target: CellTarget,
    /// Panic or simulated error.
    pub kind: FaultKind,
    /// Number of attempts that fail before the cell is allowed to
    /// succeed (`u32::MAX` = permanent fault).
    pub times: u32,
}

/// A torn-write rule: the checkpoint record at index `record` is written
/// short — only its first `keep_bytes` bytes reach the file — and the
/// append reports an I/O error, leaving a torn tail for `--salvage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWrite {
    /// Index of the record (0-based count of cells already in the store
    /// at write time) to tear.
    pub record: usize,
    /// Bytes of the encoded line that reach the file.
    pub keep_bytes: usize,
}

/// A parsed, inert fault plan. Call [`FaultPlan::arm`] to get the
/// stateful [`FaultInjector`] the harness consults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Cell-fault rules, in spec order (first match wins).
    pub cells: Vec<CellFault>,
    /// Torn-write rules for the checkpoint writer.
    pub torn: Vec<TornWrite>,
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    /// Returns a human-readable message naming the offending rule.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for rule in spec.split(';') {
            let rule = rule.trim();
            if rule.is_empty() {
                continue;
            }
            if let Some(rest) = rule.strip_prefix("torn@record:") {
                let (idx, keep) = rest
                    .split_once(':')
                    .ok_or_else(|| format!("torn rule `{rule}`: expected torn@record:IDX:KEEP"))?;
                plan.torn.push(TornWrite {
                    record: idx
                        .parse()
                        .map_err(|e| format!("torn rule `{rule}`: bad record index: {e}"))?,
                    keep_bytes: keep
                        .parse()
                        .map_err(|e| format!("torn rule `{rule}`: bad byte count: {e}"))?,
                });
                continue;
            }
            let (head, target) = rule
                .split_once('@')
                .ok_or_else(|| format!("rule `{rule}`: expected KIND@TARGET"))?;
            let kind = match head {
                "panic" => FaultKind::Panic,
                "sim" => FaultKind::SimError,
                other => return Err(format!("rule `{rule}`: unknown fault kind `{other}`")),
            };
            let (target, times) = match target.rsplit_once('*') {
                Some((t, n)) => (
                    t,
                    n.parse::<u32>()
                        .map_err(|e| format!("rule `{rule}`: bad attempt count: {e}"))?,
                ),
                None => (target, u32::MAX),
            };
            let target = if let Some(idx) = target.strip_prefix("cell:") {
                CellTarget::Index(
                    idx.parse()
                        .map_err(|e| format!("rule `{rule}`: bad cell index: {e}"))?,
                )
            } else if let Some(key) = target.strip_prefix("key:") {
                CellTarget::Key(key.to_string())
            } else {
                return Err(format!(
                    "rule `{rule}`: expected cell:IDX or key:KEY target"
                ));
            };
            plan.cells.push(CellFault {
                target,
                kind,
                times,
            });
        }
        Ok(plan)
    }

    /// Reads a plan from the [`FAULTS_ENV`] environment variable.
    /// `Ok(None)` when the variable is unset or empty.
    ///
    /// # Errors
    /// Same as [`FaultPlan::parse`].
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty() && self.torn.is_empty()
    }

    /// Arms the plan: wraps it in the attempt-counting [`FaultInjector`].
    pub fn arm(self) -> FaultInjector {
        FaultInjector {
            plan: self,
            attempts: Mutex::new(HashMap::new()),
        }
    }
}

/// An armed [`FaultPlan`] with per-cell attempt counters. Shared across
/// worker threads behind an `Arc`; the counters are keyed on
/// `(rule index, cell index)`, never on completion order, so verdicts
/// are identical at any host thread count.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    attempts: Mutex<HashMap<(usize, usize), u32>>,
}

impl FaultInjector {
    /// Consults the plan for one attempt of the cell at `index` with key
    /// `key`, counting the attempt against the first matching rule.
    /// Returns the fault to inject, or `None` when the attempt should
    /// run normally (no rule matches, or the matching rule's `times`
    /// budget is spent).
    pub fn cell_fault(&self, index: usize, key: &str) -> Option<FaultKind> {
        let rule_hit = self
            .plan
            .cells
            .iter()
            .enumerate()
            .find(|(_, r)| match &r.target {
                CellTarget::Index(i) => *i == index,
                CellTarget::Key(k) => k == key,
            });
        let (ri, rule) = rule_hit?;
        let mut attempts = self
            .attempts
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let n = attempts.entry((ri, index)).or_insert(0);
        *n += 1;
        (*n <= rule.times).then_some(rule.kind)
    }

    /// Returns `Some(keep_bytes)` when the checkpoint record at
    /// `record_index` should be written torn, `None` otherwise.
    pub fn torn_write(&self, record_index: usize) -> Option<usize> {
        self.plan
            .torn
            .iter()
            .find(|t| t.record == record_index)
            .map(|t| t.keep_bytes)
    }

    /// The plan this injector was armed from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse("panic@cell:7; sim@key:BFS/SBI*2 ;torn@record:0:5").unwrap();
        assert_eq!(
            plan.cells,
            vec![
                CellFault {
                    target: CellTarget::Index(7),
                    kind: FaultKind::Panic,
                    times: u32::MAX,
                },
                CellFault {
                    target: CellTarget::Key("BFS/SBI".into()),
                    kind: FaultKind::SimError,
                    times: 2,
                },
            ]
        );
        assert_eq!(
            plan.torn,
            vec![TornWrite {
                record: 0,
                keep_bytes: 5
            }]
        );
    }

    #[test]
    fn rejects_malformed_rules() {
        for bad in [
            "panic",
            "boom@cell:1",
            "panic@cell:x",
            "panic@warp:1",
            "panic@cell:1*y",
            "torn@record:3",
            "torn@record:a:5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse(" ; ;").unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn attempt_budget_counts_per_cell() {
        let inj = FaultPlan::parse("sim@cell:2*2").unwrap().arm();
        assert_eq!(inj.cell_fault(2, "a/b"), Some(FaultKind::SimError));
        assert_eq!(inj.cell_fault(2, "a/b"), Some(FaultKind::SimError));
        assert_eq!(inj.cell_fault(2, "a/b"), None, "budget spent");
        assert_eq!(inj.cell_fault(1, "a/b"), None, "other cells untouched");
    }

    #[test]
    fn key_target_matches_exact_key() {
        let inj = FaultPlan::parse("panic@key:BFS/SBI").unwrap().arm();
        assert_eq!(inj.cell_fault(0, "BFS/SBI"), Some(FaultKind::Panic));
        assert_eq!(inj.cell_fault(1, "BFS/SBI+SWI"), None);
    }

    #[test]
    fn permanent_fault_never_clears() {
        let inj = FaultPlan::parse("panic@cell:0").unwrap().arm();
        for _ in 0..10 {
            assert_eq!(inj.cell_fault(0, "k"), Some(FaultKind::Panic));
        }
    }
}
