//! Parallel batch execution of independent simulation jobs.
//!
//! Everything above the single-SM pipeline that wants host-level
//! parallelism — the multi-SM [`crate::machine::Machine`], the benchmark
//! harness's `workload × frontend × config` matrices, criterion sweeps —
//! funnels through [`SweepRunner::run`]: a deterministic parallel map
//! that returns results in job order regardless of how many worker
//! threads execute them.

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

/// A parallel job runner with an optional thread cap.
///
/// # Examples
/// ```
/// use warpweave_core::SweepRunner;
///
/// let jobs: Vec<u64> = (0..64).collect();
/// let squares = SweepRunner::with_threads(4).run(&jobs, |&j| j * j);
/// assert_eq!(squares[9], 81);
/// ```
#[derive(Debug, Default)]
pub struct SweepRunner {
    pool: Option<ThreadPool>,
}

impl SweepRunner {
    /// A runner using the ambient thread budget (all available cores, or
    /// whatever rayon pool the caller installed).
    pub fn new() -> SweepRunner {
        SweepRunner { pool: None }
    }

    /// A runner capped at `threads` workers. `run` results are identical
    /// for every cap — only wall-clock time changes.
    pub fn with_threads(threads: usize) -> SweepRunner {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        SweepRunner { pool: Some(pool) }
    }

    /// The worker budget `run` will use.
    pub fn threads(&self) -> usize {
        match &self.pool {
            Some(pool) => pool.current_num_threads(),
            None => rayon::current_num_threads(),
        }
    }

    /// Maps `f` over `jobs` in parallel, returning results in job order.
    ///
    /// `f` must be a pure function of its job for the output to be
    /// deterministic — every simulation entry point that goes through
    /// here (seeded SMs, prepared workloads) satisfies that.
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync + Send,
        R: Send,
        F: Fn(&J) -> R + Sync + Send,
    {
        let map = || jobs.par_iter().map(&f).collect();
        match &self.pool {
            Some(pool) => pool.install(map),
            None => map(),
        }
    }

    /// [`SweepRunner::run`] with a completion callback: `on_done(index,
    /// &result)` fires on the worker thread the moment job `index`
    /// finishes, **in completion order** (nondeterministic), while the
    /// returned vector stays in job order as always.
    ///
    /// This is the incremental-persistence hook of the checkpointed sweep:
    /// the bench harness appends each finished cell to its
    /// [`crate::checkpoint::SweepCheckpoint`] from `on_done`, so an
    /// interrupted sweep loses at most the cells still in flight.
    /// `on_done` runs concurrently from many workers — synchronise any
    /// shared state it touches (a mutex around the checkpoint store).
    pub fn run_reporting<J, R, F, P>(&self, jobs: &[J], f: F, on_done: P) -> Vec<R>
    where
        J: Sync + Send,
        R: Send,
        F: Fn(&J) -> R + Sync + Send,
        P: Fn(usize, &R) + Sync + Send,
    {
        let indexed: Vec<(usize, &J)> = jobs.iter().enumerate().collect();
        self.run(&indexed, |&(i, job)| {
            let result = f(job);
            on_done(i, &result);
            result
        })
    }

    /// Maps `f` over `jobs` in parallel **in place**, returning results in
    /// job order. This is the epoch-step primitive of the shared-channel
    /// [`crate::Machine`]: each SM advances to the next barrier on its own
    /// worker. Each job is touched by exactly one worker per call (the
    /// per-job mutex only proves that to the borrow checker), so `f` sees
    /// no contention and the same determinism contract as [`SweepRunner::run`]
    /// applies.
    pub fn run_mut<J, R, F>(&self, jobs: &mut [J], f: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(&mut J) -> R + Sync + Send,
    {
        let cells: Vec<std::sync::Mutex<&mut J>> =
            jobs.iter_mut().map(std::sync::Mutex::new).collect();
        self.run(&cells, |cell| f(&mut cell.lock().expect("job mutex")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = SweepRunner::new().run(&jobs, |&j| 2 * j);
        assert_eq!(out, (0..200).step_by(2).collect::<Vec<usize>>());
    }

    #[test]
    fn identical_results_across_thread_caps() {
        let jobs: Vec<u64> = (0..57).collect();
        let hash = |&j: &u64| j.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 7;
        let reference = SweepRunner::with_threads(1).run(&jobs, hash);
        for threads in [2, 3, 8] {
            assert_eq!(
                SweepRunner::with_threads(threads).run(&jobs, hash),
                reference,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn run_reporting_sees_every_completion_once() {
        use std::sync::Mutex;
        let jobs: Vec<u64> = (0..37).collect();
        let seen = Mutex::new(Vec::new());
        let out = SweepRunner::with_threads(4).run_reporting(
            &jobs,
            |&j| j + 1,
            |i, &r| seen.lock().unwrap().push((i, r)),
        );
        assert_eq!(out, (1..38).collect::<Vec<u64>>());
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..37).map(|i| (i as usize, i + 1)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_mut_mutates_in_place_and_orders_results() {
        let mut jobs: Vec<u64> = (0..40).collect();
        let doubled = SweepRunner::with_threads(4).run_mut(&mut jobs, |j| {
            *j *= 2;
            *j
        });
        assert_eq!(jobs, (0..80).step_by(2).collect::<Vec<u64>>());
        assert_eq!(doubled, jobs);
    }

    #[test]
    fn reports_thread_budget() {
        assert_eq!(SweepRunner::with_threads(3).threads(), 3);
        assert!(SweepRunner::new().threads() >= 1);
    }
}
