//! Parallel batch execution of independent simulation jobs.
//!
//! Everything above the single-SM pipeline that wants host-level
//! parallelism — the multi-SM [`crate::machine::Machine`], the benchmark
//! harness's `workload × frontend × config` matrices, criterion sweeps —
//! funnels through [`SweepRunner::run`]: a deterministic parallel map
//! that returns results in job order regardless of how many worker
//! threads execute them.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

/// Why one isolated job failed (after its retry budget was spent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The job panicked; the payload rendered to a string.
    Panic(String),
    /// The job returned an error, rendered via `Display`.
    Error(String),
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Panic(msg) => write!(f, "panic: {msg}"),
            JobFailure::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

/// Outcome of one job run under [`SweepRunner::run_isolated`]: the
/// result (or the last failure) plus how many attempts were made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolatedOutcome<R> {
    /// The job's result, or the failure of its final attempt.
    pub result: Result<R, JobFailure>,
    /// Attempts made (1 = first try succeeded; `max_retries + 1` when
    /// every attempt failed).
    pub attempts: u32,
}

/// Renders a caught panic payload (the `&str` / `String` payloads
/// `panic!` produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A parallel job runner with an optional thread cap.
///
/// # Examples
/// ```
/// use warpweave_core::SweepRunner;
///
/// let jobs: Vec<u64> = (0..64).collect();
/// let squares = SweepRunner::with_threads(4).run(&jobs, |&j| j * j);
/// assert_eq!(squares[9], 81);
/// ```
#[derive(Debug, Default)]
pub struct SweepRunner {
    pool: Option<ThreadPool>,
}

impl SweepRunner {
    /// A runner using the ambient thread budget (all available cores, or
    /// whatever rayon pool the caller installed).
    pub fn new() -> SweepRunner {
        SweepRunner { pool: None }
    }

    /// A runner capped at `threads` workers. `run` results are identical
    /// for every cap — only wall-clock time changes.
    pub fn with_threads(threads: usize) -> SweepRunner {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        SweepRunner { pool: Some(pool) }
    }

    /// The worker budget `run` will use.
    pub fn threads(&self) -> usize {
        match &self.pool {
            Some(pool) => pool.current_num_threads(),
            None => rayon::current_num_threads(),
        }
    }

    /// Maps `f` over `jobs` in parallel, returning results in job order.
    ///
    /// `f` must be a pure function of its job for the output to be
    /// deterministic — every simulation entry point that goes through
    /// here (seeded SMs, prepared workloads) satisfies that.
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync + Send,
        R: Send,
        F: Fn(&J) -> R + Sync + Send,
    {
        let map = || jobs.par_iter().map(&f).collect();
        match &self.pool {
            Some(pool) => pool.install(map),
            None => map(),
        }
    }

    /// [`SweepRunner::run`] with a completion callback: `on_done(index,
    /// &result)` fires on the worker thread the moment job `index`
    /// finishes, **in completion order** (nondeterministic), while the
    /// returned vector stays in job order as always.
    ///
    /// This is the incremental-persistence hook of the checkpointed sweep:
    /// the bench harness appends each finished cell to its
    /// [`crate::checkpoint::SweepCheckpoint`] from `on_done`, so an
    /// interrupted sweep loses at most the cells still in flight.
    /// `on_done` runs concurrently from many workers — synchronise any
    /// shared state it touches (a mutex around the checkpoint store).
    pub fn run_reporting<J, R, F, P>(&self, jobs: &[J], f: F, on_done: P) -> Vec<R>
    where
        J: Sync + Send,
        R: Send,
        F: Fn(&J) -> R + Sync + Send,
        P: Fn(usize, &R) + Sync + Send,
    {
        let indexed: Vec<(usize, &J)> = jobs.iter().enumerate().collect();
        self.run(&indexed, |&(i, job)| {
            let result = f(job);
            on_done(i, &result);
            result
        })
    }

    /// Fault-isolated parallel map: each job attempt runs under
    /// `catch_unwind`, panics and `Err` returns are retried up to
    /// `max_retries` times on the same worker, and a job whose budget is
    /// spent is quarantined as a [`JobFailure`] instead of aborting the
    /// batch. Healthy jobs produce results bit-identical to
    /// [`SweepRunner::run`] at any thread count, because containment
    /// never reorders or re-seeds work — it only wraps each closure
    /// call.
    pub fn run_isolated<J, R, E, F>(
        &self,
        jobs: &[J],
        max_retries: u32,
        f: F,
    ) -> Vec<IsolatedOutcome<R>>
    where
        J: Sync + Send,
        R: Send,
        E: fmt::Display,
        F: Fn(&J) -> Result<R, E> + Sync + Send,
    {
        self.run_isolated_reporting(jobs, max_retries, f, |_, _| {})
    }

    /// [`SweepRunner::run_isolated`] with a completion callback:
    /// `on_done(index, &outcome)` fires on the worker thread the moment
    /// job `index` settles (success or quarantine), in completion order.
    /// This is the containment-aware variant of
    /// [`SweepRunner::run_reporting`] — the checkpointed sweep persists
    /// only `Ok` outcomes from here.
    pub fn run_isolated_reporting<J, R, E, F, P>(
        &self,
        jobs: &[J],
        max_retries: u32,
        f: F,
        on_done: P,
    ) -> Vec<IsolatedOutcome<R>>
    where
        J: Sync + Send,
        R: Send,
        E: fmt::Display,
        F: Fn(&J) -> Result<R, E> + Sync + Send,
        P: Fn(usize, &IsolatedOutcome<R>) + Sync + Send,
    {
        let indexed: Vec<(usize, &J)> = jobs.iter().enumerate().collect();
        self.run(&indexed, |&(i, job)| {
            let mut attempts = 0u32;
            let mut last: Option<JobFailure>;
            let outcome = loop {
                attempts += 1;
                match catch_unwind(AssertUnwindSafe(|| f(job))) {
                    Ok(Ok(r)) => {
                        break IsolatedOutcome {
                            result: Ok(r),
                            attempts,
                        }
                    }
                    Ok(Err(e)) => last = Some(JobFailure::Error(e.to_string())),
                    Err(payload) => last = Some(JobFailure::Panic(panic_message(payload.as_ref()))),
                }
                if attempts > max_retries {
                    break IsolatedOutcome {
                        result: Err(last.take().expect("at least one failed attempt")),
                        attempts,
                    };
                }
            };
            on_done(i, &outcome);
            outcome
        })
    }

    /// Maps `f` over `jobs` in parallel **in place**, returning results in
    /// job order. This is the epoch-step primitive of the shared-channel
    /// [`crate::Machine`]: each SM advances to the next barrier on its own
    /// worker. Each job is touched by exactly one worker per call (the
    /// per-job mutex only proves that to the borrow checker), so `f` sees
    /// no contention and the same determinism contract as [`SweepRunner::run`]
    /// applies.
    pub fn run_mut<J, R, F>(&self, jobs: &mut [J], f: F) -> Vec<R>
    where
        J: Send,
        R: Send,
        F: Fn(&mut J) -> R + Sync + Send,
    {
        let cells: Vec<std::sync::Mutex<&mut J>> =
            jobs.iter_mut().map(std::sync::Mutex::new).collect();
        // Poison-tolerant: a panic elsewhere in the batch must not turn
        // into a second, spurious mutex abort here.
        self.run(&cells, |cell| {
            f(&mut cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = SweepRunner::new().run(&jobs, |&j| 2 * j);
        assert_eq!(out, (0..200).step_by(2).collect::<Vec<usize>>());
    }

    #[test]
    fn identical_results_across_thread_caps() {
        let jobs: Vec<u64> = (0..57).collect();
        let hash = |&j: &u64| j.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 7;
        let reference = SweepRunner::with_threads(1).run(&jobs, hash);
        for threads in [2, 3, 8] {
            assert_eq!(
                SweepRunner::with_threads(threads).run(&jobs, hash),
                reference,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn run_reporting_sees_every_completion_once() {
        use std::sync::Mutex;
        let jobs: Vec<u64> = (0..37).collect();
        let seen = Mutex::new(Vec::new());
        let out = SweepRunner::with_threads(4).run_reporting(
            &jobs,
            |&j| j + 1,
            |i, &r| seen.lock().unwrap().push((i, r)),
        );
        assert_eq!(out, (1..38).collect::<Vec<u64>>());
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..37).map(|i| (i as usize, i + 1)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_mut_mutates_in_place_and_orders_results() {
        let mut jobs: Vec<u64> = (0..40).collect();
        let doubled = SweepRunner::with_threads(4).run_mut(&mut jobs, |j| {
            *j *= 2;
            *j
        });
        assert_eq!(jobs, (0..80).step_by(2).collect::<Vec<u64>>());
        assert_eq!(doubled, jobs);
    }

    #[test]
    fn reports_thread_budget() {
        assert_eq!(SweepRunner::with_threads(3).threads(), 3);
        assert!(SweepRunner::new().threads() >= 1);
    }

    #[test]
    fn isolated_contains_panics_and_errors() {
        let jobs: Vec<u64> = (0..12).collect();
        let out = SweepRunner::with_threads(4).run_isolated(&jobs, 1, |&j| match j {
            3 => panic!("injected panic on job {j}"),
            7 => Err(format!("bad job {j}")),
            _ => Ok(j * 10),
        });
        assert_eq!(out.len(), 12);
        for (i, o) in out.iter().enumerate() {
            match i {
                3 => {
                    assert_eq!(
                        o.result,
                        Err(JobFailure::Panic("injected panic on job 3".into()))
                    );
                    assert_eq!(o.attempts, 2, "one retry before quarantine");
                }
                7 => {
                    assert_eq!(o.result, Err(JobFailure::Error("bad job 7".into())));
                    assert_eq!(o.attempts, 2);
                }
                _ => {
                    assert_eq!(o.result, Ok(i as u64 * 10));
                    assert_eq!(o.attempts, 1);
                }
            }
        }
    }

    #[test]
    fn isolated_retry_recovers_transient_failure() {
        use std::collections::HashMap;
        use std::sync::Mutex;
        let jobs: Vec<u64> = (0..6).collect();
        let tries: Mutex<HashMap<u64, u32>> = Mutex::new(HashMap::new());
        let out = SweepRunner::with_threads(2).run_isolated(&jobs, 2, |&j| {
            let n = {
                let mut tries = tries.lock().unwrap();
                let n = tries.entry(j).or_insert(0);
                *n += 1;
                *n
            };
            if j == 4 && n == 1 {
                return Err("transient".to_string());
            }
            Ok(j + 1)
        });
        assert_eq!(out[4].result, Ok(5));
        assert_eq!(out[4].attempts, 2, "failed once, then recovered");
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, o)| o.result == Ok(i as u64 + 1)));
    }

    #[test]
    fn isolated_healthy_results_identical_across_thread_caps() {
        let jobs: Vec<u64> = (0..41).collect();
        let f = |&j: &u64| -> Result<u64, String> {
            if j == 13 {
                panic!("poison job");
            }
            Ok(j.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 9)
        };
        let reference = SweepRunner::with_threads(1).run_isolated(&jobs, 0, f);
        for threads in [2, 8] {
            assert_eq!(
                SweepRunner::with_threads(threads).run_isolated(&jobs, 0, f),
                reference,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn isolated_reporting_fires_once_per_job() {
        use std::sync::Mutex;
        let jobs: Vec<u64> = (0..9).collect();
        let seen = Mutex::new(Vec::new());
        SweepRunner::with_threads(3).run_isolated_reporting(
            &jobs,
            0,
            |&j| if j == 2 { Err("x".to_string()) } else { Ok(j) },
            |i, o| seen.lock().unwrap().push((i, o.result.is_ok())),
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..9).map(|i| (i, i != 2)).collect::<Vec<_>>());
    }
}
