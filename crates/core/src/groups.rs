//! Back-end SIMD execution groups and their issue-port occupancy.

use warpweave_isa::UnitClass;

use crate::config::GroupConfig;

/// The timing state of one SIMD group.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Static geometry.
    pub cfg: GroupConfig,
    /// First cycle at which the group's issue port is free again.
    pub port_free_at: u64,
    /// Total port-busy cycles (utilisation accounting).
    pub busy_cycles: u64,
}

/// All back-end groups of the SM.
#[derive(Debug, Clone)]
pub struct ExecGroups {
    groups: Vec<GroupState>,
}

impl ExecGroups {
    /// Instantiates groups from the configuration.
    pub fn new(cfgs: &[GroupConfig]) -> Self {
        ExecGroups {
            groups: cfgs
                .iter()
                .map(|&cfg| GroupState {
                    cfg,
                    port_free_at: 0,
                    busy_cycles: 0,
                })
                .collect(),
        }
    }

    /// Finds a group of `class` whose port is free at `now`.
    pub fn find_free(&self, class: UnitClass, now: u64) -> Option<usize> {
        self.groups
            .iter()
            .position(|g| g.cfg.class == class && g.port_free_at <= now)
    }

    /// Classes with at least one free port at `now`, as a bitmask over
    /// `UnitClass as u8`.
    pub fn free_class_mask(&self, now: u64) -> u8 {
        self.groups
            .iter()
            .filter(|g| g.port_free_at <= now)
            .fold(0u8, |m, g| m | (1 << g.cfg.class as u8))
    }

    /// True if `idx` serves `class` and is free at `now`.
    pub fn is_free(&self, idx: usize, now: u64) -> bool {
        self.groups[idx].port_free_at <= now
    }

    /// The unit class of group `idx`.
    pub fn class(&self, idx: usize) -> UnitClass {
        self.groups[idx].cfg.class
    }

    /// Issue waves needed to push a `warp_width`-wide instruction through
    /// group `idx`.
    pub fn waves(&self, idx: usize, warp_width: usize) -> u64 {
        warp_width.div_ceil(self.groups[idx].cfg.width) as u64
    }

    /// Occupies group `idx` for `cycles` starting at `now`; returns the
    /// cycle of the last wave.
    pub fn occupy(&mut self, idx: usize, now: u64, cycles: u64) -> u64 {
        debug_assert!(self.groups[idx].port_free_at <= now, "group already busy");
        self.groups[idx].port_free_at = now + cycles;
        self.groups[idx].busy_cycles += cycles;
        now + cycles - 1
    }

    /// The earliest future cycle at which any currently-busy port frees
    /// (`None` when every port is already free at `now`). Used by the
    /// pipeline's idle fast-forward to find the next scheduling event.
    pub fn next_release_after(&self, now: u64) -> Option<u64> {
        self.groups
            .iter()
            .map(|g| g.port_free_at)
            .filter(|&t| t > now)
            .min()
    }

    /// Per-group utilisation over `total_cycles`.
    pub fn utilisation(&self, total_cycles: u64) -> Vec<(UnitClass, f64)> {
        self.groups
            .iter()
            .map(|g| {
                (
                    g.cfg.class,
                    if total_cycles == 0 {
                        0.0
                    } else {
                        g.busy_cycles as f64 / total_cycles as f64
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warpweave_isa::UnitClass::*;

    fn groups() -> ExecGroups {
        ExecGroups::new(&[
            GroupConfig {
                class: Mad,
                width: 32,
            },
            GroupConfig {
                class: Mad,
                width: 32,
            },
            GroupConfig {
                class: Sfu,
                width: 8,
            },
            GroupConfig {
                class: Lsu,
                width: 32,
            },
        ])
    }

    #[test]
    fn find_and_occupy() {
        let mut g = groups();
        let a = g.find_free(Mad, 0).unwrap();
        assert_eq!(g.occupy(a, 0, 1), 0);
        // Second MAD group still free.
        let b = g.find_free(Mad, 0).unwrap();
        assert_ne!(a, b);
        g.occupy(b, 0, 1);
        assert!(g.find_free(Mad, 0).is_none());
        assert!(g.find_free(Mad, 1).is_some());
    }

    #[test]
    fn wave_counts() {
        let g = groups();
        let sfu = g.find_free(Sfu, 0).unwrap();
        assert_eq!(g.waves(sfu, 32), 4);
        assert_eq!(g.waves(sfu, 64), 8);
        let mad = g.find_free(Mad, 0).unwrap();
        assert_eq!(g.waves(mad, 32), 1);
        assert_eq!(g.waves(mad, 64), 2);
    }

    #[test]
    fn multi_wave_occupancy() {
        let mut g = groups();
        let sfu = g.find_free(Sfu, 5).unwrap();
        let last = g.occupy(sfu, 5, 4);
        assert_eq!(last, 8);
        assert!(!g.is_free(sfu, 8));
        assert!(g.is_free(sfu, 9));
    }

    #[test]
    fn utilisation_accounting() {
        let mut g = groups();
        let m = g.find_free(Mad, 0).unwrap();
        g.occupy(m, 0, 10);
        let u = g.utilisation(20);
        assert_eq!(u[0], (Mad, 0.5));
        assert_eq!(u[2], (Sfu, 0.0));
    }
}
