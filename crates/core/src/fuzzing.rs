//! Harness entry points for the seeded synthetic-kernel fuzzer.
//!
//! [`warpweave_isa::fuzz`] generates structured, always-terminating kernels;
//! this module wires them into the three checks the fuzzer pins:
//!
//! 1. **Differential** ([`check_differential`]) — every instruction of the
//!    generated kernel, driven with random issue masks over random register
//!    state, must be bit-identical between the scalar `execute_thread`
//!    reference, the SoA [`execute_warp`] path *and* the superblock trace
//!    engine ([`execute_fused`] wherever a superblock covers the pc, with
//!    the pipeline's interpreter fallback elsewhere) — the same
//!    methodology as `tests/exec_differential.rs`, but over real lowered
//!    programs instead of free-floating instruction encodings.
//! 2. **Policy sweep** ([`check_policies`]) — every policy in the global
//!    [`PolicyRegistry`] must run the kernel to completion without
//!    scoreboard violations or watchdog deadlocks; per-policy IPC is
//!    returned so callers can build scenario-diversity tables.
//! 3. **Determinism** ([`check_determinism`]) — a 4-SM [`Machine`] run must
//!    be byte-identical between 1 and 8 host threads, under both
//!    [`MemModel::PrivatePerSm`] and [`MemModel::SharedChannel`], and the
//!    final memory image must agree across the two models.
//!
//! [`run_case`] composes the three checks over one `(seed, profile)` pair,
//! greedily shrinks any failure via [`KernelPlan::shrink_candidates`], and
//! serialises the minimised kernel to a replayable [`Reproducer`].
//! [`replay_reproducer`] is the inverse: it re-runs a committed reproducer
//! (e.g. from `tests/corpus/`) through all three checks.

use crate::exec::{execute_thread, execute_warp, guard_passes, ThreadRegs};
use crate::superblock::execute_fused;
use crate::{Launch, Machine, Mask, MemModel, PolicyRegistry, Sm, SmConfig, WarpInfo, WarpRegFile};
use warpweave_isa::fuzz::{
    self, launch_params, FuzzProfile, KernelPlan, Reproducer, ATOM_BASE, INPUT_BASE, REGION_WORDS,
    STORE_BASE,
};
use warpweave_isa::{FusedOp, Instruction, Program, SuperblockSet, NUM_PREDS, NUM_REGS};
use warpweave_mem::Memory;

/// Watchdog cycle budget per policy/machine run. Generated kernels are
/// counted-loop bounded and finish in well under a million cycles; hitting
/// this budget means a scheduler deadlock or livelock.
pub const FUZZ_CYCLE_BUDGET: u64 = 50_000_000;

/// Cap on shrink-candidate evaluations per failure (each evaluation
/// re-runs the failing check on a candidate kernel).
pub const MAX_SHRINK_EVALS: usize = 300;

/// Which of the three fuzz checks a case failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzTarget {
    /// The generator itself failed to lower a plan to a valid program.
    Generator,
    /// Scalar `execute_thread` vs SoA `execute_warp` vs superblock
    /// `execute_fused` divergence.
    Differential,
    /// A registered policy deadlocked, tripped an invariant or errored.
    PolicySweep,
    /// Host-thread-count or memory-model dependent results.
    Determinism,
}

impl std::fmt::Display for FuzzTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FuzzTarget::Generator => "generator",
            FuzzTarget::Differential => "differential",
            FuzzTarget::PolicySweep => "policy-sweep",
            FuzzTarget::Determinism => "determinism",
        })
    }
}

/// A failing fuzz case, shrunk and ready to serialise.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The check that failed.
    pub target: FuzzTarget,
    /// The failure message from the (shrunk) kernel.
    pub message: String,
    /// Seed of the failing case — rerun with `WARPWEAVE_FUZZ_SEED`.
    pub seed: u64,
    /// Profile name of the failing case.
    pub profile: String,
    /// Shrink-candidate evaluations spent minimising the kernel.
    pub shrink_evals: usize,
    /// The minimised, replayable reproducer.
    pub reproducer: Reproducer,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] seed 0x{:x} profile {}: {} (shrunk in {} evals; rerun with {}=0x{:x})",
            self.target,
            self.seed,
            self.profile,
            self.message,
            self.shrink_evals,
            fuzz::SEED_ENV,
            self.seed,
        )
    }
}

/// Successful outcome of one fuzz case: the per-policy IPCs recorded by
/// the sweep, for scenario-diversity stats.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Seed the case ran with.
    pub seed: u64,
    /// Profile name the case was generated with.
    pub profile: String,
    /// Static instruction count of the lowered kernel.
    pub static_instrs: usize,
    /// `(canonical policy name, IPC)` for every registered policy.
    pub policy_ipcs: Vec<(String, f64)>,
}

/// SplitMix64 — drives all harness-side randomness (masks, initial state).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The scalar reference: guard check, execute, commit, in ascending thread
/// order, skipping unpopulated threads.
fn scalar_step(
    instr: &Instruction,
    regs: &mut [ThreadRegs],
    info: &WarpInfo,
    mask: Mask,
    populated: Mask,
    params: &[u32],
) -> (Mask, Vec<(usize, u32, u32)>) {
    let mut taken = Mask::EMPTY;
    let mut accesses = Vec::new();
    for t in mask.iter() {
        if !populated.get(t) {
            continue;
        }
        if !guard_passes(instr, &regs[t]) {
            continue;
        }
        let ti = info.thread_info(t);
        let out = execute_thread(instr, &regs[t], &ti, params);
        if out.branch_taken {
            taken = taken.with(t);
        }
        if let Some(addr) = out.mem_addr {
            accesses.push((t, addr, out.mem_data.unwrap_or(0)));
        }
        if let Some((ri, v)) = out.reg_write {
            regs[t].set_reg(ri, v);
        }
        if let Some((pi, v)) = out.pred_write {
            regs[t].set_pred(pi, v);
        }
    }
    (taken, accesses)
}

/// Returns the first architectural-state mismatch between the two layouts.
fn state_mismatch(rf: &WarpRegFile, regs: &[ThreadRegs], width: usize) -> Option<String> {
    for (t, tregs) in regs.iter().enumerate().take(width) {
        for ri in 0..NUM_REGS {
            let (a, b) = (rf.reg(t, ri), tregs.reg(ri));
            if a != b {
                return Some(format!("r{ri} of lane {t}: soa={a:#x} scalar={b:#x}"));
            }
        }
        for pi in 0..NUM_PREDS {
            let (a, b) = (rf.pred(t, pi), tregs.pred(pi));
            if a != b {
                return Some(format!("p{pi} of lane {t}: soa={a} scalar={b}"));
            }
        }
    }
    None
}

/// Per-pc fused-op lookup for the superblock band: `Some(fop)` where a
/// superblock covers the pc, `None` (interpreter fallback) elsewhere —
/// the same coverage decision the pipeline makes per issue grant.
fn fused_coverage(program: &Program) -> Vec<Option<FusedOp>> {
    let set = SuperblockSet::build(program);
    let mut map: Vec<Option<FusedOp>> = vec![None; program.instructions().len()];
    for sb in set.superblocks() {
        for (i, fop) in sb.ops.iter().enumerate() {
            map[sb.start.index() + i] = Some(fop.clone());
        }
    }
    map
}

/// Runs every instruction of `program` through all three execute paths at
/// one warp width, with random issue masks over random initial state.
#[allow(clippy::needless_range_loop)] // (t, reg) indexing mirrors the layout
fn differential_width(
    program: &Program,
    width: usize,
    state_seed: u64,
    params: &[u32],
) -> Result<(), String> {
    let full = Mask::full(width);
    let mut entropy = state_seed ^ 0xd1ff_e2e4_7a11_ce55;
    let populated = Mask::from_bits(splitmix(&mut entropy) | 1) & full;
    let shuffle = crate::LaneShuffle::ALL[(state_seed % 5) as usize];

    let mut info = WarpInfo::new(width);
    info.seed(
        ((state_seed >> 3) % 64) as u32 * width as u32,
        (state_seed >> 9) as u32 & 0xff,
        256,
        16,
        (state_seed >> 17) as u32 % 16,
        shuffle,
        width,
        16,
    );

    let fused = fused_coverage(program);

    // Identical random initial state in all three layouts.
    let mut rf = WarpRegFile::new(width);
    let mut rf_sb = WarpRegFile::new(width);
    let mut regs: Vec<ThreadRegs> = (0..width).map(|_| ThreadRegs::new()).collect();
    let mut s = state_seed;
    for t in 0..width {
        for ri in 0..NUM_REGS {
            let v = splitmix(&mut s) as u32;
            rf.set_reg(t, ri, v);
            rf_sb.set_reg(t, ri, v);
            regs[t].set_reg(ri, v);
        }
        for pi in 0..NUM_PREDS {
            let v = splitmix(&mut s) & 1 == 1;
            rf.set_pred(t, pi, v);
            rf_sb.set_pred(t, pi, v);
            regs[t].set_pred(pi, v);
        }
    }

    let mut soa_accesses: Vec<(usize, u32, u32)> = Vec::new();
    let mut sb_accesses: Vec<(usize, u32, u32)> = Vec::new();
    for (n, instr) in program.instructions().iter().enumerate() {
        // A fresh (possibly partial) issue mask per instruction.
        let mask = Mask::from_bits(splitmix(&mut entropy)) & full;
        let active = mask & populated;

        let soa_taken = execute_warp(instr, &mut rf, &info, params, active, &mut soa_accesses);
        let sb_taken = match &fused[n] {
            Some(fop) => execute_fused(fop, &mut rf_sb, &info, params, active, &mut sb_accesses),
            None => execute_warp(instr, &mut rf_sb, &info, params, active, &mut sb_accesses),
        };
        let (ref_taken, ref_accesses) =
            scalar_step(instr, &mut regs, &info, mask, populated, params);

        let ctx = format!("instr #{n} ({}) width {width}", instr.op);
        if soa_taken != ref_taken {
            return Err(format!(
                "{ctx}: taken mask diverged (soa {:#x} vs scalar {:#x})",
                soa_taken.bits(),
                ref_taken.bits()
            ));
        }
        if sb_taken != ref_taken {
            return Err(format!(
                "{ctx}: superblock taken mask diverged (fused {:#x} vs scalar {:#x})",
                sb_taken.bits(),
                ref_taken.bits()
            ));
        }
        if soa_accesses != ref_accesses {
            return Err(format!("{ctx}: access list diverged"));
        }
        if sb_accesses != ref_accesses {
            return Err(format!("{ctx}: superblock access list diverged"));
        }
        if let Some(m) = state_mismatch(&rf, &regs, width) {
            return Err(format!("{ctx}: {m}"));
        }
        if let Some(m) = state_mismatch(&rf_sb, &regs, width) {
            return Err(format!("{ctx}: superblock {m}"));
        }
        soa_accesses.clear();
        sb_accesses.clear();
    }
    Ok(())
}

/// Differential target: the kernel must be bit-identical between the
/// scalar `execute_thread` reference, the SoA [`execute_warp`] path and
/// the superblock engine ([`execute_fused`] on covered pcs, interpreter
/// fallback elsewhere) at warp widths 4, 32 and 64.
///
/// # Errors
/// Returns the first divergence (instruction, lane, register, values).
pub fn check_differential(program: &Program, seed: u64) -> Result<(), String> {
    let params = launch_params(seed);
    for width in [4usize, 32, 64] {
        differential_width(program, width, seed, &params)?;
    }
    Ok(())
}

/// Initial global memory for a generated kernel: the input region filled
/// with seed-derived words (store/atomic regions start zeroed).
fn fuzz_memory(seed: u64) -> Memory {
    let mut mem = Memory::new();
    mem.write_words(INPUT_BASE, &fuzz::input_words(seed));
    mem
}

/// Policy-sweep target: every policy registered in the global
/// [`PolicyRegistry`] must run the kernel to completion within
/// [`FUZZ_CYCLE_BUDGET`] cycles. Returns `(canonical name, IPC)` per
/// policy for scenario-diversity stats.
///
/// # Errors
/// Returns the first policy that failed to construct, tripped a
/// scoreboard/pipeline invariant or exhausted the watchdog budget.
pub fn check_policies(
    program: &Program,
    grid_blocks: u32,
    block_threads: u32,
    seed: u64,
) -> Result<Vec<(String, f64)>, String> {
    let params = launch_params(seed);
    let mut ipcs = Vec::new();
    for name in PolicyRegistry::global_names() {
        let cfg = SmConfig::with_policy(name).map_err(|e| format!("policy {name}: {e}"))?;
        let launch =
            Launch::new(program.clone(), grid_blocks, block_threads).with_params(params.clone());
        let mut sm =
            Sm::new(cfg, launch).map_err(|e| format!("policy {name}: setup failed: {e}"))?;
        sm.set_memory(fuzz_memory(seed));
        let stats = sm
            .run(FUZZ_CYCLE_BUDGET)
            .map_err(|e| format!("policy {name}: {e}"))?;
        ipcs.push((name.to_string(), stats.ipc()));
    }
    Ok(ipcs)
}

/// Fingerprint of the three fuzz memory regions after a run.
fn region_image(mem: &Memory) -> Vec<u32> {
    let mut image = mem.read_words(STORE_BASE, REGION_WORDS);
    image.extend(mem.read_words(ATOM_BASE, REGION_WORDS));
    image.extend(mem.read_words(INPUT_BASE, REGION_WORDS));
    image
}

/// Determinism target: a 4-SM [`Machine`] run of the kernel must be
/// byte-identical between 1 and 8 host threads under both
/// [`MemModel::PrivatePerSm`] and [`MemModel::SharedChannel`]. The final
/// memory image is *not* compared across the two models: conflicting
/// plain stores from different warps land in issue order, which the
/// memory contract deliberately leaves config-dependent (see
/// `machine.rs` module docs) — only same-config thread-count invariance
/// is guaranteed. The policy alternates with seed parity (Baseline /
/// SBI+SWI) so both front-end families get pinned over a long fuzz run.
///
/// # Errors
/// Returns which run pair diverged (stats or memory image) or the first
/// simulation error.
pub fn check_determinism(
    program: &Program,
    grid_blocks: u32,
    block_threads: u32,
    seed: u64,
) -> Result<(), String> {
    let policy = if seed & 1 == 0 { "Baseline" } else { "SBI+SWI" };
    let params = launch_params(seed);
    for model in [MemModel::PrivatePerSm, MemModel::SharedChannel] {
        let mut baseline: Option<(crate::MachineStats, Vec<u32>)> = None;
        for threads in [1usize, 8] {
            let cfg = SmConfig::with_policy(policy)
                .map_err(|e| format!("policy {policy}: {e}"))?
                .with_mem_model(model);
            let launch = Launch::new(program.clone(), grid_blocks, block_threads)
                .with_params(params.clone());
            let mut machine = Machine::new(cfg, 4, launch)
                .map_err(|e| format!("{model:?}/{threads}t: setup failed: {e}"))?
                .with_threads(threads);
            machine.set_memory(fuzz_memory(seed));
            let stats = machine
                .run(FUZZ_CYCLE_BUDGET)
                .map_err(|e| format!("{model:?}/{threads}t/{policy}: {e}"))?
                .clone();
            let image = region_image(machine.memory());
            match &baseline {
                None => baseline = Some((stats, image)),
                Some((stats1, image1)) => {
                    if &stats != stats1 {
                        return Err(format!(
                            "{model:?}/{policy}: stats differ between 1 and {threads} host threads"
                        ));
                    }
                    if &image != image1 {
                        return Err(format!(
                            "{model:?}/{policy}: memory image differs between 1 and {threads} host threads"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Greedily shrinks `plan` while `check` keeps failing, bounded by
/// [`MAX_SHRINK_EVALS`]. Returns the minimised plan, its program, the
/// final failure message and the evaluations spent.
fn shrink_failure<F>(
    plan: &KernelPlan,
    program: Program,
    message: String,
    check: F,
) -> (KernelPlan, Program, String, usize)
where
    F: Fn(&Program) -> Option<String>,
{
    let mut best = (plan.clone(), program, message);
    let mut evals = 0usize;
    'outer: loop {
        for cand in best.0.shrink_candidates() {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            let Ok(prog) = cand.lower() else { continue };
            evals += 1;
            if let Some(msg) = check(&prog) {
                best = (cand, prog, msg);
                continue 'outer;
            }
        }
        break;
    }
    (best.0, best.1, best.2, evals)
}

fn failure(
    target: FuzzTarget,
    plan: &KernelPlan,
    program: Program,
    message: String,
    check: impl Fn(&Program) -> Option<String>,
) -> Box<FuzzFailure> {
    let (plan, program, message, shrink_evals) = shrink_failure(plan, program, message, check);
    Box::new(FuzzFailure {
        target,
        message,
        seed: plan.seed,
        profile: plan.profile.name.to_string(),
        shrink_evals,
        reproducer: Reproducer::from_plan(&plan, program),
    })
}

/// Generates one kernel from `(seed, profile)` and runs it through all
/// three fuzz targets, shrinking and serialising any failure.
///
/// # Errors
/// A [`FuzzFailure`] holding the minimised, replayable reproducer.
pub fn run_case(seed: u64, profile: &FuzzProfile) -> Result<CaseOutcome, Box<FuzzFailure>> {
    let plan = fuzz::generate(seed, profile);
    let program = match plan.lower() {
        Ok(p) => p,
        Err(e) => {
            // The generator contract is that every plan lowers; surface
            // the seed rather than shrinking (there is nothing to run).
            let mut k = warpweave_isa::KernelBuilder::new("lower_failed");
            k.exit();
            let stub = k.build().expect("stub program");
            return Err(Box::new(FuzzFailure {
                target: FuzzTarget::Generator,
                message: e,
                seed,
                profile: profile.name.to_string(),
                shrink_evals: 0,
                reproducer: Reproducer::from_plan(&plan, stub),
            }));
        }
    };
    let (grid, block) = (profile.grid_blocks, profile.block_threads);

    if let Err(msg) = check_differential(&program, seed) {
        return Err(failure(
            FuzzTarget::Differential,
            &plan,
            program,
            msg,
            |p| check_differential(p, seed).err(),
        ));
    }
    let policy_ipcs = match check_policies(&program, grid, block, seed) {
        Ok(ipcs) => ipcs,
        Err(msg) => {
            return Err(failure(FuzzTarget::PolicySweep, &plan, program, msg, |p| {
                check_policies(p, grid, block, seed).err()
            }));
        }
    };
    if let Err(msg) = check_determinism(&program, grid, block, seed) {
        return Err(failure(FuzzTarget::Determinism, &plan, program, msg, |p| {
            check_determinism(p, grid, block, seed).err()
        }));
    }

    Ok(CaseOutcome {
        seed,
        profile: profile.name.to_string(),
        static_instrs: program.len(),
        policy_ipcs,
    })
}

/// Replays a serialised reproducer (e.g. from `tests/corpus/`) through all
/// three fuzz targets. Returns the policy-sweep IPCs on success.
///
/// # Errors
/// Returns the failing target and message.
pub fn replay_reproducer(rep: &Reproducer) -> Result<Vec<(String, f64)>, String> {
    check_differential(&rep.program, rep.seed).map_err(|e| format!("differential: {e}"))?;
    let ipcs = check_policies(&rep.program, rep.grid_blocks, rep.block_threads, rep.seed)
        .map_err(|e| format!("policy-sweep: {e}"))?;
    check_determinism(&rep.program, rep.grid_blocks, rep.block_threads, rep.seed)
        .map_err(|e| format!("determinism: {e}"))?;
    Ok(ipcs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_case_per_profile_passes() {
        for profile in FuzzProfile::all() {
            let out = run_case(0x5eed_0001, &profile).unwrap_or_else(|f| panic!("{f}"));
            assert_eq!(out.profile, profile.name);
            assert!(out.static_instrs > 0);
            assert_eq!(out.policy_ipcs.len(), PolicyRegistry::global_names().len());
            for (name, ipc) in &out.policy_ipcs {
                assert!(*ipc > 0.0, "{name} reported zero IPC");
            }
        }
    }

    #[test]
    fn replay_matches_fresh_run() {
        let profile = FuzzProfile::balanced();
        let plan = fuzz::generate(0xfeed_cafe, &profile);
        let program = plan.lower().unwrap();
        let rep = Reproducer::from_plan(&plan, program);
        let text = rep.to_text();
        let parsed = Reproducer::from_text(&text).unwrap();
        let ipcs = replay_reproducer(&parsed).unwrap();
        let fresh = run_case(0xfeed_cafe, &profile).unwrap();
        assert_eq!(ipcs, fresh.policy_ipcs, "replay must reproduce the sweep");
    }

    #[test]
    fn shrink_loop_minimises_synthetic_failure() {
        // A synthetic "failure" — any kernel with a store instruction —
        // must shrink to something small that still stores.
        let profile = FuzzProfile::memory_heavy();
        let plan = fuzz::generate(0xabad_cafe, &profile);
        let program = plan.lower().unwrap();
        let has_store = |p: &Program| {
            p.instructions()
                .iter()
                .any(|i| i.op == warpweave_isa::Op::St)
                .then(|| "has a store".to_string())
        };
        let msg = has_store(&program).expect("memory_heavy kernel should store");
        let (shrunk, prog, _, evals) = shrink_failure(&plan, program.clone(), msg, has_store);
        assert!(evals > 0, "shrinker must explore candidates");
        assert!(
            shrunk.size() < plan.size(),
            "shrinker failed to reduce the plan"
        );
        assert!(has_store(&prog).is_some(), "shrunk kernel lost the failure");
    }
}
