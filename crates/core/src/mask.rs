//! Thread/lane activity masks (up to 64-wide warps).

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not, Sub};

/// An activity mask over the threads (or lanes) of a warp.
///
/// Bit `i` set means thread/lane `i` participates. Warps are at most 64 wide
/// (the paper's SBI/SWI configurations), so a `u64` suffices.
///
/// # Examples
/// ```
/// use warpweave_core::Mask;
/// let m = Mask::full(4);
/// let (lo, hi) = (Mask::from_bits(0b0011), Mask::from_bits(0b1100));
/// assert_eq!(lo | hi, m);
/// assert!(lo.is_disjoint(hi));
/// assert!(lo.is_subset(m));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mask(u64);

impl Mask {
    /// The empty mask.
    pub const EMPTY: Mask = Mask(0);

    /// Mask with the low `width` bits set.
    ///
    /// # Panics
    /// Panics if `width > 64`.
    pub fn full(width: usize) -> Mask {
        assert!(width <= 64, "warp width {width} exceeds 64");
        if width == 64 {
            Mask(u64::MAX)
        } else {
            Mask((1u64 << width) - 1)
        }
    }

    /// Mask from raw bits.
    pub fn from_bits(bits: u64) -> Mask {
        Mask(bits)
    }

    /// Mask with a single bit set.
    pub fn single(lane: usize) -> Mask {
        assert!(lane < 64);
        Mask(1 << lane)
    }

    /// The raw bits.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// True if no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of set bits (active threads).
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if bit `i` is set.
    pub fn get(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Returns `self` with bit `i` set.
    pub fn with(self, i: usize) -> Mask {
        Mask(self.0 | (1 << i))
    }

    /// Returns `self` with bit `i` cleared.
    pub fn without(self, i: usize) -> Mask {
        Mask(self.0 & !(1 << i))
    }

    /// True if the two masks share no bit.
    pub fn is_disjoint(self, other: Mask) -> bool {
        self.0 & other.0 == 0
    }

    /// True if all of `self`'s bits are in `other`.
    pub fn is_subset(self, other: Mask) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the masks share at least one bit.
    pub fn intersects(self, other: Mask) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterator over set bit indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl BitAnd for Mask {
    type Output = Mask;
    fn bitand(self, rhs: Mask) -> Mask {
        Mask(self.0 & rhs.0)
    }
}

impl BitOr for Mask {
    type Output = Mask;
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

impl BitXor for Mask {
    type Output = Mask;
    fn bitxor(self, rhs: Mask) -> Mask {
        Mask(self.0 ^ rhs.0)
    }
}

impl Not for Mask {
    type Output = Mask;
    fn not(self) -> Mask {
        Mask(!self.0)
    }
}

/// Set difference: `a - b` keeps the bits of `a` not in `b`.
impl Sub for Mask {
    type Output = Mask;
    fn sub(self, rhs: Mask) -> Mask {
        Mask(self.0 & !rhs.0)
    }
}

impl BitAndAssign for Mask {
    fn bitand_assign(&mut self, rhs: Mask) {
        self.0 &= rhs.0;
    }
}

impl BitOrAssign for Mask {
    fn bitor_assign(&mut self, rhs: Mask) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask({:#x})", self.0)
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl FromIterator<usize> for Mask {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut m = Mask::EMPTY;
        for i in iter {
            m = m.with(i);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_widths() {
        assert_eq!(Mask::full(0), Mask::EMPTY);
        assert_eq!(Mask::full(4).bits(), 0b1111);
        assert_eq!(Mask::full(64).bits(), u64::MAX);
        assert_eq!(Mask::full(64).count(), 64);
    }

    #[test]
    fn set_ops() {
        let a = Mask::from_bits(0b0110);
        let b = Mask::from_bits(0b0011);
        assert_eq!((a | b).bits(), 0b0111);
        assert_eq!((a & b).bits(), 0b0010);
        assert_eq!((a - b).bits(), 0b0100);
        assert_eq!((a ^ b).bits(), 0b0101);
        assert!(!a.is_disjoint(b));
        assert!(Mask::from_bits(0b100).is_disjoint(b));
        assert!(Mask::from_bits(0b10).is_subset(a));
    }

    #[test]
    fn iteration_ascending() {
        let m = Mask::from_bits(0b1010_0001);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 5, 7]);
        assert_eq!(m.iter().collect::<Mask>(), m);
    }

    #[test]
    fn bit_accessors() {
        let m = Mask::EMPTY.with(3).with(5).without(3);
        assert!(!m.get(3));
        assert!(m.get(5));
        assert_eq!(Mask::single(63).bits(), 1 << 63);
    }
}
