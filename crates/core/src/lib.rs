//! # warpweave-core
//!
//! A cycle-level simulator of a GPU streaming multiprocessor (SM)
//! reproducing *"Simultaneous Branch and Warp Interweaving for Sustained GPU
//! Performance"* (Brunie, Collange, Diamos — ISCA 2012).
//!
//! The crate models the paper's baseline Fermi-like SM and its two proposed
//! front-ends:
//!
//! * **SBI** (§3) — co-issues the two minimal-PC divergent paths of one warp
//!   using thread-frontier reconvergence ([`divergence::frontier`]), the
//!   HCT/CCT sorted heap, optional reconvergence constraints, and the
//!   dependency-matrix [`scoreboard`].
//! * **SWI** (§4) — a cascaded secondary scheduler that fills the primary
//!   instruction's idle lanes with a non-overlapping instruction from
//!   another warp, using [`lane`] shuffling and a set-associative mask
//!   lookup.
//!
//! # Examples
//! ```
//! use warpweave_core::{Launch, Sm, SmConfig};
//! use warpweave_isa::{KernelBuilder, CmpOp, SpecialReg, r, p};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A divergent toy kernel: odd threads do extra work.
//! let mut k = KernelBuilder::new("demo");
//! k.mov(r(0), SpecialReg::Tid);
//! k.and_(r(1), r(0), 1i32);
//! k.isetp(p(0), CmpOp::Eq, r(1), 0i32);
//! k.bra_if(p(0), "even");
//! k.imul(r(2), r(0), 3i32);
//! k.label("even");
//! k.exit();
//!
//! let launch = Launch::new(k.build()?, 8, 256);
//! let mut sm = Sm::new(SmConfig::sbi(), launch)?;
//! let stats = sm.run(1_000_000)?;
//! assert!(stats.ipc() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod digest;
pub mod divergence;
pub mod exec;
pub mod faultinject;
pub mod fuzzing;
pub mod groups;
pub mod lane;
pub mod launch;
pub mod lsu;
pub mod machine;
pub mod mask;
pub mod pipeline;
pub mod policy;
pub mod regfile;
pub mod scoreboard;
pub mod stats;
pub mod superblock;
pub mod sweep;
pub mod trace;

pub use checkpoint::{
    CellRecord, CheckpointError, SalvageReport, SweepCheckpoint, CHECKPOINT_VERSION,
};
pub use config::{
    Associativity, DivergenceModel, Frontend, GroupConfig, MemModel, ScoreboardMode, SmConfig,
};
pub use divergence::frontier::{FrontierHeap, HeapStats};
pub use divergence::stack::PdomStack;
pub use divergence::Transition;
pub use exec::{execute_warp, ThreadInfo, ThreadRegs};
pub use faultinject::{FaultInjector, FaultKind, FaultPlan};
pub use fuzzing::{CaseOutcome, FuzzFailure, FuzzTarget};
pub use lane::{LaneShuffle, LaneTable};
pub use launch::{Launch, WarpInfo};
pub use machine::{Machine, MachineStats, MemJournal};
pub use mask::Mask;
pub use pipeline::{SimError, Sm, WarpDiagnosis};
pub use policy::{
    Dispatch, IssueCtx, IssuePolicy, Pick, PolicyInfo, PolicyRegistry, Ready, SchedOrder,
};
pub use regfile::WarpRegFile;
pub use scoreboard::{DepMatrix, Scoreboard};
pub use stats::Stats;
pub use superblock::execute_fused;
pub use sweep::{IsolatedOutcome, JobFailure, SweepRunner};
pub use trace::{render_timeline, IssueSlot, TraceEvent};
