//! Property-based verification of the checkpoint codec's safety contract:
//! any `Stats`/`ChannelStats` value round-trips through serialization to
//! exact equality, and a corrupted or truncated checkpoint file **errors
//! cleanly** — it never resumes with a partial cell.

use proptest::prelude::*;

use warpweave_core::checkpoint::{decode_cell, encode_cell, CellRecord, SweepCheckpoint};
use warpweave_core::Stats;
use warpweave_mem::ChannelStats;

/// Builds a `Stats` whose 35 counters are the given raw values.
fn stats_from(values: &[u64]) -> Stats {
    let mut fields = Stats::default().to_fields();
    assert_eq!(fields.len(), values.len(), "update the strategy length");
    for (field, &v) in fields.iter_mut().zip(values) {
        // usize-typed high-water marks must stay in range on every host.
        field.1 = v;
    }
    Stats::from_fields(&fields).expect("canonical field list")
}

/// Builds a `ChannelStats` whose 9 counters are the given raw values.
fn channel_from(values: &[u64]) -> ChannelStats {
    let mut fields = ChannelStats::default().to_fields();
    assert_eq!(fields.len(), values.len(), "update the strategy length");
    for (field, &v) in fields.iter_mut().zip(values) {
        field.1 = v;
    }
    ChannelStats::from_fields(&fields).expect("canonical field list")
}

/// A scratch file path unique to this test binary.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("warpweave-ckpt-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Serialize → deserialize is exact for *any* counter values, with and
    /// without a channel section.
    #[test]
    fn cell_round_trip_is_exact(
        stats_vals in proptest::collection::vec(any::<u64>(), 35..36),
        channel_vals in proptest::collection::vec(any::<u64>(), 9..10),
        with_channel in any::<bool>(),
    ) {
        let record = if with_channel {
            CellRecord::with_channel(stats_from(&stats_vals), channel_from(&channel_vals))
        } else {
            CellRecord::new(stats_from(&stats_vals))
        };
        let line = encode_cell("Workload/Config", &record);
        let (key, decoded) = decode_cell(&line).expect("own encoding decodes");
        prop_assert_eq!(key.as_str(), "Workload/Config");
        prop_assert_eq!(decoded, record);
    }

    /// Flipping any single byte of an encoded cell line to a different
    /// value is detected — the checksum leaves no silent corruption.
    #[test]
    fn any_single_byte_corruption_is_detected(
        stats_vals in proptest::collection::vec(any::<u64>(), 35..36),
        position in any::<u64>(),
        delta in 1u8..255,
    ) {
        let record = CellRecord::new(stats_from(&stats_vals));
        let line = encode_cell("w/c", &record);
        let mut bytes = line.clone().into_bytes();
        let at = (position % bytes.len() as u64) as usize;
        bytes[at] = bytes[at].wrapping_add(delta);
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        match decode_cell(&corrupted) {
            Err(_) => {}
            // The only acceptable "success" would be decoding the exact
            // original record under the original key — and a byte flip
            // cannot produce that (checksum covers the whole body).
            Ok((key, decoded)) => {
                prop_assert!(
                    key == "w/c" && decoded == record,
                    "corrupted line decoded to a different record"
                );
                prop_assert!(false, "byte flip at {at} went undetected");
            }
        }
    }

    /// Truncating a checkpoint file at any byte is never silently
    /// accepted as-is: either the load fails cleanly (torn cell line), or
    /// the cut fell exactly on a line boundary and the load yields only
    /// the complete cells before it — never a partial cell.
    #[test]
    fn truncation_never_yields_partial_cells(
        stats_vals in proptest::collection::vec(any::<u64>(), 35..36),
        cells in 1usize..5,
        cut in any::<u64>(),
    ) {
        let path = scratch("truncation.checkpoint");
        let mut store = SweepCheckpoint::create(&path, 0xfeed).unwrap();
        for i in 0..cells {
            store
                .record(&format!("cell-{i}"), CellRecord::new(stats_from(&stats_vals)))
                .unwrap();
        }
        drop(store);
        let text = std::fs::read_to_string(&path).unwrap();
        let header_len = text.lines().next().unwrap().len() + 1;
        // Cut somewhere strictly after the header and strictly before EOF.
        let at = header_len + (cut % (text.len() - header_len) as u64) as usize;
        std::fs::write(&path, &text[..at]).unwrap();

        // A cell line counts as complete when its full content survives
        // the cut — the trailing newline itself is optional (a torn write
        // can drop just the newline, and the checksum still proves the
        // line intact; `resume` re-terminates it before appending).
        let full_lines: Vec<&str> = text[header_len..].lines().collect();
        let complete_lines = text[header_len..at]
            .split('\n')
            .filter(|l| full_lines.contains(l))
            .count();
        match SweepCheckpoint::load(&path) {
            Ok(loaded) => {
                prop_assert_eq!(
                    loaded.len(),
                    complete_lines,
                    "load must see exactly the complete cells before the cut"
                );
            }
            Err(_) => {
                // A clean error is always acceptable for a damaged file.
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
