//! Invariants of the machine-shared bandwidth pool:
//!
//! * shared-channel machines are **bit-identical** across 1/2/8 host
//!   simulation threads (stats, channel counters and memory);
//! * a 1-SM machine on the shared channel reproduces the private-channel
//!   (historical inline-latency) totals — exactly on a latency-only
//!   configuration, and also at the paper's finite bandwidth where the
//!   single LSU port makes transaction issue order monotonic;
//! * ≥2 SMs contending on one channel run strictly slower in aggregate
//!   than the same SMs with private channels on a memory-bound workload;
//! * contention statistics (queue delays, channel utilization) are
//!   populated and consistent.

use warpweave_core::{Launch, Machine, MachineStats, SmConfig};
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};
use warpweave_mem::{CacheConfig, DramConfig};

const IN: u32 = 0x10_0000;
const OUT: u32 = 0x80_0000;

/// A bandwidth-bound streaming kernel: every thread reads `ITERS` words
/// spaced one L1 block apart (each lane touches its own 128-byte line, so
/// every warp load coalesces into one transaction per lane and every
/// transaction is a cold miss), sums them and stores the result.
fn streaming_program(total_threads: u32, iters: u32) -> Program {
    let mut k = KernelBuilder::new("stream");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.shl(r(1), r(0), 7i32); // gtid * 128 B: one block per lane
    k.iadd(r(1), Operand::Param(0), r(1));
    k.mov(r(3), 0i32);
    for i in 0..iters {
        k.ld(r(2), r(1), 0);
        k.iadd(r(3), r(3), r(2));
        if i + 1 < iters {
            // Advance a full grid-stride of blocks: never a reuse.
            k.iadd(r(1), r(1), (total_threads * 128) as i32);
        }
    }
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(4), Operand::Param(1), r(4));
    k.st(r(4), 0, r(3));
    k.exit();
    k.build().expect("streaming kernel assembles")
}

/// A divergent kernel (data-dependent Collatz trip counts) — the
/// scheduler-heavy complement to the streaming kernel.
fn collatz_program() -> Program {
    let mut k = KernelBuilder::new("collatz");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.mov(r(1), r(0));
    k.label("mod");
    k.isetp(p(0), CmpOp::Ge, r(1), 37i32);
    k.guard_t(p(0)).isub(r(1), r(1), 37i32);
    k.bra_if(p(0), "mod");
    k.iadd(r(1), r(1), 1i32);
    k.mov(r(2), 0i32);
    k.label("loop");
    k.isetp(p(1), CmpOp::Le, r(1), 1i32);
    k.bra_if(p(1), "done");
    k.and_(r(3), r(1), 1i32);
    k.isetp(p(2), CmpOp::Eq, r(3), 0i32);
    k.bra_if(p(2), "even");
    k.imad(r(1), r(1), 3i32, 1i32);
    k.bra("next");
    k.label("even");
    k.shr(r(1), r(1), 1i32);
    k.label("next");
    k.iadd(r(2), r(2), 1i32);
    k.bra("loop");
    k.label("done");
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(4), Operand::Param(1), r(4));
    k.st(r(4), 0, r(2));
    k.exit();
    k.build().expect("collatz assembles")
}

const GRID: u32 = 4;
const BLOCK: u32 = 128;
const ITERS: u32 = 6;

fn streaming_launch() -> Launch {
    Launch::new(streaming_program(GRID * BLOCK, ITERS), GRID, BLOCK).with_params(vec![IN, OUT])
}

/// Runs `launch` on a machine and returns its stats plus the OUT region.
fn run_machine(
    cfg: &SmConfig,
    num_sms: usize,
    threads: usize,
    launch: Launch,
) -> (MachineStats, Vec<u32>) {
    let n = (launch.grid_blocks * launch.block_threads) as usize;
    let mut machine = Machine::new(cfg.clone(), num_sms, launch)
        .expect("machine builds")
        .with_threads(threads);
    // Seed the input region so load values are observable.
    for i in 0..(GRID * BLOCK * ITERS * 32) {
        machine.memory_mut().write_u32(IN + 4 * i, i % 97);
    }
    let stats = machine.run(100_000_000).expect("machine runs").clone();
    let out = machine.memory().read_words(OUT, n);
    (stats, out)
}

#[test]
fn shared_channel_bit_identical_across_host_threads() {
    for (name, launch) in [
        ("stream", streaming_launch()),
        (
            "collatz",
            Launch::new(collatz_program(), GRID, BLOCK).with_params(vec![IN, OUT]),
        ),
    ] {
        for cfg in [
            SmConfig::baseline().with_shared_dram(),
            SmConfig::sbi_swi().with_shared_dram(),
        ] {
            let (reference, ref_mem) = run_machine(&cfg, 4, 1, launch.clone());
            for threads in [2, 8] {
                let (stats, mem) = run_machine(&cfg, 4, threads, launch.clone());
                assert_eq!(
                    stats, reference,
                    "{name}/{}: shared-channel stats diverged at {threads} threads",
                    cfg.name
                );
                assert_eq!(mem, ref_mem, "{name}/{}: memory diverged", cfg.name);
            }
            assert_eq!(reference.per_sm.len(), 4);
        }
    }
}

#[test]
fn one_sm_shared_matches_private_on_latency_only_config() {
    // Infinite bandwidth: the channel never queues, completion is pure
    // latency — the shared channel must reproduce the inline model to the
    // cycle (the regression guard for the event-driven rework).
    let mut cfg = SmConfig::baseline();
    cfg.dram = DramConfig {
        bytes_per_cycle: 1e12,
        ..DramConfig::paper()
    };
    let (private, mem_p) = run_machine(&cfg, 1, 2, streaming_launch());
    let (shared, mem_s) = run_machine(&cfg.clone().with_shared_dram(), 1, 2, streaming_launch());
    assert_eq!(shared.per_sm, private.per_sm, "latency-only totals differ");
    assert_eq!(shared.total, private.total);
    assert_eq!(mem_s, mem_p);
    assert_eq!(shared.total.dram_queue_delay, 0, "nothing can queue");
}

#[test]
fn one_sm_shared_matches_private_at_paper_bandwidth() {
    // With one SM the single LSU port keeps transaction issue cycles
    // monotonic, so epoch arbitration degenerates to issue order and the
    // shared channel reproduces the private schedule even when queueing.
    for cfg in [SmConfig::baseline(), SmConfig::sbi()] {
        let (private, mem_p) = run_machine(&cfg, 1, 2, streaming_launch());
        let (shared, mem_s) =
            run_machine(&cfg.clone().with_shared_dram(), 1, 2, streaming_launch());
        assert_eq!(shared.per_sm, private.per_sm, "{}", cfg.name);
        assert_eq!(shared.total, private.total, "{}", cfg.name);
        assert_eq!(mem_s, mem_p, "{}", cfg.name);
        assert!(
            shared.channel.queued_requests > 0,
            "{}: a bandwidth-bound kernel must queue on the channel",
            cfg.name
        );
    }
}

#[test]
fn contention_on_one_channel_lowers_aggregate_ipc() {
    let cfg = SmConfig::baseline();
    let (private, _) = run_machine(&cfg, 2, 2, streaming_launch());
    let (shared, _) = run_machine(&cfg.clone().with_shared_dram(), 2, 2, streaming_launch());
    // Same work either way…
    assert_eq!(
        shared.total.thread_instructions,
        private.total.thread_instructions
    );
    // …but the shared channel halves the bandwidth: strictly longer
    // makespan, strictly lower whole-machine IPC.
    assert!(
        shared.total.cycles > private.total.cycles,
        "shared makespan {} vs private {}",
        shared.total.cycles,
        private.total.cycles
    );
    assert!(
        shared.ipc() < private.ipc(),
        "shared IPC {:.3} vs private {:.3}",
        shared.ipc(),
        private.ipc()
    );
    // Contention is visible in the stats: SMs queued behind each other
    // beyond any self-queueing the private channels see.
    assert!(shared.total.dram_queue_delay > private.total.dram_queue_delay);
    assert!(shared.channel.queued_requests > 0);
    let util = shared.channel_utilization(cfg.dram.bytes_per_cycle);
    assert!(
        util > 0.5 && util <= 1.0,
        "a memory-bound 2-SM run should saturate the channel (got {util:.3})"
    );
    // Channel counters agree with the per-SM traffic sums.
    assert_eq!(
        shared.channel.read_transfers,
        shared.total.dram.read_transfers
    );
    assert_eq!(
        shared.channel.write_transfers,
        shared.total.dram.write_transfers
    );
}

/// A replay-train kernel that thrashes one L1 set: **every warp** reads
/// the same 32 lane-indexed lines, all mapping to one 6-way set (64-set
/// L1 → 8 KiB stride). The first warp's train evicts most of its own
/// fills' tags; when the next warp re-misses those lines their fills are
/// still in flight — exactly the window an MSHR file merges.
fn set_conflict_program(iters: u32) -> Program {
    let mut k = KernelBuilder::new("conflict");
    k.mov(r(0), SpecialReg::Tid);
    k.and_(r(0), r(0), 31i32); // lane id: every warp reads the same lines
    k.shl(r(1), r(0), 13i32); // lane * 8 KiB: one line per lane, one L1 set
    k.iadd(r(1), Operand::Param(0), r(1));
    k.mov(r(3), 0i32);
    for _ in 0..iters {
        k.ld(r(2), r(1), 0);
        k.iadd(r(3), r(3), r(2));
    }
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(4), Operand::Param(1), r(4));
    k.st(r(4), 0, r(3));
    k.exit();
    k.build().expect("conflict kernel assembles")
}

/// Every block reads the *same* 128 lines — cross-SM reuse a shared L2
/// can intercept (each SM's private L1 still misses once per line).
fn shared_lines_program() -> Program {
    let mut k = KernelBuilder::new("shared_lines");
    k.mov(r(0), SpecialReg::Tid);
    k.shl(r(1), r(0), 7i32);
    k.iadd(r(1), Operand::Param(0), r(1));
    k.ld(r(2), r(1), 0);
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(4), Operand::Param(1), r(4));
    k.st(r(4), 0, r(2));
    k.exit();
    k.build().expect("shared-lines kernel assembles")
}

#[test]
fn second_channel_raises_aggregate_ipc_on_bandwidth_bound_work() {
    // The streaming kernel alternates lanes between interleaved channels
    // (consecutive 128 B lines), so a second channel genuinely doubles
    // the byte budget: same work, strictly shorter makespan.
    let one = SmConfig::baseline().with_shared_dram();
    let two = one.clone().with_dram_channels(2);
    let (ch1, mem1) = run_machine(&one, 4, 2, streaming_launch());
    let (ch2, mem2) = run_machine(&two, 4, 2, streaming_launch());
    assert_eq!(mem2, mem1, "channel count must not change results");
    assert_eq!(ch2.total.thread_instructions, ch1.total.thread_instructions);
    assert!(
        ch2.total.cycles < ch1.total.cycles,
        "2-channel makespan {} vs 1-channel {}",
        ch2.total.cycles,
        ch1.total.cycles
    );
    assert!(
        ch2.ipc() > ch1.ipc(),
        "2-channel IPC {:.3} must beat 1-channel {:.3}",
        ch2.ipc(),
        ch1.ipc()
    );
    // Both configurations move the same traffic; the second channel only
    // spreads it (queue delay drops).
    assert_eq!(ch2.channel.read_transfers, ch1.channel.read_transfers);
    assert_eq!(ch2.channel.write_transfers, ch1.channel.write_transfers);
    assert!(ch2.channel.queue_delay_cycles < ch1.channel.queue_delay_cycles);
    // Multi-channel runs stay bit-identical across host threads.
    for threads in [1, 8] {
        let (again, mem) = run_machine(&two, 4, threads, streaming_launch());
        assert_eq!(again, ch2, "2-channel stats diverged at {threads} threads");
        assert_eq!(mem, mem2);
    }
}

#[test]
fn mshr_merges_are_nonzero_and_thread_invariant() {
    // The set-conflict replay train re-misses evicted lines whose fills
    // are still outstanding: with MSHRs those re-misses merge instead of
    // issuing duplicate transfers.
    let launch = Launch::new(set_conflict_program(3), GRID, BLOCK).with_params(vec![IN, OUT]);
    let cfg = SmConfig::baseline().with_shared_dram().with_mshrs(64);
    let (reference, ref_mem) = run_machine(&cfg, 4, 1, launch.clone());
    assert!(
        reference.total.mshr_merges > 0,
        "replay train must produce MSHR merges"
    );
    // Merged loads never become requests: the channel sees exactly the
    // per-SM enqueue counts, merges are pure traffic saved.
    assert_eq!(
        reference.channel.read_transfers, reference.total.dram.read_transfers,
        "merged loads must never reach the channel"
    );
    for threads in [2, 8] {
        let (stats, mem) = run_machine(&cfg, 4, threads, launch.clone());
        assert_eq!(
            stats.total.mshr_merges, reference.total.mshr_merges,
            "merge count diverged at {threads} threads"
        );
        assert_eq!(stats, reference, "stats diverged at {threads} threads");
        assert_eq!(mem, ref_mem);
    }
    // The same workload without MSHRs merges nothing and pays for the
    // duplicate fills on the channel.
    let (bare, _) = run_machine(&cfg.clone().with_mshrs(0), 4, 2, launch);
    assert_eq!(bare.total.mshr_merges, 0);
    assert!(bare.channel.read_transfers > reference.channel.read_transfers);
}

#[test]
fn shared_l2_intercepts_cross_sm_reuse_deterministically() {
    let launch = Launch::new(shared_lines_program(), GRID, BLOCK).with_params(vec![IN, OUT]);
    let l2_geom = CacheConfig {
        capacity_bytes: 256 * 1024,
        ways: 8,
        line_bytes: 128,
        hit_latency: 20,
    };
    let without = SmConfig::baseline().with_shared_dram();
    let with_l2 = without.clone().with_l2(l2_geom);
    let (bare, mem_bare) = run_machine(&without, 4, 2, launch.clone());
    let (l2, mem_l2) = run_machine(&with_l2, 4, 2, launch.clone());
    assert_eq!(mem_l2, mem_bare, "the L2 must not change results");
    assert!(l2.channel.l2_hits > 0, "cross-SM reuse must hit the L2");
    // Accounting: every post-L1 load either hit the L2 or reached a
    // channel; stores are write-through on both sides.
    assert_eq!(
        l2.channel.read_transfers + l2.channel.l2_hits,
        l2.total.dram.read_transfers
    );
    assert_eq!(
        l2.channel.l2_hits + l2.channel.l2_misses,
        l2.total.dram.read_transfers
    );
    assert_eq!(l2.channel.write_transfers, l2.total.dram.write_transfers);
    // Intercepted fills shrink off-chip traffic and the makespan.
    assert!(l2.channel.read_transfers < bare.channel.read_transfers);
    assert!(
        l2.total.cycles < bare.total.cycles,
        "L2 makespan {} vs bare {}",
        l2.total.cycles,
        bare.total.cycles
    );
    // Bit-identical across host threads, like every shared-channel mode.
    for threads in [1, 8] {
        let (again, mem) = run_machine(&with_l2, 4, threads, launch.clone());
        assert_eq!(again, l2, "L2 stats diverged at {threads} threads");
        assert_eq!(mem, mem_l2);
    }
}

#[test]
fn functional_results_survive_shared_arbitration() {
    let (_, out) = run_machine(
        &SmConfig::sbi_swi().with_shared_dram(),
        4,
        4,
        streaming_launch(),
    );
    let total = GRID * BLOCK;
    for gtid in 0..total {
        let expected: u32 = (0..ITERS)
            .map(|i| {
                let word = (gtid + i * total) * 32; // 128 B stride in words
                word % 97
            })
            .sum();
        assert_eq!(out[gtid as usize], expected, "thread {gtid}");
    }
}
