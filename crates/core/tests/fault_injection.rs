//! Property-based drills for the fault-containment layer: salvaging a
//! checkpoint torn at **any** byte offset recovers exactly the prefix of
//! checksum-valid records (damaged tail preserved in a `.quarantine`
//! sidecar, file resumable afterwards), and an injected per-cell fault —
//! panic or simulation error — at **any** job index leaves every healthy
//! job's outcome bit-identical at 1 and 8 host threads.

use proptest::prelude::*;

use warpweave_core::checkpoint::{CellRecord, SweepCheckpoint};
use warpweave_core::faultinject::{FaultKind, FaultPlan};
use warpweave_core::{Stats, SweepRunner};

/// A distinctive `Stats` value per cell (so cells are distinguishable).
fn stats(seed: u64) -> Stats {
    Stats {
        cycles: seed.wrapping_mul(31).wrapping_add(7),
        thread_instructions: seed.wrapping_mul(1023),
        ..Stats::default()
    }
}

/// A scratch file path unique to this test binary.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("warpweave-faultinject-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Salvage of a checkpoint cut at any byte (header excluded — a
    /// damaged header is unrecoverable by design) keeps exactly the
    /// complete, checksum-valid records before the cut, quarantines the
    /// damaged tail to a sidecar, and leaves a file that resumes and
    /// accepts further records.
    #[test]
    fn salvage_at_any_byte_recovers_the_exact_valid_prefix(
        cells in 1usize..6,
        cut in any::<u64>(),
    ) {
        let path = scratch("salvage-prefix.checkpoint");
        let _ = std::fs::remove_file(&path);
        let mut store = SweepCheckpoint::create(&path, 0xabcd).unwrap();
        for i in 0..cells {
            store
                .record(&format!("cell-{i}"), CellRecord::new(stats(i as u64)))
                .unwrap();
        }
        drop(store);
        let text = std::fs::read_to_string(&path).unwrap();
        let header_len = text.lines().next().unwrap().len() + 1;
        // Cut anywhere from "all records gone" to "file intact".
        let at = header_len + (cut % (text.len() - header_len + 1) as u64) as usize;
        std::fs::write(&path, &text[..at]).unwrap();

        let report = SweepCheckpoint::salvage(&path).unwrap();
        // A record survives iff its full line content survived the cut
        // (the trailing newline itself is optional for the last line).
        let full_lines: Vec<&str> = text[header_len..].lines().collect();
        let expected = text[header_len..at]
            .split('\n')
            .filter(|l| full_lines.contains(l))
            .count();
        prop_assert_eq!(report.kept_cells, expected, "kept-cell count");
        let loaded = SweepCheckpoint::load(&path).unwrap();
        prop_assert_eq!(loaded.len(), expected, "salvaged file loads cleanly");
        for i in 0..expected {
            prop_assert!(loaded.contains(&format!("cell-{i}")), "cell-{} kept in order", i);
        }

        // Dropped bytes are preserved verbatim in the sidecar.
        if report.dropped_bytes > 0 {
            let sidecar = report.quarantine.clone().expect("sidecar for dropped bytes");
            let tail = std::fs::read(&sidecar).unwrap();
            prop_assert_eq!(tail.len(), report.dropped_bytes, "sidecar holds the tail");
            let _ = std::fs::remove_file(&sidecar);
        } else {
            prop_assert!(report.quarantine.is_none(), "no sidecar without damage");
        }

        // The salvaged file is a live checkpoint again: resume + append.
        let mut resumed = SweepCheckpoint::resume(&path, 0xabcd).unwrap();
        resumed.record("extra", CellRecord::new(stats(999))).unwrap();
        drop(resumed);
        let reloaded = SweepCheckpoint::load(&path).unwrap();
        prop_assert_eq!(reloaded.len(), expected + 1, "salvaged file keeps appending");
        let _ = std::fs::remove_file(&path);
    }

    /// An injected fault (panic or simulation error) at any job index is
    /// contained: the faulted job is retried and quarantined with the
    /// right attempt count, and every healthy job's result is
    /// bit-identical between a 1-thread and an 8-thread run.
    #[test]
    fn injected_fault_at_any_index_leaves_healthy_jobs_identical(
        jobs in 4usize..12,
        fault_at in any::<usize>(),
        as_panic in any::<bool>(),
    ) {
        let fault_idx = fault_at % jobs;
        let spec = if as_panic {
            format!("panic@cell:{fault_idx}")
        } else {
            format!("sim@cell:{fault_idx}")
        };
        let plan = FaultPlan::parse(&spec).unwrap();
        let items: Vec<usize> = (0..jobs).collect();
        let run = |threads: usize| {
            // Each run arms its own injector so attempt budgets reset.
            let injector = plan.clone().arm();
            SweepRunner::with_threads(threads).run_isolated(&items, 1, |&i| {
                match injector.cell_fault(i, &format!("job-{i}")) {
                    Some(FaultKind::Panic) => panic!("injected panic in job {i}"),
                    Some(FaultKind::SimError) => {
                        return Err(format!("injected sim error in job {i}"))
                    }
                    None => {}
                }
                Ok((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            })
        };
        let serial = run(1);
        let wide = run(8);
        prop_assert_eq!(serial.len(), jobs);
        prop_assert_eq!(wide.len(), jobs);
        for (i, (a, b)) in serial.iter().zip(&wide).enumerate() {
            if i == fault_idx {
                prop_assert!(a.result.is_err(), "job {} quarantined at 1 thread", i);
                prop_assert!(b.result.is_err(), "job {} quarantined at 8 threads", i);
                // 1 retry allowed → exactly 2 attempts, thread-count independent.
                prop_assert_eq!(a.attempts, 2);
                prop_assert_eq!(b.attempts, 2);
            } else {
                prop_assert_eq!(
                    a.result.as_ref().unwrap(),
                    b.result.as_ref().unwrap(),
                    "healthy job {} drifted across thread counts", i
                );
                prop_assert_eq!(a.attempts, 1);
                prop_assert_eq!(b.attempts, 1);
            }
        }
    }
}
