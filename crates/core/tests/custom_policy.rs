//! End-to-end proof of the policy-extension API: a custom scheduler
//! implemented *outside* `warpweave-core`, registered process-wide via
//! [`PolicyRegistry::register_global`], and then constructed purely by
//! name through `SmConfig::with_policy` / `Sm::new` — the "one impl and
//! one registry entry, no pipeline surgery" contract.
//!
//! (This lives in its own integration-test binary because global
//! registration is process-wide state; other test binaries that assert
//! the exact built-in name set must not observe it.)

use warpweave_core::policy::{FetchChannels, FetchPref, IssueCtx, IssuePolicy, Pick, PolicyInfo};
use warpweave_core::{Launch, PolicyRegistry, Sm, SmConfig};
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};

/// A deliberately simple net-new scheduler: one pool, strict round-robin
/// over warps starting after the last issuer, first ready instruction
/// wins. Single issue per cycle.
#[derive(Debug, Default)]
struct RoundRobinPolicy {
    next: usize,
}

const CHANNELS: FetchChannels = {
    const ANY: &[FetchPref] = &[(None, 0)];
    [ANY, ANY]
};

impl IssuePolicy for RoundRobinPolicy {
    fn issue(&mut self, ctx: &mut IssueCtx<'_>) -> usize {
        let nw = ctx.num_warps();
        for k in 0..nw {
            let w = (self.next + k) % nw;
            let Some(ready) = ctx.ready_check(w, 0) else {
                continue;
            };
            let Some(dispatch) = ctx.plan_dispatch(ready.unit) else {
                continue;
            };
            self.next = (w + 1) % nw;
            ctx.commit(
                w,
                &[Pick {
                    ready,
                    dispatch,
                    secondary: false,
                }],
            );
            return 1;
        }
        0
    }

    fn fetch_channels(&self) -> FetchChannels {
        CHANNELS
    }
}

fn round_robin_preset() -> SmConfig {
    let mut cfg = SmConfig::baseline();
    cfg.name = "RoundRobin".into();
    cfg.policy = "RoundRobin".into();
    cfg
}

fn register_round_robin() {
    PolicyRegistry::register_global(
        PolicyInfo::new(
            "RoundRobin",
            "single-pool strict round-robin (extension-API smoke policy)",
            "net-new (test)",
            round_robin_preset,
            |_cfg| Box::new(RoundRobinPolicy::default()),
        )
        .with_aliases(&["rr"]),
    );
}

/// `out[gtid] = gtid * 3 + 1` with a divergent guard, so scheduling
/// mistakes would corrupt results.
fn kernel() -> Program {
    let mut k = KernelBuilder::new("affine");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.and_(r(1), r(0), 1i32);
    k.isetp(p(0), CmpOp::Eq, r(1), 0i32);
    k.bra_if(p(0), "even");
    k.imad(r(2), r(0), 3i32, 1i32);
    k.bra("store");
    k.label("even");
    k.imad(r(2), r(0), 3i32, 1i32);
    k.label("store");
    k.shl(r(3), r(0), 2i32);
    k.iadd(r(3), Operand::Param(0), r(3));
    k.st(r(3), 0, r(2));
    k.exit();
    k.build().expect("assembles")
}

const OUT: u32 = 0x10_0000;

fn run(cfg: SmConfig) -> Vec<u32> {
    let launch = Launch::new(kernel(), 4, 256).with_params(vec![OUT]);
    let mut sm = Sm::new(cfg, launch).expect("builds");
    sm.run(10_000_000).expect("runs");
    sm.memory().read_words(OUT, 4 * 256)
}

#[test]
fn custom_policy_registers_and_runs_by_name() {
    register_round_robin();

    // Resolvable by name and alias, preset round-trips, validates.
    assert!(PolicyRegistry::global_names().contains(&"RoundRobin"));
    let entry = PolicyRegistry::resolve_global("rr").expect("alias resolves");
    assert_eq!(entry.name, "RoundRobin");
    let cfg = SmConfig::with_policy("RoundRobin").expect("preset builds");
    cfg.validate().expect("preset validates");

    // And it actually drives the pipeline: correct results, same memory
    // as the baseline scheduler, and real issue activity.
    let custom = run(cfg);
    let baseline = run(SmConfig::baseline());
    assert_eq!(custom, baseline, "scheduling must not change results");
    for (i, &v) in custom.iter().enumerate() {
        assert_eq!(v, i as u32 * 3 + 1, "slot {i}");
    }
}
