//! Integration tests: whole kernels through every architecture, checking
//! functional results and coarse timing behaviour.

use warpweave_core::{LaneShuffle, Launch, Sm, SmConfig};
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Program, SpecialReg};

/// All five fig. 7 configurations.
fn all_configs() -> Vec<SmConfig> {
    SmConfig::figure7_set()
}

/// Builds `dst[gtid] = a[gtid] + b[gtid]`.
fn vecadd_program() -> Program {
    let mut k = KernelBuilder::new("vecadd");
    // r0 = ctaid * ntid + tid (global thread id)
    k.mov(r(0), SpecialReg::CtaId);
    k.mov(r(1), SpecialReg::NTid);
    k.imad(r(0), r(0), r(1), SpecialReg::Tid);
    // r2 = byte offset
    k.shl(r(2), r(0), 2i32);
    // addresses: a = param0 + off, b = param1 + off, c = param2 + off
    k.iadd(r(3), warpweave_isa::Operand::Param(0), r(2));
    k.iadd(r(4), warpweave_isa::Operand::Param(1), r(2));
    k.iadd(r(5), warpweave_isa::Operand::Param(2), r(2));
    k.ld(r(6), r(3), 0);
    k.ld(r(7), r(4), 0);
    k.iadd(r(8), r(6), r(7));
    k.st(r(5), 0, r(8));
    k.exit();
    k.build().unwrap()
}

const A: u32 = 0x10000;
const B: u32 = 0x30000;
const C: u32 = 0x50000;

fn run_vecadd(cfg: SmConfig, n: u32) -> (Vec<u32>, warpweave_core::Stats) {
    let launch = Launch::new(vecadd_program(), n / 256, 256).with_params(vec![A, B, C]);
    let mut sm = Sm::new(cfg, launch).unwrap();
    for i in 0..n {
        sm.memory_mut().write_u32(A + 4 * i, i);
        sm.memory_mut().write_u32(B + 4 * i, 1000 + i);
    }
    let stats = sm.run(10_000_000).unwrap().clone();
    let out = sm.memory().read_words(C, n as usize);
    (out, stats)
}

#[test]
fn vecadd_correct_on_all_architectures() {
    for cfg in all_configs() {
        let name = cfg.name.clone();
        let (out, stats) = run_vecadd(cfg, 4096);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 1000 + 2 * i as u32, "{name}: wrong c[{i}]");
        }
        assert!(stats.ipc() > 1.0, "{name}: unreasonably low IPC");
        assert_eq!(stats.blocks_completed, 16, "{name}");
    }
}

/// Divergent if/else: odd threads compute 3·tid+1, even threads tid/2.
fn collatz_step_program() -> Program {
    let mut k = KernelBuilder::new("collatz_step");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.shl(r(2), r(0), 2i32);
    k.iadd(r(3), warpweave_isa::Operand::Param(0), r(2));
    k.and_(r(4), r(0), 1i32);
    k.isetp(p(0), CmpOp::Eq, r(4), 0i32);
    k.bra_if(p(0), "even");
    // odd: 3*tid + 1
    k.imad(r(5), r(0), 3i32, 1i32);
    k.bra("join");
    k.label("even");
    k.shr(r(5), r(0), 1i32);
    k.label("join");
    k.st(r(3), 0, r(5));
    k.exit();
    k.build().unwrap()
}

#[test]
fn divergent_if_else_correct_everywhere() {
    for cfg in all_configs() {
        let name = cfg.name.clone();
        let launch = Launch::new(collatz_step_program(), 8, 256).with_params(vec![C]);
        let mut sm = Sm::new(cfg, launch).unwrap();
        sm.run(10_000_000).unwrap();
        let out = sm.memory().read_words(C, 2048);
        for (i, &v) in out.iter().enumerate() {
            let expect = if i % 2 == 1 {
                3 * i as u32 + 1
            } else {
                i as u32 / 2
            };
            assert_eq!(v, expect, "{name}: wrong out[{i}]");
        }
    }
}

/// Data-dependent loop: out[tid] = sum(0..=tid % 17).
fn tri_loop_program() -> Program {
    let mut k = KernelBuilder::new("tri_loop");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    // r1 = tid % 17 (via repeated subtract-free trick: tid - (tid/17)*17)
    k.mov(r(6), 17i32);
    // integer division by repeated subtraction is slow; emulate tid%17 by
    // loop: r1 = tid; while r1 >= 17: r1 -= 17
    k.mov(r(1), r(0));
    k.label("mod");
    k.isetp(p(0), CmpOp::Ge, r(1), r(6));
    k.guard_t(p(0)).isub(r(1), r(1), r(6));
    k.bra_if(p(0), "mod");
    // r2 = sum 0..=r1
    k.mov(r(2), 0i32);
    k.mov(r(3), 0i32);
    k.label("loop");
    k.iadd(r(2), r(2), r(3));
    k.iadd(r(3), r(3), 1i32);
    k.isetp(p(1), CmpOp::Le, r(3), r(1));
    k.bra_if(p(1), "loop");
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(5), warpweave_isa::Operand::Param(0), r(4));
    k.st(r(5), 0, r(2));
    k.exit();
    k.build().unwrap()
}

#[test]
fn data_dependent_loop_correct_everywhere() {
    for cfg in all_configs() {
        let name = cfg.name.clone();
        let launch = Launch::new(tri_loop_program(), 4, 256).with_params(vec![C]);
        let mut sm = Sm::new(cfg, launch).unwrap();
        sm.run(10_000_000).unwrap();
        let out = sm.memory().read_words(C, 1024);
        for (i, &v) in out.iter().enumerate() {
            let m = (i % 17) as u32;
            assert_eq!(v, m * (m + 1) / 2, "{name}: wrong out[{i}]");
        }
    }
}

/// Barrier test: thread t writes shared[t] = t², barrier, reads neighbour
/// (t+1 mod ntid), stores to global.
fn barrier_program() -> Program {
    let mut k = KernelBuilder::new("barrier_swap");
    k.mov(r(0), SpecialReg::Tid);
    k.imul(r(1), r(0), r(0));
    k.shl(r(2), r(0), 2i32);
    k.st_shared(r(2), 0, r(1));
    k.bar();
    // neighbour = (tid + 1) % ntid
    k.iadd(r(3), r(0), 1i32);
    k.isetp(p(0), CmpOp::Ge, r(3), SpecialReg::NTid);
    k.guard_t(p(0)).mov(r(3), 0i32);
    k.shl(r(4), r(3), 2i32);
    k.ld_shared(r(5), r(4), 0);
    // global out index
    k.mov(r(6), SpecialReg::CtaId);
    k.imad(r(6), r(6), SpecialReg::NTid, r(0));
    k.shl(r(7), r(6), 2i32);
    k.iadd(r(8), warpweave_isa::Operand::Param(0), r(7));
    k.st(r(8), 0, r(5));
    k.exit();
    k.build().unwrap()
}

#[test]
fn barrier_correct_everywhere() {
    for cfg in all_configs() {
        let name = cfg.name.clone();
        let launch = Launch::new(barrier_program(), 4, 256).with_params(vec![C]);
        let mut sm = Sm::new(cfg, launch).unwrap();
        let stats = sm.run(10_000_000).unwrap().clone();
        assert!(stats.barrier_releases >= 4, "{name}: no barrier releases");
        let out = sm.memory().read_words(C, 1024);
        for (i, &v) in out.iter().enumerate() {
            let t = (i % 256) as u32;
            let n = (t + 1) % 256;
            assert_eq!(v, n * n, "{name}: wrong out[{i}]");
        }
    }
}

/// A balanced if/else with substantial work on both sides: SBI should beat
/// the sequential-branch Warp64 reference clearly (fig. 2b vs 2a).
fn balanced_divergence_program(work: usize) -> Program {
    let mut k = KernelBuilder::new("balanced");
    k.mov(r(0), SpecialReg::Tid);
    k.and_(r(1), r(0), 1i32);
    k.isetp(p(0), CmpOp::Eq, r(1), 0i32);
    k.mov(r(2), 1i32);
    k.bra_if(p(0), "even");
    for _ in 0..work {
        k.imad(r(2), r(2), 3i32, 7i32);
    }
    k.bra("join");
    k.label("even");
    for _ in 0..work {
        k.imad(r(2), r(2), 5i32, 11i32);
    }
    k.label("join");
    k.shl(r(3), r(0), 2i32);
    k.iadd(r(4), warpweave_isa::Operand::Param(0), r(3));
    k.st(r(4), 0, r(2));
    k.exit();
    k.build().unwrap()
}

fn ipc_of(cfg: SmConfig, prog: Program, blocks: u32) -> f64 {
    let launch = Launch::new(prog, blocks, 256).with_params(vec![C]);
    let mut sm = Sm::new(cfg, launch).unwrap();
    sm.run(50_000_000).unwrap().ipc()
}

#[test]
fn sbi_beats_warp64_on_balanced_divergence() {
    let sbi = ipc_of(SmConfig::sbi(), balanced_divergence_program(40), 16);
    let w64 = ipc_of(SmConfig::warp64(), balanced_divergence_program(40), 16);
    assert!(
        sbi > w64 * 1.3,
        "SBI ({sbi:.1}) should clearly beat Warp64 ({w64:.1}) on balanced divergence"
    );
}

/// Imbalanced work (if with no else): SWI should beat Warp64 by filling the
/// idle lanes with other warps.
fn imbalanced_program(work: usize) -> Program {
    let mut k = KernelBuilder::new("imbalanced");
    k.mov(r(0), SpecialReg::Tid);
    k.and_(r(1), r(0), 63i32);
    k.isetp(p(0), CmpOp::Ge, r(1), 8i32);
    k.mov(r(2), 1i32);
    k.bra_if(p(0), "join"); // only threads 0..8 of each 64 work
    for _ in 0..work {
        k.imad(r(2), r(2), 3i32, 7i32);
    }
    k.label("join");
    k.shl(r(3), r(0), 2i32);
    k.iadd(r(4), warpweave_isa::Operand::Param(0), r(3));
    k.st(r(4), 0, r(2));
    k.exit();
    k.build().unwrap()
}

#[test]
fn swi_beats_warp64_on_imbalanced_work() {
    let swi = ipc_of(SmConfig::swi(), imbalanced_program(60), 16);
    let w64 = ipc_of(SmConfig::warp64(), imbalanced_program(60), 16);
    assert!(
        swi > w64 * 1.2,
        "SWI ({swi:.1}) should beat Warp64 ({w64:.1}) on imbalanced work"
    );
}

/// Identical runs must be bit-identical (deterministic simulation).
#[test]
fn simulation_is_deterministic() {
    let a = run_vecadd(SmConfig::sbi_swi(), 2048);
    let b = run_vecadd(SmConfig::sbi_swi(), 2048);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1.cycles, b.1.cycles);
    assert_eq!(a.1.thread_instructions, b.1.thread_instructions);
}

/// A straight-line compute kernel should reach a healthy fraction of peak
/// IPC on the baseline (issue-bound at 64).
#[test]
fn straight_line_ipc_sanity() {
    let mut k = KernelBuilder::new("stream");
    k.mov(r(0), SpecialReg::Tid);
    for i in 0..6 {
        k.mov(r(2 + i), 1i32);
    }
    for _ in 0..30 {
        for i in 0..6 {
            k.imad(r(2 + i), r(2 + i), 3i32, 1i32);
        }
    }
    k.exit();
    let prog = k.build().unwrap();
    let ipc = ipc_of(SmConfig::baseline(), prog, 16);
    assert!(
        ipc > 40.0,
        "baseline straight-line IPC {ipc:.1} too far from peak 64"
    );
}

/// Lane shuffling must not change functional results.
#[test]
fn lane_shuffle_is_functionally_transparent() {
    for shuffle in LaneShuffle::ALL {
        let cfg = SmConfig::swi().with_lane_shuffle(shuffle);
        let (out, _) = run_vecadd(cfg, 2048);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 1000 + 2 * i as u32, "{shuffle:?}");
        }
    }
}

/// SBI reconvergence constraints must not change results either.
#[test]
fn constraints_are_functionally_transparent() {
    let base = {
        let launch = Launch::new(tri_loop_program(), 4, 256).with_params(vec![C]);
        let mut sm = Sm::new(SmConfig::sbi().with_constraints(false), launch).unwrap();
        sm.run(10_000_000).unwrap();
        sm.memory().read_words(C, 1024)
    };
    let constrained = {
        let launch = Launch::new(tri_loop_program(), 4, 256).with_params(vec![C]);
        let mut sm = Sm::new(SmConfig::sbi().with_constraints(true), launch).unwrap();
        sm.run(10_000_000).unwrap();
        sm.memory().read_words(C, 1024)
    };
    assert_eq!(base, constrained);
}

/// More blocks than resident slots: multi-wave block scheduling.
#[test]
fn grid_larger_than_resident_capacity() {
    let (out, stats) = run_vecadd(SmConfig::baseline(), 16384);
    assert_eq!(stats.blocks_completed, 64);
    assert_eq!(out[16383], 1000 + 2 * 16383);
}

/// Partial warps: a 96-thread block on 64-wide warps leaves lanes empty but
/// must still compute correctly.
#[test]
fn partial_warp_blocks() {
    for cfg in [SmConfig::sbi(), SmConfig::baseline()] {
        let launch = Launch::new(vecadd_program(), 4, 96).with_params(vec![A, B, C]);
        let mut sm = Sm::new(cfg, launch).unwrap();
        for i in 0..384 {
            sm.memory_mut().write_u32(A + 4 * i, i);
            sm.memory_mut().write_u32(B + 4 * i, 7);
        }
        sm.run(10_000_000).unwrap();
        let out = sm.memory().read_words(C, 384);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u32 + 7);
        }
    }
}

/// Atomic adds: every thread increments a shared counter set.
#[test]
fn atomics_are_exact() {
    let mut k = KernelBuilder::new("atom");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.and_(r(1), r(0), 7i32); // 8 counters
    k.shl(r(2), r(1), 2i32);
    k.iadd(r(3), warpweave_isa::Operand::Param(0), r(2));
    k.atom_add(r(3), 0, 1i32);
    k.exit();
    let prog = k.build().unwrap();
    for cfg in all_configs() {
        let name = cfg.name.clone();
        let launch = Launch::new(prog.clone(), 8, 256).with_params(vec![C]);
        let mut sm = Sm::new(cfg, launch).unwrap();
        sm.run(10_000_000).unwrap();
        let out = sm.memory().read_words(C, 8);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 256, "{name}: counter {i}");
        }
    }
}
