//! Determinism guarantees of the parallel multi-SM engine:
//!
//! * the same machine produces **bit-identical** statistics and memory for
//!   1, 2 and 8 host simulation threads;
//! * a 1-SM machine reproduces a standalone [`Sm`] exactly;
//! * idle-cycle fast-forwarding is exact with respect to cycle-by-cycle
//!   simulation;
//! * cross-SM atomic merging is count-exact.

use warpweave_core::{Launch, Machine, MachineStats, Sm, SmConfig};
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Operand, Program, SpecialReg};

const OUT: u32 = 0x10_0000;
const BINS: u32 = 0x20_0000;

/// A divergent kernel with data-dependent loop trip counts:
/// `out[gtid] = collatz_steps(gtid % 37)` — heavy intra-warp divergence,
/// which exercises the frontier heap, SBI co-issue and the idle windows
/// the fast-forward path skips.
fn collatz_program() -> Program {
    let mut k = KernelBuilder::new("collatz");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.mov(r(1), r(0));
    k.label("mod");
    k.isetp(p(0), CmpOp::Ge, r(1), 37i32);
    k.guard_t(p(0)).isub(r(1), r(1), 37i32);
    k.bra_if(p(0), "mod");
    k.iadd(r(1), r(1), 1i32);
    k.mov(r(2), 0i32);
    k.label("loop");
    k.isetp(p(1), CmpOp::Le, r(1), 1i32);
    k.bra_if(p(1), "done");
    k.and_(r(3), r(1), 1i32);
    k.isetp(p(2), CmpOp::Eq, r(3), 0i32);
    k.bra_if(p(2), "even");
    k.imad(r(1), r(1), 3i32, 1i32);
    k.bra("next");
    k.label("even");
    k.shr(r(1), r(1), 1i32);
    k.label("next");
    k.iadd(r(2), r(2), 1i32);
    k.bra("loop");
    k.label("done");
    k.shl(r(4), r(0), 2i32);
    k.iadd(r(4), Operand::Param(0), r(4));
    k.st(r(4), 0, r(2));
    k.exit();
    k.build().expect("collatz assembles")
}

/// Every thread atomically bumps `bins[gtid % 16]` — cross-SM contention
/// on shared words, merged through the journal's commutative delta path.
fn histogram_program() -> Program {
    let mut k = KernelBuilder::new("atomic_bins");
    k.mov(r(0), SpecialReg::CtaId);
    k.imad(r(0), r(0), SpecialReg::NTid, SpecialReg::Tid);
    k.and_(r(1), r(0), 15i32);
    k.shl(r(1), r(1), 2i32);
    k.iadd(r(1), Operand::Param(0), r(1));
    k.atom_add(r(1), 0, 1i32);
    k.exit();
    k.build().expect("histogram assembles")
}

fn collatz_launch(grid: u32) -> Launch {
    Launch::new(collatz_program(), grid, 256).with_params(vec![OUT])
}

fn run_machine(
    cfg: &SmConfig,
    num_sms: usize,
    threads: usize,
    grid: u32,
) -> (MachineStats, Vec<u32>) {
    let mut machine = Machine::new(cfg.clone(), num_sms, collatz_launch(grid))
        .expect("machine builds")
        .with_threads(threads);
    let stats = machine.run(50_000_000).expect("machine runs").clone();
    let words = machine.memory().read_words(OUT, (grid * 256) as usize);
    (stats, words)
}

#[test]
fn stats_identical_across_1_2_8_threads() {
    for cfg in [SmConfig::baseline(), SmConfig::sbi_swi()] {
        let (reference, ref_mem) = run_machine(&cfg, 4, 1, 12);
        for threads in [2, 8] {
            let (stats, mem) = run_machine(&cfg, 4, threads, 12);
            assert_eq!(
                stats, reference,
                "{}: stats diverged at {threads} threads",
                cfg.name
            );
            assert_eq!(
                mem, ref_mem,
                "{}: memory diverged at {threads} threads",
                cfg.name
            );
        }
        // Per-SM breakdown must be populated and cycles must be the makespan.
        assert_eq!(reference.per_sm.len(), 4);
        let max = reference.per_sm.iter().map(|s| s.cycles).max().unwrap();
        assert_eq!(reference.total.cycles, max);
    }
}

#[test]
fn one_sm_machine_reproduces_standalone_sm() {
    for cfg in [SmConfig::baseline(), SmConfig::swi()] {
        let mut sm = Sm::new(cfg.clone(), collatz_launch(6)).expect("sm builds");
        let solo = sm.run(50_000_000).expect("sm runs").clone();
        let (stats, mem) = run_machine(&cfg, 1, 4, 6);
        assert_eq!(stats.per_sm[0], solo, "{}", cfg.name);
        assert_eq!(stats.total, solo, "{}", cfg.name);
        assert_eq!(mem, sm.memory().read_words(OUT, 6 * 256), "{}", cfg.name);
    }
}

#[test]
fn fast_forward_is_exact() {
    // Same simulation with and without idle fast-forwarding must agree on
    // every statistic — cycles, idle cycles, cache/DRAM counters included.
    for cfg in [SmConfig::baseline(), SmConfig::sbi(), SmConfig::sbi_swi()] {
        let mut ticked =
            Sm::new(cfg.clone().with_fast_forward(false), collatz_launch(4)).expect("sm builds");
        let slow = ticked.run(50_000_000).expect("runs").clone();
        let mut jumped =
            Sm::new(cfg.clone().with_fast_forward(true), collatz_launch(4)).expect("sm builds");
        let fast = jumped.run(50_000_000).expect("runs").clone();
        assert_eq!(
            fast, slow,
            "{}: fast-forward changed observable behaviour",
            cfg.name
        );
    }
}

#[test]
fn atomics_merge_exactly_across_sms_and_threads() {
    let grid = 10u32;
    let launch = || Launch::new(histogram_program(), grid, 128).with_params(vec![BINS]);
    let expected = grid * 128 / 16;
    let mut reference: Option<Vec<u32>> = None;
    for (num_sms, threads) in [(1, 1), (4, 1), (4, 8), (3, 2)] {
        let mut machine = Machine::new(SmConfig::baseline(), num_sms, launch())
            .expect("machine builds")
            .with_threads(threads);
        machine.run(50_000_000).expect("machine runs");
        let bins = machine.memory().read_words(BINS, 16);
        assert!(
            bins.iter().all(|&b| b == expected),
            "{num_sms} SMs / {threads} threads: bins {bins:?} != {expected}"
        );
        match &reference {
            None => reference = Some(bins),
            Some(r) => assert_eq!(&bins, r),
        }
    }
}

#[test]
fn sharding_never_lengthens_the_makespan() {
    let (one, _) = run_machine(&SmConfig::baseline(), 1, 1, 12);
    let (four, _) = run_machine(&SmConfig::baseline(), 4, 1, 12);
    assert!(
        four.total.cycles <= one.total.cycles,
        "4-SM makespan {} vs 1-SM {}",
        four.total.cycles,
        one.total.cycles
    );
    // Work (thread-instructions) is conserved exactly: the same grid runs.
    assert_eq!(
        four.total.thread_instructions,
        one.total.thread_instructions
    );
}
