//! Differential fuzzing of the warp-level SoA execute path.
//!
//! `execute_warp` replaced the per-thread loop on the simulator's hottest
//! path; the scalar implementation (`guard_passes` + `execute_thread` over
//! `ThreadRegs`) is retained purely as the reference. These properties pin
//! the implementations **bit-identical**: random instruction sequences
//! over random initial register state must produce the same architectural
//! state (registers, predicates), the same taken masks and the same access
//! lists — at warp widths 4, 32 and 64, under partial `populated` masks,
//! random guards and every operand kind.
//!
//! A third band covers the superblock trace engine: the same sequences are
//! fused via `build_superblocks` and replayed through `execute_fused`
//! wherever a superblock covers the pc (falling back to `execute_warp`
//! elsewhere, exactly like the pipeline), and that state must also stay
//! bit-identical to the scalar reference after every instruction.

use proptest::prelude::*;
use warpweave_core::exec::{execute_thread, execute_warp, guard_passes, ThreadRegs};
use warpweave_core::{execute_fused, LaneShuffle, Mask, WarpInfo, WarpRegFile};
use warpweave_isa::superblock::build_superblocks;
use warpweave_isa::{
    p, r, CmpOp, FusedOp, Guard, Instruction, Op, Operand, Pc, SpecialReg, NUM_PREDS, NUM_REGS,
};

/// Launch parameters both paths resolve `Operand::Param` against.
const PARAMS: [u32; 4] = [0x40, 7, 123, 0xdead_beef];

/// Registers the generator draws from — a small set so RAW/WAW chains and
/// destination-aliases-source cases occur often.
const GEN_REGS: u64 = 8;

const OPS: [Op; 35] = [
    Op::Mov,
    Op::IAdd,
    Op::ISub,
    Op::IMul,
    Op::IMad,
    Op::IMin,
    Op::IMax,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Not,
    Op::Shl,
    Op::Shr,
    Op::Sra,
    Op::FAdd,
    Op::FSub,
    Op::FMul,
    Op::FFma,
    Op::FMin,
    Op::FMax,
    Op::I2F,
    Op::F2I,
    Op::ISetP,
    Op::FSetP,
    Op::Sel,
    Op::Rcp,
    Op::Sqrt,
    Op::Rsqrt,
    Op::Sin,
    Op::Cos,
    Op::Ex2,
    Op::Lg2,
    Op::Ld,
    Op::St,
    Op::AtomAdd,
];

const CMPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

const SPECIALS: [SpecialReg; 6] = [
    SpecialReg::Tid,
    SpecialReg::CtaId,
    SpecialReg::NTid,
    SpecialReg::NCtaId,
    SpecialReg::LaneId,
    SpecialReg::WarpId,
];

/// Decodes one source operand from 10 bits of entropy plus a 32-bit
/// immediate pool.
fn decode_operand(bits: u64, imm: u32) -> Operand {
    match bits & 3 {
        0 => Operand::Reg(r(((bits >> 2) % GEN_REGS) as u8)),
        1 => Operand::Imm(imm),
        2 => Operand::Special(SPECIALS[((bits >> 2) % 6) as usize]),
        _ => Operand::Param(((bits >> 2) % 6) as u8), // may be out of range
    }
}

/// Builds a random-but-valid instruction from two entropy words. Includes
/// a branch (taken-mask coverage), the full control set (`Bar`, `Exit`,
/// `Sync`, `Nop` — all architectural no-ops on both paths) and an extra
/// memory-op band so `AtomAdd`/`Ld`/`St` are sampled well above their
/// uniform share.
fn decode_instruction(a: u64, b: u64) -> Instruction {
    // Weight Bra in explicitly so taken masks are exercised; a dedicated
    // memory band boosts atomics; control ops ride along at low weight.
    let sel = (a & 0xff) as usize;
    let op = match sel {
        0..=199 => OPS[sel % OPS.len()],
        200..=223 => [Op::Ld, Op::St, Op::AtomAdd][sel % 3],
        224..=239 => Op::Bra,
        240..=245 => Op::Nop,
        246..=249 => Op::Bar,
        250..=252 => Op::Exit,
        _ => Op::Sync,
    };
    let mut i = Instruction::new(op);
    // Guards are structurally invalid on Exit/Bar/Sync.
    if !matches!(op, Op::Exit | Op::Bar | Op::Sync) {
        i.guard = match (a >> 8) & 3 {
            0 => None,
            1 => Some(Guard::if_true(p(((a >> 10) % NUM_PREDS as u64) as u8))),
            _ => Some(Guard::if_false(p(((a >> 10) % NUM_PREDS as u64) as u8))),
        };
    }
    let nsrc = match op {
        Op::Mov
        | Op::Not
        | Op::I2F
        | Op::F2I
        | Op::Rcp
        | Op::Sqrt
        | Op::Rsqrt
        | Op::Sin
        | Op::Cos
        | Op::Ex2
        | Op::Lg2
        | Op::Ld => 1,
        Op::IMad | Op::FFma => 3,
        Op::Bra | Op::Sync | Op::Bar | Op::Exit | Op::Nop => 0,
        _ => 2,
    };
    for s in 0..nsrc {
        let imm = (a.rotate_left(17 + 13 * s as u32) ^ b) as u32;
        i.srcs[s] = Some(decode_operand(b >> (10 * s), imm));
    }
    let needs_dst = !matches!(
        op,
        Op::ISetP
            | Op::FSetP
            | Op::St
            | Op::AtomAdd
            | Op::Bra
            | Op::Sync
            | Op::Bar
            | Op::Exit
            | Op::Nop
    );
    if needs_dst {
        i.dst = Some(r(((a >> 13) % GEN_REGS) as u8));
    }
    // AtomAdd optionally captures the old value (dst is optional on it).
    if op == Op::AtomAdd && (a >> 26) & 1 == 1 {
        i.dst = Some(r(((a >> 13) % GEN_REGS) as u8));
    }
    if matches!(op, Op::ISetP | Op::FSetP) {
        i.pdst = Some(p(((a >> 16) % NUM_PREDS as u64) as u8));
        i.cmp = Some(CMPS[((a >> 19) % 6) as usize]);
    }
    if op == Op::Sel {
        i.sel_pred = Some(p(((a >> 22) % NUM_PREDS as u64) as u8));
    }
    if op == Op::Bra {
        i.target = Some(Pc(0));
    }
    if op == Op::Sync {
        i.sync_pcdiv = Some(Pc(0));
    }
    if matches!(op, Op::Ld | Op::St | Op::AtomAdd) {
        i.offset = ((b >> 40) & 0xff) as i32 - 128;
    }
    i.validate()
        .expect("generator must build valid instructions");
    i
}

/// SplitMix64 — seeds both register-state representations identically.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The scalar reference: the exact per-thread loop the pipeline ran before
/// the SoA refactor — guard check, execute, commit, in ascending thread
/// order, skipping unpopulated threads.
fn scalar_step(
    instr: &Instruction,
    regs: &mut [ThreadRegs],
    info: &WarpInfo,
    mask: Mask,
    populated: Mask,
) -> (Mask, Vec<(usize, u32, u32)>) {
    let mut taken = Mask::EMPTY;
    let mut accesses = Vec::new();
    for t in mask.iter() {
        if !populated.get(t) {
            continue;
        }
        if !guard_passes(instr, &regs[t]) {
            continue;
        }
        let ti = info.thread_info(t);
        let out = execute_thread(instr, &regs[t], &ti, &PARAMS);
        if out.branch_taken {
            taken = taken.with(t);
        }
        if let Some(addr) = out.mem_addr {
            accesses.push((t, addr, out.mem_data.unwrap_or(0)));
        }
        if let Some((ri, v)) = out.reg_write {
            regs[t].set_reg(ri, v);
        }
        if let Some((pi, v)) = out.pred_write {
            regs[t].set_pred(pi, v);
        }
    }
    (taken, accesses)
}

/// Asserts every architectural bit matches between the two layouts.
#[allow(clippy::needless_range_loop)] // (t, reg) indexing mirrors the layout
fn assert_state_eq(rf: &WarpRegFile, regs: &[ThreadRegs], width: usize, ctx: &str) {
    for t in 0..width {
        for ri in 0..NUM_REGS {
            assert_eq!(
                rf.reg(t, ri),
                regs[t].reg(ri),
                "{ctx}: r{ri} of lane {t} diverged"
            );
        }
        for pi in 0..NUM_PREDS {
            assert_eq!(
                rf.pred(t, pi),
                regs[t].pred(pi),
                "{ctx}: p{pi} of lane {t} diverged"
            );
        }
    }
}

/// Per-pc fused-op lookup over a decoded sequence: `Some(fop)` where a
/// superblock covers the pc, `None` (interpreter fallback) elsewhere —
/// the same coverage decision the pipeline makes per issue grant.
fn fused_coverage(instrs: &[Instruction]) -> Vec<Option<FusedOp>> {
    let set = build_superblocks(instrs);
    let mut map: Vec<Option<FusedOp>> = vec![None; instrs.len()];
    for sb in set.superblocks() {
        for (i, fop) in sb.ops.iter().enumerate() {
            map[sb.start.index() + i] = Some(fop.clone());
        }
    }
    map
}

/// Runs one random instruction sequence through all three paths at
/// `width`: SoA interpreter, superblock engine (fused where covered) and
/// the scalar reference, asserting bit-identity after every instruction.
#[allow(clippy::needless_range_loop)] // (t, reg) indexing mirrors the layout
fn run_differential(width: usize, seq: &[(u64, u64)], state_seed: u64, mask_bits: u64) {
    let full = Mask::full(width);
    let populated = Mask::from_bits(mask_bits) & full;
    let shuffle = LaneShuffle::ALL[(state_seed % 5) as usize];

    let mut info = WarpInfo::new(width);
    info.seed(
        ((state_seed >> 3) % 64) as u32 * width as u32,
        (state_seed >> 9) as u32 & 0xff,
        256,
        16,
        (state_seed >> 17) as u32 % 16,
        shuffle,
        width,
        16,
    );

    let instrs: Vec<Instruction> = seq.iter().map(|&(a, b)| decode_instruction(a, b)).collect();
    let fused = fused_coverage(&instrs);

    // Identical random initial state in all three layouts.
    let mut rf = WarpRegFile::new(width);
    let mut rf_sb = WarpRegFile::new(width);
    let mut regs: Vec<ThreadRegs> = (0..width).map(|_| ThreadRegs::new()).collect();
    let mut s = state_seed;
    for t in 0..width {
        for ri in 0..NUM_REGS {
            let v = splitmix(&mut s) as u32;
            rf.set_reg(t, ri, v);
            rf_sb.set_reg(t, ri, v);
            regs[t].set_reg(ri, v);
        }
        for pi in 0..NUM_PREDS {
            let v = splitmix(&mut s) & 1 == 1;
            rf.set_pred(t, pi, v);
            rf_sb.set_pred(t, pi, v);
            regs[t].set_pred(pi, v);
        }
    }

    let mut soa_accesses: Vec<(usize, u32, u32)> = Vec::new();
    let mut sb_accesses: Vec<(usize, u32, u32)> = Vec::new();
    let mut mask_entropy = state_seed ^ 0x5eed;
    for (n, instr) in instrs.iter().enumerate() {
        // A fresh (possibly partial) issue mask per instruction.
        let mask = Mask::from_bits(splitmix(&mut mask_entropy)) & full;
        let active = mask & populated;

        let soa_taken = execute_warp(instr, &mut rf, &info, &PARAMS, active, &mut soa_accesses);
        let sb_taken = match &fused[n] {
            Some(fop) => execute_fused(fop, &mut rf_sb, &info, &PARAMS, active, &mut sb_accesses),
            None => execute_warp(instr, &mut rf_sb, &info, &PARAMS, active, &mut sb_accesses),
        };
        let (ref_taken, ref_accesses) = scalar_step(instr, &mut regs, &info, mask, populated);

        let ctx = format!("instr #{n} ({}) width {width}", instr.op);
        assert_eq!(soa_taken, ref_taken, "{ctx}: taken mask diverged");
        assert_eq!(sb_taken, ref_taken, "{ctx}: superblock taken mask diverged");
        assert_eq!(soa_accesses, ref_accesses, "{ctx}: access list diverged");
        assert_eq!(
            sb_accesses, ref_accesses,
            "{ctx}: superblock access list diverged"
        );
        assert_state_eq(&rf, &regs, width, &ctx);
        assert_state_eq(&rf_sb, &regs, width, &format!("{ctx} (superblock)"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random instruction sequences at the three paper warp widths, with
    /// random populated masks, must keep all three implementations (SoA
    /// interpreter, superblock engine, scalar reference) bit-identical
    /// after every instruction.
    #[test]
    fn soa_matches_scalar_reference(
        seq in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..32),
        state_seed in any::<u64>(),
        mask_bits in any::<u64>(),
    ) {
        for width in [4usize, 32, 64] {
            run_differential(width, &seq, state_seed, mask_bits);
        }
    }

    /// Fully-unpopulated and fully-masked-off warps must leave all state
    /// untouched and report nothing.
    #[test]
    fn masked_off_is_inert(
        a in any::<u64>(),
        b in any::<u64>(),
        state_seed in any::<u64>(),
    ) {
        for width in [4usize, 32, 64] {
            run_differential(width, &[(a, b)], state_seed, 0);
        }
    }
}

/// One deterministic anchor: a guarded branch over a divergent predicate
/// must report exactly the guard-true populated lanes as taken (kills a
/// hypothetical all-or-nothing guard implementation the fuzzer could in
/// principle miss).
#[test]
fn guarded_branch_taken_mask_exact() {
    let width = 32;
    let mut rf = WarpRegFile::new(width);
    let mut regs: Vec<ThreadRegs> = (0..width).map(|_| ThreadRegs::new()).collect();
    for t in (0..width).step_by(3) {
        rf.set_pred(t, 2, true);
        regs[t].set_pred(2, true);
    }
    let info = WarpInfo::new(width);
    let mut bra = Instruction::new(Op::Bra);
    bra.target = Some(Pc(7));
    bra.guard = Some(Guard::if_true(p(2)));
    let populated = Mask::from_bits(0x0000_ffff);
    let mut acc = Vec::new();
    let taken = execute_warp(&bra, &mut rf, &info, &PARAMS, populated, &mut acc);
    let (ref_taken, _) = scalar_step(&bra, &mut regs, &info, Mask::full(width), populated);
    assert_eq!(taken, ref_taken);
    assert_eq!(
        taken,
        (0..16).step_by(3).collect::<Mask>(),
        "every third populated lane has p2 set"
    );
    assert!(acc.is_empty());
}

/// Second anchor: `Bar` and `Exit` are architectural no-ops on both paths
/// (no writes, no accesses, empty taken mask), and an `AtomAdd` emits the
/// same access list from both paths under a partial mask.
#[test]
#[allow(clippy::needless_range_loop)] // (t, reg) indexing mirrors the layout
fn barrier_exit_inert_and_atomic_access_parity() {
    let width = 32;
    let mut state = 0x0b42_ee17u64;
    let mut rf = WarpRegFile::new(width);
    let mut regs: Vec<ThreadRegs> = (0..width).map(|_| ThreadRegs::new()).collect();
    for t in 0..width {
        for ri in 0..GEN_REGS as usize {
            let v = splitmix(&mut state) as u32;
            rf.set_reg(t, ri, v);
            regs[t].set_reg(ri, v);
        }
    }
    let info = WarpInfo::new(width);
    let populated = Mask::from_bits(0x5555_5555);

    for op in [Op::Bar, Op::Exit] {
        let instr = Instruction::new(op);
        let mut acc = Vec::new();
        let taken = execute_warp(&instr, &mut rf, &info, &PARAMS, populated, &mut acc);
        let (ref_taken, ref_acc) =
            scalar_step(&instr, &mut regs, &info, Mask::full(width), populated);
        assert_eq!(taken, Mask::EMPTY, "{op} must not report taken lanes");
        assert_eq!(taken, ref_taken);
        assert!(
            acc.is_empty() && ref_acc.is_empty(),
            "{op} must not access memory"
        );
    }

    let mut atom = Instruction::new(Op::AtomAdd);
    atom.srcs[0] = Some(Operand::Reg(r(1)));
    atom.srcs[1] = Some(Operand::Reg(r(2)));
    atom.dst = Some(r(3)); // old-value capture form
    atom.offset = -8;
    atom.validate().unwrap();
    let mut acc = Vec::new();
    execute_warp(&atom, &mut rf, &info, &PARAMS, populated, &mut acc);
    let (_, ref_acc) = scalar_step(&atom, &mut regs, &info, Mask::full(width), populated);
    assert_eq!(acc, ref_acc, "atomic access lists diverged");
    assert_eq!(acc.len(), populated.iter().count());
    assert_state_eq(&rf, &regs, width, "atom.add with dst");
}

/// Coverage anchor for the superblock band: a straight-line all-fusible
/// sequence must fuse completely, so the proptest band above genuinely
/// replays such sequences through `execute_fused` rather than silently
/// falling back to the interpreter everywhere.
#[test]
fn straight_line_sequences_fuse_fully() {
    // `sel = 0x00..` decodes into the arithmetic band of OPS (never a
    // control op), so every instruction is fusible.
    let seq: Vec<(u64, u64)> = (0..8u64).map(|i| (i * 7, i * 13 + 1)).collect();
    let instrs: Vec<Instruction> = seq.iter().map(|&(a, b)| decode_instruction(a, b)).collect();
    assert!(instrs
        .iter()
        .all(|i| !matches!(i.op, Op::Bra | Op::Sync | Op::Bar | Op::Exit)));
    let fused = fused_coverage(&instrs);
    assert!(
        fused.iter().all(Option::is_some),
        "an all-fusible straight-line sequence must be fully covered"
    );
    // And the band itself runs clean over it.
    run_differential(32, &seq, 0x5b5b_1234, u64::MAX);
}
