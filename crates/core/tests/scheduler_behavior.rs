//! Focused tests of the paper's scheduling mechanisms: SBI same-group
//! co-issue, reconvergence-constraint suspension, SWI lookup statistics,
//! run-ahead accounting and peak-IPC ceilings.

use warpweave_core::{LaneShuffle, Launch, Sm, SmConfig, Stats};
use warpweave_isa::{p, r, CmpOp, KernelBuilder, Program, SpecialReg};

fn run(cfg: SmConfig, prog: Program, blocks: u32, threads: u32) -> Stats {
    let mut sm = Sm::new(cfg, Launch::new(prog, blocks, threads)).expect("valid config");
    sm.run(20_000_000).expect("finishes").clone()
}

/// Balanced if/else with MAD-heavy arms.
fn balanced(work: usize) -> Program {
    let mut k = KernelBuilder::new("balanced");
    k.and_(r(0), SpecialReg::Tid, 1i32);
    k.isetp(p(0), CmpOp::Eq, r(0), 0i32);
    k.mov(r(2), 1i32);
    k.bra_if(p(0), "even");
    for _ in 0..work {
        k.imad(r(2), r(2), 3i32, 7i32);
    }
    k.bra("join");
    k.label("even");
    for _ in 0..work {
        k.imad(r(2), r(2), 5i32, 11i32);
    }
    k.label("join");
    k.exit();
    k.build().expect("assembles")
}

#[test]
fn sbi_rides_balanced_branches_on_one_mad_group() {
    let stats = run(SmConfig::sbi(), balanced(64), 16, 256);
    // Both arms are MAD chains over disjoint splits: most secondary issues
    // should share the primary's group pass.
    assert!(
        stats.same_group_coissues > stats.warp_instructions / 8,
        "expected substantial same-group co-issue, got {} of {}",
        stats.same_group_coissues,
        stats.warp_instructions
    );
    // And the parallel arms make SBI clearly faster than Warp64.
    let w64 = run(SmConfig::warp64(), balanced(64), 16, 256);
    assert!(stats.cycles * 5 < w64.cycles * 4);
}

#[test]
fn constraints_remove_redundant_instructions() {
    // A divergent loop: without constraints the leading split runs ahead
    // and re-executes blocks with partial masks.
    let mut k = KernelBuilder::new("divloop");
    k.mov(r(0), SpecialReg::Tid);
    k.and_(r(1), r(0), 7i32);
    k.iadd(r(1), r(1), 2i32); // per-thread trip count 2..9
    k.mov(r(2), 0i32);
    k.label("loop");
    k.and_(r(3), r(0), 1i32);
    k.isetp(p(0), CmpOp::Eq, r(3), 0i32);
    k.bra_if(p(0), "even");
    k.imad(r(2), r(2), 3i32, 1i32);
    k.bra("next");
    k.label("even");
    k.imad(r(2), r(2), 5i32, 2i32);
    k.label("next");
    k.iadd(r(1), r(1), -1i32);
    k.isetp(p(1), CmpOp::Gt, r(1), 0i32);
    k.bra_if(p(1), "loop");
    k.exit();
    let prog = k.build().expect("assembles");
    let with = run(SmConfig::sbi().with_constraints(true), prog.clone(), 8, 256);
    let without = run(SmConfig::sbi().with_constraints(false), prog, 8, 256);
    assert_eq!(with.thread_instructions, without.thread_instructions);
    assert!(
        with.warp_instructions <= without.warp_instructions,
        "constraints must not increase issued instructions ({} vs {})",
        with.warp_instructions,
        without.warp_instructions
    );
    assert!(with.constraint_suspensions > 0, "suspensions should fire");
}

#[test]
fn swi_lookup_statistics_track_probes_and_hits() {
    let stats = run(SmConfig::swi(), balanced(32), 16, 256);
    assert!(stats.lookup_probes > 0, "SWI must probe the buffer");
    assert!(stats.lookup_hits > 0, "SWI should find co-issues here");
    assert!(stats.lookup_hits <= stats.lookup_probes);
    assert!(
        stats.secondary_issues >= stats.lookup_hits,
        "every lookup hit becomes a secondary issue (plus solo picks)"
    );
}

#[test]
fn peak_ipc_is_respected() {
    // A pure MAD stream cannot exceed the back-end bound of any config.
    let mut k = KernelBuilder::new("stream");
    for i in 0..8 {
        k.mov(r(8 + i), 1i32);
    }
    for _ in 0..64 {
        for i in 0..8 {
            k.imad(r(8 + i), r(8 + i), 3i32, 1i32);
        }
    }
    k.exit();
    let prog = k.build().expect("assembles");
    for cfg in SmConfig::figure7_set() {
        let peak = cfg.peak_ipc() as f64;
        let stats = run(cfg.clone(), prog.clone(), 16, 256);
        assert!(
            stats.ipc() <= peak + 1e-9,
            "{}: IPC {:.1} exceeds peak {peak}",
            cfg.name,
            stats.ipc()
        );
    }
}

#[test]
fn swi_conflict_squash_is_rare_but_observable() {
    // Run several SWI workload shapes; conflicts (secondary picked what the
    // next primary wanted) must stay a small fraction of issues.
    let stats = run(SmConfig::swi(), balanced(16), 16, 256);
    assert!(
        stats.scheduler_conflicts * 10 <= stats.warp_instructions.max(1),
        "conflicts should be rare: {} of {}",
        stats.scheduler_conflicts,
        stats.warp_instructions
    );
}

#[test]
fn lane_shuffle_changes_only_timing_never_results() {
    // Shuffles permute lanes; committed thread-instruction counts are
    // identical, cycles may differ.
    let a = run(
        SmConfig::swi().with_lane_shuffle(LaneShuffle::Identity),
        balanced(16),
        8,
        256,
    );
    let b = run(
        SmConfig::swi().with_lane_shuffle(LaneShuffle::XorRev),
        balanced(16),
        8,
        256,
    );
    assert_eq!(a.thread_instructions, b.thread_instructions);
}

#[test]
fn frontier_and_stack_commit_identical_work() {
    // Same kernel, same committed thread-instructions on stack vs frontier
    // (with constraints keeping SBI convergent).
    let base = run(SmConfig::baseline(), balanced(24), 8, 256);
    let sbi = run(SmConfig::sbi(), balanced(24), 8, 256);
    // 32-wide vs 64-wide warps execute the same per-thread instruction
    // streams.
    assert_eq!(base.thread_instructions, sbi.thread_instructions);
}
