//! Direct coverage of `lsu::plan_global` edge cases that workloads only
//! exercise indirectly: unaligned accesses, cross-line straddles,
//! fully-masked-off warps, and replay trains under a zero-capacity epoch
//! (a channel so slow the whole epoch grants nothing on time).

use warpweave_core::lsu::plan_global;
use warpweave_mem::{
    coalesce, Cache, CacheConfig, DramConfig, MemRequest, MshrFile, SharedDramChannel, Transaction,
    BLOCK_BYTES,
};

fn l1() -> Cache {
    Cache::new(CacheConfig::paper_l1())
}

/// `plan_global` with MSHRs disabled — the configuration every test here
/// exercises (MSHR merge behaviour has its own coverage in `lsu`).
fn plan(
    l1: &mut Cache,
    start: u64,
    txs: &[Transaction],
    is_store: bool,
) -> warpweave_core::lsu::GlobalPlan {
    plan_global(l1, &mut MshrFile::disabled(), start, txs, is_store, 0)
}

/// Replays a plan's DRAM requests through a channel the way the
/// private-mode pipeline does, returning the final data-ready cycle.
fn resolve(plan: &warpweave_core::lsu::GlobalPlan, channel: &mut SharedDramChannel) -> u64 {
    let mut ready = plan.inline_ready;
    for (seq, &(issue_cycle, addr, is_write)) in plan.dram_requests.iter().enumerate() {
        let grant = channel.grant(&MemRequest {
            issue_cycle,
            sm_id: 0,
            seq: seq as u64,
            addr,
            is_write,
        });
        if !is_write {
            ready = ready.max(grant.ready_cycle);
        }
    }
    ready
}

#[test]
fn fully_masked_off_warp_occupies_the_port_one_cycle() {
    // A load whose active mask is empty contributes no transactions but
    // still occupies the LSU port for its issue slot.
    let mut l1 = l1();
    let plan = plan(&mut l1, 42, &[], false);
    assert_eq!(plan.port_cycles, 1, "empty plan still holds the port");
    assert_eq!(plan.inline_ready, 42, "nothing to wait for");
    assert!(plan.dram_requests.is_empty());
    assert!(plan.resolves_inline(false), "no grant to block on");
    // Same for a fully-masked store.
    let plan = self::plan(&mut l1, 42, &[], true);
    assert_eq!((plan.port_cycles, plan.inline_ready), (1, 42));
    assert!(plan.resolves_inline(true));
}

#[test]
fn unaligned_accesses_coalesce_by_containing_block() {
    // Byte-unaligned lane addresses (1, 5, 127) share block 0; 129 falls
    // into block 128 — the coalescer keys on the containing 128 B block,
    // not on word alignment.
    let txs = coalesce(&[(0, 1), (1, 5), (2, 127), (3, 129)]);
    assert_eq!(txs.len(), 2);
    assert_eq!(txs[0].block_addr, 0);
    assert_eq!(txs[0].lanes, vec![0, 1, 2]);
    assert_eq!(txs[1].block_addr, BLOCK_BYTES);
    assert_eq!(txs[1].lanes, vec![3]);

    // Cold cache: both blocks miss, one replay slot each, in port order.
    let mut l1 = l1();
    let plan = plan(&mut l1, 10, &txs, false);
    assert_eq!(plan.port_cycles, 2);
    assert_eq!(
        plan.dram_requests,
        vec![(10, 0, false), (11, BLOCK_BYTES, false)]
    );
    assert!(!plan.resolves_inline(false));
}

#[test]
fn cross_line_straddle_replays_once_per_line() {
    // A warp whose consecutive word accesses straddle a line boundary:
    // lanes 0..31 at 100 + 4·lane cross from block 0 into block 128.
    let accesses: Vec<(usize, u32)> = (0..32).map(|l| (l, 100 + 4 * l as u32)).collect();
    let txs = coalesce(&accesses);
    assert_eq!(txs.len(), 2, "one transaction per touched line");
    assert_eq!(txs[0].block_addr, 0);
    assert_eq!(txs[1].block_addr, BLOCK_BYTES);
    // Lanes 0..6 (addresses 100..127) stay in line 0; 7.. straddle over.
    assert_eq!(txs[0].lanes, (0..7).collect::<Vec<_>>());
    assert_eq!(txs[1].lanes, (7..32).collect::<Vec<_>>());

    // Warm both lines: the straddle costs one replay but stays inline.
    let mut l1 = l1();
    l1.access_load(0);
    l1.access_load(BLOCK_BYTES);
    let plan = plan(&mut l1, 50, &txs, false);
    assert_eq!(plan.port_cycles, 2, "replayed once for the second line");
    assert!(plan.dram_requests.is_empty());
    // Second transaction issues at 51 and completes after the hit latency.
    let hit = CacheConfig::paper_l1().hit_latency as u64;
    assert_eq!(plan.inline_ready, 51 + hit);
}

#[test]
fn replay_train_under_a_zero_capacity_epoch_serialises_cleanly() {
    // A channel provisioned at 1/8 byte per cycle needs 1024 cycles per
    // 128 B transfer — an entire DRAM-latency epoch (330 cycles) grants
    // nothing beyond the transfer already in flight. A 4-transaction
    // replay train issued back-to-back must queue deterministically, not
    // drop or reorder.
    let starved = DramConfig {
        bytes_per_cycle: 0.125,
        ..DramConfig::paper()
    };
    let mut l1 = l1();
    let txs: Vec<Transaction> = (0..4)
        .map(|b| Transaction {
            block_addr: b * BLOCK_BYTES,
            lanes: vec![b as usize],
        })
        .collect();
    let plan = plan(&mut l1, 0, &txs, false);
    assert_eq!(plan.port_cycles, 4);
    assert_eq!(plan.dram_requests.len(), 4, "cold cache: all four miss");

    let mut channel = SharedDramChannel::new(starved);
    let ready = resolve(&plan, &mut channel);
    // Transfers serialise at 1024 cycles each: starts at 0, 1024, 2048,
    // 3072; the train completes at 3072 + 330.
    assert_eq!(ready, 3402);
    let stats = channel.stats();
    assert_eq!(stats.read_transfers, 4);
    assert_eq!(stats.queued_requests, 3, "all but the first waited");
    assert_eq!(
        stats.max_queue_delay,
        3072 - 3,
        "last issued at 3, started at 3072"
    );
    assert_eq!(stats.bytes_transferred, 4 * 128);

    // The same train through epoch arbitration (the machine path) keeps
    // per-SM sequence order even though the whole batch lands in one
    // zero-capacity epoch, and matches the immediate-grant timings.
    let mut epoch_channel = SharedDramChannel::new(starved);
    let batch: Vec<MemRequest> = plan
        .dram_requests
        .iter()
        .enumerate()
        .map(|(seq, &(issue_cycle, addr, is_write))| MemRequest {
            issue_cycle,
            sm_id: 0,
            seq: seq as u64,
            addr,
            is_write,
        })
        .collect();
    let grants = epoch_channel.arbitrate_epoch(7, 4, batch);
    let seqs: Vec<u64> = grants.iter().map(|g| g.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3], "seq order survives arbitration");
    assert_eq!(grants.last().unwrap().ready_cycle, 3402);
    assert_eq!(epoch_channel.stats(), stats, "both paths agree exactly");

    // An epoch with no requests grants nothing and records nothing.
    assert!(epoch_channel.arbitrate_epoch(8, 4, Vec::new()).is_empty());
    assert_eq!(epoch_channel.stats(), stats);
}
