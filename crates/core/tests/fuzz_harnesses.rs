//! Debug-scale run of the three fuzz harnesses over generated kernels.
//!
//! A handful of seeds per profile keeps this inside the tier-1 budget;
//! the full 500-kernels-per-target sweep lives in the release
//! `fuzz_smoke` bin (`cargo run --release -p warpweave-bench --bin
//! fuzz_smoke`). The base seed honours `WARPWEAVE_FUZZ_SEED`, and any
//! failure prints the shrunk reproducer plus the one-line rerun command.

use warpweave_core::fuzzing::run_case;
use warpweave_isa::fuzz::{seed_from_env, FuzzProfile, SEED_ENV};

const DEFAULT_SEED: u64 = 0x5b15_a110;
const SEEDS_PER_PROFILE: u64 = 3;

fn sweep(profile: &FuzzProfile) {
    let base = seed_from_env(DEFAULT_SEED);
    for i in 0..SEEDS_PER_PROFILE {
        let seed = base.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match run_case(seed, profile) {
            Ok(out) => {
                assert!(out.static_instrs > 0);
                assert!(!out.policy_ipcs.is_empty());
            }
            Err(fail) => {
                eprintln!("shrunk reproducer:\n{}", fail.reproducer.to_text());
                panic!("{fail}\nrerun: {SEED_ENV}={seed:#x} cargo test -p warpweave-core --test fuzz_harnesses");
            }
        }
    }
}

#[test]
fn balanced_profile_passes_all_targets() {
    sweep(&FuzzProfile::balanced());
}

#[test]
fn regular_profile_passes_all_targets() {
    sweep(&FuzzProfile::regular());
}

#[test]
fn pathological_profile_passes_all_targets() {
    sweep(&FuzzProfile::pathological());
}

#[test]
fn memory_heavy_profile_passes_all_targets() {
    sweep(&FuzzProfile::memory_heavy());
}
