//! Workload × configuration run matrix, fanned out across host cores via
//! [`SweepRunner`], with optional per-cell checkpointing through
//! [`SweepCheckpoint`] and per-cell failure containment through
//! [`run_matrix_contained`].

use std::sync::{Arc, Mutex};

use warpweave_core::checkpoint::{CellRecord, CheckpointError, SweepCheckpoint};
use warpweave_core::faultinject::{FaultInjector, FaultKind, FaultPlan, FAULTS_ENV};
use warpweave_core::sweep::JobFailure;
use warpweave_core::{SmConfig, Stats, SweepRunner};
use warpweave_mem::DramConfig;
use warpweave_workloads::{run_prepared, Scale, Workload};

/// Seed used by every benchmark configuration (determinism across figures).
pub const BENCH_SEED: u64 = 0xb1e55ed;

/// One (workload, config) measurement.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// Collected statistics.
    pub stats: Stats,
}

impl CellResult {
    /// Thread-instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// DRAM bandwidth saturation of the run: fraction of the channel's
    /// byte budget actually moved (see [`Stats::dram_utilization`]).
    pub fn dram_utilization(&self, dram: &DramConfig) -> f64 {
        self.stats.dram_utilization(dram)
    }

    /// Mean cycles each DRAM load queued behind the channel.
    pub fn avg_dram_queue_delay(&self) -> f64 {
        self.stats.avg_dram_queue_delay()
    }
}

/// All measurements of a matrix run, in `(workload-major, config-minor)`
/// order.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Configuration labels (column order).
    pub configs: Vec<String>,
    /// Workload labels (row order).
    pub workloads: Vec<String>,
    /// `cells[w][c]` — the run of workload `w` under config `c`.
    pub cells: Vec<Vec<CellResult>>,
}

impl MatrixResult {
    /// IPC of workload row `w` under config column `c`.
    pub fn ipc(&self, w: usize, c: usize) -> f64 {
        self.cells[w][c].ipc()
    }

    /// Geometric-mean IPC per config over the given workload rows.
    pub fn gmean_ipc(&self, rows: &[usize]) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| gmean(rows.iter().map(|&w| self.ipc(w, c))))
            .collect()
    }

    /// Row index of a workload by name.
    pub fn row(&self, workload: &str) -> Option<usize> {
        self.workloads.iter().position(|w| w == workload)
    }

    /// Mean DRAM bandwidth saturation per config over the given rows.
    pub fn mean_dram_utilization(&self, rows: &[usize], dram: &DramConfig) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| {
                if rows.is_empty() {
                    0.0
                } else {
                    rows.iter()
                        .map(|&w| self.cells[w][c].dram_utilization(dram))
                        .sum::<f64>()
                        / rows.len() as f64
                }
            })
            .collect()
    }

    /// Mean per-load DRAM queue delay per config over the given rows.
    pub fn mean_dram_queue_delay(&self, rows: &[usize]) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| {
                if rows.is_empty() {
                    0.0
                } else {
                    rows.iter()
                        .map(|&w| self.cells[w][c].avg_dram_queue_delay())
                        .sum::<f64>()
                        / rows.len() as f64
                }
            })
            .collect()
    }
}

/// Geometric mean of an iterator of positive values.
pub fn gmean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Runs one workload under one configuration at benchmark scale.
///
/// # Panics
/// Panics if the simulation fails or (when `verify`) the result is wrong —
/// benchmark numbers from a broken run would be meaningless.
pub fn run_one(cfg: &SmConfig, workload: &dyn Workload, verify: bool) -> CellResult {
    run_one_at(cfg, workload, Scale::Bench, verify)
}

/// [`run_one`] at an explicit problem scale.
///
/// # Panics
/// As [`run_one`].
pub fn run_one_at(
    cfg: &SmConfig,
    workload: &dyn Workload,
    scale: Scale,
    verify: bool,
) -> CellResult {
    try_run_one_at(cfg, workload, scale, verify)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name(), cfg.name))
}

/// Fallible [`run_one_at`]: simulation and verification failures come
/// back as an `Err` string instead of a panic. This is the cell body
/// the fault-isolated sweep runs under `catch_unwind` — a sick cell
/// becomes a [`CellFailure`], never a dead process.
///
/// # Errors
/// The rendered [`warpweave_workloads::RunError`].
pub fn try_run_one_at(
    cfg: &SmConfig,
    workload: &dyn Workload,
    scale: Scale,
    verify: bool,
) -> Result<CellResult, String> {
    let prepared = workload.prepare(scale);
    let stats = run_prepared(cfg, prepared, verify).map_err(|e| e.to_string())?;
    Ok(CellResult {
        workload: workload.name().to_string(),
        config: cfg.name.clone(),
        stats,
    })
}

/// Runs the full `workloads × configs` matrix, fanning the cells out
/// across host cores through [`SweepRunner`]. Each cell stays a
/// single-SM simulation (the paper's figures model one SM), so per-cell
/// statistics are bit-identical to [`run_matrix_serial`] and independent
/// of the host thread count.
pub fn run_matrix(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    verify: bool,
) -> MatrixResult {
    run_matrix_on(&SweepRunner::new(), configs, workloads, verify)
}

/// [`run_matrix`] on an explicit [`SweepRunner`] (thread-cap control for
/// benchmarks and tests).
pub fn run_matrix_on(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    verify: bool,
) -> MatrixResult {
    run_matrix_at(runner, configs, workloads, Scale::Bench, verify)
}

/// [`run_matrix_on`] at an explicit problem scale.
pub fn run_matrix_at(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
) -> MatrixResult {
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let flat = runner.run(&jobs, |&(w, c)| {
        run_one_at(&configs[c], workloads[w].as_ref(), scale, verify)
    });
    collect_matrix(configs, workloads, flat)
}

/// The checkpoint key of one sweep cell: `workload/config`. Workload and
/// config labels never contain `|`, `#` or newlines (the characters the
/// checkpoint line format reserves), so the key is always recordable.
pub fn cell_key(workload: &str, config: &str) -> String {
    format!("{workload}/{config}")
}

/// One quarantined sweep cell, with full provenance: which cell, under
/// which seed, how many attempts were made, and why the last one failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Workload label.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// The configuration's RNG seed (reproduce with exactly this).
    pub seed: u64,
    /// Attempts made before quarantine.
    pub attempts: u32,
    /// The final attempt's failure.
    pub reason: JobFailure,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: seed {:#x}, {} attempt(s): {}",
            self.workload, self.config, self.seed, self.attempts, self.reason
        )
    }
}

/// Renders the human-readable failures block the bench binaries print to
/// stderr when cells were quarantined.
pub fn format_failures(failures: &[CellFailure]) -> String {
    let mut out = format!("FAILURES: {} cell(s) quarantined\n", failures.len());
    for f in failures {
        out.push_str(&format!("  {f}\n"));
    }
    out
}

/// Containment policy of a [`run_matrix_contained`] run: how often a
/// failing cell is retried, and an optional armed fault plan (tests/CI).
#[derive(Debug, Default)]
pub struct FaultPolicy {
    /// Retries per cell after its first failed attempt.
    pub max_retries: u32,
    /// Deterministic fault injection, when armed.
    pub injector: Option<Arc<FaultInjector>>,
}

impl FaultPolicy {
    /// No retries, no injection — the strict legacy behaviour.
    pub fn none() -> FaultPolicy {
        FaultPolicy::default()
    }

    /// `max_retries` retries, no injection.
    pub fn with_retries(max_retries: u32) -> FaultPolicy {
        FaultPolicy {
            max_retries,
            injector: None,
        }
    }

    /// Reads a fault plan from the [`FAULTS_ENV`] environment variable
    /// (no plan set means no injection).
    ///
    /// # Errors
    /// A malformed spec, rendered as a human-readable message.
    pub fn from_env(max_retries: u32) -> Result<FaultPolicy, String> {
        Ok(FaultPolicy {
            max_retries,
            injector: FaultPlan::from_env()?.map(|plan| Arc::new(plan.arm())),
        })
    }
}

/// Outcome of a fault-isolated matrix run ([`run_matrix_contained`]).
#[derive(Debug)]
pub struct SweepReport {
    /// The full matrix — present only when **every** cell of the grid is
    /// in the store (no quarantined cells, no exhausted budget).
    pub matrix: Option<MatrixResult>,
    /// Every completed cell (including resumed ones), in job order.
    pub healthy: Vec<CellResult>,
    /// Quarantined cells with provenance, in job order.
    pub failures: Vec<CellFailure>,
}

/// [`run_matrix_at`] with per-cell checkpointing **and** per-cell failure
/// containment. Cells already present in `store` are not re-simulated;
/// every freshly completed cell is appended to `store` (and flushed to
/// its file) the moment it finishes. Each cell attempt runs under
/// `catch_unwind`: a panicking or erroring cell is retried up to
/// `policy.max_retries` times and then quarantined as a [`CellFailure`],
/// while every healthy cell still completes — bit-identical to a
/// fault-free run at any host thread count, because containment wraps
/// the cell closure without reordering or re-seeding anything.
///
/// `cell_budget` caps how many *new* cells this call may attempt —
/// `None` means "run to completion". Quarantined cells are **not**
/// recorded to the store, so a later run (after the bug is fixed)
/// re-simulates exactly the quarantined cells. When every cell of the
/// grid is present, the assembled [`MatrixResult`] is built **from the
/// store**, so a resumed sweep is bit-identical to an uninterrupted one.
///
/// # Errors
/// The first [`CheckpointError`] hit while recording. Simulation
/// failures do **not** error — they come back in
/// [`SweepReport::failures`].
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_contained(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
    store: &mut SweepCheckpoint,
    cell_budget: Option<usize>,
    policy: &FaultPolicy,
) -> Result<SweepReport, CheckpointError> {
    run_matrix_shard(
        runner,
        configs,
        workloads,
        scale,
        verify,
        store,
        cell_budget,
        policy,
        None,
    )
}

/// [`run_matrix_contained`] restricted to a slice of the grid: with
/// `selected = Some(indices)` only the matrix cells at those
/// workload-major grid indices are attempted (cells already in `store`
/// are still skipped, and indices keep their meaning in the **full**
/// grid, so fault rules and shard specs agree across hosts and resumes).
/// `None` runs the whole grid — this *is* [`run_matrix_contained`].
///
/// This is the execution half of the distributed sweep fabric's shard
/// mode (`bench_sweep --jobs-from`): each host runs its slice into an
/// ordinary checkpoint, and `--merge` unions the files back into the
/// single-host payload.
///
/// # Errors
/// As [`run_matrix_contained`].
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_shard(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
    store: &mut SweepCheckpoint,
    cell_budget: Option<usize>,
    policy: &FaultPolicy,
    selected: Option<&[usize]>,
) -> Result<SweepReport, CheckpointError> {
    let all: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let key_of = |&(w, c): &(usize, usize)| cell_key(workloads[w].name(), &configs[c].name);
    // Remaining jobs keep their index in the *full* grid: fault rules
    // and shard specs target that index, so `panic@cell:7` (or
    // `shard:2/8`) means the same cell whether the sweep is fresh,
    // resumed, or sliced across hosts.
    let in_shard = |i: usize| selected.is_none_or(|sel| sel.binary_search(&i).is_ok());
    let remaining: Vec<(usize, (usize, usize))> = all
        .iter()
        .enumerate()
        .filter(|(i, pair)| in_shard(*i) && !store.contains(&key_of(pair)))
        .take(cell_budget.unwrap_or(usize::MAX))
        .map(|(i, pair)| (i, *pair))
        .collect();

    // The store is appended to from worker threads in completion order;
    // the mutex serialises the appends, the Option records the first
    // failure (later cells still simulate, they just stop persisting).
    // Lock recovery is poison-tolerant: a cell panic is caught *inside*
    // the isolated closure, but belt-and-braces beats a second abort.
    let recorder: Mutex<(&mut SweepCheckpoint, Option<CheckpointError>)> =
        Mutex::new((store, None));
    let outcomes = runner.run_isolated_reporting(
        &remaining,
        policy.max_retries,
        |&(cell_idx, (w, c))| {
            let key = cell_key(workloads[w].name(), &configs[c].name);
            if let Some(injector) = &policy.injector {
                match injector.cell_fault(cell_idx, &key) {
                    Some(FaultKind::Panic) => {
                        panic!("injected fault: panic in cell {cell_idx} ({key})")
                    }
                    Some(FaultKind::SimError) => {
                        return Err(format!(
                            "injected fault: simulation error in cell {cell_idx} ({key})"
                        ))
                    }
                    None => {}
                }
            }
            try_run_one_at(&configs[c], workloads[w].as_ref(), scale, verify)
        },
        |i, outcome| {
            if let Ok(cell) = &outcome.result {
                let key = key_of(&remaining[i].1);
                let mut guard = recorder
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if guard.1.is_none() {
                    if let Err(e) = guard.0.record(&key, CellRecord::new(cell.stats.clone())) {
                        guard.1 = Some(e);
                    }
                }
            }
        },
    );
    let (store, error) = recorder
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if let Some(e) = error {
        return Err(e);
    }

    let failures: Vec<CellFailure> = remaining
        .iter()
        .zip(&outcomes)
        .filter_map(|(&(_, (w, c)), outcome)| {
            outcome.result.as_ref().err().map(|failure| CellFailure {
                workload: workloads[w].name().to_string(),
                config: configs[c].name.clone(),
                seed: configs[c].seed,
                attempts: outcome.attempts,
                reason: failure.clone(),
            })
        })
        .collect();

    let healthy: Vec<CellResult> = all
        .iter()
        .filter_map(|&(w, c)| {
            store.get(&key_of(&(w, c))).map(|record| CellResult {
                workload: workloads[w].name().to_string(),
                config: configs[c].name.clone(),
                stats: record.stats.clone(),
            })
        })
        .collect();
    let matrix =
        (healthy.len() == all.len()).then(|| collect_matrix(configs, workloads, healthy.clone()));
    Ok(SweepReport {
        matrix,
        healthy,
        failures,
    })
}

/// [`run_matrix_at`] with per-cell checkpointing: cells already present in
/// `store` are **not** re-simulated; every freshly completed cell is
/// appended to `store` (and flushed to its file) the moment it finishes,
/// from whichever worker thread ran it.
///
/// `cell_budget` caps how many *new* cells this call may run — `None`
/// means "run to completion". With a budget the call can return
/// `Ok(None)`: the grid is still incomplete (resume later). When every
/// cell of the grid is present, the assembled [`MatrixResult`] is built
/// **from the store**, so a resumed sweep is bit-identical to an
/// uninterrupted one — each cell is a pure function of `(workload,
/// config, scale)` and it does not matter which run computed it.
///
/// This is the strict wrapper over [`run_matrix_contained`]: no retries,
/// no injection, and any cell failure panics.
///
/// # Errors
/// The first [`CheckpointError`] hit while recording.
///
/// # Panics
/// Simulation failures, as in [`run_one_at`] — a half-measured benchmark
/// is useless.
pub fn run_matrix_checkpointed(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
    store: &mut SweepCheckpoint,
    cell_budget: Option<usize>,
) -> Result<Option<MatrixResult>, CheckpointError> {
    let report = run_matrix_contained(
        runner,
        configs,
        workloads,
        scale,
        verify,
        store,
        cell_budget,
        &FaultPolicy::none(),
    )?;
    if let Some(first) = report.failures.first() {
        panic!("{} on {}: {}", first.workload, first.config, first.reason);
    }
    Ok(report.matrix)
}

/// Runs a figure grid with optional per-cell checkpointing, the entry
/// point the fig8a/fig8b/fig9 binaries share. With a `checkpoint` path the
/// grid resumes from (and records into) that file — bound via
/// [`crate::grid::grid_id`] to this exact config/workload set, so a stale
/// file from a different figure can never be resumed against it; without
/// one it runs purely in memory. A resumed grid is bit-identical to an
/// uninterrupted one (each cell is a pure function of its coordinates).
///
/// Cells run fault-isolated under the policy from [`FAULTS_ENV`] (no env
/// var means no injection, one retry). Quarantined cells print a failures
/// block to stderr and **exit the process with code 4** — every healthy
/// cell is already persisted to the checkpoint, so nothing is lost.
///
/// # Panics
/// Checkpoint failures or a malformed fault spec — as in [`run_one_at`],
/// a partial figure is useless.
pub fn run_matrix_figure(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
    checkpoint: Option<&str>,
) -> MatrixResult {
    let policy =
        FaultPolicy::from_env(1).unwrap_or_else(|e| panic!("bad {FAULTS_ENV} fault spec: {e}"));
    let Some(path) = checkpoint else {
        if policy.injector.is_none() {
            return run_matrix_at(runner, configs, workloads, scale, verify);
        }
        // Injection without a checkpoint still needs an (in-memory) store
        // so the contained path can assemble healthy cells.
        let mut store = SweepCheckpoint::in_memory(crate::grid::grid_id(configs, workloads, scale));
        return finish_figure(run_matrix_contained(
            runner, configs, workloads, scale, verify, &mut store, None, &policy,
        ));
    };
    let id = crate::grid::grid_id(configs, workloads, scale);
    let mut store =
        SweepCheckpoint::resume(path, id).unwrap_or_else(|e| panic!("checkpoint {path}: {e}"));
    if !store.is_empty() {
        eprintln!(
            "checkpoint {path}: resuming with {} completed cell(s)",
            store.len()
        );
    }
    if let Some(injector) = &policy.injector {
        store.arm_faults(Arc::clone(injector));
    }
    finish_figure(run_matrix_contained(
        runner, configs, workloads, scale, verify, &mut store, None, &policy,
    ))
}

/// Shared tail of [`run_matrix_figure`]: surfaces quarantined cells and
/// exits 4, panics on checkpoint errors, unwraps the completed matrix.
fn finish_figure(report: Result<SweepReport, CheckpointError>) -> MatrixResult {
    let report = report.unwrap_or_else(|e| panic!("checkpointed figure grid: {e}"));
    if !report.failures.is_empty() {
        eprint!("{}", format_failures(&report.failures));
        eprintln!("completed cells are persisted; fix the fault and re-run to fill the gaps");
        std::process::exit(4);
    }
    report
        .matrix
        .expect("no cell budget and no failures, so the grid must complete")
}

/// The pre-parallelism reference path: every cell run back-to-back on the
/// calling thread. Kept as the baseline the sweep-scaling benchmark and
/// `BENCH_sweep.json` measure against.
pub fn run_matrix_serial(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    verify: bool,
) -> MatrixResult {
    run_matrix_serial_at(configs, workloads, Scale::Bench, verify)
}

/// [`run_matrix_serial`] at an explicit problem scale.
pub fn run_matrix_serial_at(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
) -> MatrixResult {
    let flat: Vec<CellResult> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .map(|(w, c)| run_one_at(&configs[c], workloads[w].as_ref(), scale, verify))
        .collect();
    collect_matrix(configs, workloads, flat)
}

fn collect_matrix(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    flat: Vec<CellResult>,
) -> MatrixResult {
    debug_assert_eq!(flat.len(), configs.len() * workloads.len());
    let mut cells: Vec<Vec<CellResult>> = Vec::with_capacity(workloads.len());
    let mut it = flat.into_iter();
    for _ in 0..workloads.len() {
        cells.push(
            (0..configs.len())
                .map(|_| it.next().expect("full matrix"))
                .collect(),
        );
    }
    MatrixResult {
        configs: configs.iter().map(|c| c.name.clone()).collect(),
        workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
        cells,
    }
}

/// Formats an IPC table: one row per workload, one column per config, plus
/// a geometric-mean row over `mean_rows`.
pub fn format_ipc_table(m: &MatrixResult, mean_rows: &[usize], mean_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "benchmark"));
    for c in &m.configs {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    for (w, name) in m.workloads.iter().enumerate() {
        out.push_str(&format!("{name:<22}"));
        for c in 0..m.configs.len() {
            out.push_str(&format!("{:>12.1}", m.ipc(w, c)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{mean_label:<22}"));
    for g in m.gmean_ipc(mean_rows) {
        out.push_str(&format!("{g:>12.1}"));
    }
    out.push('\n');
    out
}

/// Formats the bandwidth-saturation companion table: one row per workload,
/// one column per config, each cell the run's DRAM utilization in percent,
/// plus mean-utilization and mean-queue-delay summary rows over
/// `mean_rows`. This is how every figure binary records how close its
/// configurations run to the memory wall.
pub fn format_bandwidth_table(m: &MatrixResult, dram: &DramConfig, mean_rows: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "dram util %"));
    for c in &m.configs {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    for (w, name) in m.workloads.iter().enumerate() {
        out.push_str(&format!("{name:<22}"));
        for c in 0..m.configs.len() {
            out.push_str(&format!(
                "{:>12.1}",
                m.cells[w][c].dram_utilization(dram) * 100.0
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22}", "Mean util %"));
    for u in m.mean_dram_utilization(mean_rows, dram) {
        out.push_str(&format!("{:>12.1}", u * 100.0));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "Queue delay (cy)"));
    for d in m.mean_dram_queue_delay(mean_rows) {
        out.push_str(&format!("{d:>12.1}"));
    }
    out.push('\n');
    out
}

/// Formats the compact per-config bandwidth summary (mean DRAM
/// saturation and queue delay over `rows`) the fig8/fig9 binaries append
/// below their speedup tables.
pub fn format_bandwidth_summary(m: &MatrixResult, dram: &DramConfig, rows: &[usize]) -> String {
    let utils = m.mean_dram_utilization(rows, dram);
    let delays = m.mean_dram_queue_delay(rows);
    let width = m.configs.iter().map(String::len).max().unwrap_or(0).max(14);
    let mut out = String::from("DRAM saturation (mean over shown rows):\n");
    for (c, name) in m.configs.iter().enumerate() {
        out.push_str(&format!(
            "  {:<width$} {:5.1}% of bandwidth, {:6.1} cy avg queue delay\n",
            name,
            utils[c] * 100.0,
            delays[c]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean([4.0f64, 16.0].into_iter()) - 8.0).abs() < 1e-9);
        assert_eq!(gmean(std::iter::empty()), 0.0);
        let one = gmean([5.0f64].into_iter());
        assert!((one - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_matrix_runs() {
        // One cheap workload × two configs, verified.
        let configs = vec![SmConfig::baseline(), SmConfig::sbi()];
        let w = warpweave_workloads::by_name("Hotspot").expect("registered");
        // Use Test scale through run_prepared directly to keep this fast.
        for cfg in &configs {
            let prepared = w.prepare(Scale::Test);
            let stats = run_prepared(cfg, prepared, true).unwrap();
            assert!(stats.ipc() > 0.0);
        }
    }
}
