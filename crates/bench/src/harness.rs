//! Workload × configuration run matrix with simple thread-level parallelism.

use std::sync::Mutex;

use warpweave_core::{SmConfig, Stats};
use warpweave_workloads::{run_prepared, Scale, Workload};

/// Seed used by every benchmark configuration (determinism across figures).
pub const BENCH_SEED: u64 = 0xb1e55ed;

/// One (workload, config) measurement.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// Collected statistics.
    pub stats: Stats,
}

impl CellResult {
    /// Thread-instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// All measurements of a matrix run, in `(workload-major, config-minor)`
/// order.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Configuration labels (column order).
    pub configs: Vec<String>,
    /// Workload labels (row order).
    pub workloads: Vec<String>,
    /// `cells[w][c]` — the run of workload `w` under config `c`.
    pub cells: Vec<Vec<CellResult>>,
}

impl MatrixResult {
    /// IPC of workload row `w` under config column `c`.
    pub fn ipc(&self, w: usize, c: usize) -> f64 {
        self.cells[w][c].ipc()
    }

    /// Geometric-mean IPC per config over the given workload rows.
    pub fn gmean_ipc(&self, rows: &[usize]) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| gmean(rows.iter().map(|&w| self.ipc(w, c))))
            .collect()
    }

    /// Row index of a workload by name.
    pub fn row(&self, workload: &str) -> Option<usize> {
        self.workloads.iter().position(|w| w == workload)
    }
}

/// Geometric mean of an iterator of positive values.
pub fn gmean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Runs one workload under one configuration at benchmark scale.
///
/// # Panics
/// Panics if the simulation fails or (when `verify`) the result is wrong —
/// benchmark numbers from a broken run would be meaningless.
pub fn run_one(cfg: &SmConfig, workload: &dyn Workload, verify: bool) -> CellResult {
    let prepared = workload.prepare(Scale::Bench);
    let stats = run_prepared(cfg, prepared, verify)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name(), cfg.name));
    CellResult {
        workload: workload.name().to_string(),
        config: cfg.name.clone(),
        stats,
    }
}

/// Runs the full `workloads × configs` matrix, parallelised across host
/// threads. Results are deterministic (each simulation is single-threaded
/// and seeded).
pub fn run_matrix(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    verify: bool,
) -> MatrixResult {
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; jobs.len()]);
    let next: Mutex<usize> = Mutex::new(0);
    let nthreads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..nthreads {
            s.spawn(|| loop {
                let idx = {
                    let mut n = next.lock().expect("queue lock");
                    if *n >= jobs.len() {
                        return;
                    }
                    let i = *n;
                    *n += 1;
                    i
                };
                let (w, c) = jobs[idx];
                let cell = run_one(&configs[c], workloads[w].as_ref(), verify);
                results.lock().expect("result lock")[idx] = Some(cell);
            });
        }
    });
    let flat = results.into_inner().expect("results");
    let mut cells: Vec<Vec<CellResult>> = Vec::with_capacity(workloads.len());
    let mut it = flat.into_iter();
    for _ in 0..workloads.len() {
        let row: Vec<CellResult> = (0..configs.len())
            .map(|_| it.next().flatten().expect("all jobs completed"))
            .collect();
        cells.push(row);
    }
    MatrixResult {
        configs: configs.iter().map(|c| c.name.clone()).collect(),
        workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
        cells,
    }
}

/// Formats an IPC table: one row per workload, one column per config, plus
/// a geometric-mean row over `mean_rows`.
pub fn format_ipc_table(m: &MatrixResult, mean_rows: &[usize], mean_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "benchmark"));
    for c in &m.configs {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    for (w, name) in m.workloads.iter().enumerate() {
        out.push_str(&format!("{name:<22}"));
        for c in 0..m.configs.len() {
            out.push_str(&format!("{:>12.1}", m.ipc(w, c)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{mean_label:<22}"));
    for g in m.gmean_ipc(mean_rows) {
        out.push_str(&format!("{g:>12.1}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean([4.0f64, 16.0].into_iter()) - 8.0).abs() < 1e-9);
        assert_eq!(gmean(std::iter::empty()), 0.0);
        let one = gmean([5.0f64].into_iter());
        assert!((one - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_matrix_runs() {
        // One cheap workload × two configs, verified.
        let configs = vec![SmConfig::baseline(), SmConfig::sbi()];
        let w = warpweave_workloads::by_name("Hotspot").expect("registered");
        // Use Test scale through run_prepared directly to keep this fast.
        for cfg in &configs {
            let prepared = w.prepare(Scale::Test);
            let stats = run_prepared(cfg, prepared, true).unwrap();
            assert!(stats.ipc() > 0.0);
        }
    }
}
