//! Workload × configuration run matrix, fanned out across host cores via
//! [`SweepRunner`], with optional per-cell checkpointing through
//! [`SweepCheckpoint`].

use std::sync::Mutex;

use warpweave_core::checkpoint::{CellRecord, CheckpointError, SweepCheckpoint};
use warpweave_core::{SmConfig, Stats, SweepRunner};
use warpweave_mem::DramConfig;
use warpweave_workloads::{run_prepared, Scale, Workload};

/// Seed used by every benchmark configuration (determinism across figures).
pub const BENCH_SEED: u64 = 0xb1e55ed;

/// One (workload, config) measurement.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload label.
    pub workload: String,
    /// Configuration label.
    pub config: String,
    /// Collected statistics.
    pub stats: Stats,
}

impl CellResult {
    /// Thread-instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// DRAM bandwidth saturation of the run: fraction of the channel's
    /// byte budget actually moved (see [`Stats::dram_utilization`]).
    pub fn dram_utilization(&self, dram: &DramConfig) -> f64 {
        self.stats.dram_utilization(dram)
    }

    /// Mean cycles each DRAM load queued behind the channel.
    pub fn avg_dram_queue_delay(&self) -> f64 {
        self.stats.avg_dram_queue_delay()
    }
}

/// All measurements of a matrix run, in `(workload-major, config-minor)`
/// order.
#[derive(Debug, Clone)]
pub struct MatrixResult {
    /// Configuration labels (column order).
    pub configs: Vec<String>,
    /// Workload labels (row order).
    pub workloads: Vec<String>,
    /// `cells[w][c]` — the run of workload `w` under config `c`.
    pub cells: Vec<Vec<CellResult>>,
}

impl MatrixResult {
    /// IPC of workload row `w` under config column `c`.
    pub fn ipc(&self, w: usize, c: usize) -> f64 {
        self.cells[w][c].ipc()
    }

    /// Geometric-mean IPC per config over the given workload rows.
    pub fn gmean_ipc(&self, rows: &[usize]) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| gmean(rows.iter().map(|&w| self.ipc(w, c))))
            .collect()
    }

    /// Row index of a workload by name.
    pub fn row(&self, workload: &str) -> Option<usize> {
        self.workloads.iter().position(|w| w == workload)
    }

    /// Mean DRAM bandwidth saturation per config over the given rows.
    pub fn mean_dram_utilization(&self, rows: &[usize], dram: &DramConfig) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| {
                if rows.is_empty() {
                    0.0
                } else {
                    rows.iter()
                        .map(|&w| self.cells[w][c].dram_utilization(dram))
                        .sum::<f64>()
                        / rows.len() as f64
                }
            })
            .collect()
    }

    /// Mean per-load DRAM queue delay per config over the given rows.
    pub fn mean_dram_queue_delay(&self, rows: &[usize]) -> Vec<f64> {
        (0..self.configs.len())
            .map(|c| {
                if rows.is_empty() {
                    0.0
                } else {
                    rows.iter()
                        .map(|&w| self.cells[w][c].avg_dram_queue_delay())
                        .sum::<f64>()
                        / rows.len() as f64
                }
            })
            .collect()
    }
}

/// Geometric mean of an iterator of positive values.
pub fn gmean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// Runs one workload under one configuration at benchmark scale.
///
/// # Panics
/// Panics if the simulation fails or (when `verify`) the result is wrong —
/// benchmark numbers from a broken run would be meaningless.
pub fn run_one(cfg: &SmConfig, workload: &dyn Workload, verify: bool) -> CellResult {
    run_one_at(cfg, workload, Scale::Bench, verify)
}

/// [`run_one`] at an explicit problem scale.
///
/// # Panics
/// As [`run_one`].
pub fn run_one_at(
    cfg: &SmConfig,
    workload: &dyn Workload,
    scale: Scale,
    verify: bool,
) -> CellResult {
    let prepared = workload.prepare(scale);
    let stats = run_prepared(cfg, prepared, verify)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name(), cfg.name));
    CellResult {
        workload: workload.name().to_string(),
        config: cfg.name.clone(),
        stats,
    }
}

/// Runs the full `workloads × configs` matrix, fanning the cells out
/// across host cores through [`SweepRunner`]. Each cell stays a
/// single-SM simulation (the paper's figures model one SM), so per-cell
/// statistics are bit-identical to [`run_matrix_serial`] and independent
/// of the host thread count.
pub fn run_matrix(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    verify: bool,
) -> MatrixResult {
    run_matrix_on(&SweepRunner::new(), configs, workloads, verify)
}

/// [`run_matrix`] on an explicit [`SweepRunner`] (thread-cap control for
/// benchmarks and tests).
pub fn run_matrix_on(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    verify: bool,
) -> MatrixResult {
    run_matrix_at(runner, configs, workloads, Scale::Bench, verify)
}

/// [`run_matrix_on`] at an explicit problem scale.
pub fn run_matrix_at(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
) -> MatrixResult {
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let flat = runner.run(&jobs, |&(w, c)| {
        run_one_at(&configs[c], workloads[w].as_ref(), scale, verify)
    });
    collect_matrix(configs, workloads, flat)
}

/// The checkpoint key of one sweep cell: `workload/config`. Workload and
/// config labels never contain `|`, `#` or newlines (the characters the
/// checkpoint line format reserves), so the key is always recordable.
pub fn cell_key(workload: &str, config: &str) -> String {
    format!("{workload}/{config}")
}

/// [`run_matrix_at`] with per-cell checkpointing: cells already present in
/// `store` are **not** re-simulated; every freshly completed cell is
/// appended to `store` (and flushed to its file) the moment it finishes,
/// from whichever worker thread ran it.
///
/// `cell_budget` caps how many *new* cells this call may run — `None`
/// means "run to completion". With a budget the call can return
/// `Ok(None)`: the grid is still incomplete (resume later). When every
/// cell of the grid is present, the assembled [`MatrixResult`] is built
/// **from the store**, so a resumed sweep is bit-identical to an
/// uninterrupted one — each cell is a pure function of `(workload,
/// config, scale)` and it does not matter which run computed it.
///
/// # Errors
/// The first [`CheckpointError`] hit while recording (simulation failures
/// panic, as in [`run_one_at`] — a half-measured benchmark is useless).
pub fn run_matrix_checkpointed(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
    store: &mut SweepCheckpoint,
    cell_budget: Option<usize>,
) -> Result<Option<MatrixResult>, CheckpointError> {
    let all: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .collect();
    let key_of = |&(w, c): &(usize, usize)| cell_key(workloads[w].name(), &configs[c].name);
    let remaining: Vec<(usize, usize)> = all
        .iter()
        .filter(|pair| !store.contains(&key_of(pair)))
        .take(cell_budget.unwrap_or(usize::MAX))
        .copied()
        .collect();

    // The store is appended to from worker threads in completion order;
    // the mutex serialises the appends, the Option records the first
    // failure (later cells still simulate, they just stop persisting).
    let recorder: Mutex<(&mut SweepCheckpoint, Option<CheckpointError>)> =
        Mutex::new((store, None));
    runner.run_reporting(
        &remaining,
        |&(w, c)| run_one_at(&configs[c], workloads[w].as_ref(), scale, verify),
        |i, cell| {
            let key = key_of(&remaining[i]);
            let mut guard = recorder.lock().expect("checkpoint recorder");
            if guard.1.is_none() {
                if let Err(e) = guard.0.record(&key, CellRecord::new(cell.stats.clone())) {
                    guard.1 = Some(e);
                }
            }
        },
    );
    let (store, error) = recorder.into_inner().expect("checkpoint recorder");
    if let Some(e) = error {
        return Err(e);
    }

    if !all.iter().all(|pair| store.contains(&key_of(pair))) {
        return Ok(None);
    }
    let flat: Vec<CellResult> = all
        .iter()
        .map(|&(w, c)| CellResult {
            workload: workloads[w].name().to_string(),
            config: configs[c].name.clone(),
            stats: store
                .get(&key_of(&(w, c)))
                .expect("cell completeness checked above")
                .stats
                .clone(),
        })
        .collect();
    Ok(Some(collect_matrix(configs, workloads, flat)))
}

/// Runs a figure grid with optional per-cell checkpointing, the entry
/// point the fig8a/fig8b/fig9 binaries share. With a `checkpoint` path the
/// grid resumes from (and records into) that file — bound via
/// [`crate::grid::grid_id`] to this exact config/workload set, so a stale
/// file from a different figure can never be resumed against it; without
/// one it runs purely in memory. A resumed grid is bit-identical to an
/// uninterrupted one (each cell is a pure function of its coordinates).
///
/// # Panics
/// Simulation or checkpoint failures — as in [`run_one_at`], a partial
/// figure is useless.
pub fn run_matrix_figure(
    runner: &SweepRunner,
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
    checkpoint: Option<&str>,
) -> MatrixResult {
    let Some(path) = checkpoint else {
        return run_matrix_at(runner, configs, workloads, scale, verify);
    };
    let id = crate::grid::grid_id(configs, workloads, scale);
    let mut store =
        SweepCheckpoint::resume(path, id).unwrap_or_else(|e| panic!("checkpoint {path}: {e}"));
    if !store.is_empty() {
        eprintln!(
            "checkpoint {path}: resuming with {} completed cell(s)",
            store.len()
        );
    }
    run_matrix_checkpointed(runner, configs, workloads, scale, verify, &mut store, None)
        .unwrap_or_else(|e| panic!("checkpointed figure grid: {e}"))
        .expect("no cell budget, so the grid must complete")
}

/// The pre-parallelism reference path: every cell run back-to-back on the
/// calling thread. Kept as the baseline the sweep-scaling benchmark and
/// `BENCH_sweep.json` measure against.
pub fn run_matrix_serial(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    verify: bool,
) -> MatrixResult {
    run_matrix_serial_at(configs, workloads, Scale::Bench, verify)
}

/// [`run_matrix_serial`] at an explicit problem scale.
pub fn run_matrix_serial_at(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    scale: Scale,
    verify: bool,
) -> MatrixResult {
    let flat: Vec<CellResult> = (0..workloads.len())
        .flat_map(|w| (0..configs.len()).map(move |c| (w, c)))
        .map(|(w, c)| run_one_at(&configs[c], workloads[w].as_ref(), scale, verify))
        .collect();
    collect_matrix(configs, workloads, flat)
}

fn collect_matrix(
    configs: &[SmConfig],
    workloads: &[Box<dyn Workload>],
    flat: Vec<CellResult>,
) -> MatrixResult {
    debug_assert_eq!(flat.len(), configs.len() * workloads.len());
    let mut cells: Vec<Vec<CellResult>> = Vec::with_capacity(workloads.len());
    let mut it = flat.into_iter();
    for _ in 0..workloads.len() {
        cells.push(
            (0..configs.len())
                .map(|_| it.next().expect("full matrix"))
                .collect(),
        );
    }
    MatrixResult {
        configs: configs.iter().map(|c| c.name.clone()).collect(),
        workloads: workloads.iter().map(|w| w.name().to_string()).collect(),
        cells,
    }
}

/// Formats an IPC table: one row per workload, one column per config, plus
/// a geometric-mean row over `mean_rows`.
pub fn format_ipc_table(m: &MatrixResult, mean_rows: &[usize], mean_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "benchmark"));
    for c in &m.configs {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    for (w, name) in m.workloads.iter().enumerate() {
        out.push_str(&format!("{name:<22}"));
        for c in 0..m.configs.len() {
            out.push_str(&format!("{:>12.1}", m.ipc(w, c)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{mean_label:<22}"));
    for g in m.gmean_ipc(mean_rows) {
        out.push_str(&format!("{g:>12.1}"));
    }
    out.push('\n');
    out
}

/// Formats the bandwidth-saturation companion table: one row per workload,
/// one column per config, each cell the run's DRAM utilization in percent,
/// plus mean-utilization and mean-queue-delay summary rows over
/// `mean_rows`. This is how every figure binary records how close its
/// configurations run to the memory wall.
pub fn format_bandwidth_table(m: &MatrixResult, dram: &DramConfig, mean_rows: &[usize]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<22}", "dram util %"));
    for c in &m.configs {
        out.push_str(&format!("{c:>12}"));
    }
    out.push('\n');
    for (w, name) in m.workloads.iter().enumerate() {
        out.push_str(&format!("{name:<22}"));
        for c in 0..m.configs.len() {
            out.push_str(&format!(
                "{:>12.1}",
                m.cells[w][c].dram_utilization(dram) * 100.0
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<22}", "Mean util %"));
    for u in m.mean_dram_utilization(mean_rows, dram) {
        out.push_str(&format!("{:>12.1}", u * 100.0));
    }
    out.push('\n');
    out.push_str(&format!("{:<22}", "Queue delay (cy)"));
    for d in m.mean_dram_queue_delay(mean_rows) {
        out.push_str(&format!("{d:>12.1}"));
    }
    out.push('\n');
    out
}

/// Formats the compact per-config bandwidth summary (mean DRAM
/// saturation and queue delay over `rows`) the fig8/fig9 binaries append
/// below their speedup tables.
pub fn format_bandwidth_summary(m: &MatrixResult, dram: &DramConfig, rows: &[usize]) -> String {
    let utils = m.mean_dram_utilization(rows, dram);
    let delays = m.mean_dram_queue_delay(rows);
    let width = m.configs.iter().map(String::len).max().unwrap_or(0).max(14);
    let mut out = String::from("DRAM saturation (mean over shown rows):\n");
    for (c, name) in m.configs.iter().enumerate() {
        out.push_str(&format!(
            "  {:<width$} {:5.1}% of bandwidth, {:6.1} cy avg queue delay\n",
            name,
            utils[c] * 100.0,
            delays[c]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean([4.0f64, 16.0].into_iter()) - 8.0).abs() < 1e-9);
        assert_eq!(gmean(std::iter::empty()), 0.0);
        let one = gmean([5.0f64].into_iter());
        assert!((one - 5.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_matrix_runs() {
        // One cheap workload × two configs, verified.
        let configs = vec![SmConfig::baseline(), SmConfig::sbi()];
        let w = warpweave_workloads::by_name("Hotspot").expect("registered");
        // Use Test scale through run_prepared directly to keep this fast.
        for cfg in &configs {
            let prepared = w.prepare(Scale::Test);
            let stats = run_prepared(cfg, prepared, true).unwrap();
            assert!(stats.ipc() > 0.0);
        }
    }
}
