//! Regenerates **figure 8(a)**: the effect of SBI reconvergence constraints
//! on the irregular applications — speedup of constraints-on over
//! constraints-off for SBI and SBI+SWI, plus the issued-instruction
//! reduction the paper quotes (−1.3 % regular / −5.5 % irregular).
//!
//! Usage: `fig8a_constraints [--no-verify] [--checkpoint PATH]`
//!
//! With `--checkpoint`, every completed cell is flushed to `PATH` and an
//! interrupted run resumes from the last cell (bit-identical results).

use warpweave_bench::arg_value;
use warpweave_bench::grid;
use warpweave_bench::harness::{format_bandwidth_summary, run_matrix_figure};
use warpweave_core::SweepRunner;
use warpweave_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let checkpoint = arg_value(&args, "--checkpoint");
    let configs = grid::constraint_configs();
    let workloads = warpweave_workloads::irregular();
    let m = run_matrix_figure(
        &SweepRunner::new(),
        &configs,
        &workloads,
        Scale::Bench,
        verify,
        checkpoint.as_deref(),
    );
    println!("== Figure 8(a): speedup of reconvergence constraints (irregular) ==");
    println!(
        "{:<22}{:>12}{:>12}{:>14}{:>14}",
        "benchmark", "SBI", "SBI+SWI", "insn SBI", "insn Both"
    );
    let mut logs = [0.0f64; 2];
    let mut insn = [0.0f64; 2];
    let mut n = 0usize;
    for w in 0..m.workloads.len() {
        let s_sbi = m.ipc(w, 1) / m.ipc(w, 0);
        let s_both = m.ipc(w, 3) / m.ipc(w, 2);
        let i_sbi = m.cells[w][1].stats.warp_instructions as f64
            / m.cells[w][0].stats.warp_instructions as f64
            - 1.0;
        let i_both = m.cells[w][3].stats.warp_instructions as f64
            / m.cells[w][2].stats.warp_instructions as f64
            - 1.0;
        println!(
            "{:<22}{:>12.3}{:>12.3}{:>13.1}%{:>13.1}%",
            m.workloads[w],
            s_sbi,
            s_both,
            i_sbi * 100.0,
            i_both * 100.0
        );
        if !m.workloads[w].starts_with("TMD") {
            logs[0] += s_sbi.ln();
            logs[1] += s_both.ln();
            insn[0] += i_sbi;
            insn[1] += i_both;
            n += 1;
        }
    }
    println!(
        "{:<22}{:>12.3}{:>12.3}{:>13.1}%{:>13.1}%",
        "Gmean (excl. TMD)",
        (logs[0] / n as f64).exp(),
        (logs[1] / n as f64).exp(),
        insn[0] / n as f64 * 100.0,
        insn[1] / n as f64 * 100.0
    );
    println!();
    let rows: Vec<usize> = (0..m.workloads.len())
        .filter(|&w| !m.workloads[w].starts_with("TMD"))
        .collect();
    print!("{}", format_bandwidth_summary(&m, &configs[0].dram, &rows));
    println!();
    println!("paper: constraints ≈ ±0.1% IPC on SBI alone; SortingNetworks +2.4% with");
    println!("SBI+SWI; BFS/Histogram held back; instructions reduced 1.3%/5.5%.");
}
