//! Regenerates the paper's headline numbers (§1/§5.1/§7): geometric-mean
//! speedups of SBI, SWI and SBI+SWI over the baseline on the regular and
//! irregular sets (paper: SBI +15%/+41%, SWI +25%/+33%, SBI+SWI +23%/+40%).
//!
//! Usage: `summary_speedups [--no-verify]`
use warpweave_bench::harness::run_matrix;
use warpweave_core::SmConfig;

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    let configs = SmConfig::figure7_set();
    for (label, workloads) in [
        ("regular", warpweave_workloads::regular()),
        ("irregular", warpweave_workloads::irregular()),
    ] {
        let m = run_matrix(&configs, &workloads, verify);
        let rows: Vec<usize> = (0..m.workloads.len())
            .filter(|&w| !m.workloads[w].starts_with("TMD"))
            .collect();
        let g = m.gmean_ipc(&rows);
        println!("== {label} (gmean IPC, TMD excluded) ==");
        for (c, name) in m.configs.iter().enumerate() {
            if c == 0 {
                println!("  {:<10} {:6.1} IPC", name, g[c]);
            } else {
                println!(
                    "  {:<10} {:6.1} IPC  ({:+.1}% vs baseline)",
                    name,
                    g[c],
                    (g[c] / g[0] - 1.0) * 100.0
                );
            }
        }
    }
}
