//! Measures the serial vs. parallel sweep wall-clock and emits a
//! machine-readable `BENCH_sweep.json` baseline for the performance
//! trajectory.
//!
//! Usage: `bench_sweep [--full] [--out PATH]`
//!
//! * default — a quick test-scale sweep (2 workloads × 5 front-ends) plus
//!   a 4-SM machine scaling probe; finishes in seconds.
//! * `--full` — the fig. 7 sweep (all 21 workloads × 5 front-ends) at
//!   bench scale, the acceptance workload for the parallel engine.
//!
//! Besides timing, the binary cross-checks that the serial and parallel
//! paths produce **bit-identical statistics** for every cell, so the JSON
//! doubles as a determinism audit.

use std::time::Instant;

use warpweave_bench::harness::{run_matrix_at, run_matrix_serial_at, MatrixResult};
use warpweave_core::{SmConfig, SweepRunner};
use warpweave_workloads::{all_workloads, by_name, run_prepared_multi_sm, Scale, Workload};

fn cells_identical(a: &MatrixResult, b: &MatrixResult) -> bool {
    a.workloads == b.workloads
        && a.configs == b.configs
        && a.cells.len() == b.cells.len()
        && a.cells
            .iter()
            .zip(&b.cells)
            .all(|(ra, rb)| ra.iter().zip(rb).all(|(ca, cb)| ca.stats == cb.stats))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_sweep.json")
        .to_string();

    let configs = SmConfig::figure7_set();
    let workloads: Vec<Box<dyn Workload>> = if full {
        all_workloads()
    } else {
        ["MatrixMul", "SortingNetworks"]
            .iter()
            .map(|n| by_name(n).expect("registered workload"))
            .collect()
    };
    // Keep the timing comparison pure simulation (verification is covered
    // by the test suite).
    let verify = false;
    let scale = if full { Scale::Bench } else { Scale::Test };

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let jobs = configs.len() * workloads.len();
    eprintln!(
        "sweep: {} workloads x {} configs = {jobs} jobs on {host_threads} host threads ({})",
        workloads.len(),
        configs.len(),
        if full { "bench scale" } else { "test scale" },
    );

    let t0 = Instant::now();
    let serial = run_matrix_serial_at(&configs, &workloads, scale, verify);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("serial:   {serial_ms:9.1} ms");

    let runner = SweepRunner::new();
    let t1 = Instant::now();
    let parallel = run_matrix_at(&runner, &configs, &workloads, scale, verify);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "parallel: {parallel_ms:9.1} ms ({} worker threads)",
        runner.threads()
    );

    let identical = cells_identical(&serial, &parallel);
    assert!(
        identical,
        "serial and parallel sweeps must produce bit-identical statistics"
    );
    let speedup = serial_ms / parallel_ms.max(1e-9);
    eprintln!("speedup:  {speedup:9.2}x (stats bit-identical: {identical})");

    // Multi-SM machine probe on one irregular workload, under both
    // bandwidth models: private channels (the historical upper bound) and
    // the machine-shared pool (the realistic, contended one).
    let probe = by_name("Mandelbrot").expect("registered workload");
    let mut machine_lines = Vec::new();
    let mut shared_4sm = None;
    for (num_sms, cfg) in [
        (1usize, SmConfig::sbi_swi()),
        (4, SmConfig::sbi_swi()),
        (1, SmConfig::sbi_swi().with_shared_dram()),
        (4, SmConfig::sbi_swi().with_shared_dram()),
    ] {
        let model = cfg.mem_model.name();
        let t = Instant::now();
        let stats = run_prepared_multi_sm(&cfg, num_sms, probe.prepare(scale), false)
            .expect("machine runs");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let util = stats.channel_utilization(cfg.dram.bytes_per_cycle);
        eprintln!(
            "machine {num_sms}sm/{model}: {wall_ms:7.1} ms, makespan {} cycles, ipc {:.1}, channel util {:.1}%",
            stats.total.cycles,
            stats.ipc(),
            util * 100.0
        );
        machine_lines.push(format!(
            "    {{\"num_sms\": {num_sms}, \"mem_model\": \"{model}\", \"wall_ms\": {wall_ms:.3}, \"makespan_cycles\": {}, \"ipc\": {:.4}, \"channel_utilization\": {util:.4}}}",
            stats.total.cycles,
            stats.ipc()
        ));
        if num_sms == 4 && model == "shared" {
            shared_4sm = Some((stats, cfg));
        }
    }
    let (shared_stats, shared_cfg) = shared_4sm.expect("shared probe ran");
    let ch = &shared_stats.channel;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"warpweave-bench-sweep-v2\",\n");
    json.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if full { "bench" } else { "test" }
    ));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"worker_threads\": {},\n", runner.threads()));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!("  \"serial_ms\": {serial_ms:.3},\n"));
    json.push_str(&format!("  \"parallel_ms\": {parallel_ms:.3},\n"));
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"stats_bit_identical\": {identical},\n"));
    json.push_str("  \"machine_probe\": [\n");
    json.push_str(&machine_lines.join(",\n"));
    json.push_str("\n  ],\n");
    // Contention profile of the 4-SM shared-bandwidth probe: how saturated
    // the single channel ran and how long loads queued behind it.
    json.push_str("  \"shared_channel\": {\n");
    json.push_str(&format!(
        "    \"utilization\": {:.4},\n",
        shared_stats.channel_utilization(shared_cfg.dram.bytes_per_cycle)
    ));
    json.push_str(&format!(
        "    \"avg_queue_delay_cycles\": {:.4},\n",
        ch.avg_queue_delay()
    ));
    json.push_str(&format!(
        "    \"max_queue_delay_cycles\": {},\n",
        ch.max_queue_delay
    ));
    json.push_str(&format!(
        "    \"queued_requests\": {},\n",
        ch.queued_requests
    ));
    json.push_str(&format!("    \"read_transfers\": {},\n", ch.read_transfers));
    json.push_str(&format!(
        "    \"write_transfers\": {}\n",
        ch.write_transfers
    ));
    json.push_str("  },\n");
    json.push_str("  \"gmean_ipc_per_config\": {\n");
    let rows: Vec<usize> = (0..parallel.workloads.len())
        .filter(|&w| !parallel.workloads[w].starts_with("TMD"))
        .collect();
    let gmeans = parallel.gmean_ipc(&rows);
    let entries: Vec<String> = parallel
        .configs
        .iter()
        .zip(&gmeans)
        .map(|(c, g)| format!("    \"{}\": {g:.4}", json_escape(c)))
        .collect();
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_sweep.json");
    eprintln!("wrote {out_path}");
}
