//! The sweep engine's CLI: runs the `workload × frontend` grid, emits the
//! deterministic `BENCH_sweep.json` payload, checkpoints per-cell progress,
//! and records/checks the golden IPC baseline.
//!
//! Usage:
//! `bench_sweep [--full] [--out PATH] [--checkpoint PATH] [--no-checkpoint]
//!              [--cell-budget N] [--threads N] [--frontend NAMES]
//!              [--list-frontends] [--salvage] [--max-cell-retries N]
//!              [--inject SPEC] [--jobs-from SPEC] [--merge SHARD...]
//!              [--record-golden] [--check-golden] [--golden PATH]`
//!
//! * default — a quick test-scale sweep (2 workloads × 5 front-ends) plus
//!   the 4 machine probes; also cross-checks the serial vs. parallel path
//!   for bit-identical statistics (the determinism audit).
//! * `--frontend NAMES` — replace the fig. 7 columns with the named
//!   issue policies (comma-separated; any name the policy registry
//!   resolves, e.g. `GreedyThenOldest` or `Baseline,GTO`).
//! * `--list-frontends` — print every registered policy name and exit.
//! * `--full` — the fig. 7 sweep (all 21 workloads × 5 front-ends) at
//!   bench scale. Minutes of work, which is why it checkpoints: every
//!   completed cell is flushed to `--checkpoint` (default
//!   `BENCH_sweep.checkpoint`), and a re-run resumes from the last cell
//!   instead of restarting. The resumed JSON is **byte-identical** to an
//!   uninterrupted run's.
//! * `--cell-budget N` — stop after N newly simulated cells (exit code 3);
//!   combined with the checkpoint this splits a long sweep across runs.
//! * `--salvage` — before resuming, truncate a torn/corrupt checkpoint to
//!   its last checksum-valid record (the damaged tail is preserved as a
//!   `.quarantine` sidecar) instead of refusing to load it.
//! * `--max-cell-retries N` — retries per failing cell before it is
//!   quarantined (default 1). A sweep with quarantined cells completes
//!   every healthy cell, prints a failures block with per-cell
//!   provenance, writes a partial `--out` payload and exits 4.
//! * `--inject SPEC` — arm the deterministic fault injector with `SPEC`
//!   (same grammar as the `WARPWEAVE_FAULTS` env var, which this flag
//!   overrides); used by the CI fault drills.
//! * `--jobs-from SPEC` — shard mode, one slice of the distributed sweep
//!   fabric: run only the selected slice of the full job grid (matrix
//!   cells in workload-major order, then the machine probes) into the
//!   checkpoint file. `shard:K/N` is the K-th of N round-robin slices
//!   (0-based); `cells:3,7,10-14` is an explicit job-index list. Shard
//!   mode writes **no JSON** — the checkpoint is the output; merge the
//!   shards afterwards.
//! * `--merge A.ckpt B.ckpt ...` — union shard checkpoints (every file
//!   must be intact and carry this grid's id; overlapping cells must be
//!   bit-identical) and render `--out` **byte-identical** to a
//!   single-host run of the same grid. Merging never simulates: an
//!   incomplete union lists its missing cells and exits 3.
//! * `--record-golden` — run the golden grid (test scale: full matrix +
//!   machine probes under both bandwidth models) and write the baseline
//!   (default `BENCH_golden.json`).
//! * `--check-golden` — re-run the golden grid and diff against the
//!   committed baseline with **zero tolerance**; any drift writes
//!   `BENCH_golden.json.diff` and exits 1.
//!
//! Contradictory flag combinations (e.g. `--check-golden` with
//! `--inject`, `--jobs-from` with `--merge`) are rejected up front with a
//! one-line error and exit code 2 — silently preferring one of the two
//! would run something other than what was asked for.
//!
//! All wall-clock timing goes to stderr; the JSON artifacts carry only
//! deterministic simulation results.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use warpweave_bench::grid;
use warpweave_bench::harness::{
    format_failures, run_matrix_at, run_matrix_contained, run_matrix_serial_at, run_matrix_shard,
    FaultPolicy,
};
use warpweave_bench::report::{
    check_golden, probes_from_store, render_faulted_sweep_json, render_golden_json,
    render_sweep_json, run_machine_probes, run_machine_probes_selected,
};
use warpweave_bench::shard::{
    job_counts, matrix_from_store, merge_checkpoints, split_jobs, ShardSpec,
};
use warpweave_bench::{arg_value, cell_key, MatrixResult};
use warpweave_core::checkpoint::SweepCheckpoint;
use warpweave_core::faultinject::{FaultPlan, FAULTS_ENV};
use warpweave_core::{PolicyRegistry, SweepRunner};
use warpweave_workloads::Scale;

/// Writes `contents` to `path`, reporting I/O failure on stderr instead
/// of panicking (the sweep results are already safe in the checkpoint).
fn write_artifact(path: &str, contents: &str) -> Result<(), ExitCode> {
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("write {path}: {e}");
        ExitCode::FAILURE
    })
}

/// The flag pairs that contradict each other. Each is rejected up front
/// with a one-line error instead of silently preferring one side:
///
/// * golden modes are fixed-grid, injection-free reference runs, so
///   `--inject`, `--frontend`, `--full` and each other are meaningless;
/// * `--merge` is a pure union/validation step — nothing may simulate,
///   checkpoint or inject during it;
/// * `--jobs-from` *is* a checkpointed run (the checkpoint is its only
///   output) and is itself an input to `--merge`, never combined with it;
/// * `--no-checkpoint` contradicts every flag whose effect lives in the
///   checkpoint (`--checkpoint`, `--salvage`, and `--cell-budget`, whose
///   saved progress would be silently discarded).
const FLAG_CONFLICTS: &[(&str, &str)] = &[
    ("--jobs-from", "--merge"),
    ("--jobs-from", "--no-checkpoint"),
    ("--jobs-from", "--check-golden"),
    ("--jobs-from", "--record-golden"),
    ("--merge", "--check-golden"),
    ("--merge", "--record-golden"),
    ("--merge", "--inject"),
    ("--merge", "--cell-budget"),
    ("--merge", "--salvage"),
    ("--merge", "--checkpoint"),
    ("--merge", "--no-checkpoint"),
    ("--check-golden", "--record-golden"),
    ("--check-golden", "--inject"),
    ("--check-golden", "--frontend"),
    ("--check-golden", "--full"),
    ("--record-golden", "--inject"),
    ("--record-golden", "--frontend"),
    ("--record-golden", "--full"),
    ("--no-checkpoint", "--checkpoint"),
    ("--no-checkpoint", "--salvage"),
    ("--no-checkpoint", "--cell-budget"),
];

/// Returns the first contradictory flag pair present in `args`, if any.
fn flag_conflict(args: &[String]) -> Option<(&'static str, &'static str)> {
    let has = |flag: &str| args.iter().any(|a| a == flag);
    FLAG_CONFLICTS
        .iter()
        .find(|(a, b)| has(a) && has(b))
        .copied()
}

/// The shard-checkpoint paths following `--merge` (every argument up to
/// the next `--flag`); `None` when `--merge` is absent.
fn merge_shard_paths(args: &[String]) -> Option<Vec<String>> {
    let at = args.iter().position(|a| a == "--merge")?;
    Some(
        args[at + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .cloned()
            .collect(),
    )
}

fn cells_identical(a: &MatrixResult, b: &MatrixResult) -> bool {
    a.workloads == b.workloads
        && a.configs == b.configs
        && a.cells.len() == b.cells.len()
        && a.cells
            .iter()
            .zip(&b.cells)
            .all(|(ra, rb)| ra.iter().zip(rb).all(|(ca, cb)| ca.stats == cb.stats))
}

/// Runs the golden grid (full workload matrix + machine probes at test
/// scale) and renders the baseline JSON.
fn render_golden(runner: &SweepRunner) -> String {
    let configs = grid::figure7_configs();
    let workloads = grid::sweep_workloads(true);
    let scale = Scale::Test;
    let id = grid::grid_id(&configs, &workloads, scale);
    let t = Instant::now();
    let m = run_matrix_at(runner, &configs, &workloads, scale, false);
    let probes = run_machine_probes(scale, None).expect("probes without a store cannot fail");
    eprintln!(
        "golden grid: {} cells + {} probes in {:.1} s",
        configs.len() * workloads.len(),
        probes.len(),
        t.elapsed().as_secs_f64()
    );
    render_golden_json("test", id, &m, &probes)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let Some((a, b)) = flag_conflict(&args) {
        eprintln!("conflicting flags: {a} cannot be combined with {b}");
        return ExitCode::from(2);
    }
    let full = args.iter().any(|a| a == "--full");
    let record_golden = args.iter().any(|a| a == "--record-golden");
    let do_check_golden = args.iter().any(|a| a == "--check-golden");
    let no_checkpoint = args.iter().any(|a| a == "--no-checkpoint");
    let salvage = args.iter().any(|a| a == "--salvage");
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let golden_path = arg_value(&args, "--golden").unwrap_or_else(|| "BENCH_golden.json".into());
    let checkpoint_path =
        arg_value(&args, "--checkpoint").unwrap_or_else(|| "BENCH_sweep.checkpoint".into());
    let cell_budget: Option<usize> = arg_value(&args, "--cell-budget")
        .map(|v| v.parse().expect("--cell-budget takes a cell count"));
    let max_cell_retries: u32 = arg_value(&args, "--max-cell-retries")
        .map(|v| v.parse().expect("--max-cell-retries takes a retry count"))
        .unwrap_or(1);
    // `--inject` overrides the env var; either way a malformed spec is a
    // usage error, reported before any simulation starts.
    let policy = match arg_value(&args, "--inject") {
        Some(spec) => match FaultPlan::parse(&spec) {
            Ok(plan) => FaultPolicy {
                max_retries: max_cell_retries,
                injector: (!plan.is_empty()).then(|| Arc::new(plan.arm())),
            },
            Err(e) => {
                eprintln!("--inject: {e}");
                return ExitCode::from(2);
            }
        },
        None => match FaultPolicy::from_env(max_cell_retries) {
            Ok(policy) => policy,
            Err(e) => {
                eprintln!("{FAULTS_ENV}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let runner = match arg_value(&args, "--threads") {
        Some(n) => SweepRunner::with_threads(n.parse().expect("--threads takes a count")),
        None => SweepRunner::new(),
    };

    if args.iter().any(|a| a == "--list-frontends") {
        for name in PolicyRegistry::global_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    if record_golden {
        let json = render_golden(&runner);
        if let Err(code) = write_artifact(&golden_path, &json) {
            return code;
        }
        eprintln!("recorded golden baseline: {golden_path}");
        return ExitCode::SUCCESS;
    }
    if do_check_golden {
        let committed = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!("read {golden_path}: {e} (record one with --record-golden)")
        });
        let current = render_golden(&runner);
        return match check_golden(&committed, &current) {
            Ok(()) => {
                eprintln!("golden baseline {golden_path}: OK (bit-exact)");
                ExitCode::SUCCESS
            }
            Err(report) => {
                let diff_path = format!("{golden_path}.diff");
                if let Err(e) = std::fs::write(&diff_path, &report) {
                    eprintln!("write {diff_path}: {e}");
                }
                eprint!("{report}");
                eprintln!("golden baseline {golden_path}: DRIFT — report written to {diff_path}");
                ExitCode::FAILURE
            }
        };
    }

    // Sweep, shard and merge modes all run on the same grid definition.
    let configs: Vec<_> = match arg_value(&args, "--frontend") {
        Some(names) => names
            .split(',')
            .map(|n| grid::frontend_config(n.trim()).unwrap_or_else(|e| panic!("--frontend: {e}")))
            .collect(),
        None => grid::figure7_configs(),
    };
    let workloads = grid::sweep_workloads(full);
    let scale = if full { Scale::Bench } else { Scale::Test };
    let scale_label = if full { "bench" } else { "test" };
    let verify = false; // timing/baseline runs stay pure simulation
    let jobs = configs.len() * workloads.len();

    // Merge mode: union shard checkpoints, validate, render — never
    // simulate. The output is byte-identical to a single-host run of the
    // same grid because both render from the same per-cell records.
    if let Some(shards) = merge_shard_paths(&args) {
        let id = grid::grid_id(&configs, &workloads, scale);
        let union = match merge_checkpoints(&shards, id) {
            Ok(union) => union,
            Err(e) => {
                eprintln!("--merge: {e}");
                return ExitCode::FAILURE;
            }
        };
        let incomplete = |missing: Vec<String>| {
            eprintln!(
                "--merge: union of {} shard(s) covers {} job(s) but misses {}: {}{}",
                shards.len(),
                union.len(),
                missing.len(),
                missing
                    .iter()
                    .take(5)
                    .cloned()
                    .collect::<Vec<_>>()
                    .join(", "),
                if missing.len() > 5 { ", ..." } else { "" }
            );
            eprintln!("run the missing slice with --jobs-from and merge again");
            ExitCode::from(3)
        };
        // Check matrix cells AND probes before refusing, so the missing
        // list (and its count) covers the whole job grid.
        let matrix = matrix_from_store(&configs, &workloads, &union);
        let probes = probes_from_store(&union);
        let mut missing = Vec::new();
        if let Err(m) = &matrix {
            missing.extend(m.iter().cloned());
        }
        if let Err(m) = &probes {
            missing.extend(m.iter().cloned());
        }
        if !missing.is_empty() {
            return incomplete(missing);
        }
        let (matrix, probes) = (matrix.unwrap(), probes.unwrap());
        let json = render_sweep_json(scale_label, &matrix, &probes);
        if let Err(code) = write_artifact(&out_path, &json) {
            return code;
        }
        eprintln!(
            "merged {} shard(s): {} matrix cells + {} probes -> {out_path}",
            shards.len(),
            jobs,
            probes.len()
        );
        return ExitCode::SUCCESS;
    }

    // Shard mode: run one slice of the job grid into the checkpoint.
    if let Some(spec) = arg_value(&args, "--jobs-from") {
        let spec = match ShardSpec::parse(&spec) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("--jobs-from: {e}");
                return ExitCode::from(2);
            }
        };
        let (matrix_cells, probe_count) = job_counts(&configs, &workloads);
        let indices = match spec.select(matrix_cells + probe_count) {
            Ok(indices) => indices,
            Err(e) => {
                eprintln!("--jobs-from: {e}");
                return ExitCode::from(2);
            }
        };
        let (cell_indices, probe_indices) = split_jobs(&indices, matrix_cells);
        let id = grid::grid_id(&configs, &workloads, scale);
        if salvage {
            match SweepCheckpoint::salvage(&checkpoint_path) {
                Ok(report) => eprintln!("checkpoint {checkpoint_path}: salvage: {report}"),
                Err(e) => {
                    eprintln!("checkpoint {checkpoint_path}: salvage skipped: {e} (resuming as-is)")
                }
            }
        }
        let mut store = SweepCheckpoint::resume(&checkpoint_path, id)
            .unwrap_or_else(|e| panic!("checkpoint {checkpoint_path}: {e}"));
        if let Some(injector) = &policy.injector {
            store.arm_faults(Arc::clone(injector));
        }
        let done_before = store.len();
        eprintln!(
            "shard {spec}: {} of {} grid jobs ({} matrix cells + {} probes) -> {checkpoint_path}",
            indices.len(),
            matrix_cells + probe_count,
            cell_indices.len(),
            probe_indices.len()
        );
        let t0 = Instant::now();
        let report = run_matrix_shard(
            &runner,
            &configs,
            &workloads,
            scale,
            verify,
            &mut store,
            cell_budget,
            &policy,
            Some(&cell_indices),
        )
        .unwrap_or_else(|e| panic!("sharded sweep: {e}"));
        if !report.failures.is_empty() {
            eprint!("{}", format_failures(&report.failures));
            eprintln!("healthy shard cells are persisted; fix the fault and re-run this shard");
            return ExitCode::from(4);
        }
        let shard_cells_done = cell_indices.iter().all(|&i| {
            store.contains(&cell_key(
                workloads[i / configs.len()].name(),
                &configs[i % configs.len()].name,
            ))
        });
        if !shard_cells_done {
            eprintln!(
                "cell budget exhausted mid-shard ({:.1} s); re-run to resume from \
                 {checkpoint_path}",
                t0.elapsed().as_secs_f64()
            );
            return ExitCode::from(3);
        }
        run_machine_probes_selected(scale, Some(&mut store), &probe_indices)
            .unwrap_or_else(|e| panic!("sharded probes: {e}"));
        eprintln!(
            "shard {spec} complete: {} job(s) in store ({} resumed) in {:.1} s; merge with \
             `bench_sweep --merge {checkpoint_path} ...`",
            store.len(),
            done_before,
            t0.elapsed().as_secs_f64()
        );
        return ExitCode::SUCCESS;
    }
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "sweep: {} workloads x {} configs = {jobs} jobs on {host_threads} host threads \
         ({} worker threads, {scale_label} scale)",
        workloads.len(),
        configs.len(),
        runner.threads(),
    );

    // `--full` checkpoints by default (it is minutes of work); the quick
    // sweep stays checkpoint-free — it doubles as the serial-vs-parallel
    // determinism audit — unless `--checkpoint` is passed explicitly.
    // Fault injection always routes through the contained path (a
    // checkpoint-free injected run uses an in-memory store), because the
    // strict path treats any cell failure as fatal.
    let use_checkpoint = !no_checkpoint && (full || args.iter().any(|a| a == "--checkpoint"));
    let (matrix, probes) = if !use_checkpoint && policy.injector.is_none() {
        // Checkpoint-free path: also the serial-vs-parallel determinism
        // audit (only meaningful when both paths actually run).
        let t0 = Instant::now();
        let serial = run_matrix_serial_at(&configs, &workloads, scale, verify);
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let parallel = run_matrix_at(&runner, &configs, &workloads, scale, verify);
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert!(
            cells_identical(&serial, &parallel),
            "serial and parallel sweeps must produce bit-identical statistics"
        );
        eprintln!(
            "serial: {serial_ms:9.1} ms  parallel: {parallel_ms:9.1} ms  \
             speedup {:.2}x  (stats bit-identical: true)",
            serial_ms / parallel_ms.max(1e-9)
        );
        let probes = run_machine_probes(scale, None).expect("probes without a store cannot fail");
        (parallel, probes)
    } else {
        let id = grid::grid_id(&configs, &workloads, scale);
        let mut store = if use_checkpoint {
            if salvage {
                match SweepCheckpoint::salvage(&checkpoint_path) {
                    Ok(report) => eprintln!("checkpoint {checkpoint_path}: salvage: {report}"),
                    Err(e) => eprintln!(
                        "checkpoint {checkpoint_path}: salvage skipped: {e} \
                         (resuming as-is)"
                    ),
                }
            }
            SweepCheckpoint::resume(&checkpoint_path, id)
                .unwrap_or_else(|e| panic!("checkpoint {checkpoint_path}: {e}"))
        } else {
            SweepCheckpoint::in_memory(id)
        };
        if let Some(injector) = &policy.injector {
            store.arm_faults(Arc::clone(injector));
        }
        let done_before = store.len();
        if done_before > 0 {
            eprintln!(
                "checkpoint {checkpoint_path}: resuming with {done_before} completed cell(s)"
            );
        }
        let t0 = Instant::now();
        let report = run_matrix_contained(
            &runner,
            &configs,
            &workloads,
            scale,
            verify,
            &mut store,
            cell_budget,
            &policy,
        )
        .unwrap_or_else(|e| panic!("checkpointed sweep: {e}"));
        if !report.failures.is_empty() {
            eprint!("{}", format_failures(&report.failures));
            eprintln!(
                "{} healthy cell(s) completed and persisted; fix the fault and re-run \
                 to fill the gaps",
                report.healthy.len()
            );
            let json =
                render_faulted_sweep_json(scale_label, jobs, &report.healthy, &report.failures);
            if let Err(code) = write_artifact(&out_path, &json) {
                return code;
            }
            eprintln!("wrote {out_path} (partial: quarantined cells listed under \"failures\")");
            return ExitCode::from(4);
        }
        let Some(matrix) = report.matrix else {
            eprintln!(
                "cell budget exhausted after {} of {jobs} matrix cells ({:.1} s); \
                 re-run to resume from {checkpoint_path}",
                store.len(),
                t0.elapsed().as_secs_f64()
            );
            return ExitCode::from(3);
        };
        let probes = run_machine_probes(scale, Some(&mut store))
            .unwrap_or_else(|e| panic!("checkpointed probes: {e}"));
        eprintln!(
            "sweep complete: {} cells ({} resumed) + {} probes in {:.1} s",
            jobs,
            done_before,
            probes.len(),
            t0.elapsed().as_secs_f64()
        );
        (matrix, probes)
    };

    for p in &probes {
        eprintln!(
            "machine {}sm/{}: makespan {} cycles, ipc {:.1}, channel util {:.1}%",
            p.probe.num_sms,
            p.probe.cfg.mem_model.name(),
            p.total.cycles,
            p.ipc(),
            p.channel_utilization() * 100.0
        );
    }

    let json = render_sweep_json(scale_label, &matrix, &probes);
    if let Err(code) = write_artifact(&out_path, &json) {
        return code;
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}
