//! Ablation: SBI dependence-tracking schemes (DESIGN.md §6).
//!
//! Compares the paper's 3×3 dependency-matrix scoreboard (§3.4) against an
//! exact per-instruction thread-mask oracle and the baseline warp-level
//! scheme, on the irregular set under SBI. The paper argues the matrix
//! scheme's storage is warp-size independent while staying close to exact
//! tracking — this quantifies the IPC cost of its conservatism.
//!
//! Usage: `ablation_scoreboard [--no-verify]`

use warpweave_bench::harness::{format_ipc_table, run_matrix};
use warpweave_core::{ScoreboardMode, SmConfig};

fn with_mode(mode: ScoreboardMode, name: &str) -> SmConfig {
    let mut cfg = SmConfig::sbi().named(name);
    cfg.scoreboard_mode = mode;
    cfg
}

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    let configs = vec![
        with_mode(ScoreboardMode::Matrix, "Matrix"),
        with_mode(ScoreboardMode::Exact, "Exact"),
    ];
    let workloads = warpweave_workloads::irregular();
    let m = run_matrix(&configs, &workloads, verify);
    let rows: Vec<usize> = (0..m.workloads.len())
        .filter(|&w| !m.workloads[w].starts_with("TMD"))
        .collect();
    println!("== Ablation: SBI scoreboard scheme (IPC, irregular) ==");
    print!("{}", format_ipc_table(&m, &rows, "Gmean (excl. TMD)"));
    let g = m.gmean_ipc(&rows);
    println!(
        "\nmatrix-scheme conservatism costs {:.2}% vs an exact-mask oracle",
        (1.0 - g[0] / g[1]) * 100.0
    );
}
