//! Ablation: the CCT sideband sorter (DESIGN.md §6, paper §3.4).
//!
//! "In case the sideband sorter is unable to keep up with insertions of new
//! warp-splits, the sorted heap will be degraded into a stack." This
//! compares the modelled sorter (walks one node per cycle; degrades under
//! pressure) against an ideal always-sorted CCT, under SBI on the
//! irregular set, and reports how often the degraded path fired.
//!
//! Usage: `ablation_sideband [--no-verify]`

use warpweave_bench::harness::{format_ipc_table, run_matrix};
use warpweave_core::SmConfig;

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    let mut modelled = SmConfig::sbi().named("Sideband");
    modelled.model_sideband_sorter = true;
    let mut ideal = SmConfig::sbi().named("Ideal");
    ideal.model_sideband_sorter = false;
    let configs = vec![modelled, ideal];
    let workloads = warpweave_workloads::irregular();
    let m = run_matrix(&configs, &workloads, verify);
    let rows: Vec<usize> = (0..m.workloads.len())
        .filter(|&w| !m.workloads[w].starts_with("TMD"))
        .collect();
    println!("== Ablation: CCT sideband sorter vs ideal sorted CCT (IPC, irregular) ==");
    print!("{}", format_ipc_table(&m, &rows, "Gmean (excl. TMD)"));
    println!("\nspills and degraded (stack-order) inserts under the modelled sorter:");
    for w in 0..m.workloads.len() {
        let s = &m.cells[w][0].stats;
        if s.heap.spills > 0 {
            println!(
                "  {:<22} spills {:>6}   degraded {:>6} ({:.1}%)",
                m.workloads[w],
                s.heap.spills,
                s.heap.degraded_inserts,
                s.heap.degraded_inserts as f64 / s.heap.spills as f64 * 100.0
            );
        }
    }
    println!("\npaper: heap order is an optimisation only; degraded mode matches today's");
    println!("divergence stacks, and hot heap occupancy rarely exceeds 3 entries.");
}
