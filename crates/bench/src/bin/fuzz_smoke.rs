//! Release-scale sweep of the seeded synthetic-kernel fuzzer.
//!
//! Generates `--count` kernels (round-robin over the fuzz profiles, or a
//! single `--profile`) and drives every kernel through all three fuzz
//! targets — scalar-vs-SoA differential, full policy-registry sweep and
//! 1-vs-8-host-thread determinism under both memory models — then prints
//! a scenario-diversity stats table of per-profile policy IPCs and
//! SBI/SWI-vs-baseline deltas.
//!
//! Usage: `fuzz_smoke [--count N] [--seed S] [--profile NAME]
//!                    [--repro PATH] [--out PATH] [--emit-corpus DIR]`
//!
//! * `--count N` — kernels to generate (default 500; each runs through
//!   all three targets, so this is the per-target count too).
//! * `--seed S` — base seed (decimal or 0x-hex); defaults to the
//!   `WARPWEAVE_FUZZ_SEED` env override, then to a fixed constant.
//! * `--profile NAME` — restrict to one profile
//!   (balanced | regular | pathological | memory_heavy).
//! * `--repro PATH` — where to write the shrunk reproducer on failure
//!   (default `FUZZ_reproducer.wwasm`; CI uploads it as an artifact).
//! * `--out PATH` — also write the stats table as JSON.
//! * `--emit-corpus DIR` — instead of sweeping, write the fixed-seed
//!   reproducer corpus (two kernels per profile) into `DIR` and exit.
//!
//! Every run is wall-clock-free and deterministic in `(seed, count)`; any
//! failure prints a one-line rerun command carrying the seed.

use warpweave_bench::arg_value;
use warpweave_core::fuzzing::{run_case, CaseOutcome};
use warpweave_isa::fuzz::{self, parse_seed, seed_from_env, FuzzProfile, Reproducer, SEED_ENV};

/// Default base seed when neither `--seed` nor the env override is set.
const DEFAULT_SEED: u64 = 0xf022_5eed;

/// Fixed seeds per profile for `--emit-corpus` — chosen once, committed
/// under `tests/corpus/`, and replayed by `tests/corpus_replay.rs`.
const CORPUS_SEEDS: [u64; 2] = [0x0c0_4b05_0001, 0x0c0_4b05_0002];

/// Per-profile accumulator for the scenario-diversity table.
struct ProfileStats {
    name: &'static str,
    cases: usize,
    instrs: usize,
    /// Sum of IPC per canonical policy name, in registry order.
    ipc_sums: Vec<(String, f64)>,
}

impl ProfileStats {
    fn new(name: &'static str) -> ProfileStats {
        ProfileStats {
            name,
            cases: 0,
            instrs: 0,
            ipc_sums: Vec::new(),
        }
    }

    fn add(&mut self, out: &CaseOutcome) {
        self.cases += 1;
        self.instrs += out.static_instrs;
        if self.ipc_sums.is_empty() {
            self.ipc_sums = out
                .policy_ipcs
                .iter()
                .map(|(n, _)| (n.clone(), 0.0))
                .collect();
        }
        for ((_, sum), (_, ipc)) in self.ipc_sums.iter_mut().zip(&out.policy_ipcs) {
            *sum += ipc;
        }
    }

    fn mean(&self, policy: &str) -> Option<f64> {
        self.ipc_sums
            .iter()
            .find(|(n, _)| n == policy)
            .map(|(_, sum)| sum / self.cases.max(1) as f64)
    }
}

fn emit_corpus(dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    let mut written = 0;
    for profile in FuzzProfile::all() {
        for seed in CORPUS_SEEDS {
            let plan = fuzz::generate(seed, &profile);
            let program = plan.lower()?;
            let rep = Reproducer::from_plan(&plan, program);
            let path = format!("{dir}/{}_{seed:012x}.wwasm", profile.name);
            std::fs::write(&path, rep.to_text()).map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
            written += 1;
        }
    }
    println!("corpus: {written} reproducers");
    Ok(())
}

fn stats_json(stats: &[ProfileStats], base_seed: u64, count: usize) -> String {
    let mut rows = Vec::new();
    for s in stats.iter().filter(|s| s.cases > 0) {
        let ipcs = s
            .ipc_sums
            .iter()
            .map(|(n, sum)| format!("\"{n}\": {:.6}", sum / s.cases as f64))
            .collect::<Vec<_>>()
            .join(", ");
        rows.push(format!(
            "    {{\"profile\": \"{}\", \"cases\": {}, \"mean_static_instrs\": {:.1}, \"mean_ipc\": {{{ipcs}}}}}",
            s.name,
            s.cases,
            s.instrs as f64 / s.cases as f64,
        ));
    }
    format!(
        "{{\n  \"schema\": \"warpweave-fuzz-smoke-v1\",\n  \"base_seed\": \"{base_seed:#x}\",\n  \"count\": {count},\n  \"profiles\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

fn print_table(stats: &[ProfileStats]) {
    let policies: Vec<String> = stats
        .iter()
        .find(|s| s.cases > 0)
        .map(|s| s.ipc_sums.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    println!("\nscenario diversity — mean IPC by profile and policy");
    print!("{:<14} {:>6} {:>8}", "profile", "cases", "instrs");
    for p in &policies {
        print!(" {p:>10}");
    }
    println!();
    for s in stats.iter().filter(|s| s.cases > 0) {
        print!(
            "{:<14} {:>6} {:>8.1}",
            s.name,
            s.cases,
            s.instrs as f64 / s.cases as f64
        );
        for p in &policies {
            print!(" {:>10.3}", s.mean(p).unwrap_or(0.0));
        }
        println!();
    }
    // SBI/SWI-vs-baseline deltas: the paper's headline comparison.
    println!("\nspeedup vs Baseline (mean IPC ratio)");
    for s in stats.iter().filter(|s| s.cases > 0) {
        let Some(base) = s.mean("Baseline").filter(|b| *b > 0.0) else {
            continue;
        };
        print!("{:<14}", s.name);
        for p in ["SBI", "SWI", "SBI+SWI"] {
            if let Some(ipc) = s.mean(p) {
                print!(" {p}: {:>6.3}x", ipc / base);
            }
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(dir) = arg_value(&args, "--emit-corpus") {
        if let Err(e) = emit_corpus(&dir) {
            eprintln!("corpus emission failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let count: usize = arg_value(&args, "--count")
        .map(|v| v.parse().expect("--count N"))
        .unwrap_or(500);
    let base_seed = match arg_value(&args, "--seed") {
        Some(v) => parse_seed(&v).expect("--seed takes decimal or 0x-hex"),
        None => seed_from_env(DEFAULT_SEED),
    };
    let repro_path =
        arg_value(&args, "--repro").unwrap_or_else(|| "FUZZ_reproducer.wwasm".to_string());
    let profiles: Vec<FuzzProfile> = match arg_value(&args, "--profile") {
        Some(name) => vec![FuzzProfile::by_name(&name)
            .unwrap_or_else(|| panic!("unknown profile {name} (see --help text in source)"))],
        None => FuzzProfile::all(),
    };
    let mut stats: Vec<ProfileStats> = profiles.iter().map(|p| ProfileStats::new(p.name)).collect();

    println!(
        "fuzz_smoke: {count} kernels, base seed {base_seed:#x}, profiles [{}]",
        profiles
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    for i in 0..count {
        let which = i % profiles.len();
        let seed = base_seed.wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match run_case(seed, &profiles[which]) {
            Ok(out) => stats[which].add(&out),
            Err(fail) => {
                eprintln!("FAILURE after {i} passing kernels: {fail}");
                match std::fs::write(&repro_path, fail.reproducer.to_text()) {
                    Ok(()) => eprintln!("shrunk reproducer written to {repro_path}"),
                    Err(e) => {
                        eprintln!("could not write {repro_path}: {e}; reproducer follows");
                        eprintln!("{}", fail.reproducer.to_text());
                    }
                }
                eprintln!(
                    "rerun: {SEED_ENV}={seed:#x} cargo run --release -p warpweave-bench --bin fuzz_smoke -- --count 1 --profile {}",
                    profiles[which].name
                );
                std::process::exit(1);
            }
        }
        if (i + 1) % 100 == 0 {
            println!("  {}/{count} kernels clean", i + 1);
        }
    }

    print_table(&stats);
    if let Some(out) = arg_value(&args, "--out") {
        let json = stats_json(&stats, base_seed, count);
        std::fs::write(&out, json).expect("write --out");
        println!("\nstats written to {out}");
    }
    println!(
        "\nall {count} kernels clean across differential, policy-sweep and determinism targets"
    );
}
