//! Regenerates **table 4**: component areas and SM overhead (3.0 % / 2.9 %
//! / 3.7 % for SBI / SWI / SBI+SWI in the paper).
fn main() {
    let p = warpweave_hwcost::HwParams::default();
    let c = warpweave_hwcost::AreaCoefficients::default();
    println!("{}", warpweave_hwcost::format_table4(&p, &c));
}
