//! Regenerates **figure 8(b)**: speedup of each lane-shuffling policy of
//! table 1 over the straightforward (Identity/"Linear") mapping, for SWI on
//! the irregular applications.
//!
//! Usage: `fig8b_lane_shuffle [--no-verify] [--set regular|irregular]
//!                            [--checkpoint PATH]`
//!
//! With `--checkpoint`, every completed cell is flushed to `PATH` and an
//! interrupted run resumes from the last cell (bit-identical results; the
//! checkpoint is bound to the chosen `--set`'s grid identity).

use warpweave_bench::arg_value;
use warpweave_bench::grid;
use warpweave_bench::harness::{format_bandwidth_summary, gmean, run_matrix_figure};
use warpweave_core::SweepRunner;
use warpweave_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let set = arg_value(&args, "--set").unwrap_or_else(|| "irregular".into());
    let checkpoint = arg_value(&args, "--checkpoint");
    let configs = grid::lane_shuffle_configs();
    let workloads = if set == "regular" {
        warpweave_workloads::regular()
    } else {
        warpweave_workloads::irregular()
    };
    let m = run_matrix_figure(
        &SweepRunner::new(),
        &configs,
        &workloads,
        Scale::Bench,
        verify,
        checkpoint.as_deref(),
    );
    println!("== Figure 8(b): SWI lane-shuffling speedup over Identity ({set}) ==");
    print!("{:<22}", "benchmark");
    for c in m.configs.iter().skip(1) {
        print!("{c:>12}");
    }
    println!();
    let rows: Vec<usize> = (0..m.workloads.len())
        .filter(|&w| !m.workloads[w].starts_with("TMD"))
        .collect();
    for w in 0..m.workloads.len() {
        print!("{:<22}", m.workloads[w]);
        for c in 1..m.configs.len() {
            print!("{:>12.3}", m.ipc(w, c) / m.ipc(w, 0));
        }
        println!();
    }
    print!("{:<22}", "Gmean (excl. TMD)");
    for c in 1..m.configs.len() {
        let g = gmean(rows.iter().map(|&w| m.ipc(w, c) / m.ipc(w, 0)));
        print!("{g:>12.3}");
    }
    println!();
    println!();
    print!("{}", format_bandwidth_summary(&m, &configs[0].dram, &rows));
    println!();
    println!("paper: XorRev is the most consistent (gmean +1.4% irregular, +0.3% regular;");
    println!("Needleman-Wunsch up to +7.7%, 3dfd −1.8%).");
}
