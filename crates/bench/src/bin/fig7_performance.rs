//! Regenerates **figure 7**: IPC of Baseline, SBI, SWI, SBI+SWI and the
//! thread-frontier Warp64 reference on the regular (7a) and irregular (7b)
//! application sets.
//!
//! Usage: `fig7_performance [--set regular|irregular|all] [--no-verify]
//!                          [--frontend NAMES]`
//!
//! `--frontend NAMES` replaces the five fig. 7 columns with the named
//! issue policies (comma-separated registry names, e.g.
//! `Baseline,GreedyThenOldest`).
//!
//! As in the paper, TMD1/TMD2 are excluded from the irregular geometric mean
//! ("as the TMD application reflects properties of thread-frontier based
//! reconvergence rather than SBI and SWI, we do not take it into account
//! when computing the performance means", §5.1).

use warpweave_bench::grid;
use warpweave_bench::harness::{format_bandwidth_table, format_ipc_table, run_matrix};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let set = args
        .iter()
        .position(|a| a == "--set")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all")
        .to_string();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let configs = match warpweave_bench::arg_value(&args, "--frontend") {
        Some(names) => names
            .split(',')
            .map(|n| grid::frontend_config(n.trim()).unwrap_or_else(|e| panic!("--frontend: {e}")))
            .collect(),
        None => grid::figure7_configs(),
    };

    if set == "regular" || set == "all" {
        let workloads = warpweave_workloads::regular();
        let m = run_matrix(&configs, &workloads, verify);
        let rows: Vec<usize> = (0..m.workloads.len()).collect();
        println!("== Figure 7(a): regular applications (IPC) ==");
        print!("{}", format_ipc_table(&m, &rows, "Gmean"));
        println!();
        println!("== DRAM bandwidth saturation (regular) ==");
        print!("{}", format_bandwidth_table(&m, &configs[0].dram, &rows));
        println!();
    }
    if set == "irregular" || set == "all" {
        let workloads = warpweave_workloads::irregular();
        let m = run_matrix(&configs, &workloads, verify);
        let rows: Vec<usize> = (0..m.workloads.len())
            .filter(|&w| !m.workloads[w].starts_with("TMD"))
            .collect();
        println!("== Figure 7(b): irregular applications (IPC) ==");
        print!("{}", format_ipc_table(&m, &rows, "Gmean (excl. TMD)"));
        println!();
        // Headline speedups vs the baseline (paper §5.1 / §7).
        let g = m.gmean_ipc(&rows);
        let base = g[0];
        println!("speedup vs baseline (irregular):");
        for (c, name) in m.configs.iter().enumerate().skip(1) {
            println!("  {:<10} {:+.1}%", name, (g[c] / base - 1.0) * 100.0);
        }
        println!();
        println!("== DRAM bandwidth saturation (irregular) ==");
        print!("{}", format_bandwidth_table(&m, &configs[0].dram, &rows));
    }
}
